/* The voice-mail pager audio buffer controller (the paper's second
 * Table 1 example, reconstructed; see DESIGN.md). Three concurrent
 * modules: `producer` frames incoming ADC samples while recording is
 * on, `buffer_ctl` stores frames and streams them back one sample per
 * playback tick, and `player` forwards the stream to the DAC.
 *
 * The three modules wait on unrelated event streams, which is exactly
 * what makes the synchronous product machine large compared to the
 * three asynchronous tasks (the paper's Buffer row). */

#define FRAMESIZE 4
#define MAXFRAMES 16
#define STOREBYTES 64

typedef unsigned char byte;
typedef struct { byte s[FRAMESIZE]; } frame_t;
typedef struct { byte m[STOREBYTES]; } store_t;

/* Group samples into FRAMESIZE-sample frames between `rec_on` and
 * `rec_off`. The four sample slots are explicit control states (one
 * await per slot, as in the original controller's sampled loop) —
 * which is exactly what multiplies against the other modules' states
 * in the synchronous product machine. */
module producer (input pure rec_on, input pure rec_off, input byte sample,
                 output frame_t frame)
{
    frame_t cur;
    while (1) {
        await (rec_on);
        do {
            while (1) {
                await (sample);
                cur.s[0] = sample;
                await (sample);
                cur.s[1] = sample;
                await (sample);
                cur.s[2] = sample;
                await (sample);
                cur.s[3] = sample;
                emit_v (frame, cur);
            }
        } abort (rec_off);
    }
}

/* Store recorded frames; between `play_btn` and `stop_btn`, stream one
 * stored sample per `tick`; `erase` clears the store. */
module buffer_ctl (input frame_t frame, input pure play_btn, input pure stop_btn,
                   input pure erase, input pure tick, output byte out_sample)
{
    store_t store;
    int nbytes;
    int k;
    int rd;
    nbytes = 0;
    par {
        {
            while (1) {
                await (frame);
                if (nbytes + FRAMESIZE <= STOREBYTES) {
                    for (k = 0; k < FRAMESIZE; k++) {
                        store.m[nbytes + k] = frame.s[k];
                    }
                    nbytes = nbytes + FRAMESIZE;
                }
            }
        }
        {
            while (1) {
                await (play_btn);
                rd = 0;
                do {
                    while (1) {
                        await (tick);
                        if (rd < nbytes) {
                            emit_v (out_sample, store.m[rd]);
                            rd = rd + 1;
                        }
                    }
                } abort (stop_btn);
            }
        }
        {
            while (1) {
                await (erase);
                nbytes = 0;
            }
        }
    }
}

/* Forward the playback stream to the DAC, with a settling cycle after
 * each conversion (the DAC is half the sample rate of the bus). */
module player (input byte out_sample, output byte dac)
{
    while (1) {
        await (out_sample);
        emit_v (dac, out_sample);
        await ();
    }
}

/* Top level: producer -> buffer -> player over two internal signals. */
module pager (input pure rec_on, input pure rec_off, input byte sample,
              input pure play_btn, input pure stop_btn, input pure erase,
              input pure tick, output byte dac)
{
    signal frame_t frame;
    signal byte out_sample;
    par {
        producer (rec_on, rec_off, sample, frame);
        buffer_ctl (frame, play_btn, stop_btn, erase, tick, out_sample);
        player (out_sample, dac);
    }
}

/* Observers (ecl-observe): buffer and latency invariants of the
 * record/playback path. */

/* Recording latency: once recording starts and samples stream in one
 * per instant, the first full frame must be framed within 6 instants
 * (4 sample awaits plus margin). A truncated recording violates it. */
observer record_watch (input pure rec_on, input frame_t frame)
{
    whenever (rec_on) expect (frame) within 6;
}

/* Playback forwarding: the DAC only ever converts a streamed sample
 * (never underflows into silence-fabrication), and every streamed
 * sample reaches the DAC within an instant. */
observer playback_watch (input byte out_sample, input byte dac)
{
    never (dac & ~out_sample);
    whenever (out_sample) expect (dac) within 1;
}
