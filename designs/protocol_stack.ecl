/* The paper's running example (Figures 1-4): a fragment of a network
 * protocol stack. Packets arrive one byte per instant on `in_byte`;
 * `assemble` gathers them into 64-byte packets, `checkcrc` verifies
 * the checksum, and `prochdr` scans the header one byte per cycle,
 * killed early when the CRC check fails.
 *
 * The geometry mirrors Figure 1's #defines; the union gives the two
 * views of a packet (raw byte stream vs. header/data/crc fields). */

#define HDRSIZE 6
#define DATASIZE 56
#define CRCSIZE 2
#define PKTSIZE HDRSIZE+DATASIZE+CRCSIZE

typedef unsigned char byte;
typedef struct { byte packet[PKTSIZE]; } packet_view_1_t;
typedef struct { byte header[HDRSIZE]; byte data[DATASIZE]; byte crc[CRCSIZE]; } packet_view_2_t;
typedef union { packet_view_1_t raw; packet_view_2_t cooked; } packet_t;

/* Figure 1: collect PKTSIZE bytes into a packet; `reset` restarts the
 * assembly from byte zero. */
module assemble (input pure reset, input byte in_byte, output packet_t outpkt)
{
    int cnt;
    packet_t buffer;
    while (1) {
        do {
            for (cnt = 0; cnt < PKTSIZE; cnt++) {
                await (in_byte);
                buffer.raw.packet[cnt] = in_byte;
            }
            emit_v (outpkt, buffer);
        } abort (reset);
    }
}

/* Figure 2: accumulate the CRC over header+data ((acc ^ byte) << 1,
 * masked to 16 bits) and compare against the stored little-endian
 * checksum. The verdict is emitted as the *value* of `crc_ok` in the
 * same instant the packet arrives. */
module checkcrc (input packet_t inpkt, output int crc_ok)
{
    int i;
    int acc;
    while (1) {
        await (inpkt);
        acc = 0;
        for (i = 0; i < HDRSIZE + DATASIZE; i++) {
            acc = ((acc ^ inpkt.raw.packet[i]) << 1) & 0xFFFF;
        }
        emit_v (crc_ok, acc == (inpkt.cooked.crc[0] | (inpkt.cooked.crc[1] << 8)));
    }
}

/* Figure 3: scan the header one byte per delta cycle while the CRC
 * verdict is awaited in parallel; a failed CRC kills the scan through
 * the local signal `kill_check` before `addr_match` can fire. */
module prochdr (input packet_t inpkt, input int crc_ok, output pure addr_match)
{
    int j;
    int ok;
    signal pure kill_check;
    while (1) {
        await (inpkt);
        par {
            {
                do {
                    ok = 1;
                    for (j = 0; j < HDRSIZE; j++) {
                        await ();
                        if (inpkt.cooked.header[j] != j + 1) {
                            ok = 0;
                        }
                    }
                    if (ok) {
                        emit (addr_match);
                    }
                } abort (kill_check);
            }
            {
                await_immediate (crc_ok);
                await ();
                if (!crc_ok) {
                    emit (kill_check);
                }
            }
        }
    }
}

/* Figure 4: the three stages wired by two internal signals. */
module toplevel (input pure reset, input byte in_byte, output pure addr_match)
{
    signal packet_t packet;
    signal int crc_ok;
    par {
        assemble (reset, in_byte, packet);
        checkcrc (packet, crc_ok);
        prochdr (packet, crc_ok, addr_match);
    }
}

/* Observers (ecl-observe): packet-level invariants checked online
 * against both the synchronous and the partitioned implementation
 * (watched names resolve through elaboration mangling, so `packet`
 * matches the monolithic `top::packet` and the 3-task wire alike). */

/* Every assembled packet gets a CRC verdict in its arrival instant
 * (within 1 tolerates one instant of RTOS scheduling skew), and a
 * verdict never appears without a packet. */
observer crc_watch (input packet_t packet, input int crc_ok)
{
    whenever (packet) expect (crc_ok) within 1;
    never (crc_ok & ~packet);
}

/* Forwarding with bounded latency: the header scan takes HDRSIZE
 * delta cycles, so a (good) packet must be forwarded within 8
 * instants. A corrupted CRC kills the scan and violates this. */
observer forward_watch (input packet_t packet, input pure addr_match)
{
    whenever (packet) expect (addr_match) within 8;
}

/* Liveness of the stimulus path: the first packet completes within
 * 80 instants of the run start (1 idle + 64 bytes). */
observer liveness_watch (input packet_t packet)
{
    eventually_within 80 (packet);
}
