//! Stage-level integration tests for the typed pipeline and the
//! Workspace batch driver (the acceptance surface of the staged API):
//! each stage runs independently, one parse feeds many downstream
//! artifacts, and parallel batch compilation equals sequential.

use ecl_repro::prelude::*;
use sim::designs::{PROTOCOL_STACK, VOICE_PAGER};

/// Parse-only: stop after the front end, inspect, never elaborate.
#[test]
fn parse_only_stage() {
    let parsed = Source::named("stack.ecl", PROTOCOL_STACK).parse().unwrap();
    assert_eq!(
        parsed.module_names(),
        ["assemble", "checkcrc", "prochdr", "toplevel"]
    );
    assert!(!parsed.diagnostics().has_errors());
    // Parse errors are stage-tagged.
    let e = Source::new("module oops(").parse().unwrap_err();
    assert_eq!(e.stage(), Stage::Parse);
    assert!(e.diagnostics().has_errors());
}

/// Split-only: one parse, one elaboration, both strategies — no
/// re-parsing anywhere.
#[test]
fn split_only_under_both_strategies() {
    let parsed = Source::named("stack.ecl", PROTOCOL_STACK).parse().unwrap();
    let elaborated = parsed.elaborate("checkcrc").unwrap();
    let max = elaborated.split_with(SplitStrategy::MaxEsterel).unwrap();
    let min = elaborated.split_with(SplitStrategy::MinEsterel).unwrap();
    // MinEsterel batches the CRC loop region into fewer actions.
    assert!(min.report().actions <= max.report().actions);
    // Both splits came from the same elaboration and parse (shared Arcs).
    assert_eq!(max.elaborated().entry(), "checkcrc");
    assert_eq!(min.elaborated().entry(), "checkcrc");
}

/// EFSM-only: compile the reactive part and stop; no codegen, no rt.
#[test]
fn efsm_only_stage() {
    let machine = Source::named("stack.ecl", PROTOCOL_STACK)
        .parse()
        .unwrap()
        .elaborate("prochdr")
        .unwrap()
        .split()
        .unwrap()
        .ir()
        .compile(&CompileOptions::default())
        .unwrap();
    machine.validate().unwrap();
    assert!(machine.efsm().states.len() >= 3);
}

/// The acceptance walk: parse once; split under both strategies;
/// generate EFSM + C + Verilog — all without re-parsing.
#[test]
fn one_parse_feeds_efsm_c_and_verilog() {
    let parsed = Source::named("stack.ecl", PROTOCOL_STACK).parse().unwrap();
    let elaborated = parsed.elaborate("toplevel").unwrap();
    for strategy in [SplitStrategy::MaxEsterel, SplitStrategy::MinEsterel] {
        let machine = elaborated
            .split_with(strategy)
            .unwrap()
            .ir()
            .compile(&Default::default())
            .unwrap();
        let artifacts = Artifacts::emit(&machine).unwrap();
        assert!(artifacts.c().contains("toplevel"));
        // The stack has a data part, so no hardware option — but the
        // Verilog question is still answerable per design.
        assert!(artifacts.verilog().is_none());
    }
    // A pure-control design from the same API has the hardware option.
    let hw = Source::new(
        "module ctl(input pure go, output pure done) {
           while (1) { await (go); emit (done); } }",
    )
    .finish("ctl")
    .unwrap();
    assert!(Artifacts::emit(&hw).unwrap().verilog().is_some());
}

fn design_fingerprint(d: &Design, m: &Efsm) -> (String, Vec<String>, String) {
    (
        d.entry.clone(),
        d.program()
            .signals()
            .iter()
            .map(|s| s.name.clone())
            .collect(),
        m.stats().to_string(),
    )
}

/// Workspace over ≥3 entry modules: parallel batch compilation returns
/// per-module results identical to sequential compilation, from one
/// shared parse.
#[test]
fn workspace_parallel_matches_sequential() {
    let jobs = [
        ("stack.ecl", "assemble"),
        ("stack.ecl", "checkcrc"),
        ("stack.ecl", "prochdr"),
        ("stack.ecl", "toplevel"),
        ("pager.ecl", "pager"),
    ];

    // Parallel batch.
    let mut ws_par = Workspace::new();
    ws_par.add_source("stack.ecl", PROTOCOL_STACK);
    ws_par.add_source("pager.ecl", VOICE_PAGER);
    let par: Vec<_> = ws_par
        .compile_all(&jobs)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    let par_machines: Vec<_> = ws_par
        .machine_all(&jobs)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();

    // Sequential reference.
    let mut ws_seq = Workspace::new();
    ws_seq.add_source("stack.ecl", PROTOCOL_STACK);
    ws_seq.add_source("pager.ecl", VOICE_PAGER);
    let seq: Vec<_> = jobs
        .iter()
        .map(|(n, e)| ws_seq.compile(n, e).unwrap())
        .collect();
    let seq_machines: Vec<_> = jobs
        .iter()
        .map(|(n, e)| ws_seq.machine(n, e).unwrap())
        .collect();

    for i in 0..jobs.len() {
        assert_eq!(
            design_fingerprint(&par[i], &par_machines[i]),
            design_fingerprint(&seq[i], &seq_machines[i]),
            "job {i} diverged between parallel and sequential"
        );
    }

    // Each source was parsed exactly once in the parallel session.
    let stats = ws_par.cache_stats();
    assert_eq!(stats.parse_misses, 2, "{stats:?}");
}

/// Per-job failures carry span-annotated diagnostics; sibling jobs in
/// the same batch still succeed.
#[test]
fn workspace_batch_isolates_failures() {
    let mut ws = Workspace::new();
    ws.add_source("stack.ecl", PROTOCOL_STACK);
    ws.add_source(
        "broken.ecl",
        "module bad(input pure a) { while (1) { emit (a); } }",
    );
    let results = ws.compile_all(&[
        ("stack.ecl", "toplevel"),
        ("broken.ecl", "bad"),
        ("stack.ecl", "assemble"),
    ]);
    assert!(results[0].is_ok());
    let err = results[1].as_ref().unwrap_err();
    // `bad` emits its own input: rejected at elaboration with a
    // readable, stage-tagged message.
    assert_eq!(err.stage(), Stage::Elaborate);
    assert!(err.to_string().contains("emitted"), "{err}");
    assert!(results[2].is_ok());
}

/// Batch codegen over a workspace session (emit_c / emit_verilog per
/// design).
#[test]
fn workspace_batch_codegen() {
    let mut ws = Workspace::new();
    ws.add_source("stack.ecl", PROTOCOL_STACK);
    let jobs = [
        ("stack.ecl", "assemble"),
        ("stack.ecl", "checkcrc"),
        ("stack.ecl", "prochdr"),
    ];
    let cs = ws.emit_c_all(&jobs);
    assert_eq!(cs.len(), 3);
    for (i, c) in cs.iter().enumerate() {
        let c = c.as_ref().unwrap();
        assert!(c.contains(jobs[i].1), "C for {} names it", jobs[i].1);
    }
    // The stack modules are data-dominated: no hardware option, and
    // the batch says so per design instead of failing wholesale.
    let vs = ws.emit_verilog_all(&jobs);
    assert!(vs.iter().all(|v| v.is_err()));
    // Everything above reused the session's single parse.
    assert_eq!(ws.cache_stats().parse_misses, 1);
}

/// The legacy facade still works and returns the unified error type.
#[test]
fn legacy_compiler_shim_still_works() {
    let d = Compiler::default()
        .compile_str(PROTOCOL_STACK, "toplevel")
        .unwrap();
    assert_eq!(d.entry, "toplevel");
    let e = Compiler::default()
        .compile_str(PROTOCOL_STACK, "nope")
        .unwrap_err();
    assert_eq!(e.stage(), Stage::Elaborate);
}
