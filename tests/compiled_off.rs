//! Walker-forced smoke: `set_backend(Backend::Walker)` forces the
//! s-graph walker and the tree-walking data interpreter on the whole
//! reaction path, and the run must be observationally identical to the
//! default `Backend::Compiled` run — emitted sets per instant,
//! emission counts, monitor verdicts and the fuel-derived kernel cycle
//! charges. CI runs this as a dedicated `compiled-off` pass so the
//! walker (the demotion/differential reference) stays exercised and
//! green.
//!
//! The suite also pins the fusion acceptance criterion: on both
//! shipped designs every state fuses and every data hook compiles
//! (`coverage().fully_fused()`), and a telemetry-counted compiled run
//! takes *zero* walker fallbacks — no s-graph steps inside an instant.

use ecl_observe::{synthesize_all, Monitor};
use efsm::{Backend, BitSet};
use sim::designs::{PROTOCOL_STACK, VOICE_PAGER};
use sim::runner::{AsyncRunner, Runner};
use sim::tb::{PacketTb, PagerTb};
use std::sync::{Arc, Mutex, MutexGuard};

/// The telemetry registry is process-global; tests that reset and read
/// it must not overlap.
static LOCK: Mutex<()> = Mutex::new(());

fn locked() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn runner(designs: Vec<ecl_core::Design>) -> AsyncRunner {
    AsyncRunner::new(
        designs,
        &Default::default(),
        Default::default(),
        Default::default(),
    )
    .expect("runner builds")
}

fn stack_events() -> Vec<sim::tb::InstantEvents> {
    let mut ev = PacketTb {
        packets: 40,
        corrupt_every: 0,
        reset_every: 0,
        seed: 1999,
    }
    .events();
    ev.truncate(2000);
    ev
}

fn pager_events() -> Vec<sim::tb::InstantEvents> {
    let mut ev = PagerTb {
        rounds: 30,
        frames: 4,
        seed: 7,
    }
    .events();
    ev.truncate(2000);
    ev
}

fn walker_matches_compiled(src: &str, entry: &str, events: &[sim::tb::InstantEvents]) {
    let design = ecl_core::Compiler::default()
        .compile_str(src, entry)
        .expect("design compiles");
    let prog = ecl_syntax::parse_str(src).expect("source parses");
    let specs = synthesize_all(&prog).expect("observers synthesize");

    let mut compiled = runner(vec![design.clone()]);
    assert_eq!(
        compiled.backend(),
        Backend::Compiled,
        "compiled is the default backend"
    );
    // The fusion acceptance criterion: every state of the shipped
    // design fuses into row scan + residual program and every data
    // hook compiles to bytecode — nothing is left for the walker.
    let cov = compiled.coverage();
    assert!(
        cov.fully_fused(),
        "`{entry}` should fuse completely: {}/{} states, {}/{} hooks",
        cov.fused_states(),
        cov.states(),
        cov.vm_compiled(),
        cov.vm_total()
    );
    assert!(cov.states() > 0 && cov.vm_total() > 0);
    let mut walker = runner(vec![design]);
    walker.set_backend(Backend::Walker);
    assert_eq!(walker.backend(), Backend::Walker);

    let bind = |r: &AsyncRunner| -> Vec<Monitor> {
        specs
            .iter()
            .map(|s| {
                let mut m = Monitor::new(Arc::clone(s));
                m.bind(r.sig_table());
                m
            })
            .collect()
    };
    let mut mons_c = bind(&compiled);
    let mut mons_w = bind(&walker);

    let (mut out_c, mut out_w) = (BitSet::new(), BitSet::new());
    let mut present = BitSet::new();
    let mut ev_bits = BitSet::new();
    for (step, ev) in events.iter().enumerate() {
        ev_bits.clear();
        for (name, v) in &ev.valued {
            let id = compiled
                .sig_table()
                .lookup(name)
                .expect("valued input known");
            compiled
                .set_input_i64_id(id, *v)
                .expect("input on compiled run");
            walker
                .set_input_i64_id(id, *v)
                .expect("input on walker run");
            ev_bits.insert(id.bit());
        }
        for name in ev.pure.iter() {
            if let Some(id) = compiled.sig_table().lookup(name) {
                ev_bits.insert(id.bit());
            }
        }
        compiled
            .instant_ids(&ev_bits, &mut out_c)
            .expect("compiled instant");
        walker
            .instant_ids(&ev_bits, &mut out_w)
            .expect("walker instant");
        assert_eq!(out_c, out_w, "emitted sets diverged at instant {step}");
        present.clear();
        present.union_with(&ev_bits);
        present.union_with(&out_c);
        for (mon_c, mon_w) in mons_c.iter_mut().zip(mons_w.iter_mut()) {
            mon_c.step_ids(step as u64, &present, compiled.sig_table());
            mon_w.step_ids(step as u64, &present, walker.sig_table());
            assert_eq!(
                mon_c.verdict(),
                mon_w.verdict(),
                "observer verdicts diverged at instant {step}"
            );
        }
    }
    assert_eq!(
        compiled.counts(),
        walker.counts(),
        "emission counts diverged"
    );
    // Cycle parity: fused programs charge the walker's exact
    // nodes-visited and fuel, so the kernels billed identical cycles.
    assert_eq!(
        compiled.kernel().task_cycles,
        walker.kernel().task_cycles,
        "cycle charges diverged"
    );
}

#[test]
fn stack_walker_matches_compiled() {
    let _g = locked();
    walker_matches_compiled(PROTOCOL_STACK, "toplevel", &stack_events());
}

#[test]
fn pager_walker_matches_compiled() {
    let _g = locked();
    walker_matches_compiled(VOICE_PAGER, "pager", &pager_events());
}

/// Under `Backend::Compiled`, no reaction ever reaches the s-graph
/// walker: the telemetry-counted run takes zero `table.walk_fallbacks`
/// on both shipped designs while resolving every step in the fused
/// backend.
#[test]
fn compiled_run_takes_zero_walker_steps() {
    let _g = locked();
    let was = ecl_telemetry::enabled();
    ecl_telemetry::set_enabled(true);
    for (src, entry, events) in [
        (PROTOCOL_STACK, "toplevel", stack_events()),
        (VOICE_PAGER, "pager", pager_events()),
    ] {
        let design = ecl_core::Compiler::default()
            .compile_str(src, entry)
            .expect("design compiles");
        ecl_telemetry::metrics::reset_all();
        let mut r = runner(vec![design]);
        r.run_events(&events, |_, _| {}).expect("run succeeds");
        let c = |name: &str| {
            ecl_telemetry::metrics::counters()
                .into_iter()
                .find(|c| c.name() == name)
                .map_or(0, |c| c.get())
        };
        assert!(c("table.steps") > 0, "`{entry}` took no table steps");
        assert_eq!(
            c("table.walk_fallbacks"),
            0,
            "`{entry}` fell back to the s-graph walker under Backend::Compiled"
        );
    }
    ecl_telemetry::set_enabled(was);
}
