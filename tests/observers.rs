//! Acceptance tests for `ecl-observe`: the observers shipped with the
//! two evaluated designs pass on clean runs and catch deliberately
//! seeded violations — with the *same failing instant* on the
//! interpreter-backed and the RTOS-backed runners, monolithic and
//! partitioned alike.

use ecl_core::Compiler;
use ecl_observe::{check_async, check_interp, synthesize_all, MonitorSpec, Verdict};
use sim::designs::{PROTOCOL_STACK, VOICE_PAGER};
use sim::tb::{InstantEvents, PacketTb, PagerTb};
use std::sync::Arc;

fn specs_of(src: &str) -> Vec<Arc<MonitorSpec>> {
    synthesize_all(&ecl_syntax::parse_str(src).expect("design parses")).expect("observers compile")
}

fn fail_instant(v: &Verdict) -> Option<u64> {
    match v {
        Verdict::Fail(f) => Some(f.instant),
        _ => None,
    }
}

#[test]
fn stack_ships_at_least_two_observers() {
    let specs = specs_of(PROTOCOL_STACK);
    assert!(specs.len() >= 2, "got {}", specs.len());
    let names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
    assert!(names.contains(&"crc_watch"), "{names:?}");
    assert!(names.contains(&"forward_watch"), "{names:?}");
}

#[test]
fn pager_ships_at_least_two_observers() {
    let specs = specs_of(VOICE_PAGER);
    assert!(specs.len() >= 2, "got {}", specs.len());
}

#[test]
fn stack_clean_run_passes_on_all_runners() {
    let specs = specs_of(PROTOCOL_STACK);
    let ev = PacketTb {
        packets: 3,
        corrupt_every: 0,
        reset_every: 0,
        seed: 1999,
    }
    .events();
    let mono = Compiler::default()
        .compile_str(PROTOCOL_STACK, "toplevel")
        .unwrap();
    let r = check_interp(&mono, &ev, &specs, 0).unwrap();
    assert!(r.report.all_pass(), "interp:\n{}", r.report);
    let r = check_async(vec![mono.clone()], &ev, &specs, 0).unwrap();
    assert!(r.report.all_pass(), "async mono:\n{}", r.report);
    let parts = Compiler::default()
        .partition(PROTOCOL_STACK, "toplevel")
        .unwrap();
    let r = check_async(parts, &ev, &specs, 0).unwrap();
    assert!(r.report.all_pass(), "async 3-task:\n{}", r.report);
}

/// The seeded violation: the second packet carries a corrupted CRC
/// byte. `checkcrc` reports the failure, `prochdr`'s scan is killed,
/// and `forward_watch` ("every packet forwarded within 8 instants")
/// must fail — at the same instant everywhere.
#[test]
fn stack_seeded_crc_corruption_is_caught_on_all_runners() {
    let specs = specs_of(PROTOCOL_STACK);
    let ev = PacketTb {
        packets: 2,
        corrupt_every: 2, // corrupts packet #2 only
        reset_every: 0,
        seed: 1999,
    }
    .events();
    // Packet 2's last byte arrives at instant 129 (1 idle + 64 bytes +
    // 1 gap + 64 bytes); the 8-instant forwarding window closes at 137.
    const EXPECTED_FAIL: u64 = 137;

    let mono = Compiler::default()
        .compile_str(PROTOCOL_STACK, "toplevel")
        .unwrap();
    let parts = Compiler::default()
        .partition(PROTOCOL_STACK, "toplevel")
        .unwrap();
    let runs = [
        ("interp", check_interp(&mono, &ev, &specs, 0).unwrap()),
        (
            "async mono",
            check_async(vec![mono.clone()], &ev, &specs, 0).unwrap(),
        ),
        ("async 3-task", check_async(parts, &ev, &specs, 0).unwrap()),
    ];
    for (label, run) in &runs {
        let fw = run.report.verdict("forward_watch").unwrap();
        assert_eq!(
            fail_instant(fw),
            Some(EXPECTED_FAIL),
            "{label}: forward_watch = {fw}"
        );
        // The CRC-verdict plumbing itself stays sound: a corrupted
        // packet still gets its (negative) verdict in time.
        assert_eq!(
            run.report.verdict("crc_watch"),
            Some(&Verdict::Pass),
            "{label}"
        );
        assert_eq!(
            run.report.verdict("liveness_watch"),
            Some(&Verdict::Pass),
            "{label}"
        );
    }
}

#[test]
fn pager_clean_run_passes_on_all_runners() {
    let specs = specs_of(VOICE_PAGER);
    let ev = PagerTb {
        rounds: 1,
        frames: 2,
        seed: 7,
    }
    .events();
    let mono = Compiler::default()
        .compile_str(VOICE_PAGER, "pager")
        .unwrap();
    let r = check_interp(&mono, &ev, &specs, 0).unwrap();
    assert!(r.report.all_pass(), "interp:\n{}", r.report);
    let r = check_async(vec![mono.clone()], &ev, &specs, 0).unwrap();
    assert!(r.report.all_pass(), "async mono:\n{}", r.report);
    let parts = Compiler::default().partition(VOICE_PAGER, "pager").unwrap();
    let r = check_async(parts, &ev, &specs, 0).unwrap();
    assert!(r.report.all_pass(), "async 3-task:\n{}", r.report);
}

/// The pager's seeded violation: recording starts but the sample
/// stream is cut after two samples, so no full frame is ever framed —
/// `record_watch` must fail when its 6-instant window closes.
#[test]
fn pager_truncated_recording_is_caught_on_all_runners() {
    let specs = specs_of(VOICE_PAGER);
    let mut ev = vec![InstantEvents::default()];
    ev.push(InstantEvents {
        pure: vec!["rec_on".into()],
        valued: vec![],
    });
    for v in [10, 20] {
        ev.push(InstantEvents {
            pure: vec![],
            valued: vec![("sample".into(), v)],
        });
    }
    for _ in 0..8 {
        ev.push(InstantEvents::default());
    }
    // rec_on at instant 1; window of 6 closes at instant 7.
    const EXPECTED_FAIL: u64 = 7;

    let mono = Compiler::default()
        .compile_str(VOICE_PAGER, "pager")
        .unwrap();
    let parts = Compiler::default().partition(VOICE_PAGER, "pager").unwrap();
    let runs = [
        ("interp", check_interp(&mono, &ev, &specs, 0).unwrap()),
        (
            "async mono",
            check_async(vec![mono.clone()], &ev, &specs, 0).unwrap(),
        ),
        ("async 3-task", check_async(parts, &ev, &specs, 0).unwrap()),
    ];
    for (label, run) in &runs {
        let rw = run.report.verdict("record_watch").unwrap();
        assert_eq!(
            fail_instant(rw),
            Some(EXPECTED_FAIL),
            "{label}: record_watch = {rw}"
        );
        assert_eq!(
            run.report.verdict("playback_watch"),
            Some(&Verdict::Pass),
            "{label}"
        );
    }
}

/// The recorded trace replays to the same verdicts the online run
/// produced — for the violating workload, across monitors.
#[test]
fn stack_violation_verdicts_survive_trace_replay() {
    let specs = specs_of(PROTOCOL_STACK);
    let ev = PacketTb {
        packets: 2,
        corrupt_every: 2,
        reset_every: 0,
        seed: 1999,
    }
    .events();
    let mono = Compiler::default()
        .compile_str(PROTOCOL_STACK, "toplevel")
        .unwrap();
    let run = check_interp(&mono, &ev, &specs, 0).unwrap();
    for spec in &specs {
        let mut offline = ecl_observe::Monitor::new(Arc::clone(spec));
        let off = offline.replay(&run.trace);
        assert_eq!(run.report.verdict(&spec.name), Some(&off), "{}", spec.name);
    }
}
