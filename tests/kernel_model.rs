//! Property test: the kernel's loss accounting against a reference
//! model.
//!
//! The model re-implements the 1-place-mailbox delivery rules in the
//! most naive way possible (sets of pending signals, one counter per
//! task) and is driven with the same random post/dispatch sequence as
//! the real [`rtk::Kernel`]. `events_lost` must match the model
//! *exactly* — totals and per-task attribution — both with the
//! overwrite rule alone and under an injected mailbox-pressure cap,
//! where every rejection must also appear in the injection stats.

use efsm::BitSet;
use proptest::prelude::*;
use rtk::{Kernel, KernelParams, TaskId};
use std::collections::BTreeSet;
use std::sync::Mutex;

/// The fault plan is process-global; serialize the cases of both
/// properties (and any concurrent fault-using test in this binary).
static LOCK: Mutex<()> = Mutex::new(());

const NTASKS: usize = 3;
const NSIGS: u32 = 6;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug, Clone, Copy)]
enum Op {
    External(u32),
    Internal(usize, u32),
    Dispatch(usize),
}

/// Derive a watch topology and an op sequence from one seed.
fn scenario(seed: u64, len: usize) -> (Vec<Vec<u32>>, Vec<Op>) {
    let mut s = seed;
    let watches: Vec<Vec<u32>> = (0..NTASKS)
        .map(|_| {
            let mask = splitmix(&mut s);
            (0..NSIGS).filter(|b| mask >> b & 1 == 1).collect()
        })
        .collect();
    let ops = (0..len)
        .map(|_| match splitmix(&mut s) % 4 {
            0 | 1 => Op::External((splitmix(&mut s) % u64::from(NSIGS)) as u32),
            2 => Op::Internal(
                splitmix(&mut s) as usize % NTASKS,
                (splitmix(&mut s) % u64::from(NSIGS)) as u32,
            ),
            _ => Op::Dispatch(splitmix(&mut s) as usize % NTASKS),
        })
        .collect();
    (watches, ops)
}

/// The naive reference: pending = set of signals, loss on overwrite
/// (already pending) or on a full capped mailbox.
struct Model {
    watches: Vec<Vec<u32>>,
    pending: Vec<BTreeSet<u32>>,
    lost: Vec<u64>,
    total_lost: u64,
    cap_rejections: u64,
    cap: Option<usize>,
}

impl Model {
    fn new(watches: Vec<Vec<u32>>, cap: Option<usize>) -> Model {
        Model {
            watches,
            pending: vec![BTreeSet::new(); NTASKS],
            lost: vec![0; NTASKS],
            total_lost: 0,
            cap_rejections: 0,
            cap,
        }
    }

    fn post(&mut self, from: Option<usize>, sig: u32) {
        for t in 0..NTASKS {
            if Some(t) == from || !self.watches[t].contains(&sig) {
                continue;
            }
            if self.pending[t].contains(&sig) {
                self.lost[t] += 1;
                self.total_lost += 1;
                continue;
            }
            if self.cap.is_some_and(|c| self.pending[t].len() >= c) {
                self.lost[t] += 1;
                self.total_lost += 1;
                self.cap_rejections += 1;
                continue;
            }
            self.pending[t].insert(sig);
        }
    }

    fn step(&mut self, op: Op) {
        match op {
            Op::External(sig) => self.post(None, sig),
            Op::Internal(from, sig) => {
                // The kernel skips the whole post when nobody watches.
                if self.watches.iter().any(|w| w.contains(&sig)) {
                    self.post(Some(from), sig);
                }
            }
            Op::Dispatch(t) => self.pending[t].clear(),
        }
    }
}

fn run_both(seed: u64, len: usize, cap: Option<usize>) -> (Kernel, Model) {
    let (watches, ops) = scenario(seed, len);
    let mut k = Kernel::new(KernelParams::default());
    for (i, w) in watches.iter().enumerate() {
        k.add_task(
            format!("t{i}"),
            (NTASKS - i) as u8,
            w.iter().map(|s| *s as usize).collect(),
        );
    }
    let mut model = Model::new(watches, cap);
    let mut scratch = BitSet::new();
    for op in ops {
        match op {
            Op::External(sig) => k.post_external(sig),
            Op::Internal(from, sig) => k.post_internal(TaskId(from), sig),
            Op::Dispatch(t) => k.dispatch_into(TaskId(t), &mut scratch),
        }
        model.step(op);
    }
    (k, model)
}

fn check(k: &Kernel, model: &Model) -> Result<(), TestCaseError> {
    prop_assert_eq!(k.events_lost, model.total_lost, "total events_lost");
    let by_task = k.events_lost_by_task();
    prop_assert_eq!(by_task.len(), NTASKS);
    for (id, lost) in by_task {
        prop_assert_eq!(lost, model.lost[id.0], "losses of task {}", id.0);
    }
    let sum: u64 = model.lost.iter().sum();
    prop_assert_eq!(k.events_lost, sum, "total is the sum of per-task losses");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Faults off: overwrite is the only loss rule, and the kernel
    /// agrees with the model event for event.
    fn overwrite_accounting_matches_model(
        seed in 0u64..1_000_000_000,
        len in 1usize..160,
    ) {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        prop_assert!(!ecl_faults::enabled(), "a fault plan leaked into this test");
        let (k, model) = run_both(seed, len, None);
        check(&k, &model)?;
    }

    /// Mailbox pressure: with a capacity cap injected, rejected
    /// deliveries are lost exactly like overwrites (total and
    /// attribution still match the model) and every rejection is
    /// visible in the injection stats.
    fn mailbox_cap_accounting_matches_model(
        seed in 0u64..1_000_000_000,
        len in 1usize..160,
        cap in 1usize..4,
    ) {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        ecl_faults::install(ecl_faults::FaultPlan {
            mailbox_cap: Some(cap),
            ..ecl_faults::FaultPlan::seeded(seed)
        });
        let (k, model) = run_both(seed, len, Some(cap));
        let stats = ecl_faults::uninstall().expect("plan was installed");
        check(&k, &model)?;
        prop_assert_eq!(
            stats.mailbox_rejections,
            model.cap_rejections,
            "every cap rejection is accounted as an injection"
        );
    }
}
