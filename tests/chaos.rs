//! Chaos differential suite: deterministic fault injection must be
//! *reproducible* (same seed ⇒ bit-identical traces, emissions and
//! monitor verdicts across `Backend::Walker` and `Backend::Compiled`),
//! *inert when off* (an all-zero plan changes nothing), and
//! *contained* (an injected panic poisons one session, never the
//! process; watchdog trips conclude `Inconclusive`, not `Err`).
//!
//! The fault plan is process-global, so every test takes the same
//! lock — libtest's concurrent threads must not overlap two plans.

use ecl_core::{Compiler, Design};
use ecl_faults::FaultPlan;
use ecl_observe::{run_sessions, Monitor, MonitorReport, SessionOutcome, Verdict};
use efsm::{Backend, BitSet};
use sim::designs::PROTOCOL_STACK;
use sim::runner::{AsyncRunner, InterpRunner, Runner, SimErrorKind, WatchdogBudget};
use sim::tb::{InstantEvents, PacketTb};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

fn locked() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn mono() -> Design {
    Compiler::default()
        .compile_str(PROTOCOL_STACK, "toplevel")
        .expect("protocol stack compiles")
}

fn partitioned() -> Vec<Design> {
    Compiler::default()
        .partition(PROTOCOL_STACK, "toplevel")
        .expect("protocol stack partitions")
}

fn specs() -> Vec<Arc<ecl_observe::MonitorSpec>> {
    ecl_observe::synthesize_all(&ecl_syntax::parse_str(PROTOCOL_STACK).unwrap()).unwrap()
}

fn events() -> Vec<InstantEvents> {
    PacketTb {
        packets: 5,
        corrupt_every: 0,
        reset_every: 0,
        seed: 7,
    }
    .events()
}

/// Everything a chaos run must reproduce bit-for-bit.
#[derive(Debug, PartialEq)]
struct RunOut {
    vcd: String,
    counts: HashMap<String, u64>,
    verdicts: Vec<(String, Verdict)>,
    events_lost: u64,
    lost_by_task: Vec<(rtk::TaskId, u64)>,
}

/// One monitored async run on the chosen backend, trace recorded.
/// Installs nothing — callers install the plan (or not) first.
fn run_async(
    designs: Vec<Design>,
    specs: &[Arc<ecl_observe::MonitorSpec>],
    events: &[InstantEvents],
    backend: Backend,
) -> (RunOut, u32) {
    let mut r = AsyncRunner::new(
        designs,
        &Default::default(),
        Default::default(),
        Default::default(),
    )
    .expect("runner builds");
    r.set_backend(backend);
    r.enable_trace(0);
    let mut monitors: Vec<Monitor> = specs
        .iter()
        .map(|s| {
            let mut m = Monitor::new(Arc::clone(s));
            m.bind(r.sig_table());
            m
        })
        .collect();
    r.run_events(events, |i, p| {
        for m in &mut monitors {
            m.step_present(i, p);
        }
    })
    .expect("chaos plans here never make the run fail hard");
    let demoted = r.demoted_states();
    (
        RunOut {
            vcd: r.take_trace().expect("trace recorded").to_vcd("chaos"),
            counts: r.counts(),
            verdicts: MonitorReport::conclude(monitors).verdicts,
            events_lost: r.kernel().events_lost,
            lost_by_task: r.kernel().events_lost_by_task(),
        },
        demoted,
    )
}

/// Fixed seed ⇒ byte-identical injected traces, emission counts, loss
/// accounting and monitor verdicts across walker ≡ compiled. The
/// plan exercises every cross-backend site class at once: keyed
/// external drop/delay and fuel squeezes, stream internal drop/delay
/// and input corruption.
#[test]
fn same_seed_is_bit_identical_across_backends() {
    let _g = locked();
    let plan = FaultPlan {
        drop_external: 0.15,
        delay_external: 0.10,
        max_delay: 3,
        drop_internal: 0.10,
        delay_internal: 0.10,
        corrupt_input: 0.20,
        fuel_starve: 0.10,
        starved_fuel: 100_000,
        ..FaultPlan::seeded(2027)
    };
    let (sp, ev) = (specs(), events());
    let mut outs = Vec::new();
    let mut stats = Vec::new();
    for backend in [Backend::Walker, Backend::Compiled] {
        ecl_faults::install(plan.clone());
        outs.push(run_async(partitioned(), &sp, &ev, backend).0);
        stats.push(ecl_faults::uninstall().expect("plan installed"));
    }
    assert!(
        stats[0].total() > 0,
        "the chaos plan injected nothing: {:?}",
        stats[0]
    );
    assert_eq!(
        outs[0], outs[1],
        "walker and compiled diverged under faults"
    );
    // The injection *decisions* replay identically too: every site's
    // count matches across backends (no vm/table demotion sites are
    // armed in this plan).
    assert_eq!(stats[0], stats[1]);
}

/// The kernel-free fault sites (external drop/delay, corruption, fuel)
/// replay identically on the constructive interpreter and the
/// RTOS-backed runner: same per-instant present sets, same emission
/// counts, same verdicts.
#[test]
fn interp_and_async_agree_under_injected_faults() {
    let _g = locked();
    let plan = FaultPlan {
        drop_external: 0.20,
        delay_external: 0.10,
        max_delay: 2,
        corrupt_input: 0.25,
        fuel_starve: 0.10,
        starved_fuel: 100_000,
        ..FaultPlan::seeded(4242)
    };
    let (design, sp, ev) = (mono(), specs(), events());
    let mut presents: Vec<Vec<Vec<String>>> = Vec::new();
    let mut verdicts = Vec::new();
    let mut counts = Vec::new();
    // Interp run.
    ecl_faults::install(plan.clone());
    {
        let mut r = InterpRunner::new(&design).expect("interp builds");
        let mut monitors: Vec<Monitor> = sp
            .iter()
            .map(|s| {
                let mut m = Monitor::new(Arc::clone(s));
                m.bind(r.sig_table());
                m
            })
            .collect();
        let mut log = Vec::new();
        r.run_events(&ev, |i, p| {
            let mut names = p.to_names();
            names.sort_unstable();
            log.push(names);
            for m in &mut monitors {
                m.step_present(i, p);
            }
        })
        .expect("interp run");
        presents.push(log);
        verdicts.push(MonitorReport::conclude(monitors).verdicts);
        counts.push(r.counts());
    }
    let s1 = ecl_faults::uninstall().unwrap();
    // Async run on the same (monolithic) design.
    ecl_faults::install(plan);
    {
        let mut r = AsyncRunner::new(
            vec![design.clone()],
            &Default::default(),
            Default::default(),
            Default::default(),
        )
        .expect("async builds");
        let mut monitors: Vec<Monitor> = sp
            .iter()
            .map(|s| {
                let mut m = Monitor::new(Arc::clone(s));
                m.bind(r.sig_table());
                m
            })
            .collect();
        let mut log = Vec::new();
        r.run_events(&ev, |i, p| {
            let mut names = p.to_names();
            names.sort_unstable();
            log.push(names);
            for m in &mut monitors {
                m.step_present(i, p);
            }
        })
        .expect("async run");
        presents.push(log);
        verdicts.push(MonitorReport::conclude(monitors).verdicts);
        counts.push(r.counts());
    }
    let s2 = ecl_faults::uninstall().unwrap();
    assert!(s1.total() > 0, "plan injected nothing: {s1:?}");
    assert_eq!(s1, s2, "injection decisions diverged between runners");
    assert_eq!(presents[0], presents[1], "present sets diverged");
    assert_eq!(counts[0], counts[1], "emission counts diverged");
    assert_eq!(verdicts[0], verdicts[1], "verdicts diverged");
}

/// Backend demotion (VM hooks and fused states latched onto the
/// walker) is semantics-preserving: a `Backend::Compiled` run where
/// *every* compiled program is demoted is byte-identical to the clean
/// compiled baseline — and to a clean `Backend::Walker` run, the very
/// path demotion falls back onto.
#[test]
fn demotion_preserves_semantics_bit_for_bit() {
    let _g = locked();
    let (sp, ev) = (specs(), events());
    let (baseline, _) = run_async(partitioned(), &sp, &ev, Backend::Compiled);
    let (walker_baseline, _) = run_async(partitioned(), &sp, &ev, Backend::Walker);
    assert_eq!(
        baseline, walker_baseline,
        "compiled and walker clean runs diverged"
    );
    ecl_faults::install(FaultPlan {
        vm_fault: 1.0,
        table_fault: 1.0,
        ..FaultPlan::seeded(11)
    });
    let (demoted_run, demoted_states) = run_async(partitioned(), &sp, &ev, Backend::Compiled);
    let stats = ecl_faults::uninstall().unwrap();
    assert!(stats.vm_demotions > 0, "no VM hooks demoted: {stats:?}");
    assert!(
        stats.table_demotions > 0,
        "no fused states demoted: {stats:?}"
    );
    assert!(demoted_states > 0, "runner latched no demoted states");
    assert_eq!(
        baseline, demoted_run,
        "demotion changed observable behavior"
    );
}

/// An installed-but-all-zero plan injects nothing and perturbs
/// nothing: byte-identical to a run with the switch off entirely.
#[test]
fn switched_off_and_zero_rate_plans_are_inert() {
    let _g = locked();
    let (sp, ev) = (specs(), events());
    assert!(!ecl_faults::enabled(), "no plan should be active");
    let (off, _) = run_async(partitioned(), &sp, &ev, Backend::Compiled);
    ecl_faults::install(FaultPlan::seeded(99));
    let (zero, _) = run_async(partitioned(), &sp, &ev, Backend::Compiled);
    let stats = ecl_faults::uninstall().unwrap();
    assert_eq!(stats.total(), 0, "a zero-rate plan injected: {stats:?}");
    assert_eq!(off, zero, "an inert plan changed the run");
    let (off2, _) = run_async(partitioned(), &sp, &ev, Backend::Compiled);
    assert_eq!(off, off2, "faults-off runs are not reproducible");
}

/// Mailbox-pressure losses are kernel-semantic: they add up exactly
/// (total = Σ per-task) and are attributed to the rejecting task,
/// while injected internal drops never touch `events_lost` (they are
/// tracked by the injection stats instead).
#[test]
fn loss_accounting_stays_exact_under_pressure() {
    let _g = locked();
    let (sp, ev) = (specs(), events());
    ecl_faults::install(FaultPlan {
        mailbox_cap: Some(1),
        drop_internal: 0.25,
        ..FaultPlan::seeded(7)
    });
    let (out, _) = run_async(partitioned(), &sp, &ev, Backend::Compiled);
    let stats = ecl_faults::uninstall().unwrap();
    let per_task: u64 = out.lost_by_task.iter().map(|(_, n)| n).sum();
    assert_eq!(
        out.events_lost, per_task,
        "kernel total and per-task attribution disagree"
    );
    // Injected drops are accounted as injections, not mailbox losses:
    // a second identical run with the cap but without internal drops
    // loses at least as many events to the mailbox (drops only remove
    // deliveries that could have overflowed it).
    assert!(
        stats.dropped_internal > 0,
        "drop site never fired: {stats:?}"
    );
    ecl_faults::install(FaultPlan {
        mailbox_cap: Some(1),
        ..FaultPlan::seeded(7)
    });
    let (cap_only, _) = run_async(partitioned(), &sp, &ev, Backend::Compiled);
    ecl_faults::uninstall();
    assert!(
        cap_only.events_lost >= out.events_lost,
        "dropping deliveries cannot increase mailbox losses \
         (cap-only {} < cap+drops {})",
        cap_only.events_lost,
        out.events_lost
    );
}

/// A watchdog budget trip ends the run as `Inconclusive` — an
/// `Ok(MonitoredRun)` whose still-running monitors did *not* pass —
/// on both runners.
#[test]
fn watchdog_trips_conclude_inconclusive() {
    let _g = locked();
    let (design, sp, ev) = (mono(), specs(), events());
    let wd = Some(WatchdogBudget {
        max_nodes: Some(0),
        max_fuel: None,
        max_wall_ns: None,
    });
    let run = ecl_observe::check_interp_with(&design, &ev, &sp, 0, wd).expect("inconclusive is Ok");
    assert!(run.report.any_inconclusive(), "{}", run.report);
    assert!(!run.report.all_pass(), "inconclusive must not pass");
    let run = ecl_observe::check_async_with(vec![design.clone()], &ev, &sp, 0, wd)
        .expect("inconclusive is Ok");
    assert!(run.report.any_inconclusive(), "{}", run.report);
    // A generous budget changes nothing: the clean run still passes.
    let wd = Some(WatchdogBudget {
        max_nodes: Some(u64::MAX),
        max_fuel: Some(u64::MAX),
        max_wall_ns: None,
    });
    let run = ecl_observe::check_interp_with(&design, &ev, &sp, 0, wd).expect("clean run");
    assert!(run.report.all_pass(), "{}", run.report);
}

/// An injected panic is contained at the session boundary: the
/// poisoned session reports `Poisoned`, its siblings in the same
/// batch complete normally, and the process never aborts.
#[test]
fn injected_panic_poisons_one_session_not_the_batch() {
    let _g = locked();
    let (design, sp, ev) = (mono(), specs(), events());
    assert!(ev.len() > 4, "testbench long enough to reach the panic");
    ecl_faults::install(FaultPlan {
        panic_at: Some(3),
        ..FaultPlan::seeded(3)
    });
    let mk = |d: Design, sp: Vec<Arc<ecl_observe::MonitorSpec>>, ev: Vec<InstantEvents>| {
        move || ecl_observe::check_interp_with(&d, &ev, &sp, 0, None)
    };
    let outcomes = run_sessions(vec![
        (
            "victim".to_string(),
            mk(design.clone(), sp.clone(), ev.clone()),
        ),
        (
            "sibling-1".to_string(),
            mk(design.clone(), sp.clone(), ev.clone()),
        ),
        (
            "sibling-2".to_string(),
            mk(design.clone(), sp.clone(), ev.clone()),
        ),
    ]);
    let stats = ecl_faults::uninstall().unwrap();
    assert_eq!(stats.panics, 1, "the panic site fires exactly once");
    assert!(
        matches!(&outcomes[0], SessionOutcome::Poisoned { msg } if msg.contains("injected panic")),
        "victim outcome: {:?}",
        outcomes[0]
    );
    for (i, o) in outcomes.iter().enumerate().skip(1) {
        let run = o.run().unwrap_or_else(|| panic!("sibling {i} died: {o:?}"));
        assert!(run.report.all_pass(), "sibling {i}: {}", run.report);
    }
}

/// A panic that unwinds through an instant leaves the runner poisoned:
/// the next instant is refused with a `Poisoned`-kind error instead of
/// continuing from torn state.
#[test]
fn poisoned_runner_refuses_further_instants() {
    let _g = locked();
    let design = mono();
    ecl_faults::install(FaultPlan {
        panic_at: Some(0),
        ..FaultPlan::seeded(0)
    });
    let mut r = InterpRunner::new(&design).expect("runner builds");
    let (ev, mut out) = (BitSet::new(), BitSet::new());
    let panicked = catch_unwind(AssertUnwindSafe(|| r.instant_ids(&ev, &mut out)));
    ecl_faults::uninstall();
    assert!(panicked.is_err(), "the injected panic must fire");
    assert!(r.is_poisoned(), "unwinding must latch the poison flag");
    let e = r
        .instant_ids(&ev, &mut out)
        .expect_err("poisoned runner must refuse");
    assert_eq!(e.kind, SimErrorKind::Poisoned);
}
