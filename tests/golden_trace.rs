//! Golden-trace stability: the VCD dump of the protocol-stack
//! testbench's opening window is committed and must stay
//! byte-for-byte identical. Any change to packet geometry, stimulus
//! seeding, elaboration naming, emission ordering or the VCD writer
//! shows up here first.
//!
//! Regenerate (after an *intentional* change) with:
//! `UPDATE_GOLDEN=1 cargo test --test golden_trace`.

use ecl_core::Compiler;
use sim::runner::{InterpRunner, Runner};
use sim::tb::PacketTb;

const GOLDEN_PATH: &str = "tests/golden/stack_head.vcd";
/// Opening window: idle + one full packet + inter-packet gap + enough
/// drain instants for the header scan to conclude (`addr_match`).
const INSTANTS: usize = 75;

fn dump_head() -> String {
    let design = Compiler::default()
        .compile_str(sim::designs::PROTOCOL_STACK, "toplevel")
        .expect("stack compiles");
    let mut runner = InterpRunner::new(&design).expect("runner");
    runner.enable_trace(0);
    let events = PacketTb {
        packets: 1,
        corrupt_every: 0,
        reset_every: 0,
        seed: 1999,
    }
    .events();
    runner
        .run_events(&events[..INSTANTS.min(events.len())], |_, _| {})
        .expect("run");
    runner
        .take_trace()
        .expect("trace enabled")
        .to_vcd("protocol_stack")
}

#[test]
fn stack_opening_window_vcd_is_stable() {
    let vcd = dump_head();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all("tests/golden").unwrap();
        std::fs::write(GOLDEN_PATH, &vcd).unwrap();
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file present (regenerate with UPDATE_GOLDEN=1)");
    assert_eq!(
        vcd, golden,
        "trace drifted from {GOLDEN_PATH}; if intentional, regenerate \
         with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_dump_is_reproducible_within_a_run() {
    assert_eq!(dump_head(), dump_head());
}
