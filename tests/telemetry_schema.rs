//! Golden test for the telemetry JSONL stream: everything the stack
//! emits through a sink must parse as one JSON object per line, carry
//! the versioned preamble (`schema`/`ts`/`run_id`/`event`), and
//! satisfy the per-kind required fields of
//! [`ecl_telemetry::schema::REQUIRED_FIELDS`].
//!
//! One test function on purpose: telemetry state (master switch, span
//! cadence, installed sink) is process-global, and libtest runs test
//! functions on concurrent threads — a second function toggling the
//! switch would race the captured stream.

use ecl_observe::check_interp;
use ecl_telemetry::schema::{parse, validate_line};
use ecl_telemetry::{install_sink, uninstall_sink, MemorySink, Run};
use efsm::BitSet;
use rtk::{Kernel, KernelParams};
use sim::designs::PROTOCOL_STACK;
use sim::tb::PacketTb;
use std::collections::BTreeSet;

#[test]
fn every_emitted_line_is_schema_valid_and_all_kinds_appear() {
    ecl_telemetry::set_enabled(true);
    // Short spans so a ~200-instant run emits several summaries.
    ecl_telemetry::set_span_every(50);
    let sink = MemorySink::new();
    install_sink(Box::new(sink.clone()));

    let specs =
        ecl_observe::synthesize_all(&ecl_syntax::parse_str(PROTOCOL_STACK).unwrap()).unwrap();
    let design = ecl_core::Compiler::default()
        .compile_str(PROTOCOL_STACK, "toplevel")
        .unwrap();

    // Clean monitored run: run_start/run_end bracket, spans, passing
    // final verdicts.
    let clean = PacketTb {
        packets: 3,
        corrupt_every: 0,
        reset_every: 0,
        seed: 1999,
    }
    .events();
    let run = Run::start("protocol_stack", "schema-test/clean");
    let n = clean.len() as u64;
    let r = check_interp(&design, &clean, &specs, 0).expect("clean run");
    run.end(n);
    assert!(r.report.all_pass(), "clean run must pass: {}", r.report);

    // Corrupted run: a CRC byte is flipped, so a monitor latches a
    // violation — the `verdict` kind with `"verdict": "fail"`.
    let corrupted = PacketTb {
        packets: 2,
        corrupt_every: 2,
        reset_every: 0,
        seed: 1999,
    }
    .events();
    let run = Run::start("protocol_stack", "schema-test/corrupted");
    let n = corrupted.len() as u64;
    let r = check_interp(&design, &corrupted, &specs, 0).expect("corrupted run");
    run.end(n);
    assert!(!r.report.all_pass(), "corruption must be caught");

    // Mailbox overwrite: post the same signal twice without a
    // dispatch in between — the 1-place mailbox drops the first one,
    // and `emit_events_lost_event` surfaces the loss.
    let mut k = Kernel::new(KernelParams::default());
    let t = k.add_task("rx", 0, [7usize].into_iter().collect());
    k.post_external(7);
    k.post_external(7);
    let mut ev = BitSet::new();
    k.schedule_into(&mut ev);
    k.dispatch_into(t, &mut ev);
    assert!(k.events_lost > 0, "double post must overwrite");
    k.emit_events_lost_event();

    // Error instants come from failed simulation; the builder-level
    // path is the same, so emit one synthetically (schema v3: error
    // lines must attribute a session — 0 outside a fleet).
    ecl_telemetry::event("error")
        .expect("telemetry on + sink installed")
        .u64("instant", 0)
        .u64("session", 0)
        .str("msg", "synthetic error for the schema test")
        .emit();

    // Fault-injected run: every external event is dropped and every
    // VM hook is demoted, so the stream carries `fault_injected` and
    // `degraded` lines too.
    ecl_faults::install(ecl_faults::FaultPlan {
        drop_external: 1.0,
        vm_fault: 1.0,
        ..ecl_faults::FaultPlan::seeded(42)
    });
    let injected = PacketTb {
        packets: 1,
        corrupt_every: 0,
        reset_every: 0,
        seed: 1999,
    }
    .events();
    let run = Run::start("protocol_stack", "schema-test/injected");
    let n = injected.len() as u64;
    check_interp(&design, &injected, &specs, 0).expect("injected run");
    run.end(n);
    let stats = ecl_faults::uninstall().expect("plan was installed");
    assert!(stats.dropped_external > 0, "drops must fire: {stats:?}");
    assert!(stats.vm_demotions > 0, "demotions must fire: {stats:?}");

    // A two-session fleet: session-id-keyed run brackets plus the
    // aggregate `fleet_health` snapshot line.
    let fleet_events = std::sync::Arc::new(
        PacketTb {
            packets: 2,
            corrupt_every: 0,
            reset_every: 0,
            seed: 1999,
        }
        .events(),
    );
    let sup = ecl_fleet::Supervisor::new(
        vec![design.clone()],
        &Default::default(),
        ecl_fleet::FleetConfig {
            shards: 1,
            ..Default::default()
        },
    )
    .expect("fleet compiles");
    let fleet = sup.run(
        (1..=2)
            .map(|id| ecl_fleet::SessionSpec {
                id,
                events: std::sync::Arc::clone(&fleet_events),
                specs: specs.clone(),
                trace_capacity: None,
            })
            .collect(),
    );
    assert_eq!(fleet.health.finished, 2, "{:?}", fleet.health);

    ecl_telemetry::sink::flush();
    let lines = sink.lines();
    uninstall_sink();
    ecl_telemetry::set_enabled(false);
    ecl_telemetry::set_span_every(1024);

    // Every line: schema-valid, and the preamble keys really are
    // there with sensible values.
    let mut kinds = BTreeSet::new();
    let mut run_ids = BTreeSet::new();
    for line in &lines {
        validate_line(line).unwrap_or_else(|e| panic!("invalid line: {e}\n  {line}"));
        let j = parse(line).unwrap();
        assert_eq!(
            j.get("schema").and_then(|v| v.as_u64()),
            Some(ecl_telemetry::schema::SCHEMA_VERSION)
        );
        assert!(j.get("ts").and_then(|v| v.as_f64()).unwrap() > 0.0);
        run_ids.insert(j.get("run_id").unwrap().as_str().unwrap().to_string());
        kinds.insert(j.get("event").unwrap().as_str().unwrap().to_string());
    }
    for kind in [
        "run_start",
        "run_end",
        "span",
        "verdict",
        "error",
        "events_lost",
        "fault_injected",
        "degraded",
        "fleet_health",
    ] {
        assert!(kinds.contains(kind), "stream carries no `{kind}` line");
    }
    // Five bracketed runs → at least two distinct correlation ids
    // (the kernel/error lines outside any bracket get the idle id).
    assert!(run_ids.len() >= 2, "run ids: {run_ids:?}");

    // The brackets pair up: every run_start has a run_end with the
    // same run_id and a positive instant count; the fleet's two
    // brackets carry non-zero session ids.
    let mut starts = BTreeSet::new();
    let mut ends = BTreeSet::new();
    let mut fleet_sessions = BTreeSet::new();
    for line in &lines {
        let j = parse(line).unwrap();
        let id = j.get("run_id").unwrap().as_str().unwrap().to_string();
        match j.get("event").unwrap().as_str().unwrap() {
            "run_start" => {
                let session = j.get("session").and_then(|v| v.as_u64()).unwrap();
                if session > 0 {
                    fleet_sessions.insert(session);
                }
                starts.insert(id);
            }
            "run_end" => {
                assert!(j.get("instants").and_then(|v| v.as_u64()).unwrap() > 0);
                ends.insert(id);
            }
            _ => {}
        }
    }
    assert_eq!(starts, ends, "unbalanced run brackets");
    assert_eq!(starts.len(), 5, "3 solo runs + 2 fleet sessions");
    assert_eq!(fleet_sessions, [1, 2].into_iter().collect());
}
