//! Zero-allocation guarantee of the `instant_ids` fast path.
//!
//! A counting global allocator wraps `System`; after a warm-up phase
//! (scratch buffers grown to their steady-state capacity), driving
//! further instants through `AsyncRunner::instant_ids` must perform
//! **zero** heap allocations — the acceptance bar of the interned-id
//! hot path. Two tiers:
//!
//! * the pure-control relay covers the control path — kernel
//!   mailboxes, dispatch, EFSM stepping, emission fan-out;
//! * the full protocol stack (valued signals, packet aggregates, CRC
//!   loops, monitored) covers the *data* path on the bytecode VM:
//!   programs compile once at construction, then predicates, actions
//!   and valued emits run register-to-slot with zero heap traffic —
//!   unlike the tree-walker, which clones a `Value` per signal read.
//! * the same relay with telemetry *enabled* pins the instrumentation
//!   down: counters and histograms are preallocated atomics, so the
//!   steady state stays at zero allocations — heap traffic happens
//!   only when a span line renders into the sink, which the test
//!   keeps out of the measured window (`set_span_every(0)`).
//!
//! The telemetry master switch is process-global, so the tests
//! serialize on a mutex and each pins the switch to the state it
//! measures.

use codegen::cost::CostParams;
use ecl_core::Compiler;
use efsm::BitSet;
use rtk::KernelParams;
use sim::runner::{AsyncRunner, Runner};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::{Mutex, MutexGuard};

/// Serializes the tests (they toggle the process-global telemetry
/// switch); a panicking holder must not wedge the others.
static TELEMETRY_STATE: Mutex<()> = Mutex::new(());

fn locked() -> MutexGuard<'static, ()> {
    TELEMETRY_STATE.lock().unwrap_or_else(|e| e.into_inner())
}

struct CountingAlloc;

// Per-thread counter: the libtest harness allocates concurrently on
// other threads (channels, progress bookkeeping); a process-global
// counter would race those allocations into the measured window and
// flake. `try_with` tolerates the TLS teardown window.
thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn my_allocs() -> u64 {
    ALLOCS.try_with(Cell::get).unwrap_or(0)
}

fn bump() {
    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Pure-control relay: two modules wired by an internal signal, all
/// signals presence-only.
const RELAY: &str = "
    module a(input pure i, output pure m) { while (1) { await (i); emit (m); } }
    module b(input pure m, output pure o) { while (1) { await (m); emit (o); } }
    module top(input pure i, output pure o) {
      signal pure mid;
      par { a(i, mid); b(mid, o); }
    }";

#[test]
fn instant_ids_is_allocation_free_in_steady_state() {
    let _g = locked();
    ecl_telemetry::set_enabled(false);
    let design = Compiler::default().compile_str(RELAY, "top").unwrap();
    let mut runner = AsyncRunner::new(
        vec![design],
        &Default::default(),
        CostParams::default(),
        KernelParams::default(),
    )
    .unwrap();
    let i = runner.sig_table().lookup("i").unwrap();
    let on: BitSet = [i.bit()].into_iter().collect();
    let off = BitSet::new();
    let mut out = BitSet::new();
    // Warm-up: grow every scratch buffer to steady-state capacity,
    // covering both stimulus shapes.
    for k in 0..100u32 {
        let ev = if k % 3 == 0 { &off } else { &on };
        runner.instant_ids(ev, &mut out).unwrap();
    }
    // Steady state: not a single heap allocation over 1000 instants
    // (on this thread — the driving thread is the only one touching
    // the runner).
    let before = my_allocs();
    for k in 0..1000u32 {
        let ev = if k % 3 == 0 { &off } else { &on };
        runner.instant_ids(ev, &mut out).unwrap();
    }
    let after = my_allocs();
    assert_eq!(
        after - before,
        0,
        "instant_ids allocated {} times over 1000 steady-state instants",
        after - before
    );
    // The run did something: emissions reached `out` at least once.
    assert!(runner.count_of("o") > 0, "relay never fired");
}

#[test]
fn vm_data_path_is_allocation_free_in_steady_state() {
    use ecl_observe::{synthesize_all, Monitor};
    use sim::designs::PROTOCOL_STACK;
    use sim::tb::PacketTb;
    use std::sync::Arc;

    let _g = locked();
    ecl_telemetry::set_enabled(false);
    let design = Compiler::default()
        .compile_str(PROTOCOL_STACK, "toplevel")
        .unwrap();
    let prog = ecl_syntax::parse_str(PROTOCOL_STACK).unwrap();
    let specs = synthesize_all(&prog).expect("observers synthesize");
    let mut runner = AsyncRunner::new(
        vec![design],
        &Default::default(),
        CostParams::default(),
        KernelParams::default(),
    )
    .unwrap();
    // The whole reaction must be on the compiled backend — a walker
    // fallback would clone `Value`s per signal read and void the
    // guarantee.
    let cov = runner.coverage();
    assert!(
        cov.fully_fused() && cov.vm_total() > 0,
        "stack should fuse completely ({}/{} states, {}/{} hooks)",
        cov.fused_states(),
        cov.states(),
        cov.vm_compiled(),
        cov.vm_total()
    );
    let mut monitors: Vec<Monitor> = specs
        .iter()
        .map(|s| {
            let mut m = Monitor::new(Arc::clone(s));
            m.bind(runner.sig_table());
            m
        })
        .collect();
    let events = PacketTb {
        packets: 40,
        corrupt_every: 0,
        reset_every: 0,
        seed: 1999,
    }
    .events();
    // One driving pass: the first `WARM` instants grow every scratch
    // buffer (register file, kernel mailboxes, driver bitsets) to
    // steady state; the next 1000 monitored instants of packet
    // assembly, CRC accumulation and valued emission must then be
    // allocation-free. Boundaries are sampled inside the callback so
    // the whole window runs through a single `run_events` call.
    const WARM: u64 = 300;
    let mut before = 0u64;
    let mut after = 0u64;
    assert!(events.len() as u64 >= WARM + 1000, "testbench long enough");
    runner
        .run_events(&events[..(WARM + 1000) as usize], |instant, present| {
            for m in monitors.iter_mut() {
                m.step_present(instant, present);
            }
            if instant + 1 == WARM {
                before = my_allocs();
            } else if instant + 1 == WARM + 1000 {
                after = my_allocs();
            }
        })
        .unwrap();
    assert!(after > 0 || before == my_allocs(), "boundaries sampled");
    assert_eq!(
        after - before,
        0,
        "VM data path allocated {} times over 1000 steady-state instants",
        after - before
    );
    assert!(runner.count_of("top::packet") > 0, "packets were assembled");
}

#[test]
fn telemetry_enabled_steady_state_is_allocation_free() {
    let _g = locked();
    // Full instrumentation: master switch on, a sink installed —
    // but span summaries off, so nothing renders a line inside the
    // measured window. Counters and histograms are static atomics;
    // bumping them must not touch the heap.
    ecl_telemetry::set_enabled(true);
    ecl_telemetry::set_span_every(0);
    let sink = ecl_telemetry::MemorySink::new();
    ecl_telemetry::install_sink(Box::new(sink.clone()));
    ecl_telemetry::metrics::reset_all();

    let design = Compiler::default().compile_str(RELAY, "top").unwrap();
    let mut runner = AsyncRunner::new(
        vec![design],
        &Default::default(),
        CostParams::default(),
        KernelParams::default(),
    )
    .unwrap();
    let i = runner.sig_table().lookup("i").unwrap();
    let on: BitSet = [i.bit()].into_iter().collect();
    let off = BitSet::new();
    let mut out = BitSet::new();
    for k in 0..100u32 {
        let ev = if k % 3 == 0 { &off } else { &on };
        runner.instant_ids(ev, &mut out).unwrap();
    }
    let before = my_allocs();
    for k in 0..1000u32 {
        let ev = if k % 3 == 0 { &off } else { &on };
        runner.instant_ids(ev, &mut out).unwrap();
    }
    let after = my_allocs();

    // Restore the global default before asserting, so a failure here
    // cannot leak an enabled switch into an unrelated test.
    ecl_telemetry::uninstall_sink();
    ecl_telemetry::set_enabled(false);
    ecl_telemetry::set_span_every(1024);

    assert_eq!(
        after - before,
        0,
        "enabled telemetry allocated {} times over 1000 steady-state instants",
        after - before
    );
    // The instrumentation really ran: the kernel counted dispatches.
    assert!(
        ecl_telemetry::metrics::RTK_DISPATCHES.get() >= 1000,
        "dispatch counter did not advance"
    );
    assert!(runner.count_of("o") > 0, "relay never fired");
}
