//! Zero-allocation guarantee of the `instant_ids` fast path.
//!
//! A counting global allocator wraps `System`; after a warm-up phase
//! (scratch buffers grown to their steady-state capacity), driving
//! further instants through `AsyncRunner::instant_ids` on a
//! pure-control design must perform **zero** heap allocations — the
//! acceptance bar of the interned-id hot path. The design is pure
//! (no valued signals, no data actions): the claim covers the control
//! path — kernel mailboxes, dispatch, EFSM stepping, emission fan-out
//! — not the C data interpreter.

use codegen::cost::CostParams;
use ecl_core::Compiler;
use efsm::BitSet;
use rtk::KernelParams;
use sim::runner::{AsyncRunner, Runner};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

// Per-thread counter: the libtest harness allocates concurrently on
// other threads (channels, progress bookkeeping); a process-global
// counter would race those allocations into the measured window and
// flake. `try_with` tolerates the TLS teardown window.
thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn my_allocs() -> u64 {
    ALLOCS.try_with(Cell::get).unwrap_or(0)
}

fn bump() {
    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Pure-control relay: two modules wired by an internal signal, all
/// signals presence-only.
const RELAY: &str = "
    module a(input pure i, output pure m) { while (1) { await (i); emit (m); } }
    module b(input pure m, output pure o) { while (1) { await (m); emit (o); } }
    module top(input pure i, output pure o) {
      signal pure mid;
      par { a(i, mid); b(mid, o); }
    }";

#[test]
fn instant_ids_is_allocation_free_in_steady_state() {
    let design = Compiler::default().compile_str(RELAY, "top").unwrap();
    let mut runner = AsyncRunner::new(
        vec![design],
        &Default::default(),
        CostParams::default(),
        KernelParams::default(),
    )
    .unwrap();
    let i = runner.sig_table().lookup("i").unwrap();
    let on: BitSet = [i.bit()].into_iter().collect();
    let off = BitSet::new();
    let mut out = BitSet::new();
    // Warm-up: grow every scratch buffer to steady-state capacity,
    // covering both stimulus shapes.
    for k in 0..100u32 {
        let ev = if k % 3 == 0 { &off } else { &on };
        runner.instant_ids(ev, &mut out).unwrap();
    }
    // Steady state: not a single heap allocation over 1000 instants
    // (on this thread — the driving thread is the only one touching
    // the runner).
    let before = my_allocs();
    for k in 0..1000u32 {
        let ev = if k % 3 == 0 { &off } else { &on };
        runner.instant_ids(ev, &mut out).unwrap();
    }
    let after = my_allocs();
    assert_eq!(
        after - before,
        0,
        "instant_ids allocated {} times over 1000 steady-state instants",
        after - before
    );
    // The run did something: emissions reached `out` at least once.
    assert!(runner.count_of("o") > 0, "relay never fired");
}
