//! Integration tests for the paper's Figures 1–4 (experiments F1–F4 in
//! DESIGN.md): each module compiles through the full pipeline and
//! behaves as the paper describes.

use ecl_core::Compiler;
use sim::designs::PROTOCOL_STACK;
use sim::runner::InterpRunner;
use sim::tb::{crc16, make_packet, HDRSIZE, PKTSIZE};

/// F1 — Figure 1: `assemble` gathers PKTSIZE bytes and emits the packet.
#[test]
fn fig1_assemble_collects_64_bytes() {
    let d = Compiler::default()
        .compile_str(PROTOCOL_STACK, "assemble")
        .unwrap();
    let mut r = InterpRunner::new(&d).unwrap();
    r.instant(&[]).unwrap();
    let mut emitted_at = None;
    for i in 0..PKTSIZE {
        r.set_input_i64("in_byte", (i % 251) as i64).unwrap();
        let out = r.instant(&["in_byte"]).unwrap();
        if out.iter().any(|n| n == "outpkt") {
            emitted_at = Some(i);
        }
    }
    assert_eq!(emitted_at, Some(PKTSIZE - 1), "packet after 64th byte");
    // The assembled bytes round-trip through the valued signal.
    let v = r.rt().signal_value_by_name("outpkt").unwrap();
    assert_eq!(v.bytes.len(), PKTSIZE);
    assert_eq!(v.bytes[0], 0);
    assert_eq!(v.bytes[10], 10);
}

/// F1 — the `abort (reset)` wrapper restarts packet assembly.
#[test]
fn fig1_reset_aborts_assembly() {
    let d = Compiler::default()
        .compile_str(PROTOCOL_STACK, "assemble")
        .unwrap();
    let mut r = InterpRunner::new(&d).unwrap();
    r.instant(&[]).unwrap();
    // 10 bytes, then reset, then a full packet.
    for i in 0..10 {
        r.set_input_i64("in_byte", i).unwrap();
        r.instant(&["in_byte"]).unwrap();
    }
    r.instant(&["reset"]).unwrap();
    let mut count = 0;
    for i in 0..PKTSIZE {
        r.set_input_i64("in_byte", 100 + (i as i64 % 100)).unwrap();
        let out = r.instant(&["in_byte"]).unwrap();
        count += out.iter().filter(|n| *n == "outpkt").count();
    }
    assert_eq!(count, 1, "exactly one packet after the reset");
    let v = r.rt().signal_value_by_name("outpkt").unwrap();
    assert_eq!(v.bytes[0], 100, "assembly restarted from byte 0");
}

/// F2 — Figure 2: `checkcrc` accepts valid CRCs and rejects corrupt
/// ones. Driven through the full stack: feed one good and one corrupt
/// packet byte-by-byte and read the `crc_ok` *value*.
#[test]
fn fig2_checkcrc_validates() {
    use rand::SeedableRng;
    let d = Compiler::default()
        .compile_str(PROTOCOL_STACK, "toplevel")
        .unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    for good in [true, false] {
        let mut r = InterpRunner::new(&d).unwrap();
        r.instant(&[]).unwrap();
        let pkt = make_packet(&mut rng, true, good);
        // Generator self-check.
        let expect = crc16(&pkt[..PKTSIZE - 2]);
        let stored = pkt[62] as u16 | ((pkt[63] as u16) << 8);
        assert_eq!(expect == stored, good);
        // Behavior check through the compiled design.
        let mut saw_crc_ok_event = false;
        for b in pkt {
            r.set_input_i64("in_byte", b as i64).unwrap();
            let out = r.instant(&["in_byte"]).unwrap();
            if out.iter().any(|n| n == "top::crc_ok") {
                saw_crc_ok_event = true;
                let v = r.rt().signal_value_by_name("top::crc_ok").unwrap();
                let truthy = v.is_truthy();
                assert_eq!(truthy, good, "crc_ok value for good={good}");
            }
        }
        assert!(saw_crc_ok_event, "crc_ok must be emitted per packet");
    }
}

/// F3 — Figure 3: `prochdr` compiles; its local signal `kill_check` is
/// compiled away (no presence test on a local survives in the EFSM).
#[test]
fn fig3_prochdr_local_signal_compiled_away() {
    let d = Compiler::default()
        .compile_str(PROTOCOL_STACK, "prochdr")
        .unwrap();
    let m = d.to_efsm(&Default::default()).unwrap();
    for node in &m.nodes {
        if let efsm::sgraph::Node::Test { sig, .. } = node {
            assert_ne!(
                m.signal_info(*sig).kind,
                efsm::SigKind::Local,
                "local signals must be resolved at compile time"
            );
        }
    }
    // The header scan spans HDRSIZE delta instants, but the iterations
    // differ only in data (j), so state minimization folds them: the
    // machine keeps a handful of control states, not HDRSIZE of them.
    assert!(m.states.len() >= 3, "got {} states", m.states.len());
    let _ = HDRSIZE;
}

/// F4 — Figure 4: the top level is exactly three instantiations wired
/// by two internal signals, and compiles to a single product EFSM.
#[test]
fn fig4_toplevel_structure_and_product() {
    let prog = ecl_syntax::parse_str(PROTOCOL_STACK).unwrap();
    let insts = ecl_core::elab::instantiations(&prog, "toplevel");
    assert_eq!(insts.len(), 3);
    assert_eq!(insts[0].module, "assemble");
    assert_eq!(insts[1].module, "checkcrc");
    assert_eq!(insts[2].module, "prochdr");

    let d = Compiler::default()
        .compile_str(PROTOCOL_STACK, "toplevel")
        .unwrap();
    let locals = d
        .program()
        .signals()
        .iter()
        .filter(|s| s.kind == efsm::SigKind::Local)
        .count();
    assert_eq!(locals, 3, "packet, crc_ok, kill_check");
    let m = d.to_efsm(&Default::default()).unwrap();
    m.validate().unwrap();
}

/// The EFSM and the constructive interpreter agree on the whole stack
/// (implementation verification, paper Section 2).
#[test]
fn stack_efsm_matches_interpreter() {
    use codegen::cost::CostParams;
    use rtk::KernelParams;
    use sim::runner::AsyncRunner;
    use sim::tb::PacketTb;

    let d = Compiler::default()
        .compile_str(PROTOCOL_STACK, "toplevel")
        .unwrap();
    let mut interp = InterpRunner::new(&d).unwrap();
    let mut efsm_run = AsyncRunner::new(
        vec![d.clone()],
        &Default::default(),
        CostParams::default(),
        KernelParams::default(),
    )
    .unwrap();
    let tb = PacketTb {
        packets: 6,
        corrupt_every: 3,
        reset_every: 4,
        seed: 5,
    };
    for ev in tb.events() {
        for (name, v) in &ev.valued {
            interp.set_input_i64(name, *v).unwrap();
            efsm_run.set_input_i64(name, *v).unwrap();
        }
        let names = ev.names();
        let mut a = interp.instant(&names).unwrap();
        let mut b = efsm_run.instant(&names).unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b, "trace divergence");
    }
}
