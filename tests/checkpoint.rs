//! Checkpoint/restore determinism: a session snapshotted at a random
//! instant boundary and restored — even into a *fresh* runner built
//! from the same [`sim::SharedProgram`] — must finish its event
//! stream bit-identical to an uninterrupted run: same VCD bytes, same
//! monitor verdicts, same emission counts, same loss accounting.
//!
//! The interrupted runner keeps executing *past* the snapshot before
//! the restore happens, so the test also proves a snapshot is a real
//! value (deep, immutable) rather than a view of live state.
//!
//! Runs fault-free on purpose: the stream-keyed fault sites draw from
//! process-global RNGs that cannot be rewound to a checkpoint, so
//! determinism under restore is only promised for faults-off runs
//! (the fleet's keyed kill/stall sites are exempt — they are pure
//! functions of `(seed, session, instant)`).

use ecl_core::{Compiler, Design};
use ecl_observe::{Monitor, MonitorReport, Verdict};
use efsm::{Backend, BitSet};
use proptest::prelude::*;
use sim::runner::{AsyncRunner, Runner, SharedProgram, Snapshot};
use sim::tb::{InstantEvents, PacketTb};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

fn designs() -> Vec<Design> {
    Compiler::default()
        .partition(sim::designs::PROTOCOL_STACK, "toplevel")
        .expect("protocol stack partitions")
}

fn shared() -> &'static SharedProgram {
    static SHARED: OnceLock<SharedProgram> = OnceLock::new();
    SHARED.get_or_init(|| SharedProgram::compile(designs(), &Default::default()).unwrap())
}

fn specs() -> &'static Vec<Arc<ecl_observe::MonitorSpec>> {
    static SPECS: OnceLock<Vec<Arc<ecl_observe::MonitorSpec>>> = OnceLock::new();
    SPECS.get_or_init(|| {
        ecl_observe::synthesize_all(&ecl_syntax::parse_str(sim::designs::PROTOCOL_STACK).unwrap())
            .unwrap()
    })
}

/// A short packet stream; `seed` varies the payloads so cases differ.
fn events(seed: u64) -> Vec<InstantEvents> {
    PacketTb {
        packets: 3,
        corrupt_every: 0,
        reset_every: 2,
        seed,
    }
    .events()
}

fn fresh(backend: Backend) -> (AsyncRunner, Vec<Monitor>) {
    let mut r = AsyncRunner::from_shared(shared(), Default::default(), Default::default());
    r.set_backend(backend);
    r.enable_trace(0);
    let monitors = specs()
        .iter()
        .map(|s| {
            let mut m = Monitor::new(Arc::clone(s));
            m.bind(r.sig_table());
            m
        })
        .collect();
    (r, monitors)
}

/// Drive `events` on the id fast path, stepping monitors in lockstep
/// (the same loop `Runner::run_events` runs).
fn drive(runner: &mut AsyncRunner, monitors: &mut [Monitor], events: &[InstantEvents]) {
    let mut ev_bits = BitSet::new();
    let mut present = BitSet::new();
    for ev in events {
        ev_bits.clear();
        for (name, v) in &ev.valued {
            let id = runner.sig_table().lookup(name).expect("known signal");
            runner.set_input_i64_id(id, *v).unwrap();
            ev_bits.insert(id.bit());
        }
        for name in ev.pure.iter() {
            if let Some(id) = runner.sig_table().lookup(name) {
                ev_bits.insert(id.bit());
            }
        }
        let instant = runner.now();
        runner.instant_ids(&ev_bits, &mut present).unwrap();
        present.union_with(&ev_bits);
        let table = Arc::clone(runner.sig_table());
        for m in monitors.iter_mut() {
            m.step_ids(instant, &present, &table);
        }
    }
}

/// Everything a restored run must reproduce bit-for-bit.
#[derive(Debug, PartialEq)]
struct RunOut {
    vcd: String,
    counts: HashMap<String, u64>,
    verdicts: Vec<(String, Verdict)>,
    events_lost: u64,
    instants: u64,
}

fn finish(mut runner: AsyncRunner, monitors: Vec<Monitor>) -> RunOut {
    RunOut {
        vcd: runner.take_trace().expect("trace recorded").to_vcd("ckpt"),
        counts: runner.counts(),
        verdicts: MonitorReport::conclude(monitors).verdicts,
        events_lost: runner.kernel().events_lost,
        instants: runner.now(),
    }
}

/// The property: snapshot at `cut`, keep running `overrun` instants
/// on the original runner, then restore the snapshot into a fresh
/// runner and finish the stream there — outputs equal the
/// uninterrupted run's.
fn check_restore(
    seed: u64,
    cut_frac: usize,
    overrun: usize,
    backend: Backend,
) -> Result<(), TestCaseError> {
    let ev = events(seed);
    let cut = cut_frac % ev.len();

    // Uninterrupted reference.
    let (mut base, mut base_mon) = fresh(backend);
    drive(&mut base, &mut base_mon, &ev);
    let want = finish(base, base_mon);

    // Interrupted: run to `cut`, checkpoint, dirty the original
    // runner past the cut, restore elsewhere, finish there.
    let (mut orig, mut orig_mon) = fresh(backend);
    drive(&mut orig, &mut orig_mon, &ev[..cut]);
    let snap = orig.snapshot().expect("boundary snapshot");
    let mon_snap: Vec<Monitor> = orig_mon.clone();
    let over_end = (cut + overrun).min(ev.len());
    drive(&mut orig, &mut orig_mon, &ev[cut..over_end]);
    prop_assert_eq!(snap.instant(), cut as u64);

    let (mut resumed, _) = fresh(backend);
    resumed
        .restore(&snap)
        .expect("restore into a sibling runner");
    let mut resumed_mon = mon_snap;
    drive(&mut resumed, &mut resumed_mon, &ev[cut..]);
    let got = finish(resumed, resumed_mon);

    prop_assert_eq!(&got, &want, "restored run diverged (backend {:?})", backend);
    Ok(())
}

proptest! {
    /// Compiled backend: restore-after-checkpoint is invisible.
    #[test]
    fn restore_matches_uninterrupted_compiled(
        seed in 0u64..1000,
        cut in 0usize..4096,
        overrun in 0usize..40,
    ) {
        check_restore(seed, cut, overrun, Backend::Compiled)?;
    }

    /// Walker backend: same property, reference execution path.
    #[test]
    fn restore_matches_uninterrupted_walker(
        seed in 0u64..1000,
        cut in 0usize..4096,
        overrun in 0usize..40,
    ) {
        check_restore(seed, cut, overrun, Backend::Walker)?;
    }
}

/// A snapshot taken mid-instant must be refused, and restoring a
/// poisoned runner heals it (the fleet's recovery path).
#[test]
fn snapshot_refused_mid_instant_and_restore_heals_poison() {
    let ev = events(1999);
    let (mut r, mut mon) = fresh(Backend::Compiled);
    drive(&mut r, &mut mon, &ev[..10]);
    let snap = r.snapshot().expect("boundary snapshot");

    // Poison the runner with an injected panic mid-instant.
    ecl_faults::install(ecl_faults::FaultPlan {
        panic_at: Some(12),
        ..ecl_faults::FaultPlan::seeded(5)
    });
    let poisoned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        drive(&mut r, &mut mon, &ev[10..20]);
    }));
    ecl_faults::uninstall();
    assert!(poisoned.is_err(), "panic site must fire");
    assert!(
        r.snapshot().is_err(),
        "snapshot of a torn runner must be refused"
    );

    // Restore heals: the runner finishes the stream as if never hurt.
    r.restore(&snap).expect("restore clears the poison latch");
    let mut mon2: Vec<Monitor> = specs()
        .iter()
        .map(|s| {
            let mut m = Monitor::new(Arc::clone(s));
            m.bind(r.sig_table());
            m
        })
        .collect();
    // Monitors restart from scratch against the full replay of the
    // reference run's stream suffix.
    drive(&mut r, &mut mon2, &ev[10..]);
    assert_eq!(r.now(), ev.len() as u64);
    assert!(r.snapshot().is_ok(), "healed runner snapshots again");
}
