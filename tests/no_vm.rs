//! Walker-fallback smoke: `set_use_vm(false)` forces the tree-walking
//! interpreter on the whole data path, and the run must be
//! observationally identical to the default bytecode-VM run — emitted
//! sets per instant, emission counts, monitor verdicts and the
//! fuel-derived kernel cycle charges. CI runs this as a dedicated
//! `no-vm` pass so the walker stays exercised and green.

use ecl_observe::{synthesize_all, Monitor};
use efsm::BitSet;
use sim::designs::{PROTOCOL_STACK, VOICE_PAGER};
use sim::runner::{AsyncRunner, Runner};
use sim::tb::{PacketTb, PagerTb};
use std::sync::Arc;

fn runner(designs: Vec<ecl_core::Design>) -> AsyncRunner {
    AsyncRunner::new(
        designs,
        &Default::default(),
        Default::default(),
        Default::default(),
    )
    .expect("runner builds")
}

fn vm_off_matches_vm_on(src: &str, entry: &str, events: &[sim::tb::InstantEvents]) {
    let design = ecl_core::Compiler::default()
        .compile_str(src, entry)
        .expect("design compiles");
    let prog = ecl_syntax::parse_str(src).expect("source parses");
    let specs = synthesize_all(&prog).expect("observers synthesize");

    let mut vm_on = runner(vec![design.clone()]);
    assert!(vm_on.vm_enabled(), "the VM is the default data backend");
    let (compiled, total) = vm_on.vm_coverage();
    assert!(
        compiled == total && total > 0,
        "every data hook of `{entry}` should compile to bytecode ({compiled}/{total})"
    );
    let mut vm_off = runner(vec![design]);
    vm_off.set_use_vm(false);
    assert!(!vm_off.vm_enabled());

    let bind = |r: &AsyncRunner| -> Vec<Monitor> {
        specs
            .iter()
            .map(|s| {
                let mut m = Monitor::new(Arc::clone(s));
                m.bind(r.sig_table());
                m
            })
            .collect()
    };
    let mut mons_on = bind(&vm_on);
    let mut mons_off = bind(&vm_off);

    let (mut out_on, mut out_off) = (BitSet::new(), BitSet::new());
    let mut present = BitSet::new();
    let mut ev_bits = BitSet::new();
    for (step, ev) in events.iter().enumerate() {
        ev_bits.clear();
        for (name, v) in &ev.valued {
            let id = vm_on.sig_table().lookup(name).expect("valued input known");
            vm_on.set_input_i64_id(id, *v).expect("input on vm run");
            vm_off
                .set_input_i64_id(id, *v)
                .expect("input on walker run");
            ev_bits.insert(id.bit());
        }
        for name in ev.pure.iter() {
            if let Some(id) = vm_on.sig_table().lookup(name) {
                ev_bits.insert(id.bit());
            }
        }
        vm_on
            .instant_ids(&ev_bits, &mut out_on)
            .expect("vm instant");
        vm_off
            .instant_ids(&ev_bits, &mut out_off)
            .expect("walker instant");
        assert_eq!(out_on, out_off, "emitted sets diverged at instant {step}");
        present.clear();
        present.union_with(&ev_bits);
        present.union_with(&out_on);
        for (mon_on, mon_off) in mons_on.iter_mut().zip(mons_off.iter_mut()) {
            mon_on.step_ids(step as u64, &present, vm_on.sig_table());
            mon_off.step_ids(step as u64, &present, vm_off.sig_table());
            assert_eq!(
                mon_on.verdict(),
                mon_off.verdict(),
                "observer verdicts diverged at instant {step}"
            );
        }
    }
    assert_eq!(vm_on.counts(), vm_off.counts(), "emission counts diverged");
    // Fuel parity: the VM burns exactly the walker's interpreter steps,
    // so the kernels charged identical data cycles.
    assert_eq!(
        vm_on.kernel().task_cycles,
        vm_off.kernel().task_cycles,
        "fuel-derived cycle charges diverged"
    );
}

#[test]
fn stack_walker_matches_vm() {
    let mut ev = PacketTb {
        packets: 40,
        corrupt_every: 0,
        reset_every: 0,
        seed: 1999,
    }
    .events();
    ev.truncate(2000);
    vm_off_matches_vm_on(PROTOCOL_STACK, "toplevel", &ev);
}

#[test]
fn pager_walker_matches_vm() {
    let mut ev = PagerTb {
        rounds: 30,
        frames: 4,
        seed: 7,
    }
    .events();
    ev.truncate(2000);
    vm_off_matches_vm_on(VOICE_PAGER, "pager", &ev);
}
