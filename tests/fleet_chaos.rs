//! Fleet chaos: killing or stalling some sessions must never touch
//! their neighbors. With a kill plan installed, the supervisor
//! restores victims from their last checkpoint and replays — and
//! *every* session (victim or survivor) must end byte-identical to a
//! solo run with no plan installed: same VCD bytes, same verdicts,
//! same emission counts, same loss accounting. Shard stalls are
//! purely temporal and must change nothing at all.
//!
//! The fault plan and telemetry switchboard are process-global, so
//! every test here takes one lock.

use ecl_fleet::{FleetConfig, SessionSpec, SessionStatus, Supervisor};
use ecl_observe::{Monitor, MonitorReport, Verdict};
use sim::runner::{AsyncRunner, Runner};
use sim::tb::{InstantEvents, PacketTb};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

fn locked() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn supervisor(cfg: FleetConfig) -> Supervisor {
    let designs = ecl_core::Compiler::default()
        .partition(sim::designs::PROTOCOL_STACK, "toplevel")
        .expect("protocol stack partitions");
    Supervisor::new(designs, &Default::default(), cfg).expect("fleet compiles")
}

fn specs() -> Vec<Arc<ecl_observe::MonitorSpec>> {
    ecl_observe::synthesize_all(&ecl_syntax::parse_str(sim::designs::PROTOCOL_STACK).unwrap())
        .unwrap()
}

fn events() -> Arc<Vec<InstantEvents>> {
    Arc::new(
        PacketTb {
            packets: 3,
            corrupt_every: 0,
            reset_every: 0,
            seed: 7,
        }
        .events(),
    )
}

fn session(
    id: u64,
    ev: &Arc<Vec<InstantEvents>>,
    specs: &[Arc<ecl_observe::MonitorSpec>],
) -> SessionSpec {
    SessionSpec {
        id,
        events: Arc::clone(ev),
        specs: specs.to_vec(),
        trace_capacity: Some(0),
    }
}

/// Everything a session must reproduce bit-for-bit.
#[derive(Debug, PartialEq)]
struct RunOut {
    vcd: String,
    counts: HashMap<String, u64>,
    verdicts: Vec<(String, Verdict)>,
    events_lost: u64,
}

/// The no-plan reference: one solo runner over the supervisor's own
/// shared program.
fn baseline(
    sup: &Supervisor,
    ev: &[InstantEvents],
    specs: &[Arc<ecl_observe::MonitorSpec>],
) -> RunOut {
    let mut r = AsyncRunner::from_shared(sup.shared(), Default::default(), Default::default());
    r.enable_trace(0);
    let mut monitors: Vec<Monitor> = specs
        .iter()
        .map(|s| {
            let mut m = Monitor::new(Arc::clone(s));
            m.bind(r.sig_table());
            m
        })
        .collect();
    r.run_events(ev, |i, p| {
        for m in &mut monitors {
            m.step_present(i, p);
        }
    })
    .expect("clean run");
    RunOut {
        vcd: r.take_trace().expect("trace recorded").to_vcd("fleet"),
        counts: r.counts(),
        verdicts: MonitorReport::conclude(monitors).verdicts,
        events_lost: r.kernel().events_lost,
    }
}

fn out_of(s: &ecl_fleet::SessionReport) -> RunOut {
    RunOut {
        vcd: s.trace.as_ref().expect("trace kept").to_vcd("fleet"),
        counts: s.counts.clone(),
        verdicts: s
            .report
            .as_ref()
            .expect("verdicts concluded")
            .verdicts
            .clone(),
        events_lost: s.events_lost,
    }
}

/// k of N sessions killed at seeded instants: victims restart from
/// their checkpoints and converge; survivors never notice. Everyone
/// ends byte-identical to the unfaulted solo run.
#[test]
fn kills_are_contained_and_victims_converge() {
    let _g = locked();
    let (ev, sp) = (events(), specs());
    let sup = supervisor(FleetConfig {
        shards: 2,
        checkpoint_every: 8,
        ..Default::default()
    });
    let want = baseline(&sup, &ev, &sp);

    ecl_faults::install(ecl_faults::FaultPlan {
        kill_session: 0.5,
        kill_within: 40,
        ..ecl_faults::FaultPlan::seeded(11)
    });
    // The kill schedule is a pure function of (seed, session) —
    // predict the victims before running.
    let victims: Vec<u64> = (1..=6)
        .filter(|id| ecl_faults::kill_instant(*id).is_some())
        .collect();
    let rep = sup.run((1..=6).map(|id| session(id, &ev, &sp)).collect());
    let stats = ecl_faults::uninstall().expect("plan was installed");

    assert!(
        !victims.is_empty() && victims.len() < 6,
        "seed must kill some but not all: {victims:?}"
    );
    assert_eq!(stats.session_kills, victims.len() as u64, "{stats:?}");
    assert_eq!(rep.health.finished, 6, "{:?}", rep.health);
    assert_eq!(rep.health.restarts, victims.len() as u64);
    for s in &rep.sessions {
        assert_eq!(s.status, SessionStatus::Finished, "session {}", s.id);
        if victims.contains(&s.id) {
            assert_eq!(s.restarts, 1, "one kill, one restore (session {})", s.id);
            assert!(s.backoff_ticks > 0);
        } else {
            assert_eq!(s.restarts, 0, "survivor restarted (session {})", s.id);
        }
        assert_eq!(
            out_of(s),
            want,
            "session {} diverged from the solo baseline",
            s.id
        );
    }
}

/// Shard stalls delay quanta but are invisible in every output byte.
#[test]
fn shard_stalls_are_purely_temporal() {
    let _g = locked();
    let (ev, sp) = (events(), specs());
    let sup = supervisor(FleetConfig {
        shards: 2,
        checkpoint_every: 8,
        ..Default::default()
    });
    let want = baseline(&sup, &ev, &sp);

    ecl_faults::install(ecl_faults::FaultPlan {
        shard_stall: 0.5,
        stall_ms: 1,
        ..ecl_faults::FaultPlan::seeded(21)
    });
    let rep = sup.run((1..=4).map(|id| session(id, &ev, &sp)).collect());
    let stats = ecl_faults::uninstall().expect("plan was installed");

    assert!(stats.shard_stalls > 0, "stalls must fire: {stats:?}");
    assert_eq!(rep.health.finished, 4);
    assert_eq!(rep.health.restarts, 0, "stalls are not failures");
    for s in &rep.sessions {
        assert_eq!(out_of(s), want, "session {} diverged under stalls", s.id);
    }
}

/// A panic *mid-instant* (the `panic_at` site tears the runner inside
/// phase 1) poisons exactly one session; the supervisor restores its
/// checkpoint, replays, and converges. One shard, so the one-shot
/// global panic latch lands deterministically on the first session.
#[test]
fn mid_instant_panic_recovers_from_checkpoint() {
    let _g = locked();
    let (ev, sp) = (events(), specs());
    let sup = supervisor(FleetConfig {
        shards: 1,
        checkpoint_every: 8,
        ..Default::default()
    });
    let want = baseline(&sup, &ev, &sp);

    ecl_faults::install(ecl_faults::FaultPlan {
        panic_at: Some(13),
        ..ecl_faults::FaultPlan::seeded(5)
    });
    let rep = sup.run((1..=2).map(|id| session(id, &ev, &sp)).collect());
    let stats = ecl_faults::uninstall().expect("plan was installed");

    assert_eq!(stats.panics, 1, "{stats:?}");
    assert_eq!(rep.health.finished, 2, "{:?}", rep.health);
    assert_eq!(rep.sessions[0].restarts, 1, "first session eats the panic");
    assert_eq!(rep.sessions[1].restarts, 0);
    for s in &rep.sessions {
        assert_eq!(out_of(s), want, "session {} diverged after the panic", s.id);
    }
}

/// Admission rejections are attributed per session in the telemetry
/// stream (mirroring `events_lost`), and the fleet emits its
/// aggregate `fleet_health` snapshot.
#[test]
fn rejections_and_health_reach_the_telemetry_stream() {
    let _g = locked();
    let (ev, sp) = (events(), specs());
    let sup = supervisor(FleetConfig {
        shards: 1,
        queue_cap: 2,
        ..Default::default()
    });

    ecl_telemetry::set_enabled(true);
    let sink = ecl_telemetry::MemorySink::new();
    ecl_telemetry::install_sink(Box::new(sink.clone()));
    let rep = sup.run((1..=3).map(|id| session(id, &ev, &sp)).collect());
    ecl_telemetry::sink::flush();
    ecl_telemetry::uninstall_sink();
    ecl_telemetry::set_enabled(false);

    assert_eq!(rep.health.rejected, 1);
    let lines = sink.lines();
    let rejection = lines.iter().any(|l| {
        let Ok(j) = ecl_telemetry::schema::parse(l) else {
            return false;
        };
        j.get("event").and_then(|v| v.as_str()) == Some("events_lost")
            && j.get("reason").and_then(|v| v.as_str()) == Some("admission_refused")
            && j.get("session").and_then(|v| v.as_u64()) == Some(3)
            && j.get("total").and_then(|v| v.as_u64()) == Some(ev.len() as u64)
    });
    assert!(rejection, "no admission-refused events_lost line");
    let health = lines.iter().any(|l| {
        let Ok(j) = ecl_telemetry::schema::parse(l) else {
            return false;
        };
        j.get("event").and_then(|v| v.as_str()) == Some("fleet_health")
            && j.get("sessions").and_then(|v| v.as_u64()) == Some(3)
            && j.get("rejected").and_then(|v| v.as_u64()) == Some(1)
    });
    assert!(health, "no fleet_health line");
    for l in &lines {
        ecl_telemetry::schema::validate_line(l)
            .unwrap_or_else(|e| panic!("invalid line: {e}\n  {l}"));
    }
}
