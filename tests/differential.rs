//! Property-based implementation verification (paper Section 2: "one
//! can perform ... implementation verification"): randomly generated
//! ECL programs must behave identically under the constructive
//! interpreter and the compiled EFSM, for random input sequences.

use ecl_core::{Compiler, Options, SplitStrategy};
use ecl_observe::Monitor;
use efsm::BitSet;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use sim::runner::AsyncRunner;
use std::collections::HashSet;
use std::sync::Arc;

/// Generate a small random (constructive) ECL module over two inputs
/// and two outputs, built from the reactive statement grammar.
fn gen_module(seed: u64) -> String {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut body = String::new();
    let mut stmts = 0;
    gen_block(&mut rng, &mut body, 2, &mut stmts);
    format!(
        "module m(input pure a, input pure b, output pure x, output pure y) {{\n\
           int v;\n while (1) {{ await (a | b); {body} }} }}"
    )
}

fn gen_block(rng: &mut impl Rng, out: &mut String, depth: u32, stmts: &mut u32) {
    let n = rng.gen_range(1..=3);
    for _ in 0..n {
        if *stmts > 12 {
            return;
        }
        *stmts += 1;
        match rng.gen_range(0..8) {
            0 => out.push_str("emit (x); "),
            1 => out.push_str("emit (y); "),
            2 => out.push_str("v = v + 1; "),
            3 => out.push_str("await (b); "),
            4 if depth > 0 => {
                out.push_str("present (a) { ");
                gen_block(rng, out, depth - 1, stmts);
                out.push_str("} else { ");
                gen_block(rng, out, depth - 1, stmts);
                out.push_str("} ");
            }
            5 if depth > 0 => {
                out.push_str("do { ");
                gen_block(rng, out, depth - 1, stmts);
                out.push_str("halt (); } abort (b); ");
            }
            6 if depth > 0 => {
                out.push_str("if (v > 2) { ");
                gen_block(rng, out, depth - 1, stmts);
                out.push_str("} ");
            }
            _ => out.push_str("await (); "),
        }
    }
}

fn check_equiv(src: &str, strategy: SplitStrategy, seeds: u64) -> Result<(), TestCaseError> {
    let Ok(design) = Compiler::new(Options { strategy }).compile_str(src, "m") else {
        // Some generated programs are (correctly) rejected; that is
        // consistent behavior, not a divergence.
        return Ok(());
    };
    let Ok(machine) = design.to_efsm(&Default::default()) else {
        return Ok(());
    };
    let a = design.signal("a").unwrap();
    let b = design.signal("b").unwrap();
    let x = design.signal("x").unwrap();
    let y = design.signal("y").unwrap();
    for seed in 0..seeds {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rt_i = design.new_rt().unwrap();
        let mut rt_m = design.new_rt().unwrap();
        let mut interp = esterel::Machine::new(design.program());
        let mut st = machine.init;
        for step in 0..50 {
            let mut present = HashSet::new();
            if rng.gen_bool(0.5) {
                present.insert(a);
            }
            if rng.gen_bool(0.3) {
                present.insert(b);
            }
            let r1 = interp
                .react(&present, &mut rt_i)
                .expect("constructive program");
            let r2 = machine.step(st, &present, &mut rt_m);
            st = r2.next;
            for sig in [x, y] {
                prop_assert_eq!(
                    r1.has(sig),
                    r2.emitted.contains(&sig),
                    "signal {:?} diverged at seed {} step {} in\n{}",
                    sig,
                    seed,
                    step,
                    src
                );
            }
        }
    }
    Ok(())
}

/// The observer attached to every generated program: an
/// `always`-style invariant ("outputs fire only under or right after
/// stimulus") that generated programs *can* genuinely violate, plus a
/// trivially-true guard. Both runners must reach identical verdicts.
const PIN_OBSERVER: &str = "
    observer pin(input pure a, input pure b, input pure x, input pure y) {
      always (~x | a | b);
      always (x | ~x);
    }";

/// Run the generated program under the interpreter and the compiled
/// EFSM with the pinned observer attached to each; the two monitors
/// must agree on the verdict at every step.
fn check_observer_equiv(src: &str, seeds: u64) -> Result<(), TestCaseError> {
    let full = format!("{src}\n{PIN_OBSERVER}");
    let Ok(design) = Compiler::default().compile_str(&full, "m") else {
        return Ok(());
    };
    let Ok(machine) = design.to_efsm(&Default::default()) else {
        return Ok(());
    };
    let prog = ecl_syntax::parse_str(&full).expect("generated program parses");
    let spec = Arc::new(
        ecl_observe::synthesize(prog.observer("pin").expect("observer present"))
            .expect("observer synthesizes"),
    );
    let a = design.signal("a").unwrap();
    let b = design.signal("b").unwrap();
    let x = design.signal("x").unwrap();
    let y = design.signal("y").unwrap();
    for seed in 0..seeds {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rt_i = design.new_rt().unwrap();
        let mut rt_m = design.new_rt().unwrap();
        let mut interp = esterel::Machine::new(design.program());
        let mut st = machine.init;
        let mut mon_i = Monitor::new(Arc::clone(&spec));
        let mut mon_m = Monitor::new(Arc::clone(&spec));
        for step in 0..50u64 {
            let mut present = HashSet::new();
            let mut names: Vec<String> = Vec::new();
            if rng.gen_bool(0.5) {
                present.insert(a);
                names.push("a".into());
            }
            if rng.gen_bool(0.3) {
                present.insert(b);
                names.push("b".into());
            }
            let r1 = interp
                .react(&present, &mut rt_i)
                .expect("constructive program");
            let r2 = machine.step(st, &present, &mut rt_m);
            st = r2.next;
            let mut names_i = names.clone();
            let mut names_m = names;
            for (sig, name) in [(x, "x"), (y, "y")] {
                if r1.has(sig) {
                    names_i.push(name.into());
                }
                if r2.emitted.contains(&sig) {
                    names_m.push(name.into());
                }
            }
            mon_i.step(step, &names_i);
            mon_m.step(step, &names_m);
            prop_assert_eq!(
                mon_i.verdict(),
                mon_m.verdict(),
                "observer verdict diverged at seed {} step {} in\n{}",
                seed,
                step,
                src
            );
        }
        prop_assert_eq!(mon_i.finish(), mon_m.finish(), "final verdicts in\n{}", src);
    }
    Ok(())
}

/// The fast path ≡ the compatibility shim: run the same random event
/// stream through `instant_ids` (bitset path) and the legacy `instant`
/// (name path) on two identical runners; the emitted *sets* must match
/// at every instant, and a monitor stepped by ids (pre-bound masks)
/// must reach the same verdict as one stepped by names.
fn check_ids_vs_names(src: &str, seeds: u64) -> Result<(), TestCaseError> {
    let full = format!("{src}\n{PIN_OBSERVER}");
    let Ok(design) = Compiler::default().compile_str(&full, "m") else {
        return Ok(());
    };
    let prog = ecl_syntax::parse_str(&full).expect("generated program parses");
    let spec = Arc::new(
        ecl_observe::synthesize(prog.observer("pin").expect("observer present"))
            .expect("observer synthesizes"),
    );
    let build = || {
        AsyncRunner::new(
            vec![design.clone()],
            &Default::default(),
            Default::default(),
            Default::default(),
        )
        .expect("runner builds")
    };
    for seed in 0..seeds {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut by_name = build();
        let mut by_id = build();
        let a = by_id.sig_table().lookup("a").expect("a interned");
        let b = by_id.sig_table().lookup("b").expect("b interned");
        let mut mon_names = Monitor::new(Arc::clone(&spec));
        let mut mon_ids = Monitor::new(Arc::clone(&spec));
        mon_ids.bind(by_id.sig_table());
        let mut out = BitSet::new();
        let mut present = BitSet::new();
        for step in 0..50u64 {
            let mut names: Vec<&str> = Vec::new();
            let mut ev = BitSet::new();
            if rng.gen_bool(0.5) {
                names.push("a");
                ev.insert(a.bit());
            }
            if rng.gen_bool(0.3) {
                names.push("b");
                ev.insert(b.bit());
            }
            let emitted_names = by_name.instant(&names).expect("name path runs");
            by_id.instant_ids(&ev, &mut out).expect("id path runs");
            // Identical emitted sets.
            let mut got: Vec<&str> = by_id.sig_table().names_of(&out).collect();
            let mut want: Vec<&str> = emitted_names.iter().map(String::as_str).collect();
            got.sort_unstable();
            want.sort_unstable();
            want.dedup();
            prop_assert_eq!(
                got,
                want,
                "emitted sets diverged at seed {seed} step {step}\n{src}"
            );
            // Identical observer verdicts, names vs pre-bound ids.
            present.clear();
            present.union_with(&ev);
            present.union_with(&out);
            let mut present_names: Vec<String> = by_id
                .sig_table()
                .names_of(&present)
                .map(str::to_string)
                .collect();
            present_names.sort_unstable();
            mon_names.step(step, &present_names);
            mon_ids.step_ids(step, &present, by_id.sig_table());
            prop_assert_eq!(
                mon_names.verdict(),
                mon_ids.verdict(),
                "verdicts diverged at seed {} step {} in\n{}",
                seed,
                step,
                src
            );
        }
        prop_assert_eq!(
            mon_names.finish(),
            mon_ids.finish(),
            "final verdicts in\n{}",
            src
        );
    }
    Ok(())
}

/// The compiled-table backend ≡ the s-graph walker, at two levels.
///
/// Machine level: from the same state with the same inputs, `step_table`
/// must produce the *exact* walker result — emissions in walk order,
/// next state, and `nodes_visited` (the cycle-cost proxy) — for pure
/// and mixed (fallback) states alike. Runner level: an [`AsyncRunner`]
/// on tables and one forced onto the walker must emit identical sets
/// every instant and drive a pinned observer to identical verdicts.
fn check_table_vs_sgraph(src: &str, seeds: u64) -> Result<(), TestCaseError> {
    let full = format!("{src}\n{PIN_OBSERVER}");
    let Ok(design) = Compiler::default().compile_str(&full, "m") else {
        return Ok(());
    };
    let Ok(machine) = design.to_efsm(&Default::default()) else {
        return Ok(());
    };
    let compiled = efsm::CompiledEfsm::compile(&machine);
    let a = design.signal("a").unwrap();
    let b = design.signal("b").unwrap();
    // Machine level: lockstep walk vs table scan.
    for seed in 0..seeds {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rt_w = design.new_rt().unwrap();
        let mut rt_t = design.new_rt().unwrap();
        let mut st_w = machine.init;
        let mut st_t = machine.init;
        for step in 0..50 {
            let mut bits = BitSet::new();
            if rng.gen_bool(0.5) {
                bits.insert(a.0 as usize);
            }
            if rng.gen_bool(0.3) {
                bits.insert(b.0 as usize);
            }
            let mut e_w = Vec::new();
            let mut e_t = Vec::new();
            let r_w = machine.step_bits(st_w, &bits, &mut rt_w, &mut e_w);
            let r_t = compiled.step_table(&machine, st_t, &bits, &mut rt_t, &mut e_t);
            prop_assert_eq!(
                e_w,
                e_t,
                "emission order diverged at seed {} step {} in\n{}",
                seed,
                step,
                src
            );
            prop_assert_eq!(
                r_w,
                r_t,
                "StepOut diverged at seed {} step {} in\n{}",
                seed,
                step,
                src
            );
            st_w = r_w.next;
            st_t = r_t.next;
        }
    }
    // Runner level, with the pinned observer on both backends.
    let prog = ecl_syntax::parse_str(&full).expect("generated program parses");
    let spec = Arc::new(
        ecl_observe::synthesize(prog.observer("pin").expect("observer present"))
            .expect("observer synthesizes"),
    );
    let build = || {
        AsyncRunner::new(
            vec![design.clone()],
            &Default::default(),
            Default::default(),
            Default::default(),
        )
        .expect("runner builds")
    };
    for seed in 0..seeds {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut walked = build();
        walked.set_use_tables(false);
        let mut tabled = build();
        prop_assert!(tabled.tables_enabled(), "tables are the default backend");
        let ga = tabled.sig_table().lookup("a").expect("a interned");
        let gb = tabled.sig_table().lookup("b").expect("b interned");
        let mut mon_w = Monitor::new(Arc::clone(&spec));
        let mut mon_t = Monitor::new(Arc::clone(&spec));
        mon_w.bind(walked.sig_table());
        mon_t.bind(tabled.sig_table());
        let (mut out_w, mut out_t) = (BitSet::new(), BitSet::new());
        let mut present = BitSet::new();
        for step in 0..50u64 {
            let mut ev = BitSet::new();
            if rng.gen_bool(0.5) {
                ev.insert(ga.bit());
            }
            if rng.gen_bool(0.3) {
                ev.insert(gb.bit());
            }
            walked.instant_ids(&ev, &mut out_w).expect("walker runs");
            tabled.instant_ids(&ev, &mut out_t).expect("table runs");
            prop_assert_eq!(
                &out_w,
                &out_t,
                "emitted sets diverged at seed {} step {} in\n{}",
                seed,
                step,
                src
            );
            present.clear();
            present.union_with(&ev);
            present.union_with(&out_t);
            mon_w.step_ids(step, &present, walked.sig_table());
            mon_t.step_ids(step, &present, tabled.sig_table());
            prop_assert_eq!(
                mon_w.verdict(),
                mon_t.verdict(),
                "observer verdicts diverged at seed {} step {} in\n{}",
                seed,
                step,
                src
            );
        }
        prop_assert_eq!(mon_w.finish(), mon_t.finish(), "final verdicts in\n{}", src);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Interpreter ≡ compiled EFSM under the paper's default strategy.
    #[test]
    fn interp_matches_efsm_max(seed in 0u64..10_000) {
        let src = gen_module(seed);
        check_equiv(&src, SplitStrategy::MaxEsterel, 3)?;
    }

    /// Same under the MinEsterel (Section 6) strategy.
    #[test]
    fn interp_matches_efsm_min(seed in 0u64..10_000) {
        let src = gen_module(seed);
        check_equiv(&src, SplitStrategy::MinEsterel, 3)?;
    }

    /// Interpreter ≡ EFSM on *observer verdicts*: random programs run
    /// with an always-style observer attached reach the same
    /// Pass/Fail{instant} on both execution paths.
    #[test]
    fn observer_verdicts_match(seed in 0u64..10_000) {
        let src = gen_module(seed);
        check_observer_equiv(&src, 3)?;
    }

    /// `instant_ids` ≡ the legacy `instant` shim: identical emitted
    /// sets and identical observer verdicts on random event streams.
    #[test]
    fn instant_ids_matches_name_shim(seed in 0u64..10_000) {
        let src = gen_module(seed);
        check_ids_vs_names(&src, 3)?;
    }

    /// The compiled transition tables ≡ the s-graph walker: exact
    /// per-step results at the machine level (emission order, next
    /// state, nodes visited) and identical emitted sets + observer
    /// verdicts at the runner level.
    #[test]
    fn table_matches_sgraph(seed in 0u64..10_000) {
        let src = gen_module(seed);
        check_table_vs_sgraph(&src, 3)?;
    }

    /// Both strategies agree with each other on outputs.
    #[test]
    fn strategies_agree(seed in 0u64..10_000) {
        let src = gen_module(seed);
        let d1 = Compiler::new(Options { strategy: SplitStrategy::MaxEsterel })
            .compile_str(&src, "m");
        let d2 = Compiler::new(Options { strategy: SplitStrategy::MinEsterel })
            .compile_str(&src, "m");
        let (Ok(d1), Ok(d2)) = (d1, d2) else { return Ok(()); };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut r1 = sim::runner::InterpRunner::new(&d1).unwrap();
        let mut r2 = sim::runner::InterpRunner::new(&d2).unwrap();
        for _ in 0..40 {
            let mut ev: Vec<&str> = Vec::new();
            if rng.gen_bool(0.5) { ev.push("a"); }
            if rng.gen_bool(0.3) { ev.push("b"); }
            let mut o1 = r1.instant(&ev).unwrap();
            let mut o2 = r2.instant(&ev).unwrap();
            o1.sort();
            o2.sort();
            prop_assert_eq!(o1, o2, "strategy divergence in\n{}", src);
        }
    }
}
