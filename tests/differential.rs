//! Property-based implementation verification (paper Section 2: "one
//! can perform ... implementation verification"): randomly generated
//! ECL programs must behave identically under the constructive
//! interpreter and the compiled EFSM, for random input sequences.

use ecl_core::{Compiler, Options, SplitStrategy};
use ecl_observe::Monitor;
use efsm::{Backend, BitSet};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use sim::runner::AsyncRunner;
use std::collections::HashSet;
use std::sync::Arc;

/// Generate a small random (constructive) ECL module over two inputs
/// and two outputs, built from the reactive statement grammar.
fn gen_module(seed: u64) -> String {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut body = String::new();
    let mut stmts = 0;
    gen_block(&mut rng, &mut body, 2, &mut stmts);
    format!(
        "module m(input pure a, input pure b, output pure x, output pure y) {{\n\
           int v;\n while (1) {{ await (a | b); {body} }} }}"
    )
}

fn gen_block(rng: &mut impl Rng, out: &mut String, depth: u32, stmts: &mut u32) {
    let n = rng.gen_range(1..=3);
    for _ in 0..n {
        if *stmts > 12 {
            return;
        }
        *stmts += 1;
        match rng.gen_range(0..8) {
            0 => out.push_str("emit (x); "),
            1 => out.push_str("emit (y); "),
            2 => out.push_str("v = v + 1; "),
            3 => out.push_str("await (b); "),
            4 if depth > 0 => {
                out.push_str("present (a) { ");
                gen_block(rng, out, depth - 1, stmts);
                out.push_str("} else { ");
                gen_block(rng, out, depth - 1, stmts);
                out.push_str("} ");
            }
            5 if depth > 0 => {
                out.push_str("do { ");
                gen_block(rng, out, depth - 1, stmts);
                out.push_str("halt (); } abort (b); ");
            }
            6 if depth > 0 => {
                out.push_str("if (v > 2) { ");
                gen_block(rng, out, depth - 1, stmts);
                out.push_str("} ");
            }
            _ => out.push_str("await (); "),
        }
    }
}

fn check_equiv(src: &str, strategy: SplitStrategy, seeds: u64) -> Result<(), TestCaseError> {
    let Ok(design) = Compiler::new(Options { strategy }).compile_str(src, "m") else {
        // Some generated programs are (correctly) rejected; that is
        // consistent behavior, not a divergence.
        return Ok(());
    };
    let Ok(machine) = design.to_efsm(&Default::default()) else {
        return Ok(());
    };
    let a = design.signal("a").unwrap();
    let b = design.signal("b").unwrap();
    let x = design.signal("x").unwrap();
    let y = design.signal("y").unwrap();
    for seed in 0..seeds {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rt_i = design.new_rt().unwrap();
        let mut rt_m = design.new_rt().unwrap();
        let mut interp = esterel::Machine::new(design.program());
        let mut st = machine.init;
        for step in 0..50 {
            let mut present = HashSet::new();
            if rng.gen_bool(0.5) {
                present.insert(a);
            }
            if rng.gen_bool(0.3) {
                present.insert(b);
            }
            let r1 = interp
                .react(&present, &mut rt_i)
                .expect("constructive program");
            let r2 = machine.step(st, &present, &mut rt_m);
            st = r2.next;
            for sig in [x, y] {
                prop_assert_eq!(
                    r1.has(sig),
                    r2.emitted.contains(&sig),
                    "signal {:?} diverged at seed {} step {} in\n{}",
                    sig,
                    seed,
                    step,
                    src
                );
            }
        }
    }
    Ok(())
}

/// Generate a data-heavy module: integer locals, an aggregate record,
/// valued signals read in predicates/actions/projections (including
/// signal-rooted chains through the aggregate output `q`), valued and
/// aggregate emits, inc/dec and compound assignments, for/do-while
/// loops, casts/sizeof/comma, a helper C function (exercising the
/// VM's statement-level walker fallback), and *deliberate* runtime errors
/// (divisions whose divisor is input-dependent, occasionally
/// out-of-bounds indices) — the workload of the `vm_matches_walker`
/// differential.
fn gen_data_module(seed: u64) -> String {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut body = String::new();
    let mut stmts = 0;
    gen_data_block(&mut rng, &mut body, 2, &mut stmts);
    format!(
        "typedef unsigned char byte;\n\
         typedef struct {{ byte d[4]; int w; }} rec_t;\n\
         int helper(int z) {{ return z * 3 - 1; }}\n\
         module m(input int a, input pure b, output int x, output rec_t q, output pure y) {{\n\
           int u; int v; rec_t r;\n\
           while (1) {{ await (a | b); {body} }} }}"
    )
}

fn gen_data_expr(rng: &mut impl Rng, depth: u32) -> String {
    if depth == 0 {
        // Leaves include signal-rooted projections (`q.*` reads the
        // aggregate output's current value — LoadSigOff/LoadSigAt).
        return match rng.gen_range(0..8) {
            0 => "u".to_string(),
            1 => "v".to_string(),
            2 => "a".to_string(),
            3 => "r.w".to_string(),
            4 => format!("r.d[{}]", rng.gen_range(0..4)),
            5 => format!("q.d[{}]", rng.gen_range(0..4)),
            6 => "q.w".to_string(),
            _ => format!("{}", rng.gen_range(-3..60)),
        };
    }
    let a = gen_data_expr(rng, depth - 1);
    let b = gen_data_expr(rng, depth - 1);
    match rng.gen_range(0..19) {
        0 => format!("({a} + {b})"),
        1 => format!("({a} - {b})"),
        2 => format!("({a} * {b})"),
        // Input-dependent divisors: zero sometimes → real error instants.
        3 => format!("({a} / (a & 3))"),
        4 => format!("({a} % ((v & 7) + {}))", rng.gen_range(0..2)),
        5 => format!("({a} < {b})"),
        6 => format!("({a} == {b})"),
        7 => format!("({a} & {b})"),
        8 => format!("({a} ^ {b})"),
        9 => format!("({a} << ({b} & 7))"),
        10 => format!("({a} >> 1)"),
        11 => format!("(-{a})"),
        12 => format!("(~{a})"),
        13 => format!("((byte) {a})"),
        14 => format!("((unsigned int) {a} >> 1)"),
        15 => format!("(sizeof(rec_t) + {a})"),
        16 => format!("(q.d[(u & 3)] + {a})"),
        17 => format!("(v = {a}, v & 31)"),
        _ => format!("(!{a})"),
    }
}

fn gen_data_block(rng: &mut impl Rng, out: &mut String, depth: u32, stmts: &mut u32) {
    let n = rng.gen_range(2..=4);
    for _ in 0..n {
        if *stmts > 14 {
            return;
        }
        *stmts += 1;
        match rng.gen_range(0..19) {
            0 => {
                let e = gen_data_expr(rng, 2);
                out.push_str(&format!("u = {e}; "));
            }
            1 => {
                let e = gen_data_expr(rng, 1);
                out.push_str(&format!("v = v + {e}; "));
            }
            2 => {
                // Sometimes a deliberately out-of-bounds index.
                let i = if rng.gen_bool(0.15) {
                    "(a & 7)".to_string()
                } else {
                    format!("{}", rng.gen_range(0..4))
                };
                let e = gen_data_expr(rng, 1);
                out.push_str(&format!("r.d[{i}] = {e}; "));
            }
            3 => out.push_str("r.w = r.w + r.d[1] + 1; "),
            4 if depth > 0 => {
                let c = gen_data_expr(rng, 1);
                out.push_str(&format!("if ({c}) {{ "));
                gen_data_block(rng, out, depth - 1, stmts);
                out.push_str("} else { ");
                gen_data_block(rng, out, depth - 1, stmts);
                out.push_str("} ");
            }
            5 if depth > 0 => {
                out.push_str("u = u & 15; while (u > 0) { u = u - 1; ");
                gen_data_block(rng, out, depth - 1, stmts);
                out.push_str("} ");
            }
            // Outside the bytecode subset → statement-level fallback.
            6 => out.push_str("v = helper(v & 63); "),
            7 => {
                let e = gen_data_expr(rng, 2);
                out.push_str(&format!("emit_v (x, {e}); "));
            }
            8 => out.push_str("emit (y); "),
            9 => out.push_str("await (b); "),
            10 => out.push_str("u = u + (a > 2 ? v : r.w); "),
            11 => {
                let c = gen_data_expr(rng, 1);
                out.push_str(&format!("if ({c}) {{ emit_v (x, v); }} "));
            }
            // Inc/dec and compound assignments (pre/post, += families).
            12 => out.push_str("u++; --v; r.w += u; "),
            13 => {
                let e = gen_data_expr(rng, 1);
                out.push_str(&format!("v ^= {e}; u <<= 1; u &= 255; "));
            }
            // For / do-while with per-iteration burn placement.
            14 if depth > 0 => {
                out.push_str("for (u = 0; u < (a & 7); u++) { ");
                gen_data_block(rng, out, depth - 1, stmts);
                out.push_str("} ");
            }
            15 if depth > 0 => {
                out.push_str("v = v & 7; do { v--; ");
                gen_data_block(rng, out, depth - 1, stmts);
                out.push_str("} while (v > 0); ");
            }
            // Aggregate emit (EmitCopy) feeding the `q.*` signal reads.
            16 => out.push_str("emit_v (q, r); "),
            17 => out.push_str("u = (v += r.d[2], v) % 97 + sizeof(int); "),
            _ => out.push_str("v = v + r.d[u & 3] - q.d[v & 3]; "),
        }
    }
}

/// The bytecode VM ≡ the tree-walker, hook for hook. Two runtimes
/// drive the same compiled EFSM in lockstep — one on the VM (the
/// default), one forced onto the walker — and must agree every step on
/// emissions and next state, the emitted value of `x`, every root-frame
/// variable, error presence (message *and* span), the
/// `pred_evals`/`action_runs` counters, and — on error-free steps —
/// the exact fuel consumed (the kernel's cycle-charge source).
fn check_vm_vs_walker(src: &str, seeds: u64) -> Result<(), TestCaseError> {
    let Ok(design) = Compiler::default().compile_str(src, "m") else {
        return Ok(());
    };
    let Ok(machine) = design.to_efsm(&Default::default()) else {
        return Ok(());
    };
    let a = design.signal("a").unwrap();
    let b = design.signal("b").unwrap();
    for seed in 0..seeds {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rt_vm = design.new_rt().unwrap();
        let mut rt_w = design.new_rt().unwrap();
        prop_assert!(
            rt_vm.backend() == Backend::Compiled,
            "compiled is the default backend"
        );
        rt_w.set_backend(Backend::Walker);
        // Small fuel budget: generated programs can loop for real, and
        // exhaustion is itself a behavior the two backends must share.
        rt_vm.machine_mut().set_fuel(200_000);
        rt_w.machine_mut().set_fuel(200_000);
        let mut st_vm = machine.init;
        let mut st_w = machine.init;
        for step in 0..60 {
            let mut bits = BitSet::new();
            if rng.gen_bool(0.6) {
                let val = rng.gen_range(-4i64..12);
                rt_vm.set_input_i64("a", val).unwrap();
                rt_w.set_input_i64("a", val).unwrap();
                bits.insert(a.0 as usize);
            }
            if rng.gen_bool(0.3) {
                bits.insert(b.0 as usize);
            }
            let fuel_before = rt_vm.machine().fuel();
            prop_assert_eq!(fuel_before, rt_w.machine().fuel());
            let mut e_vm = Vec::new();
            let mut e_w = Vec::new();
            let r_vm = machine.step_bits(st_vm, &bits, &mut rt_vm, &mut e_vm);
            let r_w = machine.step_bits(st_w, &bits, &mut rt_w, &mut e_w);
            st_vm = r_vm.next;
            st_w = r_w.next;
            prop_assert_eq!(
                &e_vm,
                &e_w,
                "emissions diverged at seed {} step {} in\n{}",
                seed,
                step,
                src
            );
            prop_assert_eq!(
                r_vm,
                r_w,
                "StepOut diverged at seed {} step {} in\n{}",
                seed,
                step,
                src
            );
            let err_vm = rt_vm.take_error();
            let err_w = rt_w.take_error();
            // Fuel exhaustion reports the span where the counter hit
            // zero — burn coalescing legitimately shifts it within the
            // exhausted expression, so compare those by message.
            let fuel_err = err_vm.as_ref().is_some_and(|e| e.msg.contains("fuel"));
            if fuel_err {
                prop_assert_eq!(
                    err_vm.as_ref().map(|e| &e.msg),
                    err_w.as_ref().map(|e| &e.msg),
                    "errors diverged at seed {} step {} in\n{}",
                    seed,
                    step,
                    src
                );
            } else {
                prop_assert_eq!(
                    &err_vm,
                    &err_w,
                    "errors diverged at seed {} step {} in\n{}",
                    seed,
                    step,
                    src
                );
            }
            prop_assert_eq!(rt_vm.pred_evals, rt_w.pred_evals, "pred_evals diverged");
            prop_assert_eq!(rt_vm.action_runs, rt_w.action_runs, "action_runs diverged");
            prop_assert_eq!(
                rt_vm.signal_value_by_name("x"),
                rt_w.signal_value_by_name("x"),
                "value of x diverged at seed {} step {} in\n{}",
                seed,
                step,
                src
            );
            // Whole-frame comparison: every variable slot byte-equal.
            for ((n1, v1), (n2, v2)) in rt_vm
                .machine()
                .root_entries()
                .zip(rt_w.machine().root_entries())
            {
                prop_assert_eq!(n1, n2);
                prop_assert_eq!(
                    v1,
                    v2,
                    "variable `{}` diverged at seed {} step {} in\n{}",
                    n1,
                    seed,
                    step,
                    src
                );
            }
            if err_vm.is_none() {
                // Error-free steps consume identical fuel (burn
                // parity); after an error the tails legitimately differ
                // (coalesced burns stop at the error) — resynchronize.
                prop_assert_eq!(
                    rt_vm.machine().fuel(),
                    rt_w.machine().fuel(),
                    "fuel diverged at seed {} step {} in\n{}",
                    seed,
                    step,
                    src
                );
            } else {
                let sync = rt_vm.machine().fuel().min(rt_w.machine().fuel());
                rt_vm.machine_mut().set_fuel(sync);
                rt_w.machine_mut().set_fuel(sync);
            }
        }
    }
    Ok(())
}

/// The fused instant programs ≡ the s-graph walker, on the *data-heavy*
/// grammar (mixed states: predicates, actions and valued emits
/// interleaved with presence tests). One runtime steps through
/// `step_table` — mask scan + per-row residual program — the other
/// through the reference `step_bits` walk; both keep their data hooks
/// on the default bytecode VM so the comparison isolates control-path
/// fusion. They must agree every step on emission order, `StepOut`
/// (next state *and* `nodes_visited`, the cycle-cost proxy), error
/// presence, the `pred_evals`/`action_runs` hook counters, the emitted
/// value of `x`, every root-frame variable, and — on error-free steps
/// — the exact fuel consumed.
fn check_fused_vs_walker(src: &str, seeds: u64) -> Result<(), TestCaseError> {
    let Ok(design) = Compiler::default().compile_str(src, "m") else {
        return Ok(());
    };
    let Ok(machine) = design.to_efsm(&Default::default()) else {
        return Ok(());
    };
    let compiled = efsm::CompiledEfsm::compile(&machine);
    let a = design.signal("a").unwrap();
    let b = design.signal("b").unwrap();
    for seed in 0..seeds {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rt_f = design.new_rt().unwrap();
        let mut rt_w = design.new_rt().unwrap();
        rt_f.machine_mut().set_fuel(200_000);
        rt_w.machine_mut().set_fuel(200_000);
        let mut st_f = machine.init;
        let mut st_w = machine.init;
        for step in 0..60 {
            let mut bits = BitSet::new();
            if rng.gen_bool(0.6) {
                let val = rng.gen_range(-4i64..12);
                rt_f.set_input_i64("a", val).unwrap();
                rt_w.set_input_i64("a", val).unwrap();
                bits.insert(a.0 as usize);
            }
            if rng.gen_bool(0.3) {
                bits.insert(b.0 as usize);
            }
            let mut e_f = Vec::new();
            let mut e_w = Vec::new();
            let r_f = compiled.step_table(&machine, st_f, &bits, &mut rt_f, &mut e_f);
            let r_w = machine.step_bits(st_w, &bits, &mut rt_w, &mut e_w);
            st_f = r_f.next;
            st_w = r_w.next;
            prop_assert_eq!(
                &e_f,
                &e_w,
                "emission order diverged at seed {} step {} in\n{}",
                seed,
                step,
                src
            );
            prop_assert_eq!(
                r_f,
                r_w,
                "StepOut diverged at seed {} step {} in\n{}",
                seed,
                step,
                src
            );
            // Both sides run the *same* VM data hooks, so errors must
            // match exactly — message and span included.
            let err_f = rt_f.take_error();
            let err_w = rt_w.take_error();
            prop_assert_eq!(
                &err_f,
                &err_w,
                "errors diverged at seed {} step {} in\n{}",
                seed,
                step,
                src
            );
            prop_assert_eq!(rt_f.pred_evals, rt_w.pred_evals, "pred_evals diverged");
            prop_assert_eq!(rt_f.action_runs, rt_w.action_runs, "action_runs diverged");
            prop_assert_eq!(
                rt_f.signal_value_by_name("x"),
                rt_w.signal_value_by_name("x"),
                "value of x diverged at seed {} step {} in\n{}",
                seed,
                step,
                src
            );
            for ((n1, v1), (n2, v2)) in rt_f
                .machine()
                .root_entries()
                .zip(rt_w.machine().root_entries())
            {
                prop_assert_eq!(n1, n2);
                prop_assert_eq!(
                    v1,
                    v2,
                    "variable `{}` diverged at seed {} step {} in\n{}",
                    n1,
                    seed,
                    step,
                    src
                );
            }
            if err_f.is_none() {
                prop_assert_eq!(
                    rt_f.machine().fuel(),
                    rt_w.machine().fuel(),
                    "fuel diverged at seed {} step {} in\n{}",
                    seed,
                    step,
                    src
                );
            } else {
                let sync = rt_f.machine().fuel().min(rt_w.machine().fuel());
                rt_f.machine_mut().set_fuel(sync);
                rt_w.machine_mut().set_fuel(sync);
            }
        }
    }
    Ok(())
}

/// The observer attached to every generated program: an
/// `always`-style invariant ("outputs fire only under or right after
/// stimulus") that generated programs *can* genuinely violate, plus a
/// trivially-true guard. Both runners must reach identical verdicts.
const PIN_OBSERVER: &str = "
    observer pin(input pure a, input pure b, input pure x, input pure y) {
      always (~x | a | b);
      always (x | ~x);
    }";

/// Run the generated program under the interpreter and the compiled
/// EFSM with the pinned observer attached to each; the two monitors
/// must agree on the verdict at every step.
fn check_observer_equiv(src: &str, seeds: u64) -> Result<(), TestCaseError> {
    let full = format!("{src}\n{PIN_OBSERVER}");
    let Ok(design) = Compiler::default().compile_str(&full, "m") else {
        return Ok(());
    };
    let Ok(machine) = design.to_efsm(&Default::default()) else {
        return Ok(());
    };
    let prog = ecl_syntax::parse_str(&full).expect("generated program parses");
    let spec = Arc::new(
        ecl_observe::synthesize(prog.observer("pin").expect("observer present"))
            .expect("observer synthesizes"),
    );
    let a = design.signal("a").unwrap();
    let b = design.signal("b").unwrap();
    let x = design.signal("x").unwrap();
    let y = design.signal("y").unwrap();
    for seed in 0..seeds {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rt_i = design.new_rt().unwrap();
        let mut rt_m = design.new_rt().unwrap();
        let mut interp = esterel::Machine::new(design.program());
        let mut st = machine.init;
        let mut mon_i = Monitor::new(Arc::clone(&spec));
        let mut mon_m = Monitor::new(Arc::clone(&spec));
        for step in 0..50u64 {
            let mut present = HashSet::new();
            let mut names: Vec<String> = Vec::new();
            if rng.gen_bool(0.5) {
                present.insert(a);
                names.push("a".into());
            }
            if rng.gen_bool(0.3) {
                present.insert(b);
                names.push("b".into());
            }
            let r1 = interp
                .react(&present, &mut rt_i)
                .expect("constructive program");
            let r2 = machine.step(st, &present, &mut rt_m);
            st = r2.next;
            let mut names_i = names.clone();
            let mut names_m = names;
            for (sig, name) in [(x, "x"), (y, "y")] {
                if r1.has(sig) {
                    names_i.push(name.into());
                }
                if r2.emitted.contains(&sig) {
                    names_m.push(name.into());
                }
            }
            mon_i.step(step, &names_i);
            mon_m.step(step, &names_m);
            prop_assert_eq!(
                mon_i.verdict(),
                mon_m.verdict(),
                "observer verdict diverged at seed {} step {} in\n{}",
                seed,
                step,
                src
            );
        }
        prop_assert_eq!(mon_i.finish(), mon_m.finish(), "final verdicts in\n{}", src);
    }
    Ok(())
}

/// The fast path ≡ the compatibility shim: run the same random event
/// stream through `instant_ids` (bitset path) and the legacy `instant`
/// (name path) on two identical runners; the emitted *sets* must match
/// at every instant, and a monitor stepped by ids (pre-bound masks)
/// must reach the same verdict as one stepped by names.
fn check_ids_vs_names(src: &str, seeds: u64) -> Result<(), TestCaseError> {
    let full = format!("{src}\n{PIN_OBSERVER}");
    let Ok(design) = Compiler::default().compile_str(&full, "m") else {
        return Ok(());
    };
    let prog = ecl_syntax::parse_str(&full).expect("generated program parses");
    let spec = Arc::new(
        ecl_observe::synthesize(prog.observer("pin").expect("observer present"))
            .expect("observer synthesizes"),
    );
    let build = || {
        AsyncRunner::new(
            vec![design.clone()],
            &Default::default(),
            Default::default(),
            Default::default(),
        )
        .expect("runner builds")
    };
    for seed in 0..seeds {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut by_name = build();
        let mut by_id = build();
        let a = by_id.sig_table().lookup("a").expect("a interned");
        let b = by_id.sig_table().lookup("b").expect("b interned");
        let mut mon_names = Monitor::new(Arc::clone(&spec));
        let mut mon_ids = Monitor::new(Arc::clone(&spec));
        mon_ids.bind(by_id.sig_table());
        let mut out = BitSet::new();
        let mut present = BitSet::new();
        for step in 0..50u64 {
            let mut names: Vec<&str> = Vec::new();
            let mut ev = BitSet::new();
            if rng.gen_bool(0.5) {
                names.push("a");
                ev.insert(a.bit());
            }
            if rng.gen_bool(0.3) {
                names.push("b");
                ev.insert(b.bit());
            }
            let emitted_names = by_name.instant(&names).expect("name path runs");
            by_id.instant_ids(&ev, &mut out).expect("id path runs");
            // Identical emitted sets.
            let mut got: Vec<&str> = by_id.sig_table().names_of(&out).collect();
            let mut want: Vec<&str> = emitted_names.iter().map(String::as_str).collect();
            got.sort_unstable();
            want.sort_unstable();
            want.dedup();
            prop_assert_eq!(
                got,
                want,
                "emitted sets diverged at seed {seed} step {step}\n{src}"
            );
            // Identical observer verdicts, names vs pre-bound ids.
            present.clear();
            present.union_with(&ev);
            present.union_with(&out);
            let mut present_names: Vec<String> = by_id
                .sig_table()
                .names_of(&present)
                .map(str::to_string)
                .collect();
            present_names.sort_unstable();
            mon_names.step(step, &present_names);
            mon_ids.step_ids(step, &present, by_id.sig_table());
            prop_assert_eq!(
                mon_names.verdict(),
                mon_ids.verdict(),
                "verdicts diverged at seed {} step {} in\n{}",
                seed,
                step,
                src
            );
        }
        prop_assert_eq!(
            mon_names.finish(),
            mon_ids.finish(),
            "final verdicts in\n{}",
            src
        );
    }
    Ok(())
}

/// The compiled-table backend ≡ the s-graph walker, at two levels.
///
/// Machine level: from the same state with the same inputs, `step_table`
/// must produce the *exact* walker result — emissions in walk order,
/// next state, and `nodes_visited` (the cycle-cost proxy) — for pure
/// and mixed (fallback) states alike. Runner level: an [`AsyncRunner`]
/// on tables and one forced onto the walker must emit identical sets
/// every instant and drive a pinned observer to identical verdicts.
fn check_table_vs_sgraph(src: &str, seeds: u64) -> Result<(), TestCaseError> {
    let full = format!("{src}\n{PIN_OBSERVER}");
    let Ok(design) = Compiler::default().compile_str(&full, "m") else {
        return Ok(());
    };
    let Ok(machine) = design.to_efsm(&Default::default()) else {
        return Ok(());
    };
    let compiled = efsm::CompiledEfsm::compile(&machine);
    let a = design.signal("a").unwrap();
    let b = design.signal("b").unwrap();
    // Machine level: lockstep walk vs table scan.
    for seed in 0..seeds {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rt_w = design.new_rt().unwrap();
        let mut rt_t = design.new_rt().unwrap();
        let mut st_w = machine.init;
        let mut st_t = machine.init;
        for step in 0..50 {
            let mut bits = BitSet::new();
            if rng.gen_bool(0.5) {
                bits.insert(a.0 as usize);
            }
            if rng.gen_bool(0.3) {
                bits.insert(b.0 as usize);
            }
            let mut e_w = Vec::new();
            let mut e_t = Vec::new();
            let r_w = machine.step_bits(st_w, &bits, &mut rt_w, &mut e_w);
            let r_t = compiled.step_table(&machine, st_t, &bits, &mut rt_t, &mut e_t);
            prop_assert_eq!(
                e_w,
                e_t,
                "emission order diverged at seed {} step {} in\n{}",
                seed,
                step,
                src
            );
            prop_assert_eq!(
                r_w,
                r_t,
                "StepOut diverged at seed {} step {} in\n{}",
                seed,
                step,
                src
            );
            st_w = r_w.next;
            st_t = r_t.next;
        }
    }
    // Runner level, with the pinned observer on both backends.
    let prog = ecl_syntax::parse_str(&full).expect("generated program parses");
    let spec = Arc::new(
        ecl_observe::synthesize(prog.observer("pin").expect("observer present"))
            .expect("observer synthesizes"),
    );
    let build = || {
        AsyncRunner::new(
            vec![design.clone()],
            &Default::default(),
            Default::default(),
            Default::default(),
        )
        .expect("runner builds")
    };
    for seed in 0..seeds {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut walked = build();
        walked.set_backend(Backend::Walker);
        let mut tabled = build();
        prop_assert!(
            tabled.backend() == Backend::Compiled,
            "compiled is the default backend"
        );
        let ga = tabled.sig_table().lookup("a").expect("a interned");
        let gb = tabled.sig_table().lookup("b").expect("b interned");
        let mut mon_w = Monitor::new(Arc::clone(&spec));
        let mut mon_t = Monitor::new(Arc::clone(&spec));
        mon_w.bind(walked.sig_table());
        mon_t.bind(tabled.sig_table());
        let (mut out_w, mut out_t) = (BitSet::new(), BitSet::new());
        let mut present = BitSet::new();
        for step in 0..50u64 {
            let mut ev = BitSet::new();
            if rng.gen_bool(0.5) {
                ev.insert(ga.bit());
            }
            if rng.gen_bool(0.3) {
                ev.insert(gb.bit());
            }
            walked.instant_ids(&ev, &mut out_w).expect("walker runs");
            tabled.instant_ids(&ev, &mut out_t).expect("table runs");
            prop_assert_eq!(
                &out_w,
                &out_t,
                "emitted sets diverged at seed {} step {} in\n{}",
                seed,
                step,
                src
            );
            present.clear();
            present.union_with(&ev);
            present.union_with(&out_t);
            mon_w.step_ids(step, &present, walked.sig_table());
            mon_t.step_ids(step, &present, tabled.sig_table());
            prop_assert_eq!(
                mon_w.verdict(),
                mon_t.verdict(),
                "observer verdicts diverged at seed {} step {} in\n{}",
                seed,
                step,
                src
            );
        }
        prop_assert_eq!(mon_w.finish(), mon_t.finish(), "final verdicts in\n{}", src);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Interpreter ≡ compiled EFSM under the paper's default strategy.
    #[test]
    fn interp_matches_efsm_max(seed in 0u64..10_000) {
        let src = gen_module(seed);
        check_equiv(&src, SplitStrategy::MaxEsterel, 3)?;
    }

    /// Same under the MinEsterel (Section 6) strategy.
    #[test]
    fn interp_matches_efsm_min(seed in 0u64..10_000) {
        let src = gen_module(seed);
        check_equiv(&src, SplitStrategy::MinEsterel, 3)?;
    }

    /// Interpreter ≡ EFSM on *observer verdicts*: random programs run
    /// with an always-style observer attached reach the same
    /// Pass/Fail{instant} on both execution paths.
    #[test]
    fn observer_verdicts_match(seed in 0u64..10_000) {
        let src = gen_module(seed);
        check_observer_equiv(&src, 3)?;
    }

    /// `instant_ids` ≡ the legacy `instant` shim: identical emitted
    /// sets and identical observer verdicts on random event streams.
    #[test]
    fn instant_ids_matches_name_shim(seed in 0u64..10_000) {
        let src = gen_module(seed);
        check_ids_vs_names(&src, 3)?;
    }

    /// The compiled transition tables ≡ the s-graph walker: exact
    /// per-step results at the machine level (emission order, next
    /// state, nodes visited) and identical emitted sets + observer
    /// verdicts at the runner level.
    #[test]
    fn table_matches_sgraph(seed in 0u64..10_000) {
        let src = gen_module(seed);
        check_table_vs_sgraph(&src, 3)?;
    }

    /// The bytecode VM ≡ the tree-walker on generated data-heavy
    /// programs (ints, bools, if/while, signal reads and projections,
    /// valued emits, function-call fallbacks, deliberate runtime
    /// errors): identical emissions, frames, signal values, error
    /// instants, hook counters and fuel.
    #[test]
    fn vm_matches_walker(seed in 0u64..10_000) {
        let src = gen_data_module(seed);
        check_vm_vs_walker(&src, 3)?;
    }

    /// The fused instant programs ≡ the s-graph walker on the same
    /// data-heavy grammar (mixed states with preds, actions and valued
    /// emits between presence tests): exact emission order, `StepOut`
    /// including `nodes_visited`, hook counters, frames, signal values
    /// and fuel, every step.
    #[test]
    fn fused_matches_walker(seed in 0u64..10_000) {
        let src = gen_data_module(seed);
        check_fused_vs_walker(&src, 3)?;
    }

    /// Both strategies agree with each other on outputs.
    #[test]
    fn strategies_agree(seed in 0u64..10_000) {
        let src = gen_module(seed);
        let d1 = Compiler::new(Options { strategy: SplitStrategy::MaxEsterel })
            .compile_str(&src, "m");
        let d2 = Compiler::new(Options { strategy: SplitStrategy::MinEsterel })
            .compile_str(&src, "m");
        let (Ok(d1), Ok(d2)) = (d1, d2) else { return Ok(()); };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut r1 = sim::runner::InterpRunner::new(&d1).unwrap();
        let mut r2 = sim::runner::InterpRunner::new(&d2).unwrap();
        for _ in 0..40 {
            let mut ev: Vec<&str> = Vec::new();
            if rng.gen_bool(0.5) { ev.push("a"); }
            if rng.gen_bool(0.3) { ev.push("b"); }
            let mut o1 = r1.instant(&ev).unwrap();
            let mut o2 = r2.instant(&ev).unwrap();
            o1.sort();
            o2.sort();
            prop_assert_eq!(o1, o2, "strategy divergence in\n{}", src);
        }
    }
}
