//! EFSM optimization passes.
//!
//! These are the "logic optimization algorithms" the paper says apply to
//! the EFSM (Section 3): the s-graph analogue of two-level minimization
//! (node sharing + dead-test elimination) and classical FSM state
//! minimization by partition refinement. All passes preserve observable
//! behavior: the sequence of emissions/actions for every input sequence.

use crate::machine::{Efsm, State, StateId};
use crate::sgraph::{Node, NodeId};
use std::collections::HashMap;

/// Outcome of running [`optimize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptReport {
    /// Nodes before / after.
    pub nodes_before: u32,
    /// Nodes after all passes.
    pub nodes_after: u32,
    /// States before / after.
    pub states_before: u32,
    /// States after all passes.
    pub states_after: u32,
}

/// Run the full pipeline: reduce, prune, minimize, reduce again.
pub fn optimize(m: &mut Efsm) -> OptReport {
    let before = m.stats();
    reduce(m);
    prune_unreachable(m);
    minimize_states(m);
    reduce(m);
    let after = m.stats();
    OptReport {
        nodes_before: before.nodes,
        nodes_after: after.nodes,
        states_before: before.states,
        states_after: after.states,
    }
}

/// Hash-consing reduction + dead-test elimination.
///
/// Rebuilds the node arena bottom-up so that structurally identical
/// subgraphs are shared, and replaces any test whose branches are the
/// same node with that node (the BDD reduction rules applied to
/// s-graphs). Unreferenced nodes are dropped.
pub fn reduce(m: &mut Efsm) {
    let mut new_nodes: Vec<Node> = Vec::new();
    let mut intern: HashMap<Node, NodeId> = HashMap::new();
    let mut memo: HashMap<NodeId, NodeId> = HashMap::new();

    // Iterative post-order rebuild (avoids recursion depth limits).
    fn rebuild(
        old: &[Node],
        root: NodeId,
        new_nodes: &mut Vec<Node>,
        intern: &mut HashMap<Node, NodeId>,
        memo: &mut HashMap<NodeId, NodeId>,
    ) -> NodeId {
        let mut stack = vec![(root, false)];
        while let Some((id, children_done)) = stack.pop() {
            if memo.contains_key(&id) {
                continue;
            }
            if !children_done {
                stack.push((id, true));
                for s in old[id.0 as usize].successors() {
                    if !memo.contains_key(&s) {
                        stack.push((s, false));
                    }
                }
                continue;
            }
            let mapped = old[id.0 as usize].map_successors(|s| memo[&s]);
            // Dead-test elimination: both branches identical.
            let mapped = match mapped {
                Node::Test { then_, else_, .. } if then_ == else_ => {
                    memo.insert(id, then_);
                    continue;
                }
                Node::TestPred { then_, else_, .. } if then_ == else_ => {
                    memo.insert(id, then_);
                    continue;
                }
                other => other,
            };
            let nid = *intern.entry(mapped).or_insert_with(|| {
                new_nodes.push(mapped);
                NodeId(new_nodes.len() as u32 - 1)
            });
            memo.insert(id, nid);
        }
        memo[&root]
    }

    let mut new_states = Vec::with_capacity(m.states.len());
    for st in &m.states {
        let root = rebuild(&m.nodes, st.root, &mut new_nodes, &mut intern, &mut memo);
        new_states.push(State {
            name: st.name.clone(),
            root,
        });
    }
    m.nodes = new_nodes;
    m.states = new_states;
}

/// Remove control states unreachable from the initial state, renumbering
/// the survivors (and their `Goto` targets).
pub fn prune_unreachable(m: &mut Efsm) {
    let n = m.states.len();
    let mut seen = vec![false; n];
    let mut stack = vec![m.init];
    seen[m.init.0 as usize] = true;
    while let Some(s) = stack.pop() {
        for id in crate::sgraph::reachable_nodes(&m.nodes, m.states[s.0 as usize].root) {
            if let Node::Goto { target } = m.nodes[id.0 as usize] {
                if !seen[target.0 as usize] {
                    seen[target.0 as usize] = true;
                    stack.push(target);
                }
            }
        }
    }
    if seen.iter().all(|x| *x) {
        return;
    }
    // Renumber.
    let mut remap = vec![StateId(u32::MAX); n];
    let mut kept = Vec::new();
    for (i, s) in m.states.iter().enumerate() {
        if seen[i] {
            remap[i] = StateId(kept.len() as u32);
            kept.push(s.clone());
        }
    }
    // Only rewrite nodes that are live in kept states — nodes of pruned
    // states keep stale targets and are garbage-collected right after.
    let mut live = vec![false; m.nodes.len()];
    for st in &kept {
        for id in crate::sgraph::reachable_nodes(&m.nodes, st.root) {
            live[id.0 as usize] = true;
        }
    }
    for (i, node) in m.nodes.iter_mut().enumerate() {
        if live[i] {
            *node = node.map_target(|t| remap[t.0 as usize]);
        }
    }
    m.init = remap[m.init.0 as usize];
    m.states = kept;
    // Drop the dead nodes (they may reference pruned states).
    reduce(m);
}

/// Observational state minimization by partition refinement.
///
/// Two states are equivalent when their s-graphs are structurally equal
/// after replacing `Goto` targets with equivalence-class indices.
/// Iterates to a fixpoint (Moore-style refinement), then merges each
/// class into its representative.
pub fn minimize_states(m: &mut Efsm) {
    let n = m.states.len();
    if n <= 1 {
        return;
    }
    // Start with a single class.
    let mut class: Vec<u32> = vec![0; n];
    loop {
        // Signature of each state under the current classes.
        let mut sigs: Vec<String> = Vec::with_capacity(n);
        for st in &m.states {
            sigs.push(signature(&m.nodes, st.root, &class));
        }
        let mut next_class = vec![0u32; n];
        let mut index: HashMap<(u32, &str), u32> = HashMap::new();
        let mut count = 0u32;
        for i in 0..n {
            let key = (class[i], sigs[i].as_str());
            let c = *index.entry(key).or_insert_with(|| {
                let c = count;
                count += 1;
                c
            });
            next_class[i] = c;
        }
        let stable = next_class == class;
        class = next_class;
        if stable {
            break;
        }
    }
    let num_classes = class.iter().copied().max().map(|c| c + 1).unwrap_or(0) as usize;
    if num_classes == n {
        return; // already minimal
    }
    // Representative per class = lowest-numbered member.
    let mut rep: Vec<Option<StateId>> = vec![None; num_classes];
    for (i, c) in class.iter().enumerate() {
        if rep[*c as usize].is_none() {
            rep[*c as usize] = Some(StateId(i as u32));
        }
    }
    // New state list: one per class, ordered by representative.
    let mut reps: Vec<StateId> = rep.iter().map(|r| r.expect("class has a member")).collect();
    reps.sort();
    let mut class_of_rep: HashMap<StateId, u32> = HashMap::new();
    for (new_idx, r) in reps.iter().enumerate() {
        class_of_rep.insert(*r, new_idx as u32);
    }
    // old state -> new id (via its class representative).
    let remap: Vec<StateId> = (0..n)
        .map(|i| {
            let r = rep[class[i] as usize].expect("class has a member");
            StateId(class_of_rep[&r])
        })
        .collect();
    for node in &mut m.nodes {
        *node = node.map_target(|t| remap[t.0 as usize]);
    }
    m.init = remap[m.init.0 as usize];
    m.states = reps
        .iter()
        .map(|r| m.states[r.0 as usize].clone())
        .collect();
}

/// Canonical string signature of an s-graph with state classes
/// substituted for targets. Memoized per call via an explicit stack.
fn signature(nodes: &[Node], root: NodeId, class: &[u32]) -> String {
    fn go(nodes: &[Node], id: NodeId, class: &[u32], memo: &mut HashMap<NodeId, String>) -> String {
        if let Some(s) = memo.get(&id) {
            return s.clone();
        }
        let s = match nodes[id.0 as usize] {
            Node::Test { sig, then_, else_ } => format!(
                "T{}({},{})",
                sig.0,
                go(nodes, then_, class, memo),
                go(nodes, else_, class, memo)
            ),
            Node::TestPred { pred, then_, else_ } => format!(
                "P{}({},{})",
                pred.0,
                go(nodes, then_, class, memo),
                go(nodes, else_, class, memo)
            ),
            Node::Do { action, next } => {
                format!("D{};{}", action.0, go(nodes, next, class, memo))
            }
            Node::Emit { sig, value, next } => format!(
                "E{}{};{}",
                sig.0,
                value.map(|v| format!("v{}", v.0)).unwrap_or_default(),
                go(nodes, next, class, memo)
            ),
            Node::Goto { target } => format!("G{}", class[target.0 as usize]),
        };
        memo.insert(id, s.clone());
        s
    }
    go(nodes, root, class, &mut HashMap::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::EfsmBuilder;
    use crate::NoHooks;
    use std::collections::HashSet;

    /// A machine with two behaviorally identical states (1 and 2).
    fn redundant() -> Efsm {
        let mut b = EfsmBuilder::new("redundant");
        let a = b.input("a");
        let o = b.output("o");
        // s0: a ? goto 1 : goto 2
        let g1 = b.goto(StateId(1));
        let g2 = b.goto(StateId(2));
        let r0 = b.test(a, g1, g2);
        b.state("s0", r0);
        // s1: a ? emit o; goto 0 : goto 1
        let g0 = b.goto(StateId(0));
        let e1 = b.emit(o, g0);
        let g1b = b.goto(StateId(1));
        let r1 = b.test(a, e1, g1b);
        b.state("s1", r1);
        // s2: a ? emit o; goto 0 : goto 2   (same behavior as s1)
        let g0b = b.goto(StateId(0));
        let e2 = b.emit(o, g0b);
        let g2b = b.goto(StateId(2));
        let r2 = b.test(a, e2, g2b);
        b.state("s2", r2);
        b.build()
    }

    #[test]
    fn minimize_merges_equivalent_states() {
        let mut m = redundant();
        minimize_states(&mut m);
        assert_eq!(m.states.len(), 2);
        m.validate().unwrap();
        // Behavior preserved: from s0 with a present we reach the merged
        // state; another a emits o.
        let a = m.signal("a").unwrap();
        let o = m.signal("o").unwrap();
        let mut on = HashSet::new();
        on.insert(a);
        let r = m.step(m.init, &on, &mut NoHooks);
        let r2 = m.step(r.next, &on, &mut NoHooks);
        assert_eq!(r2.emitted, vec![o]);
    }

    #[test]
    fn reduce_shares_identical_subgraphs() {
        let mut b = EfsmBuilder::new("dup");
        let a = b.input("a");
        let o = b.output("o");
        // Two identical emit chains, duplicated on both test branches.
        let g0 = b.goto(StateId(0));
        let e1 = b.emit(o, g0);
        let g0b = b.goto(StateId(0));
        let e2 = b.emit(o, g0b);
        let r = b.test(a, e1, e2);
        b.state("s0", r);
        let mut m = b.build();
        let before = m.stats().nodes;
        reduce(&mut m);
        let after = m.stats().nodes;
        assert!(after < before, "{after} !< {before}");
        // The test now has both branches equal and is itself eliminated.
        assert_eq!(m.stats().tests, 0);
        m.validate().unwrap();
    }

    #[test]
    fn prune_removes_unreachable() {
        let mut b = EfsmBuilder::new("island");
        let a = b.input("a");
        let g0 = b.goto(StateId(0));
        let g0b = b.goto(StateId(0));
        let r0 = b.test(a, g0, g0b);
        b.state("s0", r0);
        let g1 = b.goto(StateId(1));
        b.state("island", g1);
        let mut m = b.build();
        prune_unreachable(&mut m);
        assert_eq!(m.states.len(), 1);
        m.validate().unwrap();
    }

    #[test]
    fn optimize_reports_shrinkage() {
        let mut m = redundant();
        let rep = optimize(&mut m);
        assert!(rep.states_after < rep.states_before);
        assert!(rep.nodes_after <= rep.nodes_before);
        m.validate().unwrap();
    }

    #[test]
    fn minimize_preserves_behavior_on_random_inputs() {
        use rand::{Rng, SeedableRng};
        let m1 = redundant();
        let mut m2 = redundant();
        optimize(&mut m2);
        let a = m1.signal("a").unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut s1 = m1.init;
        let mut s2 = m2.init;
        for _ in 0..200 {
            let mut inputs = HashSet::new();
            if rng.gen_bool(0.5) {
                inputs.insert(a);
            }
            let r1 = m1.step(s1, &inputs, &mut NoHooks);
            let r2 = m2.step(s2, &inputs, &mut NoHooks);
            assert_eq!(r1.emitted, r2.emitted);
            s1 = r1.next;
            s2 = r2.next;
        }
    }

    #[test]
    fn single_state_machine_is_untouched() {
        let mut b = EfsmBuilder::new("one");
        let _ = b.input("x");
        let g = b.goto(StateId(0));
        b.state("s0", g);
        let mut m = b.build();
        minimize_states(&mut m);
        assert_eq!(m.states.len(), 1);
    }

    #[test]
    fn prune_keeps_all_when_connected() {
        let mut m = redundant();
        let before = m.states.len();
        prune_unreachable(&mut m);
        assert_eq!(m.states.len(), before);
    }

    #[test]
    fn signature_distinguishes_emissions() {
        let mut b = EfsmBuilder::new("sig");
        let a = b.input("a");
        let o = b.output("o");
        let p = b.output("p");
        let g0 = b.goto(StateId(0));
        let e_o = b.emit(o, g0);
        let g1 = b.goto(StateId(1));
        let e_p = b.emit(p, g1);
        let r0 = b.test(a, e_o, e_p);
        b.state("s0", r0);
        let g0b = b.goto(StateId(0));
        b.state("s1", g0b);
        let mut m = b.build();
        let before = m.states.len();
        minimize_states(&mut m);
        // s0 and s1 behave differently; nothing merges.
        assert_eq!(m.states.len(), before);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::machine::{Efsm, SigKind};
    use crate::sgraph::{Node, NodeId};
    use crate::{NoHooks, Signal};
    use proptest::prelude::*;
    use std::collections::HashSet;

    /// Generate a random (valid, acyclic) pure-control machine.
    fn arb_efsm(max_states: u32, max_sigs: u32) -> impl Strategy<Value = Efsm> {
        (2..=max_states, 1..=max_sigs, any::<u64>()).prop_map(|(nstates, nsigs, seed)| {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut m = Efsm::new("random");
            let inputs: Vec<Signal> = (0..nsigs)
                .map(|i| m.add_signal(format!("i{i}"), SigKind::Input, false))
                .collect();
            let outputs: Vec<Signal> = (0..nsigs)
                .map(|i| m.add_signal(format!("o{i}"), SigKind::Output, false))
                .collect();
            for s in 0..nstates {
                // Build a small random decision tree bottom-up.
                let mut pool: Vec<NodeId> = (0..3)
                    .map(|_| {
                        m.add_node(Node::Goto {
                            target: crate::StateId(rng.gen_range(0..nstates)),
                        })
                    })
                    .collect();
                for _ in 0..rng.gen_range(0..5) {
                    let pick = |rng: &mut rand::rngs::StdRng, pool: &Vec<NodeId>| {
                        pool[rng.gen_range(0..pool.len())]
                    };
                    let node = match rng.gen_range(0..3) {
                        0 => Node::Test {
                            sig: inputs[rng.gen_range(0..inputs.len())],
                            then_: pick(&mut rng, &pool),
                            else_: pick(&mut rng, &pool),
                        },
                        1 => Node::Emit {
                            sig: outputs[rng.gen_range(0..outputs.len())],
                            value: None,
                            next: pick(&mut rng, &pool),
                        },
                        _ => Node::Test {
                            sig: inputs[rng.gen_range(0..inputs.len())],
                            then_: pick(&mut rng, &pool),
                            else_: pick(&mut rng, &pool),
                        },
                    };
                    let id = m.add_node(node);
                    pool.push(id);
                }
                let root = *pool.last().expect("pool nonempty");
                m.add_state(format!("s{s}"), root);
            }
            m.validate().expect("generator builds valid machines");
            m
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Optimization must preserve the observable trace for random
        /// machines and random input sequences.
        #[test]
        fn optimize_preserves_traces(m in arb_efsm(6, 3), inputs_seed in any::<u64>()) {
            use rand::{Rng, SeedableRng};
            let mut opt = m.clone();
            optimize(&mut opt);
            opt.validate().unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(inputs_seed);
            let all_inputs: Vec<Signal> = m.inputs().map(|(s, _)| s).collect();
            let mut s1 = m.init;
            let mut s2 = opt.init;
            for _ in 0..64 {
                let mut present = HashSet::new();
                for s in &all_inputs {
                    if rng.gen_bool(0.5) {
                        present.insert(*s);
                    }
                }
                let r1 = m.step(s1, &present, &mut NoHooks);
                let r2 = opt.step(s2, &present, &mut NoHooks);
                prop_assert_eq!(&r1.emitted, &r2.emitted);
                s1 = r1.next;
                s2 = r2.next;
            }
        }

        /// Optimization never increases node or state counts.
        #[test]
        fn optimize_never_grows(m in arb_efsm(6, 3)) {
            let mut opt = m.clone();
            let rep = optimize(&mut opt);
            prop_assert!(rep.nodes_after <= rep.nodes_before);
            prop_assert!(rep.states_after <= rep.states_before);
        }
    }
}
