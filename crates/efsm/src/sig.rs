//! Design-wide signal interning: [`SigId`] ↔ name.
//!
//! A [`SigTable`] is built once per simulated configuration (at the
//! `Machine`/`Monitored` stage or when a runner is constructed) by
//! interning the global signal names of every participating machine.
//! From then on the whole reaction hot path — kernel mailboxes, task
//! dispatch, trace recording, monitor stepping — works on dense `u32`
//! ids and [`crate::BitSet`] presence sets; names are resolved only at
//! the edges (testbench input, VCD dump, violation witnesses).
//!
//! Interning unifies by *name*: two tasks that declare a signal `ack`
//! share one id, which is exactly the by-name wiring semantics of the
//! asynchronous network.

use ecl_syntax::fxmap::FxHashMap;
use std::fmt;

/// Dense id of an interned global signal name.
///
/// Distinct from [`crate::Signal`], which indexes one machine's local
/// signal table: a `SigId` is meaningful across a whole design
/// configuration (all tasks, monitors and traces of one run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SigId(pub u32);

impl SigId {
    /// The id as a bit index for [`crate::BitSet`] membership.
    pub fn bit(self) -> usize {
        self.0 as usize
    }
}

/// An append-only interner of global signal names.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SigTable {
    names: Vec<String>,
    by_name: FxHashMap<String, SigId>,
}

impl SigTable {
    /// An empty table.
    pub fn new() -> SigTable {
        SigTable::default()
    }

    /// Intern `name`, returning its (possibly pre-existing) id.
    pub fn intern(&mut self, name: &str) -> SigId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = SigId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Look up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<SigId> {
        self.by_name.get(name).copied()
    }

    /// The name of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn name(&self, id: SigId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All `(id, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (SigId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (SigId(i as u32), n.as_str()))
    }

    /// Render the members of a presence set as names, in id order.
    pub fn names_of<'a>(&'a self, set: &'a crate::BitSet) -> impl Iterator<Item = &'a str> + 'a {
        set.iter().map(move |b| self.names[b].as_str())
    }
}

impl fmt::Display for SigTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (id, name) in self.iter() {
            writeln!(f, "{:>4} {name}", id.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitSet;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut t = SigTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        assert_eq!(t.intern("a"), a);
        assert_eq!(a, SigId(0));
        assert_eq!(b, SigId(1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(b), "b");
        assert_eq!(t.lookup("b"), Some(b));
        assert_eq!(t.lookup("c"), None);
    }

    #[test]
    fn names_of_resolves_a_presence_set() {
        let mut t = SigTable::new();
        t.intern("x");
        let y = t.intern("y");
        let z = t.intern("z");
        let set: BitSet = [y.bit(), z.bit()].into_iter().collect();
        let names: Vec<&str> = t.names_of(&set).collect();
        assert_eq!(names, vec!["y", "z"]);
    }

    #[test]
    fn iter_walks_in_interning_order() {
        let mut t = SigTable::new();
        t.intern("m");
        t.intern("n");
        let pairs: Vec<(SigId, &str)> = t.iter().collect();
        assert_eq!(pairs, vec![(SigId(0), "m"), (SigId(1), "n")]);
    }
}
