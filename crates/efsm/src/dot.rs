//! Graphviz (DOT) export of EFSMs.
//!
//! Each control state is a graph node; each flat transition (root-to-leaf
//! s-graph path) becomes an edge labelled with its guard cube, predicate
//! literals, actions and emissions. Useful for debugging small machines
//! and for documentation figures.

use crate::machine::{Efsm, StateId};
use std::fmt::Write as _;

/// Render the machine as a DOT digraph. Path enumeration per state is
/// capped at `path_cap`; states whose s-graph exceeds the cap get a
/// single edge labelled "…".
pub fn to_dot(m: &Efsm, path_cap: usize) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", m.name);
    let _ = writeln!(s, "  rankdir=LR;");
    let _ = writeln!(s, "  node [shape=circle, fontsize=10];");
    let _ = writeln!(s, "  init [shape=point]; init -> s{};", m.init.0);
    for (i, st) in m.states.iter().enumerate() {
        let _ = writeln!(s, "  s{i} [label=\"{}\"];", escape(&st.name));
    }
    for (i, _) in m.states.iter().enumerate() {
        match m.paths_of(StateId(i as u32), path_cap) {
            Some(paths) => {
                for p in paths {
                    let mut label = String::new();
                    for (sig, pos) in &p.cube {
                        let _ = write!(
                            label,
                            "{}{} ",
                            if *pos { "" } else { "!" },
                            m.signal_info(*sig).name
                        );
                    }
                    for (pred, pos) in &p.preds {
                        let _ = write!(label, "{}p{} ", if *pos { "" } else { "!" }, pred.0);
                    }
                    if !p.actions.is_empty() || !p.emits.is_empty() {
                        label.push('/');
                        for a in &p.actions {
                            let _ = write!(label, " a{}", a.0);
                        }
                        for (e, _) in &p.emits {
                            let _ = write!(label, " {}!", m.signal_info(*e).name);
                        }
                    }
                    let _ = writeln!(
                        s,
                        "  s{i} -> s{} [label=\"{}\", fontsize=8];",
                        p.target.0,
                        escape(label.trim())
                    );
                }
            }
            None => {
                let _ = writeln!(s, "  s{i} -> s{i} [label=\"…\", style=dashed];");
            }
        }
    }
    s.push_str("}\n");
    s
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::EfsmBuilder;

    #[test]
    fn renders_dot() {
        let mut b = EfsmBuilder::new("demo");
        let a = b.input("a");
        let o = b.output("o");
        let g1 = b.goto(StateId(1));
        let e = b.emit(o, g1);
        let g0 = b.goto(StateId(0));
        let r0 = b.test(a, e, g0);
        b.state("idle", r0);
        let g0b = b.goto(StateId(0));
        b.state("done", g0b);
        let m = b.build();
        let dot = to_dot(&m, 100);
        assert!(dot.contains("digraph \"demo\""));
        assert!(dot.contains("s0 -> s1"));
        assert!(dot.contains("o!"));
        assert!(dot.contains("!a"));
    }

    #[test]
    fn cap_falls_back_to_dashed_edge() {
        let mut b = EfsmBuilder::new("big");
        let sigs: Vec<_> = (0..10).map(|i| b.input(&format!("i{i}"))).collect();
        let mut node = b.goto(StateId(0));
        for s in sigs {
            let other = b.goto(StateId(0));
            node = b.test(s, node, other);
        }
        b.state("s0", node);
        let m = b.build();
        let dot = to_dot(&m, 4);
        assert!(dot.contains("…"));
    }
}
