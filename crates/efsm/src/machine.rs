//! The [`Efsm`] type: states, signals, s-graph arena, and the
//! single-instant step executor.

use crate::sgraph::{self, Node, NodeId};
use crate::{BitSet, DataHooks};
use std::collections::HashSet;
use std::fmt;

/// Index of a signal in a machine's signal table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Signal(pub u32);

/// Index of a control state. The `Default` (state 0) matches the
/// convention that compilation emits the boot state first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct StateId(pub u32);

/// Signal role relative to this machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SigKind {
    /// Read from the environment.
    Input,
    /// Produced for the environment.
    Output,
    /// Internal (compiled away in whole-program machines, but kept in
    /// the table for traceability).
    Local,
}

/// Declaration of one signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalInfo {
    /// Name (globally meaningful: networks wire machines by name).
    pub name: String,
    /// Role.
    pub kind: SigKind,
    /// Whether the signal carries a value in addition to presence.
    pub valued: bool,
}

/// One control state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    /// Debug name (derived from the pause set during compilation).
    pub name: String,
    /// Root of the state's s-graph.
    pub root: NodeId,
}

/// An extended finite state machine.
#[derive(Debug, Clone, PartialEq)]
pub struct Efsm {
    /// Machine name.
    pub name: String,
    /// Signal table.
    pub signals: Vec<SignalInfo>,
    /// Control states.
    pub states: Vec<State>,
    /// Initial state.
    pub init: StateId,
    /// Shared s-graph node arena.
    pub nodes: Vec<Node>,
}

/// Result of one instant of execution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StepResult {
    /// Signals emitted this instant, in order.
    pub emitted: Vec<Signal>,
    /// Next control state.
    pub next: StateId,
    /// Number of s-graph nodes traversed (proxy for reaction latency).
    pub nodes_visited: u32,
}

/// Result of one [`Efsm::step_bits`] call (emissions go to the caller's
/// buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StepOut {
    /// Next control state.
    pub next: StateId,
    /// Number of s-graph nodes traversed (proxy for reaction latency).
    pub nodes_visited: u32,
}
impl Efsm {
    /// Create an empty machine (no states yet).
    pub fn new(name: impl Into<String>) -> Self {
        Efsm {
            name: name.into(),
            signals: Vec::new(),
            states: Vec::new(),
            init: StateId(0),
            nodes: Vec::new(),
        }
    }

    /// Add a signal; returns its handle.
    pub fn add_signal(&mut self, name: impl Into<String>, kind: SigKind, valued: bool) -> Signal {
        self.signals.push(SignalInfo {
            name: name.into(),
            kind,
            valued,
        });
        Signal(self.signals.len() as u32 - 1)
    }

    /// Add an s-graph node; returns its id.
    pub fn add_node(&mut self, node: Node) -> NodeId {
        self.nodes.push(node);
        NodeId(self.nodes.len() as u32 - 1)
    }

    /// Add a state rooted at `root`; returns its id.
    pub fn add_state(&mut self, name: impl Into<String>, root: NodeId) -> StateId {
        self.states.push(State {
            name: name.into(),
            root,
        });
        StateId(self.states.len() as u32 - 1)
    }

    /// Find a signal by name.
    pub fn signal(&self, name: &str) -> Option<Signal> {
        self.signals
            .iter()
            .position(|s| s.name == name)
            .map(|i| Signal(i as u32))
    }

    /// Signal info by handle.
    ///
    /// # Panics
    ///
    /// Panics if the handle is out of range.
    pub fn signal_info(&self, s: Signal) -> &SignalInfo {
        &self.signals[s.0 as usize]
    }

    /// Input signals of the machine.
    pub fn inputs(&self) -> impl Iterator<Item = (Signal, &SignalInfo)> {
        self.signals
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind == SigKind::Input)
            .map(|(i, s)| (Signal(i as u32), s))
    }

    /// Output signals of the machine.
    pub fn outputs(&self) -> impl Iterator<Item = (Signal, &SignalInfo)> {
        self.signals
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind == SigKind::Output)
            .map(|(i, s)| (Signal(i as u32), s))
    }

    /// Execute one instant from `state` with `inputs` present.
    ///
    /// Walks the state's s-graph: `Test` consults `inputs`, `TestPred`,
    /// `Do` and valued `Emit` call into `hooks`, and the terminating
    /// `Goto` gives the next state.
    ///
    /// Compatibility wrapper over [`Efsm::step_bits`], which is the
    /// allocation-free hot path (runners drive it with reusable
    /// buffers).
    ///
    /// # Panics
    ///
    /// Panics if the machine is structurally broken (dangling node or
    /// state ids) — [`Efsm::validate`] should be used after construction.
    pub fn step(
        &self,
        state: StateId,
        inputs: &HashSet<Signal>,
        hooks: &mut dyn DataHooks,
    ) -> StepResult {
        let present: BitSet = inputs.iter().map(|s| s.0 as usize).collect();
        let mut emitted = Vec::new();
        let out = self.step_bits(state, &present, hooks, &mut emitted);
        StepResult {
            emitted,
            next: out.next,
            nodes_visited: out.nodes_visited,
        }
    }

    /// Allocation-free single-instant executor: `inputs` is a presence
    /// [`BitSet`] over this machine's *local* signal indices, and every
    /// emission is appended to `emitted` (not cleared — callers reuse
    /// the buffer across reactions and truncate themselves).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Efsm::step`].
    pub fn step_bits(
        &self,
        state: StateId,
        inputs: &BitSet,
        hooks: &mut dyn DataHooks,
        emitted: &mut Vec<Signal>,
    ) -> StepOut {
        let mut cur = self.states[state.0 as usize].root;
        let mut out = StepOut::default();
        loop {
            out.nodes_visited += 1;
            match self.nodes[cur.0 as usize] {
                Node::Test { sig, then_, else_ } => {
                    cur = if inputs.contains(sig.0 as usize) {
                        then_
                    } else {
                        else_
                    };
                }
                Node::TestPred { pred, then_, else_ } => {
                    cur = if hooks.eval_pred(pred) { then_ } else { else_ };
                }
                Node::Do { action, next } => {
                    hooks.run_action(action);
                    cur = next;
                }
                Node::Emit { sig, value, next } => {
                    if let Some(expr) = value {
                        hooks.emit_value(sig, expr);
                    }
                    emitted.push(sig);
                    cur = next;
                }
                Node::Goto { target } => {
                    out.next = target;
                    return out;
                }
            }
        }
    }

    /// Structural sanity check: all node/state references in range, all
    /// states' graphs acyclic, all tested signals declared.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.states.is_empty() {
            return Err("machine has no states".into());
        }
        if self.init.0 as usize >= self.states.len() {
            return Err(format!("initial state {:?} out of range", self.init));
        }
        for (i, n) in self.nodes.iter().enumerate() {
            for s in n.successors() {
                if s.0 as usize >= self.nodes.len() {
                    return Err(format!("node {i} points to missing node {s:?}"));
                }
            }
            match n {
                Node::Test { sig, .. } | Node::Emit { sig, .. }
                    if sig.0 as usize >= self.signals.len() =>
                {
                    return Err(format!("node {i} references missing signal {sig:?}"));
                }
                Node::Goto { target } if target.0 as usize >= self.states.len() => {
                    return Err(format!("node {i} jumps to missing state {target:?}"));
                }
                _ => {}
            }
        }
        // Acyclicity per state graph (iterative DFS with colors).
        for (si, st) in self.states.iter().enumerate() {
            if st.root.0 as usize >= self.nodes.len() {
                return Err(format!("state {si} has missing root node"));
            }
            let mut color = vec![0u8; self.nodes.len()]; // 0 white, 1 gray, 2 black
            let mut stack = vec![(st.root, false)];
            while let Some((id, leaving)) = stack.pop() {
                let c = &mut color[id.0 as usize];
                if leaving {
                    *c = 2;
                    continue;
                }
                if *c == 1 {
                    return Err(format!("cycle in s-graph of state {si}"));
                }
                if *c == 2 {
                    continue;
                }
                *c = 1;
                stack.push((id, true));
                for s in self.nodes[id.0 as usize].successors() {
                    if color[s.0 as usize] == 1 {
                        return Err(format!("cycle in s-graph of state {si}"));
                    }
                    if color[s.0 as usize] == 0 {
                        stack.push((s, false));
                    }
                }
            }
        }
        Ok(())
    }

    /// Summary statistics for reporting and the cost model.
    pub fn stats(&self) -> EfsmStats {
        let mut live: HashSet<NodeId> = HashSet::new();
        for st in &self.states {
            live.extend(sgraph::reachable_nodes(&self.nodes, st.root));
        }
        let mut s = EfsmStats {
            states: self.states.len() as u32,
            ..EfsmStats::default()
        };
        for id in &live {
            match self.nodes[id.0 as usize] {
                Node::Test { .. } => s.tests += 1,
                Node::TestPred { .. } => s.pred_tests += 1,
                Node::Do { .. } => s.actions += 1,
                Node::Emit { .. } => s.emits += 1,
                Node::Goto { .. } => s.gotos += 1,
            }
        }
        s.nodes = live.len() as u32;
        s.pure_states = (0..self.states.len())
            .filter(|&i| self.state_is_pure(StateId(i as u32)))
            .count() as u32;
        s
    }

    /// Enumerate the flat transitions of `state` (for tests/reports).
    pub fn paths_of(&self, state: StateId, cap: usize) -> Option<Vec<sgraph::Path>> {
        sgraph::enumerate_paths(&self.nodes, self.states[state.0 as usize].root, cap)
    }
}

/// Node/state counts of a machine (inputs to the software cost model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EfsmStats {
    /// Number of control states.
    pub states: u32,
    /// States whose live s-graph is pure control (only presence tests,
    /// presence-only emits and gotos) — the states
    /// [`crate::CompiledEfsm`] can flatten to transition tables.
    pub pure_states: u32,
    /// Live s-graph nodes (shared nodes counted once).
    pub nodes: u32,
    /// Signal-presence test nodes.
    pub tests: u32,
    /// Data-predicate test nodes.
    pub pred_tests: u32,
    /// Data-action nodes.
    pub actions: u32,
    /// Emission nodes.
    pub emits: u32,
    /// Goto (leaf) nodes.
    pub gotos: u32,
}

impl fmt::Display for EfsmStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states ({} pure), {} nodes ({} tests, {} pred-tests, {} actions, {} emits, {} gotos)",
            self.states,
            self.pure_states,
            self.nodes,
            self.tests,
            self.pred_tests,
            self.actions,
            self.emits,
            self.gotos
        )
    }
}

/// Convenience builder for hand-written machines in tests and examples.
#[derive(Debug)]
pub struct EfsmBuilder {
    m: Efsm,
}

impl EfsmBuilder {
    /// Start building a machine.
    pub fn new(name: impl Into<String>) -> Self {
        EfsmBuilder { m: Efsm::new(name) }
    }

    /// Declare an input signal.
    pub fn input(&mut self, name: &str) -> Signal {
        self.m.add_signal(name, SigKind::Input, false)
    }

    /// Declare an output signal.
    pub fn output(&mut self, name: &str) -> Signal {
        self.m.add_signal(name, SigKind::Output, false)
    }

    /// Add a `Goto` leaf.
    pub fn goto(&mut self, target: StateId) -> NodeId {
        self.m.add_node(Node::Goto { target })
    }

    /// Add a presence test node.
    pub fn test(&mut self, sig: Signal, then_: NodeId, else_: NodeId) -> NodeId {
        self.m.add_node(Node::Test { sig, then_, else_ })
    }

    /// Add an emission node.
    pub fn emit(&mut self, sig: Signal, next: NodeId) -> NodeId {
        self.m.add_node(Node::Emit {
            sig,
            value: None,
            next,
        })
    }

    /// Add a state.
    pub fn state(&mut self, name: &str, root: NodeId) -> StateId {
        self.m.add_state(name, root)
    }

    /// Finish; validates the machine.
    ///
    /// # Panics
    ///
    /// Panics if the machine fails [`Efsm::validate`].
    pub fn build(self) -> Efsm {
        self.m.validate().expect("builder produced invalid machine");
        self.m
    }
}

impl Efsm {
    /// [`Efsm::validate`], reported as the workspace-unified
    /// [`ecl_syntax::EclError`] (stage `efsm`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Efsm::validate`].
    pub fn validate_ecl(&self) -> Result<(), ecl_syntax::EclError> {
        self.validate().map_err(|msg| {
            ecl_syntax::EclError::msg(ecl_syntax::Stage::Efsm, msg, ecl_syntax::Span::dummy())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoHooks;

    /// Two-state toggler: on `tick` emit `tock` and flip state.
    fn toggler() -> Efsm {
        let mut b = EfsmBuilder::new("toggler");
        let tick = b.input("tick");
        let tock = b.output("tock");
        // State 0: tick ? emit tock; goto 1 : goto 0
        let g1 = b.goto(StateId(1));
        let e = b.emit(tock, g1);
        let g0 = b.goto(StateId(0));
        let r0 = b.test(tick, e, g0);
        b.state("s0", r0);
        // State 1: tick ? goto 0 : goto 1
        let g0b = b.goto(StateId(0));
        let g1b = b.goto(StateId(1));
        let r1 = b.test(tick, g0b, g1b);
        b.state("s1", r1);
        b.build()
    }

    #[test]
    fn step_walks_the_sgraph() {
        let m = toggler();
        let tick = m.signal("tick").unwrap();
        let tock = m.signal("tock").unwrap();
        let mut inputs = HashSet::new();
        inputs.insert(tick);
        let r = m.step(StateId(0), &inputs, &mut NoHooks);
        assert_eq!(r.emitted, vec![tock]);
        assert_eq!(r.next, StateId(1));
        let r2 = m.step(StateId(1), &inputs, &mut NoHooks);
        assert!(r2.emitted.is_empty());
        assert_eq!(r2.next, StateId(0));
        // Absent tick: stay.
        let r3 = m.step(StateId(0), &HashSet::new(), &mut NoHooks);
        assert_eq!(r3.next, StateId(0));
    }

    #[test]
    fn stats_count_nodes() {
        let m = toggler();
        let s = m.stats();
        assert_eq!(s.states, 2);
        assert_eq!(s.pure_states, 2, "toggler is pure control");
        assert_eq!(s.tests, 2);
        assert_eq!(s.emits, 1);
        assert_eq!(s.gotos, 4);
        assert_eq!(s.nodes, 7);
    }

    #[test]
    fn validate_catches_dangling_state() {
        let mut m = Efsm::new("bad");
        let n = m.add_node(Node::Goto { target: StateId(5) });
        m.add_state("s0", n);
        assert!(m.validate().is_err());
    }

    #[test]
    fn validate_catches_cycle() {
        let mut m = Efsm::new("cyclic");
        let s = m.add_signal("a", SigKind::Input, false);
        // Node 0 tests and loops back to itself on both edges.
        m.nodes.push(Node::Test {
            sig: s,
            then_: NodeId(0),
            else_: NodeId(0),
        });
        m.add_state("s0", NodeId(0));
        assert!(m.validate().is_err());
    }

    #[test]
    fn signal_lookup() {
        let m = toggler();
        assert!(m.signal("tick").is_some());
        assert!(m.signal("nonexistent").is_none());
        assert_eq!(m.inputs().count(), 1);
        assert_eq!(m.outputs().count(), 1);
    }

    #[test]
    fn paths_of_state() {
        let m = toggler();
        let paths = m.paths_of(StateId(0), 10).unwrap();
        assert_eq!(paths.len(), 2);
    }
}
