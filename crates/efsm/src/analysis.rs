//! EFSM analyses: reachability, determinism, and safety checks.
//!
//! These back the paper's claim that the EFSM form "permits the use of
//! existing powerful techniques for optimization, analysis": we provide
//! implicit state exploration over the control graph and simple safety
//! verification (an output must/must-not be emitted in given states).

use crate::machine::{Efsm, StateId};
use crate::sgraph::{reachable_nodes, Node};
use std::collections::HashSet;

/// States reachable from the initial state through `Goto` edges
/// (inputs and predicates treated as free).
pub fn reachable_states(m: &Efsm) -> Vec<StateId> {
    let mut seen = vec![false; m.states.len()];
    let mut order = Vec::new();
    let mut stack = vec![m.init];
    seen[m.init.0 as usize] = true;
    while let Some(s) = stack.pop() {
        order.push(s);
        for id in reachable_nodes(&m.nodes, m.states[s.0 as usize].root) {
            if let Node::Goto { target } = m.nodes[id.0 as usize] {
                if !seen[target.0 as usize] {
                    seen[target.0 as usize] = true;
                    stack.push(target);
                }
            }
        }
    }
    order
}

/// A state is a *sink* if every path loops back to itself and emits
/// nothing — once entered, the machine is observably dead.
pub fn sink_states(m: &Efsm) -> Vec<StateId> {
    let mut sinks = Vec::new();
    'next: for (i, st) in m.states.iter().enumerate() {
        for id in reachable_nodes(&m.nodes, st.root) {
            match m.nodes[id.0 as usize] {
                Node::Goto { target } if target.0 as usize != i => continue 'next,
                Node::Emit { .. } | Node::Do { .. } => continue 'next,
                _ => {}
            }
        }
        sinks.push(StateId(i as u32));
    }
    sinks
}

/// Signals that can be emitted in some reachable state.
pub fn emittable_signals(m: &Efsm) -> HashSet<crate::Signal> {
    let mut out = HashSet::new();
    for s in reachable_states(m) {
        for id in reachable_nodes(&m.nodes, m.states[s.0 as usize].root) {
            if let Node::Emit { sig, .. } = m.nodes[id.0 as usize] {
                out.insert(sig);
            }
        }
    }
    out
}

/// Result of a safety check: either the invariant holds, or a witness
/// state where it is violated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SafetyResult {
    /// The property holds in all reachable states.
    Holds,
    /// A reachable state violating the property.
    Violated {
        /// The witness state.
        state: StateId,
    },
}

/// Check "signal `sig` is never emitted in any reachable state" —
/// the simplest useful safety property (e.g. an error output).
pub fn never_emitted(m: &Efsm, sig: crate::Signal) -> SafetyResult {
    for s in reachable_states(m) {
        for id in reachable_nodes(&m.nodes, m.states[s.0 as usize].root) {
            if let Node::Emit { sig: e, .. } = m.nodes[id.0 as usize] {
                if e == sig {
                    return SafetyResult::Violated { state: s };
                }
            }
        }
    }
    SafetyResult::Holds
}

/// Per-state determinism/structure report.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StructureReport {
    /// Number of reachable states.
    pub reachable: usize,
    /// Number of total states.
    pub total: usize,
    /// Sink (observably dead) states.
    pub sinks: Vec<StateId>,
    /// Maximum s-graph depth over all states (worst-case tests per
    /// reaction; proxy for reaction latency).
    pub max_depth: u32,
}

/// Compute a structure report.
pub fn structure(m: &Efsm) -> StructureReport {
    let reachable = reachable_states(m).len();
    let mut max_depth = 0;
    for st in &m.states {
        max_depth = max_depth.max(depth(m, st.root));
    }
    StructureReport {
        reachable,
        total: m.states.len(),
        sinks: sink_states(m),
        max_depth,
    }
}

fn depth(m: &Efsm, root: crate::sgraph::NodeId) -> u32 {
    // Longest path in the DAG via memoized DFS.
    fn go(m: &Efsm, id: crate::sgraph::NodeId, memo: &mut Vec<Option<u32>>) -> u32 {
        if let Some(d) = memo[id.0 as usize] {
            return d;
        }
        let d = 1 + m.nodes[id.0 as usize]
            .successors()
            .into_iter()
            .map(|s| go(m, s, memo))
            .max()
            .unwrap_or(0);
        memo[id.0 as usize] = Some(d);
        d
    }
    go(m, root, &mut vec![None; m.nodes.len()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::EfsmBuilder;

    fn with_dead_state() -> Efsm {
        let mut b = EfsmBuilder::new("dead");
        let a = b.input("a");
        let o = b.output("o");
        // s0: a ? emit o; goto 1 : goto 0
        let g1 = b.goto(StateId(1));
        let e = b.emit(o, g1);
        let g0 = b.goto(StateId(0));
        let r0 = b.test(a, e, g0);
        b.state("s0", r0);
        // s1: goto 1 (silent sink)
        let g1b = b.goto(StateId(1));
        b.state("s1", g1b);
        b.build()
    }

    #[test]
    fn reachability_finds_all_connected() {
        let m = with_dead_state();
        assert_eq!(reachable_states(&m).len(), 2);
    }

    #[test]
    fn sink_detection() {
        let m = with_dead_state();
        assert_eq!(sink_states(&m), vec![StateId(1)]);
    }

    #[test]
    fn emittable_and_safety() {
        let m = with_dead_state();
        let o = m.signal("o").unwrap();
        assert!(emittable_signals(&m).contains(&o));
        assert_eq!(
            never_emitted(&m, o),
            SafetyResult::Violated { state: StateId(0) }
        );
        // A fresh signal is never emitted.
        let mut m2 = m.clone();
        let extra = m2.add_signal("never", crate::SigKind::Output, false);
        assert_eq!(never_emitted(&m2, extra), SafetyResult::Holds);
    }

    #[test]
    fn structure_report() {
        let m = with_dead_state();
        let r = structure(&m);
        assert_eq!(r.reachable, 2);
        assert_eq!(r.total, 2);
        assert_eq!(r.sinks, vec![StateId(1)]);
        // s0 depth: test → emit → goto = 3.
        assert_eq!(r.max_depth, 3);
    }
}
