//! Unit-delay networks of EFSMs.
//!
//! The paper's Section 4 contrasts two implementations of the top-level
//! module: a single synchronous EFSM (whole-program compilation) and an
//! asynchronous interconnection of per-module machines communicating via
//! signals. This module provides the *semantic* network composition:
//! machines are wired by signal *name*, and internal emissions become
//! visible to consumers in the **next** instant (one-place buffers, as
//! in POLIS CFSM networks — events not consumed are overwritten).
//!
//! Cost-accounted asynchronous execution under an RTOS lives in the
//! `rtk`/`sim` crates; this composition is used for functional analysis
//! and differential testing.

use crate::machine::{Efsm, SigKind, Signal, StateId};
use crate::DataHooks;
use std::collections::{HashMap, HashSet};

/// A network of machines wired by signal name.
#[derive(Debug, Clone)]
pub struct Network {
    machines: Vec<Efsm>,
    /// Current control state of each machine.
    states: Vec<StateId>,
    /// Internal signal values latched from the previous instant
    /// (by name).
    latched: HashSet<String>,
    /// Names that are outputs of some machine (hence internal or
    /// network outputs).
    produced: HashSet<String>,
}

/// The observable outcome of one network instant.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetworkStep {
    /// All signals emitted this instant (by name, with emitting machine
    /// index), in machine order.
    pub emitted: Vec<(usize, String)>,
    /// Total s-graph nodes visited (latency proxy).
    pub nodes_visited: u32,
}

impl Network {
    /// Build a network from machines; wiring is implicit by name.
    pub fn new(machines: Vec<Efsm>) -> Self {
        let states = machines.iter().map(|m| m.init).collect();
        let mut produced = HashSet::new();
        for m in &machines {
            for (_, info) in m.outputs() {
                produced.insert(info.name.clone());
            }
        }
        Network {
            machines,
            states,
            latched: HashSet::new(),
            produced,
        }
    }

    /// The machines in the network.
    pub fn machines(&self) -> &[Efsm] {
        &self.machines
    }

    /// Current control states.
    pub fn states(&self) -> &[StateId] {
        &self.states
    }

    /// Reset every machine to its initial state and clear latches.
    pub fn reset(&mut self) {
        for (s, m) in self.states.iter_mut().zip(&self.machines) {
            *s = m.init;
        }
        self.latched.clear();
    }

    /// Names that are produced by some machine in the network.
    pub fn produced_names(&self) -> &HashSet<String> {
        &self.produced
    }

    /// Execute one instant.
    ///
    /// `external` is the set of externally present signal names;
    /// `hooks[i]` resolves machine `i`'s data ids. Emissions by any
    /// machine this instant are latched and become visible to input
    /// ports of the same name in the *next* instant (unit delay).
    pub fn step<H: DataHooks>(
        &mut self,
        external: &HashSet<String>,
        hooks: &mut [H],
    ) -> NetworkStep {
        assert_eq!(
            hooks.len(),
            self.machines.len(),
            "one hooks instance per machine"
        );
        let mut out = NetworkStep::default();
        let mut new_latch = HashSet::new();
        for (i, m) in self.machines.iter().enumerate() {
            let mut present: HashSet<Signal> = HashSet::new();
            for (sig, info) in m.inputs() {
                let from_inside = self.produced.contains(&info.name);
                let on = if from_inside {
                    // Internal wire: previous-instant emission, but an
                    // external override is also allowed (open inputs).
                    self.latched.contains(&info.name) || external.contains(&info.name)
                } else {
                    external.contains(&info.name)
                };
                if on {
                    present.insert(sig);
                }
            }
            let r = m.step(self.states[i], &present, &mut hooks[i]);
            out.nodes_visited += r.nodes_visited;
            for sig in &r.emitted {
                let name = m.signal_info(*sig).name.clone();
                new_latch.insert(name.clone());
                out.emitted.push((i, name));
            }
            self.states[i] = r.next;
        }
        self.latched = new_latch;
        out
    }

    /// Exhaustive reachability of the composite state space under free
    /// external inputs, up to `cap` composite states.
    ///
    /// Returns the number of composite (machine-states × latch) states
    /// found, or `None` if the cap was exceeded. Only meaningful for
    /// pure-control networks (data predicates are not explored).
    pub fn explore(&self, external_names: &[String], cap: usize) -> Option<usize> {
        // Composite state: per-machine StateId + latched internal set.
        type CState = (Vec<StateId>, Vec<String>);
        let start: CState = (self.states.clone(), {
            let mut v: Vec<String> = self.latched.iter().cloned().collect();
            v.sort();
            v
        });
        let mut seen: HashSet<CState> = HashSet::new();
        seen.insert(start.clone());
        let mut frontier = vec![start];
        let n_ext = external_names.len().min(12);
        while let Some((states, latch)) = frontier.pop() {
            for mask in 0..(1u32 << n_ext) {
                let mut net = self.clone();
                net.states = states.clone();
                net.latched = latch.iter().cloned().collect();
                let mut ext = HashSet::new();
                for (b, name) in external_names.iter().enumerate().take(n_ext) {
                    if mask & (1 << b) != 0 {
                        ext.insert(name.clone());
                    }
                }
                let mut hooks: Vec<crate::NoHooks> = vec![crate::NoHooks; self.machines.len()];
                net.step(&ext, &mut hooks);
                let mut latch_v: Vec<String> = net.latched.iter().cloned().collect();
                latch_v.sort();
                let cs = (net.states.clone(), latch_v);
                if seen.insert(cs.clone()) {
                    if seen.len() > cap {
                        return None;
                    }
                    frontier.push(cs);
                }
            }
        }
        Some(seen.len())
    }
}

/// Build an explicit product EFSM of a pure-control network (unit-delay
/// semantics), up to `cap` states.
///
/// The product's inputs are the network's external inputs; its outputs
/// are all machine outputs. Internal signals are folded into the product
/// state (the latch). Used by the ablation benches to compare against
/// whole-program synchronous compilation.
///
/// # Errors
///
/// Returns an error string when a machine has data predicates (the
/// product is only defined for pure control here) or when `cap` is
/// exceeded.
pub fn product_unit_delay(net: &Network, cap: usize) -> Result<Efsm, String> {
    for m in net.machines() {
        if m.stats().pred_tests > 0 {
            return Err(format!(
                "machine `{}` has data predicates; unit-delay product is pure-control only",
                m.name
            ));
        }
    }
    // External inputs = inputs not produced inside.
    let mut ext_names: Vec<String> = Vec::new();
    for m in net.machines() {
        for (_, info) in m.inputs() {
            if !net.produced_names().contains(&info.name) && !ext_names.contains(&info.name) {
                ext_names.push(info.name.clone());
            }
        }
    }
    let mut out_names: Vec<String> = Vec::new();
    for m in net.machines() {
        for (_, info) in m.outputs() {
            if !out_names.contains(&info.name) {
                out_names.push(info.name.clone());
            }
        }
    }
    let mut prod = Efsm::new(format!("product_{}", net.machines().len()));
    let in_sigs: Vec<Signal> = ext_names
        .iter()
        .map(|n| prod.add_signal(n.clone(), SigKind::Input, false))
        .collect();
    let out_sigs: HashMap<String, Signal> = out_names
        .iter()
        .map(|n| {
            (
                n.clone(),
                prod.add_signal(n.clone(), SigKind::Output, false),
            )
        })
        .collect();

    type CState = (Vec<StateId>, Vec<String>);
    // Pre-create states on demand; their s-graphs are filled after
    // exploration (we must know all state ids first).
    fn get_id(
        cs: &CState,
        ids: &mut HashMap<CState, StateId>,
        prod: &mut Efsm,
        work: &mut Vec<CState>,
    ) -> StateId {
        if let Some(id) = ids.get(cs) {
            return *id;
        }
        // Temporary root; patched later.
        let placeholder = prod.add_node(crate::sgraph::Node::Goto { target: StateId(0) });
        let id = prod.add_state(format!("p{}", ids.len()), placeholder);
        ids.insert(cs.clone(), id);
        work.push(cs.clone());
        id
    }
    let mut ids: HashMap<CState, StateId> = HashMap::new();
    let mut work: Vec<CState> = Vec::new();
    let start: CState = (net.states().to_vec(), Vec::new());
    let _ = get_id(&start, &mut ids, &mut prod, &mut work);

    let mut processed = 0usize;
    while processed < work.len() {
        let cs = work[processed].clone();
        processed += 1;
        if processed > cap {
            return Err(format!("unit-delay product exceeded {cap} states"));
        }
        // Build a complete decision tree over external inputs.
        let n = ext_names.len().min(12);
        // For each input valuation, run the network and record result.
        let mut leaves: Vec<(u32, Vec<Signal>, StateId)> = Vec::new();
        for mask in 0..(1u32 << n) {
            let mut sim = net.clone();
            sim_set(&mut sim, &cs);
            let mut ext = HashSet::new();
            for (b, name) in ext_names.iter().enumerate().take(n) {
                if mask & (1 << b) != 0 {
                    ext.insert(name.clone());
                }
            }
            let mut hooks: Vec<crate::NoHooks> = vec![crate::NoHooks; net.machines().len()];
            let step = sim.step(&ext, &mut hooks);
            let emits: Vec<Signal> = step
                .emitted
                .iter()
                .filter_map(|(_, name)| out_sigs.get(name).copied())
                .collect();
            let mut latch_v: Vec<String> = sim_latch(&sim);
            latch_v.sort();
            let next_cs = (sim.states().to_vec(), latch_v);
            let next_id = get_id(&next_cs, &mut ids, &mut prod, &mut work);
            leaves.push((mask, emits, next_id));
        }
        // Assemble the decision tree bottom-up over input bits.
        let root = build_tree(&mut prod, &in_sigs[..n], &leaves);
        let sid = ids[&cs];
        prod.states[sid.0 as usize].root = root;
    }
    crate::opt::reduce(&mut prod);
    prod.validate()?;
    Ok(prod)
}

fn sim_set(net: &mut Network, cs: &(Vec<StateId>, Vec<String>)) {
    net.states = cs.0.clone();
    net.latched = cs.1.iter().cloned().collect();
}

fn sim_latch(net: &Network) -> Vec<String> {
    net.latched.iter().cloned().collect()
}

/// Build a complete binary decision tree testing `sigs[0..]` in order,
/// with `leaves[mask]` giving emissions and target per valuation.
fn build_tree(
    m: &mut Efsm,
    sigs: &[Signal],
    leaves: &[(u32, Vec<Signal>, StateId)],
) -> crate::sgraph::NodeId {
    fn rec(
        m: &mut Efsm,
        sigs: &[Signal],
        bit: usize,
        prefix: u32,
        leaves: &[(u32, Vec<Signal>, StateId)],
    ) -> crate::sgraph::NodeId {
        if bit == sigs.len() {
            let (_, emits, target) = leaves
                .iter()
                .find(|(mask, _, _)| *mask == prefix)
                .expect("every valuation has a leaf");
            let mut node = m.add_node(crate::sgraph::Node::Goto { target: *target });
            for (sig, _) in emits.iter().map(|s| (*s, ())).rev() {
                node = m.add_node(crate::sgraph::Node::Emit {
                    sig,
                    value: None,
                    next: node,
                });
            }
            return node;
        }
        let then_ = rec(m, sigs, bit + 1, prefix | (1 << bit), leaves);
        let else_ = rec(m, sigs, bit + 1, prefix, leaves);
        m.add_node(crate::sgraph::Node::Test {
            sig: sigs[bit],
            then_,
            else_,
        })
    }
    rec(m, sigs, 0, 0, leaves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::EfsmBuilder;
    use crate::NoHooks;

    /// Machine: on input `a` emit `b` and toggle between 2 states.
    fn stage(name: &str, input: &str, output: &str) -> Efsm {
        let mut b = EfsmBuilder::new(name);
        let i = b.input(input);
        let o = b.output(output);
        let g1 = b.goto(StateId(1));
        let e = b.emit(o, g1);
        let g0 = b.goto(StateId(0));
        let r0 = b.test(i, e, g0);
        b.state("s0", r0);
        let g0b = b.goto(StateId(0));
        let e2 = b.emit(o, g0b);
        let g1b = b.goto(StateId(1));
        let r1 = b.test(i, e2, g1b);
        b.state("s1", r1);
        b.build()
    }

    #[test]
    fn pipeline_delays_by_one_instant_per_stage() {
        // a -> m1 -> x -> m2 -> y
        let m1 = stage("m1", "a", "x");
        let m2 = stage("m2", "x", "y");
        let mut net = Network::new(vec![m1, m2]);
        let mut hooks = [NoHooks, NoHooks];
        let mut ext = HashSet::new();
        ext.insert("a".to_string());
        // Instant 0: a present → m1 emits x; m2 sees nothing yet.
        let s0 = net.step(&ext, &mut hooks);
        assert_eq!(s0.emitted, vec![(0, "x".to_string())]);
        // Instant 1: no external a; m2 sees latched x → emits y.
        let s1 = net.step(&HashSet::new(), &mut hooks);
        assert_eq!(s1.emitted, vec![(1, "y".to_string())]);
        // Instant 2: nothing.
        let s2 = net.step(&HashSet::new(), &mut hooks);
        assert!(s2.emitted.is_empty());
    }

    #[test]
    fn reset_restores_initial_configuration() {
        let m1 = stage("m1", "a", "x");
        let mut net = Network::new(vec![m1]);
        let mut hooks = [NoHooks];
        let mut ext = HashSet::new();
        ext.insert("a".to_string());
        net.step(&ext, &mut hooks);
        assert_eq!(net.states()[0], StateId(1));
        net.reset();
        assert_eq!(net.states()[0], StateId(0));
    }

    #[test]
    fn explore_counts_composite_states() {
        let m1 = stage("m1", "a", "x");
        let m2 = stage("m2", "x", "y");
        let net = Network::new(vec![m1, m2]);
        let n = net.explore(&["a".to_string()], 10_000).expect("within cap");
        // 2 × 2 machine states × latch configurations; at most 16.
        assert!(n >= 4, "found only {n}");
        assert!(n <= 16, "found {n}");
    }

    #[test]
    fn product_matches_network_traces() {
        use rand::{Rng, SeedableRng};
        let m1 = stage("m1", "a", "x");
        let m2 = stage("m2", "x", "y");
        let mut net = Network::new(vec![m1, m2]);
        let prod = product_unit_delay(&net, 10_000).expect("product");
        prod.validate().unwrap();
        let a_p = prod.signal("a").unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut ps = prod.init;
        net.reset();
        let mut hooks = [NoHooks, NoHooks];
        for _ in 0..300 {
            let on = rng.gen_bool(0.4);
            let mut ext_names = HashSet::new();
            let mut ext_sigs = HashSet::new();
            if on {
                ext_names.insert("a".to_string());
                ext_sigs.insert(a_p);
            }
            let ns = net.step(&ext_names, &mut hooks);
            let pr = prod.step(ps, &ext_sigs, &mut NoHooks);
            ps = pr.next;
            let mut net_emits: Vec<String> = ns.emitted.iter().map(|(_, n)| n.clone()).collect();
            let mut prod_emits: Vec<String> = pr
                .emitted
                .iter()
                .map(|s| prod.signal_info(*s).name.clone())
                .collect();
            net_emits.sort();
            prod_emits.sort();
            assert_eq!(net_emits, prod_emits);
        }
    }

    #[test]
    fn product_rejects_pred_machines() {
        let mut m = Efsm::new("withpred");
        let a = m.add_signal("a", SigKind::Input, false);
        let g = m.add_node(crate::sgraph::Node::Goto { target: StateId(0) });
        let p = m.add_node(crate::sgraph::Node::TestPred {
            pred: crate::PredId(0),
            then_: g,
            else_: g,
        });
        let t = m.add_node(crate::sgraph::Node::Test {
            sig: a,
            then_: p,
            else_: g,
        });
        m.add_state("s0", t);
        let net = Network::new(vec![m]);
        assert!(product_unit_delay(&net, 100).is_err());
    }
}
