//! Compiled transition tables: the dense execution backend for
//! pure-control EFSM states.
//!
//! The s-graph walker ([`Efsm::step_bits`]) re-decides one branch per
//! node every instant. For a *pure* state — one whose live graph
//! contains only presence tests, presence-only emissions and gotos —
//! the whole reaction is a function of the input presence pattern
//! alone, so it can be flattened once into rows of
//! `(watch_mask, match_mask) → (emits, next)` and executed with
//! word-wise mask compares, the same flattening assertion-monitor
//! synthesis applies to checker automata. States with data predicates,
//! data actions or valued emissions (*mixed* states) keep the exact
//! walker semantics via fallback.
//!
//! A [`CompiledEfsm`] is built once per machine (runner construction,
//! monitor synthesis) and is observationally identical to the walker:
//! per instant it produces the same emissions in the same order, the
//! same next state, and the same `nodes_visited` count (each row
//! remembers how many nodes the walk it replaced would have visited,
//! so cycle accounting and traces do not shift). The differential
//! proptests in `tests/differential.rs` enforce this equivalence.

use crate::machine::{Efsm, Signal, StateId, StepOut};
use crate::sgraph::{self, Node};
use crate::{BitSet, DataHooks};
use ecl_telemetry::metrics as tm;

/// Per-state cap on flattened rows. An s-graph with `n` independent
/// tests can have `2^n` paths; past this bound the state stays on the
/// walker (correct, just not tabled) instead of exploding memory.
pub const ROW_CAP: usize = 512;

/// How one control state executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StateExec {
    /// Dense rows `lo..hi` (indices into the row arrays).
    Table { lo: u32, hi: u32 },
    /// Exactly one row, necessarily input-independent (rows partition
    /// the input space, so a lone row has an empty watch set): fire it
    /// without touching the masks. Halted/latched monitor states live
    /// here.
    Always { row: u32 },
    /// Fall back to [`Efsm::step_bits`] (data-dependent state, or the
    /// flattening blew [`ROW_CAP`]).
    Walk,
}

/// Metadata of one flattened transition row (masks live in the shared
/// word array, emissions in the shared signal array).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RowMeta {
    /// Next control state when this row fires.
    next: StateId,
    /// Nodes the replaced walk would have visited (tests + emits + the
    /// goto), kept so [`StepOut::nodes_visited`] — and everything
    /// charged from it — is bit-identical to the walker.
    nodes: u32,
    /// Emissions `emits[start..end]`, in walk order.
    emit_start: u32,
    emit_end: u32,
}

/// The dense compiled backend of one [`Efsm`].
///
/// Holds no reference to the machine; callers pass the same machine to
/// [`CompiledEfsm::step_table`] (checked by a debug assertion on the
/// state count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledEfsm {
    /// Words per mask: `ceil(signals / 64)` of the source machine.
    words: usize,
    /// Execution mode per state.
    states: Vec<StateExec>,
    /// Row masks, `2 * words` per row: watch words then match words.
    masks: Vec<u64>,
    /// Row metadata, parallel to the mask stride.
    rows: Vec<RowMeta>,
    /// Emission lists of all rows, concatenated.
    emits: Vec<Signal>,
    /// Number of states compiled to tables.
    tabled: u32,
}

impl CompiledEfsm {
    /// Flatten every pure state of `m` into transition rows; mixed
    /// states are marked for walker fallback.
    pub fn compile(m: &Efsm) -> CompiledEfsm {
        let words = m.signals.len().div_ceil(64);
        let mut c = CompiledEfsm {
            words,
            states: Vec::with_capacity(m.states.len()),
            masks: Vec::new(),
            rows: Vec::new(),
            emits: Vec::new(),
            tabled: 0,
        };
        for (si, _) in m.states.iter().enumerate() {
            let exec = c.compile_state(m, StateId(si as u32));
            c.states.push(exec);
            if !matches!(exec, StateExec::Walk) {
                c.tabled += 1;
            }
        }
        c
    }

    /// Flatten one state, or decide it must stay on the walker.
    fn compile_state(&mut self, m: &Efsm, s: StateId) -> StateExec {
        if !m.state_is_pure(s) {
            return StateExec::Walk;
        }
        let root = m.states[s.0 as usize].root;
        let Some(paths) = sgraph::enumerate_paths(&m.nodes, root, ROW_CAP) else {
            return StateExec::Walk; // path explosion: keep walking
        };
        let lo = self.rows.len() as u32;
        // Scan-friendly row order: fewest required-present literals
        // first. Under sparse inputs (the reactive-system norm, e.g.
        // idle instants with nothing present) the emptier rows are the
        // likelier ones, so the scan usually hits in the first row or
        // two. Rows are mutually exclusive, so reordering cannot
        // change which row fires.
        let mut order: Vec<&sgraph::Path> = paths.iter().collect();
        order.sort_by_key(|p| p.cube.iter().filter(|&&(_, present)| present).count());
        'path: for p in order {
            debug_assert!(p.preds.is_empty() && p.actions.is_empty());
            let mut watch = vec![0u64; self.words];
            let mut matched = vec![0u64; self.words];
            // nodes_visited of the walk this row replaces: every test
            // node on the path (repeats included), every emit, the goto.
            let nodes = (p.cube.len() + p.emits.len() + 1) as u32;
            for &(sig, present) in &p.cube {
                let (w, b) = (sig.0 as usize / 64, sig.0 as usize % 64);
                let bit = 1u64 << b;
                if watch[w] & bit != 0 && (matched[w] & bit != 0) != present {
                    // Contradictory literals: the walk can never take
                    // this path, so the table drops the row.
                    continue 'path;
                }
                watch[w] |= bit;
                if present {
                    matched[w] |= bit;
                }
            }
            let emit_start = self.emits.len() as u32;
            self.emits.extend(p.emits.iter().map(|&(sig, _)| sig));
            self.masks.extend_from_slice(&watch);
            self.masks.extend_from_slice(&matched);
            self.rows.push(RowMeta {
                next: p.target,
                nodes,
                emit_start,
                emit_end: self.emits.len() as u32,
            });
        }
        let hi = self.rows.len() as u32;
        if hi - lo == 1
            && self.masks[lo as usize * 2 * self.words..][..self.words]
                .iter()
                .all(|&w| w == 0)
        {
            StateExec::Always { row: lo }
        } else {
            StateExec::Table { lo, hi }
        }
    }

    /// Words per mask (the source machine's signal-word count).
    pub fn mask_words(&self) -> usize {
        self.words
    }

    /// Is `s` compiled to a table (vs walker fallback)?
    pub fn is_tabled(&self, s: StateId) -> bool {
        !matches!(self.states[s.0 as usize], StateExec::Walk)
    }

    /// Number of states compiled to tables.
    pub fn tabled_states(&self) -> u32 {
        self.tabled
    }

    /// Are *all* states tabled (pure-control machine within the row
    /// cap — always true for synthesized monitors)?
    pub fn fully_tabled(&self) -> bool {
        self.tabled as usize == self.states.len()
    }

    /// Total flattened rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Fire row `ri`: append its emissions, return its successor.
    #[inline]
    fn fire(&self, ri: usize, emitted: &mut Vec<Signal>) -> StepOut {
        let row = &self.rows[ri];
        emitted.extend_from_slice(&self.emits[row.emit_start as usize..row.emit_end as usize]);
        StepOut {
            next: row.next,
            nodes_visited: row.nodes,
        }
    }

    /// One instant through the compiled backend: scan the state's rows
    /// with word-wise `(inputs & watch) == match` compares; on the
    /// (unique) hit, append its emissions to `emitted` and return the
    /// row's successor. Mixed states delegate to [`Efsm::step_bits`]
    /// on `m` — which must be the machine this table was compiled
    /// from. Allocation-free on the table path.
    ///
    /// # Panics
    ///
    /// Panics (like the walker) if the machine is structurally broken.
    #[inline]
    pub fn step_table(
        &self,
        m: &Efsm,
        state: StateId,
        inputs: &BitSet,
        hooks: &mut dyn DataHooks,
        emitted: &mut Vec<Signal>,
    ) -> StepOut {
        debug_assert_eq!(m.states.len(), self.states.len(), "table/machine mismatch");
        let tel = ecl_telemetry::enabled();
        if tel {
            tm::TABLE_STEPS.raw_add(1);
        }
        let (lo, hi) = match self.states[state.0 as usize] {
            StateExec::Table { lo, hi } => (lo, hi),
            StateExec::Always { row } => {
                if tel {
                    tm::TABLE_ALWAYS_HITS.raw_add(1);
                }
                return self.fire(row as usize, emitted);
            }
            StateExec::Walk => {
                if tel {
                    tm::TABLE_WALK_FALLBACKS.raw_add(1);
                }
                return m.step_bits(state, inputs, hooks, emitted);
            }
        };
        let (lo, hi) = (lo as usize, hi as usize);
        let w = self.words;
        if w == 1 {
            // The common shape (≤ 64 local signals): one masked
            // compare per row over a contiguous (watch, match) slice.
            let inw = inputs.word(0);
            for (k, pair) in self.masks[lo * 2..hi * 2].chunks_exact(2).enumerate() {
                if inw & pair[0] == pair[1] {
                    if tel {
                        tm::TABLE_ROWS_SCANNED.raw_add(k as u64 + 1);
                    }
                    return self.fire(lo + k, emitted);
                }
            }
        } else {
            for ri in lo..hi {
                let base = ri * 2 * w;
                let (watch, matched) = (
                    &self.masks[base..base + w],
                    &self.masks[base + w..base + 2 * w],
                );
                if (0..w).all(|k| inputs.word(k) & watch[k] == matched[k]) {
                    if tel {
                        tm::TABLE_ROWS_SCANNED.raw_add((ri - lo) as u64 + 1);
                    }
                    return self.fire(ri, emitted);
                }
            }
        }
        // Rows partition the input space (they are the leaves of a
        // decision DAG); reaching here means the table and machine are
        // out of sync. Recover with the walker.
        debug_assert!(false, "no table row matched in state {state:?}");
        m.step_bits(state, inputs, hooks, emitted)
    }
}

impl Efsm {
    /// Is `state` *pure control*: its live s-graph contains only
    /// presence tests, presence-only emissions and gotos? Pure states
    /// are exactly the ones [`CompiledEfsm`] can flatten; a
    /// [`crate::sgraph::Node::TestPred`], [`crate::sgraph::Node::Do`]
    /// or valued [`crate::sgraph::Node::Emit`] anywhere in the live
    /// graph makes the state mixed.
    pub fn state_is_pure(&self, state: StateId) -> bool {
        let root = self.states[state.0 as usize].root;
        sgraph::reachable_nodes(&self.nodes, root).iter().all(|id| {
            match self.nodes[id.0 as usize] {
                Node::Test { .. } | Node::Goto { .. } => true,
                Node::Emit { value, .. } => value.is_none(),
                Node::TestPred { .. } | Node::Do { .. } => false,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::EfsmBuilder;
    use crate::{ActionId, ExprId, NoHooks, PredId};
    use std::collections::HashSet;

    /// Two-state toggler (pure): on `tick` emit `tock` and flip.
    fn toggler() -> Efsm {
        let mut b = EfsmBuilder::new("toggler");
        let tick = b.input("tick");
        let tock = b.output("tock");
        let g1 = b.goto(StateId(1));
        let e = b.emit(tock, g1);
        let g0 = b.goto(StateId(0));
        let r0 = b.test(tick, e, g0);
        b.state("s0", r0);
        let g0b = b.goto(StateId(0));
        let g1b = b.goto(StateId(1));
        let r1 = b.test(tick, g0b, g1b);
        b.state("s1", r1);
        b.build()
    }

    fn step_both(m: &Efsm, c: &CompiledEfsm, s: StateId, inputs: &[u32]) -> (StepOut, StepOut) {
        let bits: BitSet = inputs.iter().map(|&i| i as usize).collect();
        let mut e1 = Vec::new();
        let mut e2 = Vec::new();
        let r1 = m.step_bits(s, &bits, &mut NoHooks, &mut e1);
        let r2 = c.step_table(m, s, &bits, &mut NoHooks, &mut e2);
        assert_eq!(e1, e2, "emission order from state {s:?} inputs {inputs:?}");
        (r1, r2)
    }

    #[test]
    fn table_matches_walker_on_pure_machine() {
        let m = toggler();
        let c = CompiledEfsm::compile(&m);
        assert!(c.fully_tabled());
        assert_eq!(c.tabled_states(), 2);
        for s in [StateId(0), StateId(1)] {
            for inputs in [&[][..], &[0][..]] {
                let (r1, r2) = step_both(&m, &c, s, inputs);
                assert_eq!(r1, r2);
            }
        }
    }

    #[test]
    fn classifier_spots_pred_and_valued_emit() {
        // State 0 pure; state 1 has a TestPred; state 2 a valued Emit;
        // state 3 a Do action.
        let mut m = Efsm::new("mixed");
        let a = m.add_signal("a", crate::SigKind::Input, false);
        let v = m.add_signal("v", crate::SigKind::Output, true);
        let g0 = m.add_node(Node::Goto { target: StateId(0) });
        let t0 = m.add_node(Node::Test {
            sig: a,
            then_: g0,
            else_: g0,
        });
        m.add_state("pure", t0);
        let g1 = m.add_node(Node::Goto { target: StateId(1) });
        let p = m.add_node(Node::TestPred {
            pred: PredId(0),
            then_: g1,
            else_: g1,
        });
        m.add_state("pred", p);
        let g2 = m.add_node(Node::Goto { target: StateId(2) });
        let ev = m.add_node(Node::Emit {
            sig: v,
            value: Some(ExprId(0)),
            next: g2,
        });
        m.add_state("valued", ev);
        let g3 = m.add_node(Node::Goto { target: StateId(3) });
        let d = m.add_node(Node::Do {
            action: ActionId(0),
            next: g3,
        });
        m.add_state("action", d);
        m.validate().unwrap();
        assert!(m.state_is_pure(StateId(0)));
        assert!(!m.state_is_pure(StateId(1)));
        assert!(!m.state_is_pure(StateId(2)));
        assert!(!m.state_is_pure(StateId(3)));
        let c = CompiledEfsm::compile(&m);
        assert!(c.is_tabled(StateId(0)));
        assert!(!c.is_tabled(StateId(1)));
        assert!(!c.is_tabled(StateId(2)));
        assert!(!c.is_tabled(StateId(3)));
        assert_eq!(c.tabled_states(), 1);
        assert!(!c.fully_tabled());
        assert_eq!(m.stats().pure_states, 1);
    }

    #[test]
    fn impurity_anywhere_in_the_live_graph_forces_walk() {
        // Test(a) ? Goto : Do; Goto — the impure node sits on one
        // branch only; the whole state must still be mixed.
        let mut m = Efsm::new("deep");
        let a = m.add_signal("a", crate::SigKind::Input, false);
        let g = m.add_node(Node::Goto { target: StateId(0) });
        let d = m.add_node(Node::Do {
            action: ActionId(9),
            next: g,
        });
        let t = m.add_node(Node::Test {
            sig: a,
            then_: g,
            else_: d,
        });
        m.add_state("s0", t);
        m.validate().unwrap();
        assert!(!m.state_is_pure(StateId(0)));
        assert_eq!(m.stats().pure_states, 0);
    }

    #[test]
    fn mixed_states_fall_back_with_exact_semantics() {
        // State 0 pure, state 1 mixed (pred test chooses the branch).
        let mut m = Efsm::new("hybrid");
        let a = m.add_signal("a", crate::SigKind::Input, false);
        let x = m.add_signal("x", crate::SigKind::Output, false);
        let g1 = m.add_node(Node::Goto { target: StateId(1) });
        let t0 = m.add_node(Node::Test {
            sig: a,
            then_: g1,
            else_: g1,
        });
        m.add_state("pure", t0);
        let g0 = m.add_node(Node::Goto { target: StateId(0) });
        let e = m.add_node(Node::Emit {
            sig: x,
            value: None,
            next: g0,
        });
        let stay = m.add_node(Node::Goto { target: StateId(1) });
        let p = m.add_node(Node::TestPred {
            pred: PredId(0),
            then_: e,
            else_: stay,
        });
        m.add_state("mixed", p);
        m.validate().unwrap();
        let c = CompiledEfsm::compile(&m);
        for answer in [false, true] {
            let bits = BitSet::new();
            let mut e1 = Vec::new();
            let mut e2 = Vec::new();
            let r1 = m.step_bits(StateId(1), &bits, &mut crate::ConstHooks(answer), &mut e1);
            let r2 = c.step_table(
                &m,
                StateId(1),
                &bits,
                &mut crate::ConstHooks(answer),
                &mut e2,
            );
            assert_eq!(r1, r2);
            assert_eq!(e1, e2);
        }
    }

    #[test]
    fn path_explosion_keeps_the_walker() {
        // A chain of tests sharing a leaf: 2^12 paths > ROW_CAP, one
        // state, still pure — but not tabled.
        let mut m = Efsm::new("wide");
        let sigs: Vec<Signal> = (0..12)
            .map(|i| m.add_signal(format!("s{i}"), crate::SigKind::Input, false))
            .collect();
        let mut root = m.add_node(Node::Goto { target: StateId(0) });
        for &s in &sigs {
            root = m.add_node(Node::Test {
                sig: s,
                then_: root,
                else_: root,
            });
        }
        m.add_state("s0", root);
        m.validate().unwrap();
        assert!(m.state_is_pure(StateId(0)));
        let c = CompiledEfsm::compile(&m);
        assert!(!c.is_tabled(StateId(0)));
        // Fallback still answers correctly.
        let (r1, r2) = step_both(&m, &c, StateId(0), &[3]);
        assert_eq!(r1, r2);
    }

    #[test]
    fn nodes_visited_matches_the_walk_exactly() {
        let m = toggler();
        let c = CompiledEfsm::compile(&m);
        let (r1, r2) = step_both(&m, &c, StateId(0), &[0]);
        assert_eq!(r1.nodes_visited, 3); // test, emit, goto
        assert_eq!(r2.nodes_visited, 3);
        let (r1, r2) = step_both(&m, &c, StateId(0), &[]);
        assert_eq!(r1.nodes_visited, 2); // test, goto
        assert_eq!(r2.nodes_visited, 2);
    }

    #[test]
    fn wide_signal_space_uses_multiple_words() {
        // Signal indices past 64 force a second mask word.
        let mut m = Efsm::new("wide-sigs");
        let mut sigs = Vec::new();
        for i in 0..70 {
            sigs.push(m.add_signal(format!("s{i}"), crate::SigKind::Input, false));
        }
        let hi = sigs[69];
        let out = m.add_signal("out", crate::SigKind::Output, false);
        let g = m.add_node(Node::Goto { target: StateId(0) });
        let e = m.add_node(Node::Emit {
            sig: out,
            value: None,
            next: g,
        });
        let g2 = m.add_node(Node::Goto { target: StateId(0) });
        let t = m.add_node(Node::Test {
            sig: hi,
            then_: e,
            else_: g2,
        });
        m.add_state("s0", t);
        m.validate().unwrap();
        let c = CompiledEfsm::compile(&m);
        assert_eq!(c.mask_words(), 2);
        assert!(c.is_tabled(StateId(0)));
        let (r1, r2) = step_both(&m, &c, StateId(0), &[69]);
        assert_eq!(r1, r2);
        let mut e2 = Vec::new();
        let bits: BitSet = [69usize].into_iter().collect();
        c.step_table(&m, StateId(0), &bits, &mut NoHooks, &mut e2);
        assert_eq!(e2, vec![out]);
    }

    #[test]
    fn exhaustive_random_inputs_agree_with_walker() {
        // Shared-diamond graph: Test(a) and Test(b) funnel into shared
        // emit/goto nodes — covers rows with repeated suffixes.
        let mut b = EfsmBuilder::new("diamond");
        let a = b.input("a");
        let bb = b.input("b");
        let x = b.output("x");
        let g0 = b.goto(StateId(0));
        let e = b.emit(x, g0);
        let g1 = b.goto(StateId(0));
        let tb = b.test(bb, e, g1);
        let r = b.test(a, e, tb);
        b.state("s0", r);
        let m = b.build();
        let c = CompiledEfsm::compile(&m);
        for pat in 0u32..4 {
            let inputs: Vec<u32> = [a, bb]
                .iter()
                .enumerate()
                .filter(|(i, _)| pat & (1 << i) != 0)
                .map(|(_, s)| s.0)
                .collect();
            let (r1, r2) = step_both(&m, &c, StateId(0), &inputs);
            assert_eq!(r1, r2, "pattern {pat:#b}");
        }
        // And through the HashSet compatibility `step`.
        let mut present = HashSet::new();
        present.insert(a);
        let walked = m.step(StateId(0), &present, &mut NoHooks);
        let bits: BitSet = [a.0 as usize].into_iter().collect();
        let mut e2 = Vec::new();
        let tabled = c.step_table(&m, StateId(0), &bits, &mut NoHooks, &mut e2);
        assert_eq!(walked.next, tabled.next);
        assert_eq!(walked.emitted, e2);
    }
}
