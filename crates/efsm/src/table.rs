//! Fused per-state instant programs: the compiled execution backend
//! for EFSM states, pure *and* mixed.
//!
//! The s-graph walker ([`Efsm::step_bits`]) re-decides one branch per
//! node every instant. The key observation behind fusion is that
//! signal-presence is *invariant within a reaction*: the input bitset
//! does not change mid-walk, so every presence decision the walk would
//! make can be resolved up front by a word-wise mask scan over rows of
//! `(watch_mask, match_mask)`. What cannot be resolved up front is the
//! data part — predicate outcomes depend on variables that earlier
//! actions in the same reaction may have written — so each row carries
//! a residual program: straight-line bytecode for exactly the
//! predicates, actions and (valued) emissions the walk would execute
//! once its presence branches are pinned, in exactly that order.
//!
//! * A row whose residual is pure (resolved tests, presence-only
//!   emissions, goto) compiles to a *simple row*: an emission slice
//!   memcpy plus a precomputed successor — the PR 4 fast path,
//!   unchanged.
//! * Any other row gets an entry point into a shared [`FusedOp`]
//!   arena. Ops carry explicit successor pcs (direct-threaded
//!   dispatch); `Pad` ops sit positionally where resolved presence
//!   tests sat in the walk, so `nodes_visited` — and every cycle/trace
//!   quantity charged from it — stays bit-identical to the walker,
//!   including tests hidden behind predicate branches the reaction
//!   does not take.
//!
//! A [`CompiledEfsm`] is built once per machine (runner construction,
//! monitor synthesis) and is observationally identical to the walker:
//! per instant it produces the same emissions in the same order, the
//! same data-hook call sequence, the same next state, and the same
//! `nodes_visited` count. States whose row enumeration would explode
//! past [`ROW_CAP`] stay on the walker (correct, just not fused); the
//! differential proptests in `tests/differential.rs` enforce the
//! equivalence either way.

use crate::machine::{Efsm, Signal, StateId, StepOut};
use crate::sgraph::{Node, NodeId};
use crate::{ActionId, BitSet, DataHooks, ExprId, PredId};
use ecl_telemetry::metrics as tm;
use std::collections::HashMap;

/// Per-state cap on fused rows. An s-graph with `n` independent
/// presence tests can need `2^n` rows; past this bound the state stays
/// on the walker (correct, just not fused) instead of exploding memory.
pub const ROW_CAP: usize = 512;

/// Sentinel for [`RowMeta::entry`]: the row is simple (emission slice
/// plus precomputed successor), with no residual program.
const NO_PROG: u32 = u32::MAX;

/// How one control state executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StateExec {
    /// Dense rows `lo..hi` (indices into the row arrays).
    Table { lo: u32, hi: u32 },
    /// Exactly one row, necessarily input-independent (rows partition
    /// the input space, so a lone row has an empty watch set): fire it
    /// without touching the masks. Halted/latched monitor states live
    /// here, and so does every mixed state with no presence tests —
    /// its whole reaction is one residual program.
    Always { row: u32 },
    /// Fall back to [`Efsm::step_bits`] (row enumeration blew
    /// [`ROW_CAP`]).
    Walk,
}

/// One op of a row's residual program. Ops live in a shared arena on
/// the [`CompiledEfsm`] and name their successors by pc — dispatch is
/// direct-threaded, no decode loop state beyond the pc itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FusedOp {
    /// Evaluate a data predicate and branch.
    Pred {
        pred: PredId,
        then_: u32,
        else_: u32,
    },
    /// Run a data action.
    Action { action: ActionId, next: u32 },
    /// Emit `sig` (computing its value first when `value` is set).
    Emit {
        sig: Signal,
        value: Option<ExprId>,
        next: u32,
    },
    /// Charge `n` nodes without doing anything: stands in for `n`
    /// presence tests the mask scan already resolved, placed exactly
    /// where the walk would have visited them.
    Pad { n: u32, next: u32 },
    /// End of reaction: move to `target` for the next instant (charges
    /// the goto node).
    End { target: StateId },
}

/// Metadata of one fused transition row (masks live in the shared
/// word array, simple-row emissions in the shared signal array, the
/// residual program in the shared op arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RowMeta {
    /// Simple row: next control state when this row fires. Unused
    /// (placeholder) when `entry != NO_PROG` — a residual program can
    /// reach different successors on different predicate outcomes, so
    /// its `End` ops carry the target.
    next: StateId,
    /// Simple row: nodes the replaced walk would have visited (tests +
    /// emits + the goto), kept so [`StepOut::nodes_visited`] — and
    /// everything charged from it — is bit-identical to the walker.
    /// Program rows accumulate this per-op instead.
    nodes: u32,
    /// Simple row: emissions `emits[start..end]`, in walk order.
    emit_start: u32,
    emit_end: u32,
    /// Entry pc of the residual program, or [`NO_PROG`] for a simple
    /// row.
    entry: u32,
}

/// The fused compiled backend of one [`Efsm`].
///
/// Holds no reference to the machine; callers pass the same machine to
/// [`CompiledEfsm::step_table`] (checked by a debug assertion on the
/// state count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledEfsm {
    /// Words per mask: `ceil(signals / 64)` of the source machine.
    words: usize,
    /// Execution mode per state.
    states: Vec<StateExec>,
    /// Row masks, `2 * words` per row: watch words then match words.
    masks: Vec<u64>,
    /// Row metadata, parallel to the mask stride.
    rows: Vec<RowMeta>,
    /// Emission lists of all simple rows, concatenated.
    emits: Vec<Signal>,
    /// Residual programs of all program rows, in one arena.
    ops: Vec<FusedOp>,
    /// Number of states fused (not on walker fallback).
    fused: u32,
}

/// A partial signal-presence assignment: the literals a row requires.
/// Built by cube specialization — unlike raw path cubes it never
/// contains duplicate or contradictory literals.
type Cube = Vec<(Signal, bool)>;

/// Look up `sig` in a cube.
fn cube_lookup(cube: &[(Signal, bool)], sig: Signal) -> Option<bool> {
    cube.iter().find(|&&(s, _)| s == sig).map(|&(_, p)| p)
}

/// First presence test reachable from `root` that `cube` does not
/// resolve, or `None` if the cube pins every reachable one. Resolved
/// tests constrain reachability (only the assigned branch is
/// followed); predicate branches are both live at compile time.
/// `seen` is caller-provided scratch, one slot per node.
fn first_unresolved_test(
    nodes: &[Node],
    root: NodeId,
    cube: &[(Signal, bool)],
    seen: &mut [bool],
) -> Option<Signal> {
    seen.fill(false);
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut seen[id.0 as usize], true) {
            continue;
        }
        match nodes[id.0 as usize] {
            Node::Test { sig, then_, else_ } => match cube_lookup(cube, sig) {
                Some(true) => stack.push(then_),
                Some(false) => stack.push(else_),
                None => return Some(sig),
            },
            Node::TestPred { then_, else_, .. } => {
                stack.push(else_);
                stack.push(then_);
            }
            Node::Do { next, .. } | Node::Emit { next, .. } => stack.push(next),
            Node::Goto { .. } => {}
        }
    }
    None
}

/// Specialize the state rooted at `root` into complete cubes: split on
/// one unresolved presence test at a time until every reachable test
/// is pinned. The splits form a binary decision tree, so the returned
/// cubes partition the input space. Returns `None` when more than
/// `cap` cubes would result.
fn enumerate_cubes(m: &Efsm, root: NodeId, cap: usize) -> Option<Vec<Cube>> {
    let mut seen = vec![false; m.nodes.len()];
    let mut complete: Vec<Cube> = Vec::new();
    let mut work: Vec<Cube> = vec![Vec::new()];
    while let Some(cube) = work.pop() {
        // Every pending cube yields at least one complete cube, so
        // `complete + work` is a lower bound on the final row count
        // (and reaches it): the check rejects exactly the states that
        // would exceed the cap.
        if complete.len() + work.len() > cap {
            return None;
        }
        match first_unresolved_test(&m.nodes, root, &cube, &mut seen) {
            Some(sig) => {
                let mut then_cube = cube.clone();
                then_cube.push((sig, true));
                let mut else_cube = cube;
                else_cube.push((sig, false));
                work.push(else_cube);
                work.push(then_cube);
            }
            None => complete.push(cube),
        }
    }
    Some(complete)
}

/// Walk the residual of `cube` from `root`; if it is straight-line
/// pure (resolved tests, presence-only emissions, goto) return its
/// emissions, successor, and exact walker node count. Mixed residuals
/// return `None` and compile to a program instead. Node counts come
/// from the walk itself — a path can test the same signal at two
/// distinct nodes, so `cube.len()` would undercount.
fn try_simple_row(
    m: &Efsm,
    root: NodeId,
    cube: &[(Signal, bool)],
) -> Option<(Vec<Signal>, StateId, u32)> {
    let mut id = root;
    let mut nodes = 0u32;
    let mut emits = Vec::new();
    loop {
        nodes += 1;
        match m.nodes[id.0 as usize] {
            Node::Test { sig, then_, else_ } => {
                id = if cube_lookup(cube, sig)? {
                    then_
                } else {
                    else_
                };
            }
            Node::Emit {
                sig,
                value: None,
                next,
            } => {
                emits.push(sig);
                id = next;
            }
            Node::Goto { target } => return Some((emits, target, nodes)),
            _ => return None,
        }
    }
}

impl CompiledEfsm {
    /// Fuse every state of `m` into transition rows with residual
    /// programs; states past [`ROW_CAP`] are marked for walker
    /// fallback.
    pub fn compile(m: &Efsm) -> CompiledEfsm {
        let words = m.signals.len().div_ceil(64);
        let mut c = CompiledEfsm {
            words,
            states: Vec::with_capacity(m.states.len()),
            masks: Vec::new(),
            rows: Vec::new(),
            emits: Vec::new(),
            ops: Vec::new(),
            fused: 0,
        };
        for (si, _) in m.states.iter().enumerate() {
            let exec = c.compile_state(m, StateId(si as u32));
            c.states.push(exec);
            if !matches!(exec, StateExec::Walk) {
                c.fused += 1;
            }
        }
        c
    }

    /// Fuse one state, or decide it must stay on the walker.
    fn compile_state(&mut self, m: &Efsm, s: StateId) -> StateExec {
        let root = m.states[s.0 as usize].root;
        let Some(cubes) = enumerate_cubes(m, root, ROW_CAP) else {
            return StateExec::Walk; // row explosion: keep walking
        };
        let lo = self.rows.len() as u32;
        // Scan-friendly row order: fewest required-present literals
        // first. Under sparse inputs (the reactive-system norm, e.g.
        // idle instants with nothing present) the emptier rows are the
        // likelier ones, so the scan usually hits in the first row or
        // two. Rows are mutually exclusive, so reordering cannot
        // change which row fires.
        let mut order: Vec<&Cube> = cubes.iter().collect();
        order.sort_by_key(|c| c.iter().filter(|&&(_, present)| present).count());
        for cube in order {
            let mut watch = vec![0u64; self.words];
            let mut matched = vec![0u64; self.words];
            for &(sig, present) in cube.iter() {
                let (w, b) = (sig.0 as usize / 64, sig.0 as usize % 64);
                watch[w] |= 1u64 << b;
                if present {
                    matched[w] |= 1u64 << b;
                }
            }
            let meta = if let Some((emits, target, nodes)) = try_simple_row(m, root, cube) {
                let emit_start = self.emits.len() as u32;
                self.emits.extend(emits);
                RowMeta {
                    next: target,
                    nodes,
                    emit_start,
                    emit_end: self.emits.len() as u32,
                    entry: NO_PROG,
                }
            } else {
                let mut memo = HashMap::new();
                let entry = self.emit_node(m, root, cube, &mut memo);
                RowMeta {
                    next: StateId(0),
                    nodes: 0,
                    emit_start: 0,
                    emit_end: 0,
                    entry,
                }
            };
            self.masks.extend_from_slice(&watch);
            self.masks.extend_from_slice(&matched);
            self.rows.push(meta);
        }
        let hi = self.rows.len() as u32;
        if hi - lo == 1
            && self.masks[lo as usize * 2 * self.words..][..self.words]
                .iter()
                .all(|&w| w == 0)
        {
            StateExec::Always { row: lo }
        } else {
            StateExec::Table { lo, hi }
        }
    }

    /// Append `op` to the arena, returning its pc.
    fn push_op(&mut self, op: FusedOp) -> u32 {
        self.ops.push(op);
        (self.ops.len() - 1) as u32
    }

    /// Compile the residual of `cube` below node `id` to ops,
    /// returning the entry pc. Memoized per node (the residual is a
    /// DAG — shared suffixes compile once); resolved presence tests
    /// become `Pad` charges, collapsed into runs when consecutive.
    fn emit_node(
        &mut self,
        m: &Efsm,
        id: NodeId,
        cube: &[(Signal, bool)],
        memo: &mut HashMap<NodeId, u32>,
    ) -> u32 {
        if let Some(&pc) = memo.get(&id) {
            return pc;
        }
        let pc = match m.nodes[id.0 as usize] {
            Node::Test { sig, then_, else_ } => {
                let taken = if cube_lookup(cube, sig)
                    .expect("complete cube resolves every reachable presence test")
                {
                    then_
                } else {
                    else_
                };
                let next = self.emit_node(m, taken, cube, memo);
                // Collapse Pad chains: a run of resolved tests charges
                // once.
                match self.ops[next as usize] {
                    FusedOp::Pad { n, next: after } => self.push_op(FusedOp::Pad {
                        n: n + 1,
                        next: after,
                    }),
                    _ => self.push_op(FusedOp::Pad { n: 1, next }),
                }
            }
            Node::TestPred { pred, then_, else_ } => {
                let t = self.emit_node(m, then_, cube, memo);
                let e = self.emit_node(m, else_, cube, memo);
                self.push_op(FusedOp::Pred {
                    pred,
                    then_: t,
                    else_: e,
                })
            }
            Node::Do { action, next } => {
                let n = self.emit_node(m, next, cube, memo);
                self.push_op(FusedOp::Action { action, next: n })
            }
            Node::Emit { sig, value, next } => {
                let n = self.emit_node(m, next, cube, memo);
                self.push_op(FusedOp::Emit {
                    sig,
                    value,
                    next: n,
                })
            }
            Node::Goto { target } => self.push_op(FusedOp::End { target }),
        };
        memo.insert(id, pc);
        pc
    }

    /// Words per mask (the source machine's signal-word count).
    pub fn mask_words(&self) -> usize {
        self.words
    }

    /// Is `s` fused (vs walker fallback)?
    pub fn is_fused(&self, s: StateId) -> bool {
        !matches!(self.states[s.0 as usize], StateExec::Walk)
    }

    /// Number of states fused into rows.
    pub fn fused_states(&self) -> u32 {
        self.fused
    }

    /// Are *all* states fused (no walker fallback anywhere — true for
    /// every machine within the row cap, including the synthesized
    /// monitors)?
    pub fn fully_fused(&self) -> bool {
        self.fused as usize == self.states.len()
    }

    /// Total fused rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Ops in the residual-program arena (0 for a pure-control
    /// machine: every row is a simple emission slice).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Fire row `ri`: simple rows append their emission slice and
    /// return the precomputed successor; program rows run their
    /// residual bytecode against `hooks`.
    #[inline]
    fn fire(
        &self,
        ri: usize,
        hooks: &mut dyn DataHooks,
        emitted: &mut Vec<Signal>,
        tel: bool,
    ) -> StepOut {
        let row = &self.rows[ri];
        if row.entry == NO_PROG {
            emitted.extend_from_slice(&self.emits[row.emit_start as usize..row.emit_end as usize]);
            StepOut {
                next: row.next,
                nodes_visited: row.nodes,
            }
        } else {
            self.run_program(row.entry, hooks, emitted, tel)
        }
    }

    /// Execute one residual program. The op loop mirrors the walker
    /// node-for-node: every op charge lands where the corresponding
    /// walk node sat, so `nodes_visited` (and the fuel the hooks burn)
    /// is bit-identical.
    fn run_program(
        &self,
        entry: u32,
        hooks: &mut dyn DataHooks,
        emitted: &mut Vec<Signal>,
        tel: bool,
    ) -> StepOut {
        let mut pc = entry as usize;
        let mut nodes = 0u32;
        let mut ops_run = 0u64;
        loop {
            ops_run += 1;
            match self.ops[pc] {
                FusedOp::Pred { pred, then_, else_ } => {
                    nodes += 1;
                    pc = if hooks.eval_pred(pred) { then_ } else { else_ } as usize;
                }
                FusedOp::Action { action, next } => {
                    nodes += 1;
                    hooks.run_action(action);
                    pc = next as usize;
                }
                FusedOp::Emit { sig, value, next } => {
                    nodes += 1;
                    if let Some(expr) = value {
                        hooks.emit_value(sig, expr);
                    }
                    emitted.push(sig);
                    pc = next as usize;
                }
                FusedOp::Pad { n, next } => {
                    nodes += n;
                    pc = next as usize;
                }
                FusedOp::End { target } => {
                    nodes += 1;
                    if tel {
                        tm::TABLE_FUSED_HITS.raw_add(1);
                        tm::TABLE_FUSED_OPS.raw_add(ops_run);
                    }
                    return StepOut {
                        next: target,
                        nodes_visited: nodes,
                    };
                }
            }
        }
    }

    /// One instant through the compiled backend: scan the state's rows
    /// with word-wise `(inputs & watch) == match` compares; the
    /// (unique) hit fires — appending a simple row's emissions to
    /// `emitted`, or running a program row's residual bytecode against
    /// `hooks`. States past the row cap delegate to [`Efsm::step_bits`]
    /// on `m` — which must be the machine this table was compiled
    /// from. Allocation-free on the fused path.
    ///
    /// # Panics
    ///
    /// Panics (like the walker) if the machine is structurally broken.
    #[inline]
    pub fn step_table(
        &self,
        m: &Efsm,
        state: StateId,
        inputs: &BitSet,
        hooks: &mut dyn DataHooks,
        emitted: &mut Vec<Signal>,
    ) -> StepOut {
        debug_assert_eq!(m.states.len(), self.states.len(), "table/machine mismatch");
        let tel = ecl_telemetry::enabled();
        if tel {
            tm::TABLE_STEPS.raw_add(1);
        }
        let (lo, hi) = match self.states[state.0 as usize] {
            StateExec::Table { lo, hi } => (lo, hi),
            StateExec::Always { row } => {
                if tel {
                    tm::TABLE_ALWAYS_HITS.raw_add(1);
                }
                return self.fire(row as usize, hooks, emitted, tel);
            }
            StateExec::Walk => {
                if tel {
                    tm::TABLE_WALK_FALLBACKS.raw_add(1);
                }
                return m.step_bits(state, inputs, hooks, emitted);
            }
        };
        let (lo, hi) = (lo as usize, hi as usize);
        let w = self.words;
        if w == 1 {
            // The common shape (≤ 64 local signals): one masked
            // compare per row over a contiguous (watch, match) slice.
            let inw = inputs.word(0);
            for (k, pair) in self.masks[lo * 2..hi * 2].chunks_exact(2).enumerate() {
                if inw & pair[0] == pair[1] {
                    if tel {
                        tm::TABLE_ROWS_SCANNED.raw_add(k as u64 + 1);
                    }
                    return self.fire(lo + k, hooks, emitted, tel);
                }
            }
        } else {
            for ri in lo..hi {
                let base = ri * 2 * w;
                let (watch, matched) = (
                    &self.masks[base..base + w],
                    &self.masks[base + w..base + 2 * w],
                );
                if (0..w).all(|k| inputs.word(k) & watch[k] == matched[k]) {
                    if tel {
                        tm::TABLE_ROWS_SCANNED.raw_add((ri - lo) as u64 + 1);
                    }
                    return self.fire(ri, hooks, emitted, tel);
                }
            }
        }
        // Rows partition the input space (they are the leaves of a
        // decision tree); reaching here means the table and machine
        // are out of sync. Recover with the walker.
        debug_assert!(false, "no table row matched in state {state:?}");
        m.step_bits(state, inputs, hooks, emitted)
    }
}

impl Efsm {
    /// Is `state` *pure control*: its live s-graph contains only
    /// presence tests, presence-only emissions and gotos? Pure states
    /// fuse to simple rows (emission-slice memcpy); a
    /// [`crate::sgraph::Node::TestPred`], [`crate::sgraph::Node::Do`]
    /// or valued [`crate::sgraph::Node::Emit`] anywhere in the live
    /// graph makes the state mixed, which still fuses — to rows with
    /// residual programs.
    pub fn state_is_pure(&self, state: StateId) -> bool {
        let root = self.states[state.0 as usize].root;
        crate::sgraph::reachable_nodes(&self.nodes, root)
            .iter()
            .all(|id| match self.nodes[id.0 as usize] {
                Node::Test { .. } | Node::Goto { .. } => true,
                Node::Emit { value, .. } => value.is_none(),
                Node::TestPred { .. } | Node::Do { .. } => false,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::EfsmBuilder;
    use crate::{ActionId, ExprId, NoHooks, PredId};
    use std::collections::HashSet;

    /// Two-state toggler (pure): on `tick` emit `tock` and flip.
    fn toggler() -> Efsm {
        let mut b = EfsmBuilder::new("toggler");
        let tick = b.input("tick");
        let tock = b.output("tock");
        let g1 = b.goto(StateId(1));
        let e = b.emit(tock, g1);
        let g0 = b.goto(StateId(0));
        let r0 = b.test(tick, e, g0);
        b.state("s0", r0);
        let g0b = b.goto(StateId(0));
        let g1b = b.goto(StateId(1));
        let r1 = b.test(tick, g0b, g1b);
        b.state("s1", r1);
        b.build()
    }

    fn step_both(m: &Efsm, c: &CompiledEfsm, s: StateId, inputs: &[u32]) -> (StepOut, StepOut) {
        let bits: BitSet = inputs.iter().map(|&i| i as usize).collect();
        let mut e1 = Vec::new();
        let mut e2 = Vec::new();
        let r1 = m.step_bits(s, &bits, &mut NoHooks, &mut e1);
        let r2 = c.step_table(m, s, &bits, &mut NoHooks, &mut e2);
        assert_eq!(e1, e2, "emission order from state {s:?} inputs {inputs:?}");
        (r1, r2)
    }

    /// Hooks that record the exact call sequence and answer predicates
    /// from a scripted list (consumed in call order).
    struct RecHooks {
        answers: Vec<bool>,
        calls: Vec<String>,
    }

    impl RecHooks {
        fn new(answers: &[bool]) -> RecHooks {
            RecHooks {
                answers: answers.to_vec(),
                calls: Vec::new(),
            }
        }
    }

    impl DataHooks for RecHooks {
        fn eval_pred(&mut self, pred: PredId) -> bool {
            self.calls.push(format!("pred{}", pred.0));
            self.answers.remove(0)
        }
        fn run_action(&mut self, action: ActionId) {
            self.calls.push(format!("act{}", action.0));
        }
        fn emit_value(&mut self, sig: Signal, expr: ExprId) {
            self.calls.push(format!("emit{}#{}", sig.0, expr.0));
        }
    }

    #[test]
    fn table_matches_walker_on_pure_machine() {
        let m = toggler();
        let c = CompiledEfsm::compile(&m);
        assert!(c.fully_fused());
        assert_eq!(c.fused_states(), 2);
        // Pure rows are all simple: no residual programs.
        assert_eq!(c.op_count(), 0);
        for s in [StateId(0), StateId(1)] {
            for inputs in [&[][..], &[0][..]] {
                let (r1, r2) = step_both(&m, &c, s, inputs);
                assert_eq!(r1, r2);
            }
        }
    }

    #[test]
    fn classifier_spots_pred_and_valued_emit() {
        // State 0 pure; state 1 has a TestPred; state 2 a valued Emit;
        // state 3 a Do action. All four fuse — the mixed ones into
        // rows with residual programs.
        let mut m = Efsm::new("mixed");
        let a = m.add_signal("a", crate::SigKind::Input, false);
        let v = m.add_signal("v", crate::SigKind::Output, true);
        let g0 = m.add_node(Node::Goto { target: StateId(0) });
        let t0 = m.add_node(Node::Test {
            sig: a,
            then_: g0,
            else_: g0,
        });
        m.add_state("pure", t0);
        let g1 = m.add_node(Node::Goto { target: StateId(1) });
        let p = m.add_node(Node::TestPred {
            pred: PredId(0),
            then_: g1,
            else_: g1,
        });
        m.add_state("pred", p);
        let g2 = m.add_node(Node::Goto { target: StateId(2) });
        let ev = m.add_node(Node::Emit {
            sig: v,
            value: Some(ExprId(0)),
            next: g2,
        });
        m.add_state("valued", ev);
        let g3 = m.add_node(Node::Goto { target: StateId(3) });
        let d = m.add_node(Node::Do {
            action: ActionId(0),
            next: g3,
        });
        m.add_state("action", d);
        m.validate().unwrap();
        assert!(m.state_is_pure(StateId(0)));
        assert!(!m.state_is_pure(StateId(1)));
        assert!(!m.state_is_pure(StateId(2)));
        assert!(!m.state_is_pure(StateId(3)));
        let c = CompiledEfsm::compile(&m);
        assert!(c.is_fused(StateId(0)));
        assert!(c.is_fused(StateId(1)));
        assert!(c.is_fused(StateId(2)));
        assert!(c.is_fused(StateId(3)));
        assert_eq!(c.fused_states(), 4);
        assert!(c.fully_fused());
        assert!(c.op_count() > 0);
        assert_eq!(m.stats().pure_states, 1);
    }

    #[test]
    fn impurity_anywhere_in_the_live_graph_forces_program() {
        // Test(a) ? Goto : Do; Goto — the impure node sits on one
        // branch only; the state is mixed (and still fuses).
        let mut m = Efsm::new("deep");
        let a = m.add_signal("a", crate::SigKind::Input, false);
        let g = m.add_node(Node::Goto { target: StateId(0) });
        let d = m.add_node(Node::Do {
            action: ActionId(9),
            next: g,
        });
        let t = m.add_node(Node::Test {
            sig: a,
            then_: g,
            else_: d,
        });
        m.add_state("s0", t);
        m.validate().unwrap();
        assert!(!m.state_is_pure(StateId(0)));
        assert_eq!(m.stats().pure_states, 0);
        let c = CompiledEfsm::compile(&m);
        assert!(c.is_fused(StateId(0)));
        // The `a`-present row takes the pure branch: it is a simple
        // row, so only the absent row's residual (Pad for the resolved
        // test; Action; End) is in the arena.
        assert_eq!(c.op_count(), 3);
        // Walker parity on both rows, hook sequence included.
        for inputs in [&[][..], &[0u32][..]] {
            let bits: BitSet = inputs.iter().map(|&i| i as usize).collect();
            let mut h1 = RecHooks::new(&[]);
            let mut h2 = RecHooks::new(&[]);
            let mut e1 = Vec::new();
            let mut e2 = Vec::new();
            let r1 = m.step_bits(StateId(0), &bits, &mut h1, &mut e1);
            let r2 = c.step_table(&m, StateId(0), &bits, &mut h2, &mut e2);
            assert_eq!(r1, r2);
            assert_eq!(e1, e2);
            assert_eq!(h1.calls, h2.calls);
        }
    }

    #[test]
    fn mixed_states_fuse_with_exact_semantics() {
        // State 0 pure, state 1 mixed (pred test chooses the branch).
        let mut m = Efsm::new("hybrid");
        let a = m.add_signal("a", crate::SigKind::Input, false);
        let x = m.add_signal("x", crate::SigKind::Output, false);
        let g1 = m.add_node(Node::Goto { target: StateId(1) });
        let t0 = m.add_node(Node::Test {
            sig: a,
            then_: g1,
            else_: g1,
        });
        m.add_state("pure", t0);
        let g0 = m.add_node(Node::Goto { target: StateId(0) });
        let e = m.add_node(Node::Emit {
            sig: x,
            value: None,
            next: g0,
        });
        let stay = m.add_node(Node::Goto { target: StateId(1) });
        let p = m.add_node(Node::TestPred {
            pred: PredId(0),
            then_: e,
            else_: stay,
        });
        m.add_state("mixed", p);
        m.validate().unwrap();
        let c = CompiledEfsm::compile(&m);
        assert!(c.is_fused(StateId(1)));
        assert!(c.fully_fused());
        for answer in [false, true] {
            let bits = BitSet::new();
            let mut e1 = Vec::new();
            let mut e2 = Vec::new();
            let r1 = m.step_bits(StateId(1), &bits, &mut crate::ConstHooks(answer), &mut e1);
            let r2 = c.step_table(
                &m,
                StateId(1),
                &bits,
                &mut crate::ConstHooks(answer),
                &mut e2,
            );
            assert_eq!(r1, r2);
            assert_eq!(e1, e2);
            // One row program can reach either successor: the pred
            // decides at runtime, inside the program.
            assert_eq!(r2.next, if answer { StateId(0) } else { StateId(1) });
        }
    }

    #[test]
    fn interleaved_tests_and_data_keep_walker_order() {
        // Do(a0); Test(s)? (Emit v=e0; TestPred p0 ? Goto 1 : Goto 0)
        //                 : Goto 0
        // — actions run before the presence test in walk order, and
        // the pred sits behind a valued emission. The fused program
        // must replay the hook sequence exactly and charge the test
        // node positionally (after the action).
        let mut m = Efsm::new("interleave");
        let s = m.add_signal("s", crate::SigKind::Input, false);
        let v = m.add_signal("v", crate::SigKind::Output, true);
        let g1 = m.add_node(Node::Goto { target: StateId(1) });
        let g0 = m.add_node(Node::Goto { target: StateId(0) });
        let p = m.add_node(Node::TestPred {
            pred: PredId(3),
            then_: g1,
            else_: g0,
        });
        let ev = m.add_node(Node::Emit {
            sig: v,
            value: Some(ExprId(7)),
            next: p,
        });
        let g0b = m.add_node(Node::Goto { target: StateId(0) });
        let t = m.add_node(Node::Test {
            sig: s,
            then_: ev,
            else_: g0b,
        });
        let root = m.add_node(Node::Do {
            action: ActionId(5),
            next: t,
        });
        m.add_state("s0", root);
        let g_stay = m.add_node(Node::Goto { target: StateId(1) });
        m.add_state("s1", g_stay);
        m.validate().unwrap();
        let c = CompiledEfsm::compile(&m);
        assert!(c.fully_fused());
        let cases: [(&[u32], &[bool]); 3] = [(&[], &[]), (&[0], &[true]), (&[0], &[false])];
        for (inputs, answers) in cases {
            let bits: BitSet = inputs.iter().map(|&i| i as usize).collect();
            let mut h1 = RecHooks::new(answers);
            let mut h2 = RecHooks::new(answers);
            let mut e1 = Vec::new();
            let mut e2 = Vec::new();
            let r1 = m.step_bits(StateId(0), &bits, &mut h1, &mut e1);
            let r2 = c.step_table(&m, StateId(0), &bits, &mut h2, &mut e2);
            assert_eq!(r1, r2, "inputs {inputs:?} answers {answers:?}");
            assert_eq!(e1, e2);
            assert_eq!(h1.calls, h2.calls);
        }
    }

    #[test]
    fn untaken_pred_branches_do_not_charge_hidden_tests() {
        // TestPred p ? (Test(s)? Goto 0 : Goto 0) : Goto 0 — the
        // presence test is only visited when the pred holds. The mask
        // scan still splits on `s` (it is reachable at compile time),
        // but the Pad charge sits behind the pred branch, so a false
        // pred charges exactly what the walker would: pred + goto.
        let mut m = Efsm::new("hidden");
        let s = m.add_signal("s", crate::SigKind::Input, false);
        let g0 = m.add_node(Node::Goto { target: StateId(0) });
        let g1 = m.add_node(Node::Goto { target: StateId(0) });
        let g2 = m.add_node(Node::Goto { target: StateId(0) });
        let t = m.add_node(Node::Test {
            sig: s,
            then_: g0,
            else_: g1,
        });
        let p = m.add_node(Node::TestPred {
            pred: PredId(0),
            then_: t,
            else_: g2,
        });
        m.add_state("s0", p);
        m.validate().unwrap();
        let c = CompiledEfsm::compile(&m);
        assert!(c.fully_fused());
        for inputs in [&[][..], &[0u32][..]] {
            for answer in [false, true] {
                let bits: BitSet = inputs.iter().map(|&i| i as usize).collect();
                let mut e1 = Vec::new();
                let mut e2 = Vec::new();
                let r1 = m.step_bits(StateId(0), &bits, &mut crate::ConstHooks(answer), &mut e1);
                let r2 = c.step_table(
                    &m,
                    StateId(0),
                    &bits,
                    &mut crate::ConstHooks(answer),
                    &mut e2,
                );
                assert_eq!(r1, r2, "inputs {inputs:?} answer {answer}");
            }
        }
    }

    #[test]
    fn path_explosion_keeps_the_walker() {
        // A chain of tests sharing a leaf: 2^12 rows > ROW_CAP, one
        // state, pure — but not fused.
        let mut m = Efsm::new("wide");
        let sigs: Vec<Signal> = (0..12)
            .map(|i| m.add_signal(format!("s{i}"), crate::SigKind::Input, false))
            .collect();
        let mut root = m.add_node(Node::Goto { target: StateId(0) });
        for &s in &sigs {
            root = m.add_node(Node::Test {
                sig: s,
                then_: root,
                else_: root,
            });
        }
        m.add_state("s0", root);
        m.validate().unwrap();
        assert!(m.state_is_pure(StateId(0)));
        let c = CompiledEfsm::compile(&m);
        assert!(!c.is_fused(StateId(0)));
        // Fallback still answers correctly.
        let (r1, r2) = step_both(&m, &c, StateId(0), &[3]);
        assert_eq!(r1, r2);
    }

    #[test]
    fn nodes_visited_matches_the_walk_exactly() {
        let m = toggler();
        let c = CompiledEfsm::compile(&m);
        let (r1, r2) = step_both(&m, &c, StateId(0), &[0]);
        assert_eq!(r1.nodes_visited, 3); // test, emit, goto
        assert_eq!(r2.nodes_visited, 3);
        let (r1, r2) = step_both(&m, &c, StateId(0), &[]);
        assert_eq!(r1.nodes_visited, 2); // test, goto
        assert_eq!(r2.nodes_visited, 2);
    }

    #[test]
    fn wide_signal_space_uses_multiple_words() {
        // Signal indices past 64 force a second mask word.
        let mut m = Efsm::new("wide-sigs");
        let mut sigs = Vec::new();
        for i in 0..70 {
            sigs.push(m.add_signal(format!("s{i}"), crate::SigKind::Input, false));
        }
        let hi = sigs[69];
        let out = m.add_signal("out", crate::SigKind::Output, false);
        let g = m.add_node(Node::Goto { target: StateId(0) });
        let e = m.add_node(Node::Emit {
            sig: out,
            value: None,
            next: g,
        });
        let g2 = m.add_node(Node::Goto { target: StateId(0) });
        let t = m.add_node(Node::Test {
            sig: hi,
            then_: e,
            else_: g2,
        });
        m.add_state("s0", t);
        m.validate().unwrap();
        let c = CompiledEfsm::compile(&m);
        assert_eq!(c.mask_words(), 2);
        assert!(c.is_fused(StateId(0)));
        let (r1, r2) = step_both(&m, &c, StateId(0), &[69]);
        assert_eq!(r1, r2);
        let mut e2 = Vec::new();
        let bits: BitSet = [69usize].into_iter().collect();
        c.step_table(&m, StateId(0), &bits, &mut NoHooks, &mut e2);
        assert_eq!(e2, vec![out]);
    }

    #[test]
    fn exhaustive_random_inputs_agree_with_walker() {
        // Shared-diamond graph: Test(a) and Test(b) funnel into shared
        // emit/goto nodes — covers rows with repeated suffixes.
        let mut b = EfsmBuilder::new("diamond");
        let a = b.input("a");
        let bb = b.input("b");
        let x = b.output("x");
        let g0 = b.goto(StateId(0));
        let e = b.emit(x, g0);
        let g1 = b.goto(StateId(0));
        let tb = b.test(bb, e, g1);
        let r = b.test(a, e, tb);
        b.state("s0", r);
        let m = b.build();
        let c = CompiledEfsm::compile(&m);
        for pat in 0u32..4 {
            let inputs: Vec<u32> = [a, bb]
                .iter()
                .enumerate()
                .filter(|(i, _)| pat & (1 << i) != 0)
                .map(|(_, s)| s.0)
                .collect();
            let (r1, r2) = step_both(&m, &c, StateId(0), &inputs);
            assert_eq!(r1, r2, "pattern {pat:#b}");
        }
        // And through the HashSet compatibility `step`.
        let mut present = HashSet::new();
        present.insert(a);
        let walked = m.step(StateId(0), &present, &mut NoHooks);
        let bits: BitSet = [a.0 as usize].into_iter().collect();
        let mut e2 = Vec::new();
        let tabled = c.step_table(&m, StateId(0), &bits, &mut NoHooks, &mut e2);
        assert_eq!(walked.next, tabled.next);
        assert_eq!(walked.emitted, e2);
    }

    #[test]
    fn repeated_signal_tests_resolve_consistently() {
        // Test(a)@n1 then→ Test(a)@n2: the second test of the same
        // signal must follow the same branch the first did (cube
        // specialization guarantees it; raw path enumeration used to
        // generate contradictory rows and drop them). Node counts
        // include both visits.
        let mut m = Efsm::new("repeat");
        let a = m.add_signal("a", crate::SigKind::Input, false);
        let x = m.add_signal("x", crate::SigKind::Output, false);
        let g0 = m.add_node(Node::Goto { target: StateId(0) });
        let e = m.add_node(Node::Emit {
            sig: x,
            value: None,
            next: g0,
        });
        let g1 = m.add_node(Node::Goto { target: StateId(0) });
        let t2 = m.add_node(Node::Test {
            sig: a,
            then_: e,
            else_: g1,
        });
        let g2 = m.add_node(Node::Goto { target: StateId(0) });
        let t1 = m.add_node(Node::Test {
            sig: a,
            then_: t2,
            else_: g2,
        });
        m.add_state("s0", t1);
        m.validate().unwrap();
        let c = CompiledEfsm::compile(&m);
        assert!(c.is_fused(StateId(0)));
        // Exactly two rows: a present (both tests taken), a absent.
        assert_eq!(c.row_count(), 2);
        let (r1, r2) = step_both(&m, &c, StateId(0), &[0]);
        assert_eq!(r1, r2);
        assert_eq!(r1.nodes_visited, 4); // test, test, emit, goto
        let (r1, r2) = step_both(&m, &c, StateId(0), &[]);
        assert_eq!(r1, r2);
        assert_eq!(r1.nodes_visited, 2); // test, goto
    }
}
