//! A small growable bit set.
//!
//! Used for pause-point selections in the Esterel engine and for state
//! sets in EFSM analyses. Implemented over `u64` words; all operations
//! are value-semantic and allocation is amortized.

use std::fmt;

/// A set of small non-negative integers backed by `u64` words.
#[derive(Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// The empty set.
    pub fn new() -> Self {
        BitSet::default()
    }

    /// Empty set with capacity for `bits` elements.
    pub fn with_capacity(bits: usize) -> Self {
        BitSet {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    fn grow(&mut self, bit: usize) {
        let need = bit / 64 + 1;
        if self.words.len() < need {
            self.words.resize(need, 0);
        }
    }

    /// Insert `bit`; returns whether it was newly inserted.
    pub fn insert(&mut self, bit: usize) -> bool {
        self.grow(bit);
        let w = &mut self.words[bit / 64];
        let mask = 1u64 << (bit % 64);
        let was = *w & mask != 0;
        *w |= mask;
        !was
    }

    /// Remove `bit`; returns whether it was present.
    pub fn remove(&mut self, bit: usize) -> bool {
        if bit / 64 >= self.words.len() {
            return false;
        }
        let w = &mut self.words[bit / 64];
        let mask = 1u64 << (bit % 64);
        let was = *w & mask != 0;
        *w &= !mask;
        was
    }

    /// Membership test.
    pub fn contains(&self, bit: usize) -> bool {
        self.words
            .get(bit / 64)
            .is_some_and(|w| w & (1u64 << (bit % 64)) != 0)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Remove all elements.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &BitSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place difference (`self -= other`).
    pub fn difference_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// Does `self` intersect `other`?
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Intersection restricted to the half-open range `[lo, hi)`:
    /// does the set contain any element in the range?
    pub fn any_in_range(&self, lo: usize, hi: usize) -> bool {
        (lo..hi).any(|b| self.contains(b))
    }

    /// Iterate over members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            let w = *w;
            (0..64).filter_map(move |b| {
                if w & (1u64 << b) != 0 {
                    Some(wi * 64 + b)
                } else {
                    None
                }
            })
        })
    }

    /// The `i`-th backing word (bits `64*i .. 64*i+64`); words past the
    /// allocated length read as zero, so callers can compare against
    /// masks of any width without bounds bookkeeping.
    #[inline]
    pub fn word(&self, i: usize) -> u64 {
        self.words.get(i).copied().unwrap_or(0)
    }

    /// The backing words (low bits first). The set's elements may
    /// occupy fewer words than masks built elsewhere; use
    /// [`BitSet::word`] for padded access.
    #[inline]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// A canonical (trailing-zero-trimmed) copy, suitable as a map key.
    pub fn normalized(&self) -> BitSet {
        let mut words = self.words.clone();
        while words.last() == Some(&0) {
            words.pop();
        }
        BitSet { words }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, b) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let mut s = BitSet::new();
        for b in iter {
            s.insert(b);
        }
        s
    }
}

impl Extend<usize> for BitSet {
    fn extend<T: IntoIterator<Item = usize>>(&mut self, iter: T) {
        for b in iter {
            self.insert(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new();
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(100));
        assert!(s.contains(3));
        assert!(s.contains(100));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 2);
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(!s.contains(3));
    }

    #[test]
    fn union_and_difference() {
        let a: BitSet = [1, 5, 64].into_iter().collect();
        let b: BitSet = [5, 6].into_iter().collect();
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 5, 6, 64]);
        let mut d = u.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 64]);
    }

    #[test]
    fn range_queries() {
        let s: BitSet = [2, 9].into_iter().collect();
        assert!(s.any_in_range(0, 3));
        assert!(!s.any_in_range(3, 9));
        assert!(s.any_in_range(9, 10));
    }

    #[test]
    fn normalized_is_canonical_key() {
        let mut a = BitSet::with_capacity(1000);
        a.insert(1);
        let b: BitSet = [1].into_iter().collect();
        assert_ne!(a, b); // different capacities
        assert_eq!(a.normalized(), b.normalized());
    }

    #[test]
    fn intersects() {
        let a: BitSet = [1, 2].into_iter().collect();
        let b: BitSet = [2, 3].into_iter().collect();
        let c: BitSet = [4].into_iter().collect();
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn debug_format() {
        let s: BitSet = [7, 1].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{1,7}");
    }
}
