//! S-graph nodes: the decision-DAG body of each EFSM control state.
//!
//! An s-graph (the POLIS term) encodes one reaction as a DAG whose
//! internal nodes test signal presence or data predicates, execute data
//! actions, or emit signals, and whose leaves name the next control
//! state. It is exactly the structure of the C code POLIS generates for
//! a transition function, which is why the software cost model in
//! `codegen` charges per node.

use crate::machine::{Signal, StateId};
use crate::{ActionId, ExprId, PredId};

/// Index of a node in an [`crate::Efsm`]'s node arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// One s-graph node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// Branch on presence of an input signal this instant.
    Test {
        /// Signal tested.
        sig: Signal,
        /// Continuation when present.
        then_: NodeId,
        /// Continuation when absent.
        else_: NodeId,
    },
    /// Branch on a data predicate (the "extended" part of the EFSM).
    TestPred {
        /// Predicate id (resolved by [`crate::DataHooks`]).
        pred: PredId,
        /// Continuation when true.
        then_: NodeId,
        /// Continuation when false.
        else_: NodeId,
    },
    /// Run a data action, then continue.
    Do {
        /// Action id.
        action: ActionId,
        /// Continuation.
        next: NodeId,
    },
    /// Emit a signal (valued if `value` is set), then continue.
    Emit {
        /// Emitted signal.
        sig: Signal,
        /// Value expression for valued signals.
        value: Option<ExprId>,
        /// Continuation.
        next: NodeId,
    },
    /// End of reaction: move to `target` for the next instant.
    Goto {
        /// Next control state.
        target: StateId,
    },
}

impl Node {
    /// The node ids this node points to.
    pub fn successors(&self) -> Vec<NodeId> {
        match self {
            Node::Test { then_, else_, .. } | Node::TestPred { then_, else_, .. } => {
                vec![*then_, *else_]
            }
            Node::Do { next, .. } | Node::Emit { next, .. } => vec![*next],
            Node::Goto { .. } => vec![],
        }
    }

    /// Rewrite the successors through `f` (used by optimization passes).
    pub fn map_successors(&self, mut f: impl FnMut(NodeId) -> NodeId) -> Node {
        match *self {
            Node::Test { sig, then_, else_ } => Node::Test {
                sig,
                then_: f(then_),
                else_: f(else_),
            },
            Node::TestPred { pred, then_, else_ } => Node::TestPred {
                pred,
                then_: f(then_),
                else_: f(else_),
            },
            Node::Do { action, next } => Node::Do {
                action,
                next: f(next),
            },
            Node::Emit { sig, value, next } => Node::Emit {
                sig,
                value,
                next: f(next),
            },
            Node::Goto { target } => Node::Goto { target },
        }
    }

    /// Rewrite a `Goto` target through `f` (used by state renumbering).
    pub fn map_target(&self, mut f: impl FnMut(StateId) -> StateId) -> Node {
        match *self {
            Node::Goto { target } => Node::Goto { target: f(target) },
            other => other,
        }
    }
}

/// One root-to-leaf path through an s-graph: a "flat" transition.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Path {
    /// Signal-presence literals along the path (signal, required status).
    pub cube: Vec<(Signal, bool)>,
    /// Data-predicate literals along the path.
    pub preds: Vec<(PredId, bool)>,
    /// Actions executed, in order.
    pub actions: Vec<ActionId>,
    /// Emissions performed, in order.
    pub emits: Vec<(Signal, Option<ExprId>)>,
    /// Next control state.
    pub target: StateId,
}

/// Enumerate all root-to-leaf paths of the s-graph rooted at `root`
/// (bounded by `cap`; returns `None` if the bound is hit).
///
/// Because s-graphs are DAGs, the number of paths can be exponential in
/// the node count; callers use this for reporting and testing, never for
/// synthesis.
pub fn enumerate_paths(nodes: &[Node], root: NodeId, cap: usize) -> Option<Vec<Path>> {
    let mut out = Vec::new();
    let mut stack = vec![(root, Path::default())];
    while let Some((id, mut path)) = stack.pop() {
        if out.len() >= cap {
            return None;
        }
        match nodes[id.0 as usize] {
            Node::Test { sig, then_, else_ } => {
                let mut p2 = path.clone();
                p2.cube.push((sig, false));
                stack.push((else_, p2));
                path.cube.push((sig, true));
                stack.push((then_, path));
            }
            Node::TestPred { pred, then_, else_ } => {
                let mut p2 = path.clone();
                p2.preds.push((pred, false));
                stack.push((else_, p2));
                path.preds.push((pred, true));
                stack.push((then_, path));
            }
            Node::Do { action, next } => {
                path.actions.push(action);
                stack.push((next, path));
            }
            Node::Emit { sig, value, next } => {
                path.emits.push((sig, value));
                stack.push((next, path));
            }
            Node::Goto { target } => {
                path.target = target;
                out.push(path);
            }
        }
    }
    Some(out)
}

/// Count the nodes reachable from `root` (shared nodes counted once).
pub fn reachable_nodes(nodes: &[Node], root: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; nodes.len()];
    let mut order = Vec::new();
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut seen[id.0 as usize], true) {
            continue;
        }
        order.push(id);
        stack.extend(nodes[id.0 as usize].successors());
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn goto(s: u32) -> Node {
        Node::Goto { target: StateId(s) }
    }

    #[test]
    fn successors_and_mapping() {
        let n = Node::Test {
            sig: Signal(0),
            then_: NodeId(1),
            else_: NodeId(2),
        };
        assert_eq!(n.successors(), vec![NodeId(1), NodeId(2)]);
        let m = n.map_successors(|i| NodeId(i.0 + 10));
        assert_eq!(m.successors(), vec![NodeId(11), NodeId(12)]);
        assert_eq!(goto(3).successors(), vec![]);
    }

    #[test]
    fn path_enumeration() {
        // Test(s0) ? Do(a); Goto(1) : Emit(s1); Goto(0)
        let nodes = vec![
            Node::Test {
                sig: Signal(0),
                then_: NodeId(1),
                else_: NodeId(3),
            },
            Node::Do {
                action: ActionId(7),
                next: NodeId(2),
            },
            goto(1),
            Node::Emit {
                sig: Signal(1),
                value: None,
                next: NodeId(4),
            },
            goto(0),
        ];
        let paths = enumerate_paths(&nodes, NodeId(0), 100).unwrap();
        assert_eq!(paths.len(), 2);
        let present = paths
            .iter()
            .find(|p| p.cube == vec![(Signal(0), true)])
            .unwrap();
        assert_eq!(present.actions, vec![ActionId(7)]);
        assert_eq!(present.target, StateId(1));
        let absent = paths
            .iter()
            .find(|p| p.cube == vec![(Signal(0), false)])
            .unwrap();
        assert_eq!(absent.emits, vec![(Signal(1), None)]);
    }

    #[test]
    fn path_cap_detected() {
        // A chain of N tests has 2^N paths.
        let mut nodes = Vec::new();
        let leaf = NodeId(0);
        nodes.push(goto(0));
        let mut root = leaf;
        for i in 0..20 {
            let id = NodeId(nodes.len() as u32);
            nodes.push(Node::Test {
                sig: Signal(i),
                then_: root,
                else_: root,
            });
            root = id;
        }
        assert!(enumerate_paths(&nodes, root, 1000).is_none());
    }

    #[test]
    fn reachable_counts_shared_once() {
        let nodes = vec![
            Node::Test {
                sig: Signal(0),
                then_: NodeId(1),
                else_: NodeId(1),
            },
            goto(0),
        ];
        assert_eq!(reachable_nodes(&nodes, NodeId(0)).len(), 2);
    }
}
