//! Extended finite state machines (EFSMs) in the POLIS/CFSM style.
//!
//! The ECL paper compiles the reactive part of a program to an EFSM and
//! hands it to the POLIS flow for software/hardware synthesis. POLIS
//! represents each control state's reaction as an *s-graph* — a decision
//! DAG of signal-presence tests, data-predicate tests, data actions and
//! emissions, terminating in the next control state. This crate
//! implements that representation plus the analyses and optimizations
//! the paper relies on ("logic synthesis and optimization can be applied
//! to reduce size or improve speed", Section 3):
//!
//! * [`machine`] — the [`Efsm`] type and its single-instant executor;
//! * [`table`] — dense compiled transition tables for pure-control
//!   states (the fast execution backend; mixed states fall back to the
//!   s-graph walker);
//! * [`sgraph`] — s-graph nodes, path enumeration and structural checks;
//! * [`opt`] — hash-consing reduction, dead-test elimination,
//!   unreachable-state pruning, and observational state minimization
//!   (partition refinement);
//! * [`network`] — unit-delay composition of several machines (the
//!   "asynchronous" interconnection of Section 4);
//! * [`analysis`] — reachability, determinism/liveness checks, and the
//!   implicit state-exploration hooks the paper mentions;
//! * [`dot`] — Graphviz export;
//! * [`bitset`] — the small fixed bit set used for control points.
//!
//! Data is *opaque* at this level: predicates, actions and emission
//! values are ids resolved by a [`DataHooks`] implementation supplied by
//! the caller (the ECL compiler's glue layer).

pub mod analysis;
pub mod bitset;
pub mod dot;
pub mod machine;
pub mod network;
pub mod opt;
pub mod sgraph;
pub mod sig;
pub mod table;

pub use bitset::BitSet;
pub use machine::{Efsm, SigKind, Signal, SignalInfo, State, StateId, StepOut, StepResult};
pub use sgraph::{Node, NodeId, Path};
pub use sig::{SigId, SigTable};
pub use table::CompiledEfsm;

/// Which execution backend drives reactions.
///
/// One knob for the whole stack: the runner's control dispatch, the
/// data hooks inside [`DataHooks`] implementations, and monitor
/// stepping all key off the same two-valued choice. The split
/// tables-versus-VM toggles this replaces allowed half-compiled
/// configurations that no longer exist: control and data now compile
/// into one fused program per task, so they switch together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// The reference tree interpreter: per-node s-graph walking for
    /// control, expression-tree evaluation for data. Canonical
    /// semantics, used for differential testing and as the per-site
    /// demotion target under injected faults.
    Walker,
    /// The production backend: each control state fused into mask-scan
    /// rows that fall through into straight-line bytecode for the
    /// row's predicates, actions and valued emits — no walker boundary
    /// crossings inside an instant.
    #[default]
    Compiled,
}

/// Opaque id of a data predicate (resolved by [`DataHooks::eval_pred`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredId(pub u32);

/// Opaque id of a data action (resolved by [`DataHooks::run_action`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActionId(pub u32);

/// Opaque id of an emission value expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(pub u32);

/// Callbacks that give data meaning to the opaque ids during execution.
///
/// The ECL runtime implements this against the module's local variable
/// frame; pure-control machines can use [`NoHooks`].
///
/// An implementation is free to *compile* the hooks: the production
/// runtime lowers every id to a register bytecode program at
/// construction and dispatches these calls to a VM (with tree-walker
/// fallback), which is transparent here — the same ids, the same
/// entry points, bit-identical observable behavior. Implementations
/// that meter execution cost (the runtime charges kernel cycles from
/// interpreter fuel) must keep that metering identical across their
/// backends, or compiled-vs-interpreted runs drift apart in RTOS
/// scheduling metrics.
pub trait DataHooks {
    /// Evaluate data predicate `pred` against the current data state.
    fn eval_pred(&mut self, pred: PredId) -> bool;
    /// Execute data action `action` (mutates the data state).
    fn run_action(&mut self, action: ActionId);
    /// Compute the value for a valued emission of `sig` and store it as
    /// the signal's current value.
    fn emit_value(&mut self, sig: Signal, expr: ExprId);
}

/// Hooks for machines with no data part.
///
/// # Panics
///
/// Panics if the machine actually contains data predicates — a machine
/// stepped with `NoHooks` must be pure control.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHooks;

impl DataHooks for NoHooks {
    fn eval_pred(&mut self, pred: PredId) -> bool {
        panic!("NoHooks cannot evaluate data predicate {pred:?}: machine is not pure control")
    }
    fn run_action(&mut self, _action: ActionId) {}
    fn emit_value(&mut self, _sig: Signal, _expr: ExprId) {}
}

/// Hooks that answer every predicate with a constant (useful in tests).
#[derive(Debug, Clone, Copy)]
pub struct ConstHooks(pub bool);

impl DataHooks for ConstHooks {
    fn eval_pred(&mut self, _pred: PredId) -> bool {
        self.0
    }
    fn run_action(&mut self, _action: ActionId) {}
    fn emit_value(&mut self, _sig: Signal, _expr: ExprId) {}
}
