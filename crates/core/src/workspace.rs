//! The batch compilation session: many modules, shared parses,
//! parallel stage execution, memoized artifacts.
//!
//! A [`Workspace`] holds a set of named ECL sources and serves
//! compilation requests against them. It is the driver the
//! production-scale goals build on:
//!
//! * **Shared parsing** — each source is parsed once, whatever number
//!   of entry modules is compiled from it ([`Workspace::parsed`] is
//!   memoized by source name).
//! * **Memoized designs** — elaborate+split results (successes *and*
//!   failures) are cached by `(source, entry, strategy)`; compiled
//!   EFSMs by the same key.
//!   Cache effectiveness is observable through
//!   [`Workspace::cache_stats`].
//! * **Parallel batches** — [`Workspace::compile_all`] fans a list of
//!   `(source, entry)` jobs across scoped worker threads (every
//!   pipeline stage type is `Send + Sync`) and returns one
//!   [`Result`] per job, in job order, with span-annotated
//!   [`EclError`] diagnostics for the failures.
//!
//! Batch code generation (C/Verilog per design) lives in the `codegen`
//! crate's `WorkspaceCodegenExt`, which builds on
//! [`Workspace::compile`] and [`Workspace::machine`].
//!
//! # Example
//!
//! ```
//! use ecl_core::workspace::Workspace;
//!
//! let mut ws = Workspace::new();
//! ws.add_source(
//!     "relay.ecl",
//!     "module a(input pure i, output pure m) { while (1) { await (i); emit (m); } }
//!      module b(input pure m, output pure o) { while (1) { await (m); emit (o); } }
//!      module top(input pure i, output pure o) {
//!        signal pure mid; par { a(i, mid); b(mid, o); } }",
//! );
//! let jobs = [("relay.ecl", "a"), ("relay.ecl", "b"), ("relay.ecl", "top")];
//! let results = ws.compile_all(&jobs);
//! assert!(results.iter().all(Result::is_ok));
//! // The source was parsed exactly once.
//! assert_eq!(ws.cache_stats().parse_misses, 1);
//! ```

use crate::compiler::{Design, Options};
use crate::pipeline::{Parsed, Source, Split};
use crate::split::SplitStrategy;
use ecl_syntax::diag::{EclError, Stage};
use ecl_syntax::source::Span;
use esterel::compile::CompileOptions;
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Cache-effectiveness counters (snapshot of a workspace's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Parse requests served from cache.
    pub parse_hits: u64,
    /// Parses actually performed.
    pub parse_misses: u64,
    /// Design requests served from cache.
    pub design_hits: u64,
    /// Elaborate+split runs actually performed.
    pub design_misses: u64,
    /// EFSM requests served from cache.
    pub machine_hits: u64,
    /// EFSM compilations actually performed.
    pub machine_misses: u64,
    /// Extension-artifact requests served from cache.
    pub ext_hits: u64,
    /// Extension artifacts actually computed.
    pub ext_misses: u64,
}

#[derive(Debug, Default)]
struct Counters {
    parse_hits: AtomicU64,
    parse_misses: AtomicU64,
    design_hits: AtomicU64,
    design_misses: AtomicU64,
    machine_hits: AtomicU64,
    machine_misses: AtomicU64,
    ext_hits: AtomicU64,
    ext_misses: AtomicU64,
}

type DesignKey = (String, String, SplitStrategy);
/// Extension-cache key: `(source, subkey, kind)`.
type ExtKey = (String, String, &'static str);
/// Type-erased extension artifact (downcast by [`Workspace::memo_ext`]).
type ExtValue = Arc<dyn Any + Send + Sync>;

/// One memo slot: computed exactly once per key, even when many
/// threads request it concurrently (`OnceLock` blocks the losers
/// until the winner's result is visible).
type Slot<T> = Arc<OnceLock<Result<T, EclError>>>;

/// Get-or-compute a slot in `map` under `key`. `compute` runs at most
/// once per key; the map lock is never held across it.
fn memoize<K, T>(
    map: &Mutex<HashMap<K, Slot<T>>>,
    key: K,
    hits: &AtomicU64,
    misses: &AtomicU64,
    compute: impl FnOnce() -> Result<T, EclError>,
) -> Result<T, EclError>
where
    K: std::hash::Hash + Eq,
    T: Clone,
{
    let cell = Arc::clone(map.lock().expect("lock").entry(key).or_default());
    let mut computed = false;
    let result = cell
        .get_or_init(|| {
            computed = true;
            compute()
        })
        .clone();
    if computed {
        misses.fetch_add(1, Ordering::Relaxed);
    } else {
        hits.fetch_add(1, Ordering::Relaxed);
    }
    result
}

/// A multi-module compilation session over a set of named sources.
///
/// All query methods take `&self` and are safe to call from many
/// threads; mutation ([`Workspace::add_source`],
/// [`Workspace::set_compile_options`]) takes `&mut self` and
/// invalidates exactly the affected cache entries.
#[derive(Debug, Default)]
pub struct Workspace {
    options: Options,
    compile_options: CompileOptions,
    sources: HashMap<String, Source>,
    parsed: Mutex<HashMap<String, Slot<Arc<Parsed>>>>,
    designs: Mutex<HashMap<DesignKey, Slot<Arc<Design>>>>,
    machines: Mutex<HashMap<DesignKey, Slot<Arc<efsm::Efsm>>>>,
    /// Extension artifacts: further terminal stages (monitor sets,
    /// co-simulation stubs…) memoized by `(source, subkey, kind)`
    /// without `ecl-core` knowing their types.
    ext: Mutex<HashMap<ExtKey, Slot<ExtValue>>>,
    counters: Counters,
}

impl Workspace {
    /// An empty workspace with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty workspace with explicit compiler options (default
    /// split strategy for [`Workspace::compile`]).
    pub fn with_options(options: Options) -> Self {
        Workspace {
            options,
            ..Self::default()
        }
    }

    /// The compiler options used when no explicit strategy is given.
    pub fn options(&self) -> Options {
        self.options
    }

    /// The EFSM-compilation options used by [`Workspace::machine`].
    pub fn compile_options(&self) -> CompileOptions {
        self.compile_options
    }

    /// Replace the EFSM-compilation options (drops cached machines —
    /// they were built under the old options).
    pub fn set_compile_options(&mut self, opts: CompileOptions) {
        self.compile_options = opts;
        self.machines.lock().expect("lock").clear();
    }

    /// Add (or replace) a named source. Replacing invalidates every
    /// cached artifact derived from that name.
    pub fn add_source(&mut self, name: impl Into<String>, text: impl Into<String>) {
        let name = name.into();
        self.parsed.lock().expect("lock").remove(&name);
        self.designs
            .lock()
            .expect("lock")
            .retain(|(n, _, _), _| *n != name);
        self.machines
            .lock()
            .expect("lock")
            .retain(|(n, _, _), _| *n != name);
        self.ext
            .lock()
            .expect("lock")
            .retain(|(n, _, _), _| *n != name);
        self.sources.insert(
            name.clone(),
            Source::named(name, text.into()).with_options(self.options),
        );
    }

    /// Names of the registered sources.
    pub fn source_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.sources.keys().cloned().collect();
        names.sort();
        names
    }

    /// Snapshot of the cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            parse_hits: self.counters.parse_hits.load(Ordering::Relaxed),
            parse_misses: self.counters.parse_misses.load(Ordering::Relaxed),
            design_hits: self.counters.design_hits.load(Ordering::Relaxed),
            design_misses: self.counters.design_misses.load(Ordering::Relaxed),
            machine_hits: self.counters.machine_hits.load(Ordering::Relaxed),
            machine_misses: self.counters.machine_misses.load(Ordering::Relaxed),
            ext_hits: self.counters.ext_hits.load(Ordering::Relaxed),
            ext_misses: self.counters.ext_misses.load(Ordering::Relaxed),
        }
    }

    /// Get-or-compute an *extension artifact* — a terminal-stage value
    /// owned by a downstream crate (e.g. `ecl-observe` monitor sets,
    /// batch codegen bundles) — memoized by `(source, subkey, kind)`
    /// with the same once-per-key semantics as the built-in caches.
    /// Entries are invalidated when `source` is replaced.
    ///
    /// # Errors
    ///
    /// Propagates the compute failure (memoized too), or reports a
    /// `kind` reused with a different type.
    pub fn memo_ext<T: Send + Sync + 'static>(
        &self,
        source: &str,
        subkey: &str,
        kind: &'static str,
        compute: impl FnOnce() -> Result<Arc<T>, EclError>,
    ) -> Result<Arc<T>, EclError> {
        let erased = memoize(
            &self.ext,
            (source.to_string(), subkey.to_string(), kind),
            &self.counters.ext_hits,
            &self.counters.ext_misses,
            || compute().map(|v| v as Arc<dyn Any + Send + Sync>),
        )?;
        erased.downcast::<T>().map_err(|_| {
            EclError::msg(
                Stage::Codegen,
                format!("extension cache kind `{kind}` holds a different type"),
                Span::dummy(),
            )
        })
    }

    /// The parsed form of source `name` (memoized).
    ///
    /// # Errors
    ///
    /// Unknown source name, or a parse failure.
    pub fn parsed(&self, name: &str) -> Result<Arc<Parsed>, EclError> {
        let source = self.sources.get(name).ok_or_else(|| {
            EclError::msg(
                Stage::Parse,
                format!("workspace has no source named `{name}`"),
                Span::dummy(),
            )
        })?;
        // Failures memoize too: a broken source costs one parse per
        // replace, not one per request.
        memoize(
            &self.parsed,
            name.to_string(),
            &self.counters.parse_hits,
            &self.counters.parse_misses,
            || source.parse().map(Arc::new),
        )
    }

    /// Module names declared in source `name` (candidate entries).
    ///
    /// # Errors
    ///
    /// Unknown source name, or a parse failure.
    pub fn entry_modules(&self, name: &str) -> Result<Vec<String>, EclError> {
        Ok(self.parsed(name)?.module_names())
    }

    /// The [`Split`] stage for `(name, entry)` under `strategy` —
    /// an explicit re-entry point for stage-level tooling (not
    /// memoized; the parse underneath is).
    ///
    /// # Errors
    ///
    /// First failing stage.
    pub fn split_stage(
        &self,
        name: &str,
        entry: &str,
        strategy: SplitStrategy,
    ) -> Result<Split, EclError> {
        self.parsed(name)?.elaborate(entry)?.split_with(strategy)
    }

    /// Compile `(name, entry)` under the workspace's default strategy
    /// (memoized).
    ///
    /// # Errors
    ///
    /// First failing stage.
    pub fn compile(&self, name: &str, entry: &str) -> Result<Arc<Design>, EclError> {
        self.compile_with(name, entry, self.options.strategy)
    }

    /// Compile `(name, entry)` under an explicit strategy (memoized by
    /// `(name, entry, strategy)`).
    ///
    /// # Errors
    ///
    /// First failing stage.
    pub fn compile_with(
        &self,
        name: &str,
        entry: &str,
        strategy: SplitStrategy,
    ) -> Result<Arc<Design>, EclError> {
        memoize(
            &self.designs,
            (name.to_string(), entry.to_string(), strategy),
            &self.counters.design_hits,
            &self.counters.design_misses,
            || {
                self.split_stage(name, entry, strategy)
                    .map(|s| Arc::new(s.to_design()))
            },
        )
    }

    /// The compiled EFSM for `(name, entry)` under the default
    /// strategy and the workspace's [`CompileOptions`] (memoized).
    ///
    /// # Errors
    ///
    /// First failing stage.
    pub fn machine(&self, name: &str, entry: &str) -> Result<Arc<efsm::Efsm>, EclError> {
        let key = (name.to_string(), entry.to_string(), self.options.strategy);
        memoize(
            &self.machines,
            key,
            &self.counters.machine_hits,
            &self.counters.machine_misses,
            || {
                self.compile(name, entry)
                    .and_then(|design| design.to_efsm(&self.compile_options).map(Arc::new))
            },
        )
    }

    /// Compile a batch of `(source, entry)` jobs in parallel on scoped
    /// worker threads. Returns one result per job, in job order.
    /// Results are identical to calling [`Workspace::compile`]
    /// sequentially — parallelism only changes wall-clock time.
    pub fn compile_all(&self, jobs: &[(&str, &str)]) -> Vec<Result<Arc<Design>, EclError>> {
        self.run_jobs(jobs, |name, entry| self.compile(name, entry))
    }

    /// [`Workspace::compile_all`] with an explicit strategy per batch.
    pub fn compile_all_with(
        &self,
        jobs: &[(&str, &str)],
        strategy: SplitStrategy,
    ) -> Vec<Result<Arc<Design>, EclError>> {
        self.run_jobs(jobs, |name, entry| self.compile_with(name, entry, strategy))
    }

    /// Compile a batch to EFSMs in parallel (design + machine each).
    pub fn machine_all(&self, jobs: &[(&str, &str)]) -> Vec<Result<Arc<efsm::Efsm>, EclError>> {
        self.run_jobs(jobs, |name, entry| self.machine(name, entry))
    }

    /// Fan `jobs` across scoped threads; `f` must be safe for
    /// concurrent calls (all query methods are). Each job runs under
    /// `catch_unwind`: a panicking job yields an [`EclError`] for its
    /// slot (and a telemetry `error` event) instead of tearing down the
    /// whole batch — sibling jobs complete normally.
    fn run_jobs<T, F>(&self, jobs: &[(&str, &str)], f: F) -> Vec<Result<T, EclError>>
    where
        T: Send,
        F: Fn(&str, &str) -> Result<T, EclError> + Sync,
    {
        let guarded = |name: &str, entry: &str| -> Result<T, EclError> {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(name, entry)))
                .unwrap_or_else(|p| Err(job_panic_error(name, entry, p.as_ref())))
        };
        if jobs.len() <= 1 {
            return jobs.iter().map(|(n, e)| guarded(n, e)).collect();
        }
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
            .min(jobs.len());
        let slots: Vec<Mutex<Option<Result<T, EclError>>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some((name, entry)) = jobs.get(i) else {
                        break;
                    };
                    let result = guarded(name, entry);
                    *slots[i].lock().expect("slot lock") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock")
                    .expect("every job slot filled")
            })
            .collect()
    }
}

/// Convert a caught job panic into an [`EclError`] (and a telemetry
/// `error` event), keeping the payload message when it is a string.
fn job_panic_error(name: &str, entry: &str, payload: &(dyn Any + Send)) -> EclError {
    let what = payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload");
    if let Some(e) = ecl_telemetry::event("error") {
        e.str("kind", "panic")
            .str("job", name)
            .str("msg", what)
            .emit();
    }
    EclError::msg(
        Stage::Runtime,
        format!("job `{name}:{entry}` panicked: {what}"),
        Span::dummy(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const RELAY: &str = "
        module a(input pure i, output pure m) { while (1) { await (i); emit (m); } }
        module b(input pure m, output pure o) { while (1) { await (m); emit (o); } }
        module top(input pure i, output pure o) {
          signal pure mid;
          par { a(i, mid); b(mid, o); }
        }";

    fn relay_ws() -> Workspace {
        let mut ws = Workspace::new();
        ws.add_source("relay.ecl", RELAY);
        ws
    }

    #[test]
    fn parse_is_shared_across_entries() {
        let ws = relay_ws();
        for entry in ["a", "b", "top"] {
            ws.compile("relay.ecl", entry).unwrap();
        }
        let stats = ws.cache_stats();
        assert_eq!(stats.parse_misses, 1, "{stats:?}");
        assert_eq!(stats.design_misses, 3);
    }

    #[test]
    fn designs_are_memoized() {
        let ws = relay_ws();
        let d1 = ws.compile("relay.ecl", "top").unwrap();
        let d2 = ws.compile("relay.ecl", "top").unwrap();
        assert!(Arc::ptr_eq(&d1, &d2));
        assert_eq!(ws.cache_stats().design_hits, 1);
        // A different strategy is a different cache entry.
        ws.compile_with("relay.ecl", "top", SplitStrategy::MinEsterel)
            .unwrap();
        assert_eq!(ws.cache_stats().design_misses, 2);
    }

    #[test]
    fn replacing_a_source_invalidates_its_artifacts() {
        let mut ws = relay_ws();
        let d1 = ws.compile("relay.ecl", "top").unwrap();
        ws.add_source("relay.ecl", RELAY);
        let d2 = ws.compile("relay.ecl", "top").unwrap();
        assert!(!Arc::ptr_eq(&d1, &d2), "stale cache served after replace");
    }

    #[test]
    fn unknown_source_is_a_parse_stage_error() {
        let ws = relay_ws();
        let e = ws.compile("missing.ecl", "top").unwrap_err();
        assert_eq!(e.stage(), Stage::Parse);
    }

    #[test]
    fn failures_are_per_job() {
        let ws = relay_ws();
        let results = ws.compile_all(&[
            ("relay.ecl", "top"),
            ("relay.ecl", "no_such_module"),
            ("relay.ecl", "a"),
        ]);
        assert!(results[0].is_ok());
        assert_eq!(results[1].as_ref().unwrap_err().stage(), Stage::Elaborate);
        assert!(results[2].is_ok());
    }

    #[test]
    fn machines_are_memoized() {
        let ws = relay_ws();
        let m1 = ws.machine("relay.ecl", "top").unwrap();
        let m2 = ws.machine("relay.ecl", "top").unwrap();
        assert!(Arc::ptr_eq(&m1, &m2));
        m1.validate().unwrap();
    }
    #[test]
    fn extension_artifacts_memoize_and_invalidate() {
        let mut ws = relay_ws();
        let a1 = ws
            .memo_ext("relay.ecl", "top", "lengths", || Ok(Arc::new(RELAY.len())))
            .unwrap();
        let a2 = ws
            .memo_ext("relay.ecl", "top", "lengths", || unreachable!("cached"))
            .unwrap();
        assert!(Arc::ptr_eq(&a1, &a2));
        let stats = ws.cache_stats();
        assert_eq!((stats.ext_misses, stats.ext_hits), (1, 1));
        // A different kind under the same key is a separate entry; a
        // type clash on the same kind is reported, not mis-cast.
        ws.memo_ext("relay.ecl", "top", "names", || {
            Ok(Arc::new("top".to_string()))
        })
        .unwrap();
        assert!(ws
            .memo_ext::<String>("relay.ecl", "top", "lengths", || unreachable!())
            .is_err());
        // Replacing the source drops the cached artifact.
        ws.add_source("relay.ecl", RELAY);
        let a3 = ws
            .memo_ext("relay.ecl", "top", "lengths", || Ok(Arc::new(0usize)))
            .unwrap();
        assert_eq!(*a3, 0);
    }

    #[test]
    fn failures_are_memoized_too() {
        let mut ws = Workspace::new();
        ws.add_source("bad.ecl", "module oops(");
        assert!(ws.compile("bad.ecl", "oops").is_err());
        assert!(ws.compile("bad.ecl", "oops").is_err());
        let stats = ws.cache_stats();
        // Second request hit the memoized parse failure.
        assert_eq!(stats.parse_misses, 1, "{stats:?}");
        // Replacing the source clears the cached failure.
        ws.add_source("bad.ecl", "module oops(input pure a) { await (a); }");
        assert!(ws.compile("bad.ecl", "oops").is_ok());
    }
}
