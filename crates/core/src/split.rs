//! The reactive/data splitter — the heart of the ECL compilation scheme.
//!
//! Paper Section 3: "An ECL file is parsed and split into a
//! control-dominated, reactive part that is mapped to an Esterel source
//! file, a data-dominated part that is mapped to a C source file, and a
//! glue logic part". This module performs that split on the elaborated
//! design:
//!
//! * reactive statements (`await`, `emit`, `present`, `abort`, `par`,
//!   …) map to kernel Esterel;
//! * *reactive loops* (paper Section 4: "contain at least one halting
//!   statement in each path") become Esterel loops with trap-encoded
//!   `break`/`continue`;
//! * *data loops* (no halting statement inside) and straight-line C are
//!   extracted into the [`DataTable`] as opaque actions, referenced from
//!   Esterel via [`efsm::ActionId`];
//! * C conditions of reactive `if`/`while`/`for` become opaque
//!   predicates ([`efsm::PredId`]) — the "extended" part of the EFSM;
//! * `emit_v` value computations become [`efsm::ExprId`] entries.
//!
//! Two strategies reproduce the paper's two compilation schemes:
//! [`SplitStrategy::MaxEsterel`] exposes every data `if` and every data
//! statement individually to Esterel ("translates as much of an ECL
//! program as possible into Esterel", Section 3), while
//! [`SplitStrategy::MinEsterel`] batches maximal halting-free regions
//! into single C actions (the Section 6 legacy-code direction).

use crate::elab::Elab;
use ecl_syntax::ast::{
    AbortKind, AssignOp, Expr, ExprKind, Ident, SigExpr as AstSigExpr, SigExprKind, Stmt, StmtKind,
};
use ecl_syntax::source::Span;
use efsm::{ActionId, ExprId, PredId, Signal};
use esterel::ir::{IrError, ProgramBuilder, SigExpr, Stmt as EStmt};
use std::fmt;

/// Which compilation scheme to use (paper Sections 3 and 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SplitStrategy {
    /// Translate as much as possible into Esterel: per-statement
    /// actions, data `if`s become EFSM predicate branches.
    #[default]
    MaxEsterel,
    /// Keep as much as possible as C: maximal halting-free regions
    /// become single extracted functions.
    MinEsterel,
}

/// The extracted data part ("the C file" of the paper's flow).
#[derive(Debug, Clone, Default)]
pub struct DataTable {
    /// ActionId → extracted C statements (run atomically in an instant).
    pub actions: Vec<Vec<Stmt>>,
    /// PredId → C condition expression.
    pub preds: Vec<Expr>,
    /// ExprId → `emit_v` value expression, with the target signal.
    pub emit_exprs: Vec<(Expr, Signal)>,
}

impl DataTable {
    fn action(&mut self, stmts: Vec<Stmt>) -> ActionId {
        self.actions.push(stmts);
        ActionId(self.actions.len() as u32 - 1)
    }

    fn pred(&mut self, e: Expr) -> PredId {
        self.preds.push(e);
        PredId(self.preds.len() as u32 - 1)
    }

    fn emit_expr(&mut self, e: Expr, s: Signal) -> ExprId {
        self.emit_exprs.push((e, s));
        ExprId(self.emit_exprs.len() as u32 - 1)
    }
}

/// Splitter statistics (used by the ablation benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SplitReport {
    /// Reactive statements translated to Esterel.
    pub reactive_stmts: u32,
    /// Extracted data actions.
    pub actions: u32,
    /// Data predicates exposed to the EFSM.
    pub preds: u32,
    /// Valued emissions.
    pub emits_valued: u32,
}

/// Split failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitError {
    /// Explanation.
    pub msg: String,
    /// Source location.
    pub span: Span,
}

impl fmt::Display for SplitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "split error: {}", self.msg)
    }
}

impl std::error::Error for SplitError {}

fn err<T>(msg: impl Into<String>, span: Span) -> Result<T, SplitError> {
    Err(SplitError {
        msg: msg.into(),
        span,
    })
}

/// The result of splitting: a checked Esterel program plus data tables.
#[derive(Debug, Clone)]
pub struct SplitResult {
    /// The reactive part.
    pub program: esterel::Program,
    /// The data part.
    pub data: DataTable,
    /// Statistics.
    pub report: SplitReport,
}

/// Does the subtree contain an ECL reactive statement?
pub fn contains_reactive(s: &Stmt) -> bool {
    match &s.kind {
        StmtKind::Await(_)
        | StmtKind::AwaitImmediate(_)
        | StmtKind::Emit(_)
        | StmtKind::EmitV(_, _)
        | StmtKind::Halt
        | StmtKind::Present { .. }
        | StmtKind::Abort { .. }
        | StmtKind::Suspend { .. }
        | StmtKind::Par(_)
        | StmtKind::Signal(_) => true,
        StmtKind::Expr(_)
        | StmtKind::Decl(_)
        | StmtKind::Break
        | StmtKind::Continue
        | StmtKind::Return(_) => false,
        StmtKind::Block(b) => b.stmts.iter().any(contains_reactive),
        StmtKind::If { then, els, .. } => {
            contains_reactive(then) || els.as_deref().is_some_and(contains_reactive)
        }
        StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => contains_reactive(body),
        StmtKind::For { body, init, .. } => {
            contains_reactive(body) || init.as_deref().is_some_and(contains_reactive)
        }
        StmtKind::Switch { arms, .. } => arms.iter().any(|a| a.stmts.iter().any(contains_reactive)),
    }
}

/// Does the subtree contain `break`/`continue`/`return` that would
/// escape it (not enclosed in a nested loop/switch of the subtree)?
fn contains_escaping_flow(s: &Stmt) -> bool {
    match &s.kind {
        StmtKind::Break | StmtKind::Continue | StmtKind::Return(_) => true,
        StmtKind::Block(b) => b.stmts.iter().any(contains_escaping_flow),
        StmtKind::If { then, els, .. } => {
            contains_escaping_flow(then) || els.as_deref().is_some_and(contains_escaping_flow)
        }
        // A nested loop/switch captures break/continue, but `return`
        // still escapes; be conservative and only capture when there is
        // no return inside.
        StmtKind::While { body, .. }
        | StmtKind::DoWhile { body, .. }
        | StmtKind::For { body, .. } => contains_return(body),
        StmtKind::Switch { arms, .. } => arms
            .iter()
            .any(|a| a.stmts.iter().any(contains_return_stmt)),
        _ => false,
    }
}

fn contains_return(s: &Stmt) -> bool {
    contains_return_stmt(s)
}

fn contains_return_stmt(s: &Stmt) -> bool {
    match &s.kind {
        StmtKind::Return(_) => true,
        StmtKind::Block(b) => b.stmts.iter().any(contains_return_stmt),
        StmtKind::If { then, els, .. } => {
            contains_return_stmt(then) || els.as_deref().is_some_and(contains_return_stmt)
        }
        StmtKind::While { body, .. }
        | StmtKind::DoWhile { body, .. }
        | StmtKind::For { body, .. } => contains_return_stmt(body),
        StmtKind::Switch { arms, .. } => arms
            .iter()
            .any(|a| a.stmts.iter().any(contains_return_stmt)),
        _ => false,
    }
}

/// Can this statement be extracted whole into a C action?
fn batchable(s: &Stmt) -> bool {
    !contains_reactive(s) && !contains_escaping_flow(s)
}

/// Split an elaborated design.
///
/// # Errors
///
/// Reports unsupported constructs (reactive `switch`, `return` inside a
/// module body, emission type mismatches) and Esterel-level structural
/// problems (reactive loops that may be instantaneous).
pub fn split(elab: &Elab, strategy: SplitStrategy) -> Result<SplitResult, SplitError> {
    let mut builder = ProgramBuilder::new(&elab.entry);
    let mut signals = Vec::new();
    for s in &elab.signals {
        signals.push(builder.add(&s.name, s.kind, !s.pure));
    }
    let mut ctx = Splitter {
        elab,
        strategy,
        data: DataTable::default(),
        report: SplitReport::default(),
        signals,
        loops: Vec::new(),
        depth: 0,
    };
    let body = ctx.tr_block(&elab.body.stmts)?;
    let program = builder.finish(body).map_err(|e| SplitError {
        msg: match e {
            IrError::InstantaneousLoop => {
                "reactive loop may be instantaneous: every path through \
                 a reactive loop body needs an `await` or `halt` (otherwise write a pure data loop)"
                    .to_string()
            }
            other => other.to_string(),
        },
        span: elab.body.span,
    })?;
    Ok(SplitResult {
        program,
        data: ctx.data,
        report: ctx.report,
    })
}

struct LoopCtx {
    /// Trap depth (absolute) of the break target.
    break_abs: u32,
    /// Trap depth (absolute) of the continue target, if continuable.
    cont_abs: Option<u32>,
}

struct Splitter<'e> {
    elab: &'e Elab,
    strategy: SplitStrategy,
    data: DataTable,
    report: SplitReport,
    /// Elab signal index → esterel Signal (identical order).
    signals: Vec<Signal>,
    /// Enclosing translated loops.
    loops: Vec<LoopCtx>,
    /// Current absolute trap depth (only counting traps this splitter
    /// introduces; derived forms shift their own bodies).
    depth: u32,
}

impl<'e> Splitter<'e> {
    fn signal_by_name(&self, name: &str, span: Span) -> Result<Signal, SplitError> {
        match self.elab.signal(name) {
            Some(i) => Ok(self.signals[i]),
            None => err(format!("unknown signal `{name}` after elaboration"), span),
        }
    }

    fn sigexpr(&self, e: &AstSigExpr) -> Result<SigExpr, SplitError> {
        Ok(match &e.kind {
            SigExprKind::Sig(id) => SigExpr::Sig(self.signal_by_name(&id.name, id.span)?),
            SigExprKind::Not(x) => SigExpr::Not(Box::new(self.sigexpr(x)?)),
            SigExprKind::And(a, b) => {
                SigExpr::And(Box::new(self.sigexpr(a)?), Box::new(self.sigexpr(b)?))
            }
            SigExprKind::Or(a, b) => {
                SigExpr::Or(Box::new(self.sigexpr(a)?), Box::new(self.sigexpr(b)?))
            }
        })
    }

    /// Translate a statement list, batching data runs per the strategy.
    fn tr_block(&mut self, stmts: &[Stmt]) -> Result<EStmt, SplitError> {
        let mut out: Vec<EStmt> = Vec::new();
        let mut run: Vec<Stmt> = Vec::new();
        for s in stmts {
            if batchable(s) {
                run.push(s.clone());
                continue;
            }
            self.flush(&mut run, &mut out)?;
            out.push(self.tr_stmt(s)?);
        }
        self.flush(&mut run, &mut out)?;
        Ok(EStmt::seq(out))
    }

    /// Flush a pending run of batchable data statements.
    fn flush(&mut self, run: &mut Vec<Stmt>, out: &mut Vec<EStmt>) -> Result<(), SplitError> {
        if run.is_empty() {
            return Ok(());
        }
        let stmts = std::mem::take(run);
        match self.strategy {
            SplitStrategy::MinEsterel => {
                let lowered: Vec<Stmt> = stmts.iter().filter_map(lower_data).collect();
                if !lowered.is_empty() {
                    let id = self.data.action(lowered);
                    self.report.actions += 1;
                    out.push(EStmt::action(id));
                }
            }
            SplitStrategy::MaxEsterel => {
                for s in &stmts {
                    if let Some(e) = self.tr_data_fine(s)? {
                        out.push(e);
                    }
                }
            }
        }
        Ok(())
    }

    /// MaxEsterel fine-grained data translation: expose data `if`s as
    /// EFSM predicate branches, one action per simple statement.
    fn tr_data_fine(&mut self, s: &Stmt) -> Result<Option<EStmt>, SplitError> {
        match &s.kind {
            StmtKind::Expr(None) => Ok(None),
            StmtKind::If { cond, then, els } => {
                let p = self.data.pred(cond.clone());
                self.report.preds += 1;
                let t = self.tr_data_fine(then)?.unwrap_or(EStmt::nothing());
                let e = match els {
                    Some(e) => self.tr_data_fine(e)?.unwrap_or(EStmt::nothing()),
                    None => EStmt::nothing(),
                };
                Ok(Some(EStmt::if_data(p, t, e)))
            }
            StmtKind::Block(b) => {
                let mut out = Vec::new();
                for st in &b.stmts {
                    if let Some(e) = self.tr_data_fine(st)? {
                        out.push(e);
                    }
                }
                Ok(Some(EStmt::seq(out)))
            }
            // Loops/switch/simple statements: one action each.
            _ => match lower_data(s) {
                Some(lowered) => {
                    let id = self.data.action(vec![lowered]);
                    self.report.actions += 1;
                    Ok(Some(EStmt::action(id)))
                }
                None => Ok(None),
            },
        }
    }

    fn tr_stmt(&mut self, s: &Stmt) -> Result<EStmt, SplitError> {
        self.report.reactive_stmts += 1;
        match &s.kind {
            StmtKind::Await(None) => Ok(EStmt::await_delta()),
            StmtKind::Await(Some(c)) => Ok(EStmt::await_(self.sigexpr(c)?)),
            StmtKind::AwaitImmediate(c) => Ok(EStmt::await_immediate(self.sigexpr(c)?)),
            StmtKind::Halt => Ok(EStmt::halt()),
            StmtKind::Emit(n) => {
                let sig = self.signal_by_name(&n.name, n.span)?;
                let entry = &self.elab.signals[self.elab.signal(&n.name).expect("resolved")];
                if !entry.pure {
                    return err(
                        format!("signal `{}` carries a value: use emit_v", n.name),
                        n.span,
                    );
                }
                Ok(EStmt::emit(sig))
            }
            StmtKind::EmitV(n, v) => {
                let sig = self.signal_by_name(&n.name, n.span)?;
                let entry = &self.elab.signals[self.elab.signal(&n.name).expect("resolved")];
                if entry.pure {
                    return err(format!("signal `{}` is pure: use emit", n.name), n.span);
                }
                let e = self.data.emit_expr(v.clone(), sig);
                self.report.emits_valued += 1;
                Ok(EStmt::emit_v(sig, e))
            }
            StmtKind::Present { cond, then, els } => {
                let c = self.sigexpr(cond)?;
                let t = self.tr_sub(then)?;
                let e = match els {
                    Some(e) => self.tr_sub(e)?,
                    None => EStmt::nothing(),
                };
                Ok(EStmt::present(c, t, e))
            }
            StmtKind::Abort {
                body,
                kind,
                cond,
                handle,
            } => {
                let c = self.sigexpr(cond)?;
                let b = self.tr_sub(body)?;
                Ok(match (kind, handle) {
                    (AbortKind::Strong, None) => EStmt::abort(b, c),
                    (AbortKind::Weak, None) => EStmt::weak_abort(b, c),
                    (AbortKind::Strong, Some(h)) => {
                        let h = self.tr_sub(h)?;
                        EStmt::abort_handle(b, c, h)
                    }
                    (AbortKind::Weak, Some(h)) => {
                        let h = self.tr_sub(h)?;
                        EStmt::weak_abort_handle(b, c, h)
                    }
                })
            }
            StmtKind::Suspend { body, cond } => {
                let c = self.sigexpr(cond)?;
                let b = self.tr_sub(body)?;
                Ok(EStmt::suspend(c, b))
            }
            StmtKind::Par(branches) => {
                let mut out = Vec::new();
                for b in branches {
                    out.push(self.tr_sub(b)?);
                }
                Ok(EStmt::par(out))
            }
            StmtKind::Signal(_) => Ok(EStmt::nothing()), // registered in elab
            StmtKind::Block(b) => self.tr_block(&b.stmts),
            StmtKind::If { cond, then, els } => {
                // Reactive if: condition becomes an EFSM predicate.
                let p = self.data.pred(cond.clone());
                self.report.preds += 1;
                let t = self.tr_sub(then)?;
                let e = match els {
                    Some(e) => self.tr_sub(e)?,
                    None => EStmt::nothing(),
                };
                Ok(EStmt::if_data(p, t, e))
            }
            StmtKind::While { cond, body } => {
                let cond = const_cond(cond);
                match cond {
                    CondKind::True => self.reactive_loop(None, None, body, None, s.span),
                    CondKind::False => Ok(EStmt::nothing()),
                    CondKind::Dynamic(c) => self.reactive_loop(None, Some(c), body, None, s.span),
                }
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                let init_e = match init {
                    Some(i) => {
                        if contains_reactive(i) {
                            return err(
                                "reactive statements in for-init are not supported",
                                i.span,
                            );
                        }
                        lower_data(i).map(|s| vec![s])
                    }
                    None => None,
                };
                let cond = match cond {
                    Some(c) => match const_cond(c) {
                        CondKind::True => None,
                        CondKind::False => {
                            // Loop never runs; keep the init only.
                            return Ok(match init_e {
                                Some(stmts) => {
                                    let id = self.data.action(stmts);
                                    self.report.actions += 1;
                                    EStmt::action(id)
                                }
                                None => EStmt::nothing(),
                            });
                        }
                        CondKind::Dynamic(c) => Some(c),
                    },
                    None => None,
                };
                let init_stmt = init_e.map(|stmts| {
                    let id = self.data.action(stmts);
                    self.report.actions += 1;
                    EStmt::action(id)
                });
                let step_stmt = match step {
                    Some(e) => {
                        let id = self.data.action(vec![Stmt::expr(e.clone())]);
                        self.report.actions += 1;
                        Some(EStmt::action(id))
                    }
                    None => None,
                };
                let body_loop = self.reactive_loop(cond, None, body, step_stmt, s.span)?;
                Ok(EStmt::seq(match init_stmt {
                    Some(i) => vec![i, body_loop],
                    None => vec![body_loop],
                }))
            }
            StmtKind::DoWhile { body, cond } => {
                // do body while (c) ≡ trap_b { loop { trap_c { body };
                //                               if (!c) exit b } }
                let p = match const_cond(cond) {
                    CondKind::True => None,
                    CondKind::False | CondKind::Dynamic(_) => {
                        let cond = cond.clone();
                        Some(self.data.pred(cond))
                    }
                };
                if p.is_some() {
                    self.report.preds += 1;
                }
                self.depth += 1; // trap_b
                let break_abs = self.depth - 1;
                self.depth += 1; // trap_c
                self.loops.push(LoopCtx {
                    break_abs,
                    cont_abs: Some(self.depth - 1),
                });
                let b = self.tr_sub(body)?;
                self.loops.pop();
                self.depth -= 1;
                let tail = match p {
                    Some(p) => EStmt::if_data(p, EStmt::nothing(), EStmt::exit(0)),
                    None => EStmt::nothing(),
                };
                let inner = EStmt::seq(vec![EStmt::trap(b), tail]);
                self.depth -= 1;
                Ok(EStmt::trap(EStmt::loop_(inner)))
            }
            StmtKind::Switch { .. } => err(
                "switch with reactive statements inside is not supported; \
                 use if/else chains or keep the switch pure data",
                s.span,
            ),
            StmtKind::Break => {
                let Some(l) = self.loops.last() else {
                    return err("`break` outside of a loop", s.span);
                };
                Ok(EStmt::exit(self.depth - 1 - l.break_abs))
            }
            StmtKind::Continue => {
                let Some(l) = self.loops.last() else {
                    return err("`continue` outside of a loop", s.span);
                };
                match l.cont_abs {
                    Some(c) => Ok(EStmt::exit(self.depth - 1 - c)),
                    None => err("`continue` not supported here", s.span),
                }
            }
            StmtKind::Return(_) => err(
                "`return` inside a module body is not supported (modules do not return; \
                 use signals to communicate results)",
                s.span,
            ),
            StmtKind::Expr(_) | StmtKind::Decl(_) => {
                // Reaches here only when not batchable — i.e. it
                // contains escaping flow, which the cases above handle.
                err(
                    "internal: unexpected data statement in reactive position",
                    s.span,
                )
            }
        }
    }

    /// Translate a statement in sub-position (body of a reactive
    /// construct), preserving batching for blocks.
    fn tr_sub(&mut self, s: &Stmt) -> Result<EStmt, SplitError> {
        if batchable(s) {
            let mut out = Vec::new();
            let mut run = vec![s.clone()];
            self.flush(&mut run, &mut out)?;
            return Ok(EStmt::seq(out));
        }
        match &s.kind {
            StmtKind::Block(b) => self.tr_block(&b.stmts),
            _ => self.tr_stmt(s),
        }
    }

    /// Shared encoding for reactive `while`/`for` loops.
    ///
    /// `cond_pre` tests before the body (while/for); `cond_post` is not
    /// used here (do-while is separate). `step` runs after the body and
    /// after `continue`.
    fn reactive_loop(
        &mut self,
        cond_pre: Option<&Expr>,
        cond_pre_owned: Option<&Expr>,
        body: &Stmt,
        step: Option<EStmt>,
        _span: Span,
    ) -> Result<EStmt, SplitError> {
        let cond = cond_pre.or(cond_pre_owned);
        let pred = match cond {
            Some(c) => {
                self.report.preds += 1;
                Some(self.data.pred(c.clone()))
            }
            None => None,
        };
        self.depth += 1; // trap_b
        let break_abs = self.depth - 1;
        self.depth += 1; // trap_c
        self.loops.push(LoopCtx {
            break_abs,
            cont_abs: Some(self.depth - 1),
        });
        let b = self.tr_sub(body)?;
        self.loops.pop();
        self.depth -= 1; // leave trap_c scope for the step/test below
        let iteration = {
            let mut parts = vec![EStmt::trap(b)];
            if let Some(st) = step.clone() {
                parts.push(st);
            }
            EStmt::seq(parts)
        };
        let looped = match pred {
            Some(p) => EStmt::loop_(EStmt::if_data(p, iteration, EStmt::exit(0))),
            None => EStmt::loop_(iteration),
        };
        self.depth -= 1;
        Ok(EStmt::trap(looped))
    }
}

/// Outcome of constant-folding a loop condition.
enum CondKind<'a> {
    True,
    False,
    Dynamic(&'a Expr),
}

fn const_cond(e: &Expr) -> CondKind<'_> {
    match &e.kind {
        ExprKind::IntLit(v) => {
            if *v != 0 {
                CondKind::True
            } else {
                CondKind::False
            }
        }
        _ => CondKind::Dynamic(e),
    }
}

/// Lower a data statement for extraction: declarations become their
/// initializing assignments (frame slots are pre-allocated), empty
/// statements vanish.
fn lower_data(s: &Stmt) -> Option<Stmt> {
    match &s.kind {
        StmtKind::Expr(None) => None,
        StmtKind::Decl(d) => {
            let mut assigns: Vec<Stmt> = Vec::new();
            for dec in &d.decls {
                if let Some(init) = &dec.init {
                    let target = Expr {
                        kind: ExprKind::Ident(Ident::new(dec.name.name.clone(), dec.name.span)),
                        span: dec.name.span,
                    };
                    let assign = Expr {
                        kind: ExprKind::Assign(
                            AssignOp::Assign,
                            Box::new(target),
                            Box::new(init.clone()),
                        ),
                        span: dec.name.span,
                    };
                    assigns.push(Stmt::expr(assign));
                }
            }
            match assigns.len() {
                0 => None,
                1 => assigns.pop(),
                _ => Some(Stmt {
                    kind: StmtKind::Block(ecl_syntax::ast::Block {
                        stmts: assigns,
                        span: d.span,
                    }),
                    span: d.span,
                }),
            }
        }
        StmtKind::Block(b) => {
            let stmts: Vec<Stmt> = b.stmts.iter().filter_map(lower_data).collect();
            if stmts.is_empty() {
                None
            } else {
                Some(Stmt {
                    kind: StmtKind::Block(ecl_syntax::ast::Block {
                        stmts,
                        span: b.span,
                    }),
                    span: b.span,
                })
            }
        }
        StmtKind::If { cond, then, els } => Some(Stmt {
            kind: StmtKind::If {
                cond: cond.clone(),
                then: Box::new(lower_data(then).unwrap_or(Stmt {
                    kind: StmtKind::Expr(None),
                    span: then.span,
                })),
                els: els.as_ref().map(|e| {
                    Box::new(lower_data(e).unwrap_or(Stmt {
                        kind: StmtKind::Expr(None),
                        span: e.span,
                    }))
                }),
            },
            span: s.span,
        }),
        StmtKind::While { cond, body } => Some(Stmt {
            kind: StmtKind::While {
                cond: cond.clone(),
                body: Box::new(lower_data(body).unwrap_or(Stmt {
                    kind: StmtKind::Expr(None),
                    span: body.span,
                })),
            },
            span: s.span,
        }),
        StmtKind::DoWhile { body, cond } => Some(Stmt {
            kind: StmtKind::DoWhile {
                body: Box::new(lower_data(body).unwrap_or(Stmt {
                    kind: StmtKind::Expr(None),
                    span: body.span,
                })),
                cond: cond.clone(),
            },
            span: s.span,
        }),
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => Some(Stmt {
            kind: StmtKind::For {
                init: init.as_ref().and_then(|i| lower_data(i)).map(Box::new),
                cond: cond.clone(),
                step: step.clone(),
                body: Box::new(lower_data(body).unwrap_or(Stmt {
                    kind: StmtKind::Expr(None),
                    span: body.span,
                })),
            },
            span: s.span,
        }),
        StmtKind::Switch { scrutinee, arms } => Some(Stmt {
            kind: StmtKind::Switch {
                scrutinee: scrutinee.clone(),
                arms: arms
                    .iter()
                    .map(|a| ecl_syntax::ast::SwitchArm {
                        value: a.value.clone(),
                        stmts: a.stmts.iter().filter_map(lower_data).collect(),
                        span: a.span,
                    })
                    .collect(),
            },
            span: s.span,
        }),
        // break/continue inside extracted loops stay as-is.
        StmtKind::Break | StmtKind::Continue => Some(s.clone()),
        StmtKind::Expr(Some(_)) | StmtKind::Return(_) => Some(s.clone()),
        // Reactive statements never reach lower_data (batchable() is
        // checked first); keep a defensive clone.
        _ => Some(s.clone()),
    }
}
impl From<SplitError> for ecl_syntax::EclError {
    fn from(e: SplitError) -> Self {
        ecl_syntax::EclError::msg(ecl_syntax::Stage::Split, e.msg.clone(), e.span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elab::elaborate;
    use ecl_syntax::parse_str;

    fn split_src(src: &str, entry: &str, strategy: SplitStrategy) -> SplitResult {
        let prog = parse_str(src).expect("parse");
        let elab = elaborate(&prog, entry, None).expect("elaborate");
        split(&elab, strategy).expect("split")
    }

    #[test]
    fn await_emit_translate_directly() {
        let r = split_src(
            "module m(input pure a, output pure o) { while (1) { await (a); emit (o); } }",
            "m",
            SplitStrategy::MaxEsterel,
        );
        assert_eq!(r.data.actions.len(), 0);
        assert!(r.program.n_pauses() >= 1);
    }

    #[test]
    fn data_loop_is_extracted() {
        let r = split_src(
            "module m(input pure a, output pure o) {\
               int i; int acc;\
               while (1) {\
                 await (a);\
                 for (i = 0, acc = 0; i < 10; i++) { acc += i; }\
                 emit (o);\
               } }",
            "m",
            SplitStrategy::MaxEsterel,
        );
        // The inner for-loop has no halting statement → one action.
        assert_eq!(r.data.actions.len(), 1);
        assert_eq!(r.report.actions, 1);
    }

    #[test]
    fn reactive_for_becomes_esterel_loop() {
        let r = split_src(
            "module m(input pure b, output pure o) {\
               int cnt;\
               for (cnt = 0; cnt < 4; cnt++) { await (b); }\
               emit (o); halt(); }",
            "m",
            SplitStrategy::MaxEsterel,
        );
        // init + step actions, cond pred.
        assert!(r.data.actions.len() >= 2, "{:?}", r.data.actions.len());
        assert_eq!(r.data.preds.len(), 1);
    }

    #[test]
    fn min_esterel_batches_runs() {
        let src = "module m(input pure a, output pure o) {\
               int x; int y; int z;\
               while (1) {\
                 await (a);\
                 x = 1; y = 2; z = x + y;\
                 if (z > 2) { z = 0; }\
                 emit (o);\
               } }";
        let max = split_src(src, "m", SplitStrategy::MaxEsterel);
        let min = split_src(src, "m", SplitStrategy::MinEsterel);
        // Min: one batched action; Max: one per statement + pred.
        assert_eq!(min.data.actions.len(), 1);
        assert!(max.data.actions.len() >= 3);
        assert_eq!(max.data.preds.len(), 1);
        assert_eq!(min.data.preds.len(), 0);
    }

    #[test]
    fn emit_v_records_value_expr() {
        let r = split_src(
            "typedef unsigned char byte;\
             module m(input byte b, output byte o) { while (1) { await (b); emit_v (o, b); } }",
            "m",
            SplitStrategy::MaxEsterel,
        );
        assert_eq!(r.data.emit_exprs.len(), 1);
        assert_eq!(r.report.emits_valued, 1);
    }

    #[test]
    fn emit_on_valued_signal_rejected() {
        let prog = parse_str(
            "typedef unsigned char byte;\
             module m(input pure a, output byte o) { emit (o); }",
        )
        .unwrap();
        let elab = elaborate(&prog, "m", None).unwrap();
        let e = split(&elab, SplitStrategy::MaxEsterel).unwrap_err();
        assert!(e.msg.contains("emit_v"));
    }

    #[test]
    fn break_in_reactive_loop_exits() {
        let r = split_src(
            "module m(input pure a, input pure q, output pure o) {\
               while (1) { await (a); present (q) { break; } }\
               emit (o); halt (); }",
            "m",
            SplitStrategy::MaxEsterel,
        );
        // Must compile (break → exit) and keep at least one pause.
        assert!(r.program.n_pauses() >= 1);
    }

    #[test]
    fn instantaneous_reactive_loop_rejected() {
        let prog =
            parse_str("module m(input pure a, output pure o) { while (1) { emit (o); } }").unwrap();
        let elab = elaborate(&prog, "m", None).unwrap();
        let e = split(&elab, SplitStrategy::MaxEsterel).unwrap_err();
        assert!(e.msg.contains("instantaneous"), "{}", e.msg);
    }

    #[test]
    fn reactive_switch_rejected() {
        let prog = parse_str(
            "module m(input pure a, input int v) {\
               switch (v) { case 1: await (a); break; } }",
        )
        .unwrap();
        let elab = elaborate(&prog, "m", None).unwrap();
        let e = split(&elab, SplitStrategy::MaxEsterel).unwrap_err();
        assert!(e.msg.contains("switch"));
    }

    #[test]
    fn figure1_assemble_splits() {
        // The paper's Figure 1, verbatim modulo the preprocessor.
        let src = "
#define HDRSIZE 6
#define DATASIZE 56
#define CRCSIZE 2
#define PKTSIZE HDRSIZE+DATASIZE+CRCSIZE
typedef unsigned char byte;
typedef struct { byte packet[PKTSIZE]; } packet_view_1_t;
typedef struct { byte header[HDRSIZE]; byte data[DATASIZE]; byte crc[CRCSIZE]; } packet_view_2_t;
typedef union { packet_view_1_t raw; packet_view_2_t cooked; } packet_t;
module assemble (input pure reset, input byte in_byte, output packet_t outpkt)
{
    int cnt;
    packet_t buffer;
    while (1) {
        do {
            for (cnt = 0; cnt < PKTSIZE; cnt++) {
                await (in_byte);
                buffer.raw.packet[cnt] = in_byte;
            }
            emit_v (outpkt, buffer);
        } abort (reset);
    }
}";
        let r = split_src(src, "assemble", SplitStrategy::MaxEsterel);
        assert!(r.program.n_pauses() >= 2); // await + abort's internal await
        assert_eq!(r.data.emit_exprs.len(), 1);
        assert_eq!(r.data.preds.len(), 1); // cnt < PKTSIZE
    }

    #[test]
    fn continue_in_reactive_loop() {
        let r = split_src(
            "module m(input pure a, input pure skip, output pure o) {\
               while (1) { await (a); present (skip) { continue; } emit (o); } }",
            "m",
            SplitStrategy::MaxEsterel,
        );
        assert!(r.program.n_pauses() >= 1);
    }

    #[test]
    fn return_in_module_rejected() {
        let prog = parse_str("module m(input pure a) { await(a); return; }").unwrap();
        let elab = elaborate(&prog, "m", None).unwrap();
        let e = split(&elab, SplitStrategy::MaxEsterel).unwrap_err();
        assert!(e.msg.contains("return"));
    }
}
