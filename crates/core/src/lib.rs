//! The ECL compiler — the paper's primary contribution.
//!
//! ECL (Esterel/C Language, Lavagno & Sentovich, DAC 1999) extends ANSI
//! C with Esterel's reactive statements. This crate implements the full
//! compilation scheme of Section 3 of the paper:
//!
//! 1. parse ECL (done by `ecl-syntax`) and *elaborate* the design:
//!    module instantiations are inlined, signals and variables renamed
//!    to a flat global namespace ([`elab`]);
//! 2. *split* the program into a reactive part (kernel Esterel) and a
//!    data part (extracted C fragments) connected by glue ids
//!    ([`split`]); both of the paper's strategies are available —
//!    [`SplitStrategy::MaxEsterel`] (the paper's current scheme: "as
//!    much as possible into Esterel") and [`SplitStrategy::MinEsterel`]
//!    (the Section 6 future-work scheme: only mandatory reactivity);
//! 3. compile the Esterel part to an EFSM (crate `esterel`), while the
//!    data part executes through the glue runtime ([`rt`]) backed by the
//!    C interpreter in `ecl-types`.
//!
//! The preferred entry points are the staged [`pipeline`] (typed
//! artifacts for every phase, re-enterable without rework) and the
//! batch [`workspace::Workspace`] driver (shared parses, parallel
//! compilation, memoization). The one-shot [`Compiler`] facade remains
//! as a thin shim over the pipeline.
//!
//! # Example
//!
//! ```
//! use ecl_core::{Compiler, Options};
//! let src = "
//!   module counter(input pure tick, input pure reset, output pure full) {
//!     int n;
//!     while (1) {
//!       do {
//!         n = 0;
//!         while (n < 3) { await (tick); n = n + 1; }
//!         emit (full);
//!         halt ();
//!       } abort (reset);
//!     }
//!   }";
//! let design = Compiler::new(Options::default()).compile_str(src, "counter").unwrap();
//! let efsm = design.to_efsm(&Default::default()).unwrap();
//! assert!(efsm.states.len() >= 2);
//! ```

pub mod compiler;
pub mod elab;
pub mod pipeline;
pub mod rt;
pub mod split;
pub mod workspace;

pub use compiler::{Compiler, Design, Options};
pub use ecl_syntax::diag::{Diagnostics, EclError, Stage};
pub use pipeline::Source;
pub use rt::Rt;
pub use split::{DataTable, SplitStrategy};
pub use workspace::Workspace;
