//! The glue runtime: data state + [`efsm::DataHooks`] implementation.
//!
//! The paper's "glue logic part ... allows Esterel statements to access
//! fields of ECL non-scalar data types". In this reproduction the glue
//! is a runtime object ([`Rt`]) that owns:
//!
//! * the design's flat variable frame (every module instance's locals,
//!   mangled to unique names by elaboration);
//! * the current value of every valued signal;
//! * the C interpreter ([`ecl_types::Machine`]) used to run extracted
//!   actions, evaluate EFSM predicates and compute `emit_v` values;
//! * the compiled data path: at construction every predicate, action
//!   and emit expression is lowered to register bytecode
//!   ([`ecl_types::vm`]) over the frame's dense slots and the signal
//!   indices, and the [`efsm::DataHooks`] impl dispatches there by
//!   default ([`Rt::set_backend`] with [`efsm::Backend::Walker`]
//!   forces the tree-walker for measurement; both backends are
//!   differential-tested equal, including error instants, fuel-derived
//!   cycle charges and the `pred_evals`/`action_runs` counters).
//!
//! One `Rt` instance backs the Esterel interpreter and compiled EFSMs
//! alike — both call the same [`efsm::DataHooks`] entry points, which
//! is what makes differential testing between the two meaningful.

use crate::elab::Elab;
use crate::split::DataTable;
use ecl_syntax::ast::Program;
use ecl_syntax::diag::DiagSink;
use ecl_types::vm::{self, Compiled};
use ecl_types::{
    FxHashMap, Lowering, Machine, SignalLayout, TypeId, TypeTable, Value, ValuesReader,
};
use efsm::{ActionId, Backend, DataHooks, ExprId, PredId, Signal};
use std::fmt;
use std::sync::Arc;

/// Runtime construction/evaluation failure.
#[derive(Debug, Clone)]
pub struct RtError {
    /// Explanation.
    pub msg: String,
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error: {}", self.msg)
    }
}

impl std::error::Error for RtError {}

/// The compiled data hooks of one runtime: bytecode programs (or
/// walker markers) per predicate / action / emit expression, plus the
/// root-scope length they were resolved against — slot resolutions are
/// valid only while the root frame hasn't grown (root bindings are
/// append-only; only a walker-executed top-level declaration can add
/// one, after which every hook conservatively walks).
#[derive(Debug, Clone, Default)]
struct DataProgs {
    preds: Vec<Compiled>,
    actions: Vec<Compiled>,
    emits: Vec<Compiled>,
    root_len: usize,
}

/// Degradation latches, one per compiled hook: once a VM program is
/// demoted (by an injected fault) it walks for the rest of the
/// runtime's life. Demotion is semantics-preserving — the walker
/// computes the identical result — so a latched hook only changes
/// which backend runs, never what it produces.
#[derive(Debug, Clone, Default)]
struct Demoted {
    preds: Vec<bool>,
    actions: Vec<bool>,
    emits: Vec<bool>,
}

/// The data-side runtime for one design instance.
#[derive(Debug, Clone)]
pub struct Rt {
    machine: Machine,
    data: DataTable,
    /// Signal index → current value (valued signals only).
    values: Vec<Option<Value>>,
    /// Signal index → resolved value type.
    sig_types: Vec<Option<ecl_types::TypeId>>,
    /// Signal name → index.
    by_name: FxHashMap<String, usize>,
    /// First evaluation error encountered (subsequent actions are
    /// skipped until it is taken).
    error: Option<ecl_types::EvalError>,
    /// Bytecode programs compiled from the data table at construction.
    /// Immutable after lowering; `Arc`-shared so cloning an `Rt` (fleet
    /// sessions, checkpoints) never re-copies the compiled data path.
    progs: Arc<DataProgs>,
    /// Per-hook walker-demotion latches (fault-injection recovery).
    demoted: Demoted,
    /// Register-file scratch reused across hook runs (no steady-state
    /// allocation).
    vm_regs: Vec<i64>,
    /// Which backend dispatches the data hooks: [`Backend::Compiled`]
    /// (default) runs them on the bytecode VM; [`Backend::Walker`]
    /// forces the tree-walker everywhere — observationally identical,
    /// the toggle exists for measurement and bisection.
    backend: Backend,
    /// Count of executed actions/predicates/emissions (cost metrics).
    pub action_runs: u64,
    /// Count of predicate evaluations.
    pub pred_evals: u64,
}

/// Compile-time signal resolution for the lowerer.
struct SigLayout<'a> {
    by_name: &'a FxHashMap<String, usize>,
    sig_types: &'a [Option<TypeId>],
}

impl SignalLayout for SigLayout<'_> {
    fn signal(&self, name: &str) -> Option<(usize, Option<TypeId>)> {
        self.by_name.get(name).map(|&i| (i, self.sig_types[i]))
    }
}

impl Rt {
    /// Build the runtime for an elaborated + split design.
    ///
    /// # Errors
    ///
    /// Fails when a variable or signal type cannot be resolved.
    pub fn new(ast: &Program, elab: &Elab, data: &DataTable) -> Result<Rt, RtError> {
        let mut sink = DiagSink::new();
        let table = TypeTable::build(ast, &mut sink);
        if sink.has_errors() {
            return Err(RtError {
                msg: format!("type errors:\n{sink}"),
            });
        }
        let mut machine = Machine::new(table);
        for f in ast.functions() {
            machine.add_function(f);
        }
        // Allocate the flat frame.
        for v in &elab.vars {
            let mut sink = DiagSink::new();
            let Some(ty) = machine.table_mut().resolve(&v.ty, &mut sink) else {
                return Err(RtError {
                    msg: format!("cannot resolve type of variable `{}`", v.name),
                });
            };
            let zero = Value::zero(machine.table(), ty);
            machine.declare(&v.name, zero);
        }
        // Resolve signal value types.
        let mut values = Vec::new();
        let mut sig_types = Vec::new();
        let mut by_name = FxHashMap::default();
        for (i, s) in elab.signals.iter().enumerate() {
            by_name.insert(s.name.clone(), i);
            if s.pure {
                values.push(None);
                sig_types.push(None);
            } else {
                let ty = match &s.ty {
                    Some(t) => {
                        let mut sink = DiagSink::new();
                        machine
                            .table_mut()
                            .resolve(t, &mut sink)
                            .ok_or_else(|| RtError {
                                msg: format!("cannot resolve type of signal `{}`", s.name),
                            })?
                    }
                    None => {
                        return Err(RtError {
                            msg: format!("valued signal `{}` lacks a type", s.name),
                        })
                    }
                };
                values.push(Some(Value::zero(machine.table(), ty)));
                sig_types.push(Some(ty));
            }
        }
        // Lower every data hook to bytecode once, now that the frame
        // and signal layout are final.
        let layout = SigLayout {
            by_name: &by_name,
            sig_types: &sig_types,
        };
        let mut lw = Lowering::new(&mut machine, &layout);
        let progs = Arc::new(DataProgs {
            preds: data.preds.iter().map(|e| lw.pred(e)).collect(),
            actions: data.actions.iter().map(|a| lw.action(a)).collect(),
            emits: data
                .emit_exprs
                .iter()
                .map(|(e, sig)| lw.emit(e, sig.0 as usize, sig_types[sig.0 as usize]))
                .collect(),
            root_len: machine.root_len(),
        });
        let demoted = Demoted {
            preds: vec![false; progs.preds.len()],
            actions: vec![false; progs.actions.len()],
            emits: vec![false; progs.emits.len()],
        };
        Ok(Rt {
            machine,
            data: data.clone(),
            values,
            sig_types,
            by_name,
            error: None,
            progs,
            demoted,
            vm_regs: Vec::new(),
            backend: Backend::default(),
            action_runs: 0,
            pred_evals: 0,
        })
    }

    /// Access the C machine (e.g. to inspect variables in tests).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access to the C machine (fuel control in tests).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Choose the data-hook backend: [`Backend::Compiled`] (the
    /// default) dispatches to the bytecode VM, [`Backend::Walker`]
    /// forces the tree-walker everywhere. Semantics are identical
    /// either way (differential-tested); the switch exists for
    /// measurement, bisection and differential gating.
    pub fn set_backend(&mut self, backend: Backend) {
        self.backend = backend;
    }

    /// The active data-hook backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// How many compiled hooks have been demoted to the walker by the
    /// fault-injection degradation ladder (0 without a plan).
    pub fn demoted_hooks(&self) -> u32 {
        [
            &self.demoted.preds,
            &self.demoted.actions,
            &self.demoted.emits,
        ]
        .iter()
        .flat_map(|v| v.iter())
        .filter(|d| **d)
        .count() as u32
    }

    /// `(vm-compiled hooks, total hooks)` — how much of the design's
    /// data path runs on bytecode rather than the walker.
    pub fn vm_coverage(&self) -> (u32, u32) {
        let all = [&self.progs.preds, &self.progs.actions, &self.progs.emits];
        let total: usize = all.iter().map(|v| v.len()).sum();
        let vm: usize = all
            .iter()
            .flat_map(|v| v.iter())
            .filter(|c| c.is_vm())
            .count();
        (vm as u32, total as u32)
    }

    /// Are the compiled slot resolutions still valid? (The root frame
    /// is append-only; it grows only if a walker-executed top-level
    /// declaration added a binding.)
    fn progs_valid(&self) -> bool {
        self.backend == Backend::Compiled && self.progs.root_len == self.machine.root_len()
    }

    /// Take the first pending evaluation error, if any.
    pub fn take_error(&mut self) -> Option<ecl_types::EvalError> {
        self.error.take()
    }

    /// Current value of signal `idx` (None for pure signals).
    pub fn signal_value(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx).and_then(|v| v.as_ref())
    }

    /// Current value of a signal by name.
    pub fn signal_value_by_name(&self, name: &str) -> Option<&Value> {
        self.by_name.get(name).and_then(|i| self.signal_value(*i))
    }

    /// Set an *input* signal's value for the coming instant (the
    /// testbench side of valued signals).
    ///
    /// # Errors
    ///
    /// Fails for unknown or pure signals, or on a type mismatch.
    pub fn set_input_value(&mut self, name: &str, v: Value) -> Result<(), RtError> {
        let Some(&i) = self.by_name.get(name) else {
            return Err(RtError {
                msg: format!("unknown signal `{name}`"),
            });
        };
        let Some(ty) = self.sig_types[i] else {
            return Err(RtError {
                msg: format!("signal `{name}` is pure"),
            });
        };
        let Some(conv) = v.convert(self.machine.table(), ty) else {
            return Err(RtError {
                msg: format!("type mismatch for signal `{name}`"),
            });
        };
        self.values[i] = Some(conv);
        Ok(())
    }

    /// Build an `i64` value of the signal's own type and set it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Rt::set_input_value`].
    pub fn set_input_i64(&mut self, name: &str, v: i64) -> Result<(), RtError> {
        let Some(&i) = self.by_name.get(name) else {
            return Err(RtError {
                msg: format!("unknown signal `{name}`"),
            });
        };
        self.set_input_i64_idx(i, v)
    }

    /// Signal index by global name (the index [`Rt::signal_value`] and
    /// the `_idx` setters expect; identical to the reactive program's
    /// signal numbering).
    pub fn signal_index(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// [`Rt::set_input_i64`] by signal index — the runner hot path.
    /// Rewrites the existing value buffer in place (no allocation once
    /// the signal has been set once).
    ///
    /// # Errors
    ///
    /// Unknown index or pure signal.
    pub fn set_input_i64_idx(&mut self, idx: usize, v: i64) -> Result<(), RtError> {
        // Fault site: a corrupted sensor/bus flips bits in the value
        // before the type system ever sees it (stream site — the
        // testbench drives this identically on every backend).
        let v = ecl_faults::corrupt_i64(idx, v).unwrap_or(v);
        let Some(ty) = self.sig_types.get(idx).copied().flatten() else {
            return Err(RtError {
                msg: format!("signal #{idx} is pure or unknown"),
            });
        };
        let table = self.machine.table();
        if let Some(val) = &mut self.values[idx] {
            let t = table.get(ty);
            if val.ty == ty && val.bytes.len() <= 8 && t.is_integer() {
                let le = v.to_le_bytes();
                let n = val.bytes.len();
                val.bytes[..n].copy_from_slice(&le[..n]);
                if t == ecl_types::Type::Bool {
                    val.bytes[0] = (v != 0) as u8;
                }
                return Ok(());
            }
        }
        self.values[idx] = Some(Value::from_i64(table, ty, v));
        Ok(())
    }

    /// [`Rt::set_input_value`] by signal index (cross-task value copy
    /// without a name lookup).
    ///
    /// # Errors
    ///
    /// Unknown index, pure signal, or a type mismatch.
    pub fn set_input_value_idx(&mut self, idx: usize, v: &Value) -> Result<(), RtError> {
        let Some(ty) = self.sig_types.get(idx).copied().flatten() else {
            return Err(RtError {
                msg: format!("signal #{idx} is pure or unknown"),
            });
        };
        let Some(conv) = v.clone().convert(self.machine.table(), ty) else {
            return Err(RtError {
                msg: format!("type mismatch for signal #{idx}"),
            });
        };
        self.values[idx] = Some(conv);
        Ok(())
    }

    /// Read a design variable (mangled name) as `i64` (tests/benches).
    pub fn var_i64(&self, mangled: &str) -> Option<i64> {
        self.machine
            .get(mangled)
            .map(|v| v.as_i64(self.machine.table()))
    }
}

impl DataHooks for Rt {
    fn eval_pred(&mut self, pred: PredId) -> bool {
        if self.error.is_some() {
            return false;
        }
        self.pred_evals += 1;
        let i = pred.0 as usize;
        let mut vm_path = self.progs_valid() && self.progs.preds[i].is_vm();
        if vm_path && (self.demoted.preds[i] || ecl_faults::enabled()) {
            if self.demoted.preds[i] {
                vm_path = false;
            } else if ecl_faults::vm_fault(ecl_faults::VM_PRED, pred.0) {
                self.demoted.preds[i] = true;
                ecl_faults::note_degraded("vm", "pred", u64::from(pred.0));
                vm_path = false;
            }
        }
        // One execution entry point: disjoint-field borrows split the
        // machine (mutable) from the value store and data table (the
        // shared `ValuesReader` view serves the walker and the VM's
        // fallback ops alike).
        let Rt {
            machine,
            values,
            by_name,
            data,
            progs,
            vm_regs,
            ..
        } = self;
        let out = if vm_path {
            let Compiled::Vm(prog) = &progs.preds[i] else {
                unreachable!("vm_path checked above")
            };
            vm::run(prog, machine, values, by_name, vm_regs).map(|v| v != 0)
        } else {
            ecl_telemetry::metrics::VM_WALKER_HOOKS.incr();
            machine
                .eval(&data.preds[i], &ValuesReader { values, by_name })
                .map(|v| v.is_truthy())
        };
        match out {
            Ok(v) => v,
            Err(e) => {
                self.error = Some(e);
                false
            }
        }
    }

    fn run_action(&mut self, action: ActionId) {
        if self.error.is_some() {
            return;
        }
        self.action_runs += 1;
        let i = action.0 as usize;
        let mut vm_path = self.progs_valid() && self.progs.actions[i].is_vm();
        if vm_path && (self.demoted.actions[i] || ecl_faults::enabled()) {
            if self.demoted.actions[i] {
                vm_path = false;
            } else if ecl_faults::vm_fault(ecl_faults::VM_ACTION, action.0) {
                self.demoted.actions[i] = true;
                ecl_faults::note_degraded("vm", "action", u64::from(action.0));
                vm_path = false;
            }
        }
        let Rt {
            machine,
            values,
            by_name,
            data,
            progs,
            vm_regs,
            ..
        } = self;
        if vm_path {
            let Compiled::Vm(prog) = &progs.actions[i] else {
                unreachable!("vm_path checked above")
            };
            if let Err(e) = vm::run(prog, machine, values, by_name, vm_regs) {
                self.error = Some(e);
            }
        } else {
            ecl_telemetry::metrics::VM_WALKER_HOOKS.incr();
            let reader = ValuesReader { values, by_name };
            for s in &data.actions[i] {
                if let Err(e) = machine.exec(s, &reader) {
                    self.error = Some(e);
                    break;
                }
            }
        }
    }

    fn emit_value(&mut self, sig: Signal, expr: ExprId) {
        if self.error.is_some() {
            return;
        }
        let i = expr.0 as usize;
        let si = sig.0 as usize;
        let mut vm_path = self.progs_valid() && self.progs.emits[i].is_vm();
        if vm_path && (self.demoted.emits[i] || ecl_faults::enabled()) {
            if self.demoted.emits[i] {
                vm_path = false;
            } else if ecl_faults::vm_fault(ecl_faults::VM_EMIT, expr.0) {
                self.demoted.emits[i] = true;
                ecl_faults::note_degraded("vm", "emit", u64::from(expr.0));
                vm_path = false;
            }
        }
        let Rt {
            machine,
            values,
            by_name,
            data,
            sig_types,
            progs,
            vm_regs,
            ..
        } = self;
        let (e, target) = &data.emit_exprs[i];
        debug_assert_eq!(*target, sig, "emit expr bound to a different signal");
        if vm_path {
            // The compiled program stores the converted value into the
            // signal's buffer itself (in place).
            let Compiled::Vm(prog) = &progs.emits[i] else {
                unreachable!("vm_path checked above")
            };
            if let Err(e) = vm::run(prog, machine, values, by_name, vm_regs) {
                self.error = Some(e);
            }
            return;
        }
        ecl_telemetry::metrics::VM_WALKER_HOOKS.incr();
        let out = machine.eval(e, &ValuesReader { values, by_name });
        match out {
            Ok(v) => {
                if let Some(ty) = sig_types[si] {
                    match v.convert(machine.table(), ty) {
                        Some(cv) => values[si] = Some(cv),
                        None => {
                            self.error = Some(ecl_types::EvalError {
                                msg: format!(
                                    "emit_v value not convertible to signal type for signal {}",
                                    si
                                ),
                                span: e.span,
                            })
                        }
                    }
                }
            }
            Err(e) => self.error = Some(e),
        }
    }
}

impl From<RtError> for ecl_syntax::EclError {
    fn from(e: RtError) -> Self {
        ecl_syntax::EclError::msg(
            ecl_syntax::Stage::Runtime,
            e.msg.clone(),
            ecl_syntax::Span::dummy(),
        )
    }
}
