//! The glue runtime: data state + [`efsm::DataHooks`] implementation.
//!
//! The paper's "glue logic part ... allows Esterel statements to access
//! fields of ECL non-scalar data types". In this reproduction the glue
//! is a runtime object ([`Rt`]) that owns:
//!
//! * the design's flat variable frame (every module instance's locals,
//!   mangled to unique names by elaboration);
//! * the current value of every valued signal;
//! * the C interpreter ([`ecl_types::Machine`]) used to run extracted
//!   actions, evaluate EFSM predicates and compute `emit_v` values.
//!
//! One `Rt` instance backs either the Esterel interpreter or a compiled
//! EFSM — both call the same [`efsm::DataHooks`] entry points, which is
//! what makes differential testing between the two meaningful.

use crate::elab::Elab;
use crate::split::DataTable;
use ecl_syntax::ast::Program;
use ecl_syntax::diag::DiagSink;
use ecl_types::{FxHashMap, Machine, SignalReader, TypeTable, Value};
use efsm::{ActionId, DataHooks, ExprId, PredId, Signal};
use std::fmt;

/// Runtime construction/evaluation failure.
#[derive(Debug, Clone)]
pub struct RtError {
    /// Explanation.
    pub msg: String,
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error: {}", self.msg)
    }
}

impl std::error::Error for RtError {}

/// The data-side runtime for one design instance.
#[derive(Debug, Clone)]
pub struct Rt {
    machine: Machine,
    data: DataTable,
    /// Signal index → current value (valued signals only).
    values: Vec<Option<Value>>,
    /// Signal index → resolved value type.
    sig_types: Vec<Option<ecl_types::TypeId>>,
    /// Signal name → index.
    by_name: FxHashMap<String, usize>,
    /// First evaluation error encountered (subsequent actions are
    /// skipped until it is taken).
    error: Option<ecl_types::EvalError>,
    /// Count of executed actions/predicates/emissions (cost metrics).
    pub action_runs: u64,
    /// Count of predicate evaluations.
    pub pred_evals: u64,
}

impl Rt {
    /// Build the runtime for an elaborated + split design.
    ///
    /// # Errors
    ///
    /// Fails when a variable or signal type cannot be resolved.
    pub fn new(ast: &Program, elab: &Elab, data: &DataTable) -> Result<Rt, RtError> {
        let mut sink = DiagSink::new();
        let table = TypeTable::build(ast, &mut sink);
        if sink.has_errors() {
            return Err(RtError {
                msg: format!("type errors:\n{sink}"),
            });
        }
        let mut machine = Machine::new(table);
        for f in ast.functions() {
            machine.add_function(f);
        }
        // Allocate the flat frame.
        for v in &elab.vars {
            let mut sink = DiagSink::new();
            let Some(ty) = machine.table_mut().resolve(&v.ty, &mut sink) else {
                return Err(RtError {
                    msg: format!("cannot resolve type of variable `{}`", v.name),
                });
            };
            let zero = Value::zero(machine.table(), ty);
            machine.declare(&v.name, zero);
        }
        // Resolve signal value types.
        let mut values = Vec::new();
        let mut sig_types = Vec::new();
        let mut by_name = FxHashMap::default();
        for (i, s) in elab.signals.iter().enumerate() {
            by_name.insert(s.name.clone(), i);
            if s.pure {
                values.push(None);
                sig_types.push(None);
            } else {
                let ty = match &s.ty {
                    Some(t) => {
                        let mut sink = DiagSink::new();
                        machine
                            .table_mut()
                            .resolve(t, &mut sink)
                            .ok_or_else(|| RtError {
                                msg: format!("cannot resolve type of signal `{}`", s.name),
                            })?
                    }
                    None => {
                        return Err(RtError {
                            msg: format!("valued signal `{}` lacks a type", s.name),
                        })
                    }
                };
                values.push(Some(Value::zero(machine.table(), ty)));
                sig_types.push(Some(ty));
            }
        }
        Ok(Rt {
            machine,
            data: data.clone(),
            values,
            sig_types,
            by_name,
            error: None,
            action_runs: 0,
            pred_evals: 0,
        })
    }

    /// Access the C machine (e.g. to inspect variables in tests).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Take the first pending evaluation error, if any.
    pub fn take_error(&mut self) -> Option<ecl_types::EvalError> {
        self.error.take()
    }

    /// Current value of signal `idx` (None for pure signals).
    pub fn signal_value(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx).and_then(|v| v.as_ref())
    }

    /// Current value of a signal by name.
    pub fn signal_value_by_name(&self, name: &str) -> Option<&Value> {
        self.by_name.get(name).and_then(|i| self.signal_value(*i))
    }

    /// Set an *input* signal's value for the coming instant (the
    /// testbench side of valued signals).
    ///
    /// # Errors
    ///
    /// Fails for unknown or pure signals, or on a type mismatch.
    pub fn set_input_value(&mut self, name: &str, v: Value) -> Result<(), RtError> {
        let Some(&i) = self.by_name.get(name) else {
            return Err(RtError {
                msg: format!("unknown signal `{name}`"),
            });
        };
        let Some(ty) = self.sig_types[i] else {
            return Err(RtError {
                msg: format!("signal `{name}` is pure"),
            });
        };
        let Some(conv) = v.convert(self.machine.table(), ty) else {
            return Err(RtError {
                msg: format!("type mismatch for signal `{name}`"),
            });
        };
        self.values[i] = Some(conv);
        Ok(())
    }

    /// Build an `i64` value of the signal's own type and set it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Rt::set_input_value`].
    pub fn set_input_i64(&mut self, name: &str, v: i64) -> Result<(), RtError> {
        let Some(&i) = self.by_name.get(name) else {
            return Err(RtError {
                msg: format!("unknown signal `{name}`"),
            });
        };
        self.set_input_i64_idx(i, v)
    }

    /// Signal index by global name (the index [`Rt::signal_value`] and
    /// the `_idx` setters expect; identical to the reactive program's
    /// signal numbering).
    pub fn signal_index(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// [`Rt::set_input_i64`] by signal index — the runner hot path.
    /// Rewrites the existing value buffer in place (no allocation once
    /// the signal has been set once).
    ///
    /// # Errors
    ///
    /// Unknown index or pure signal.
    pub fn set_input_i64_idx(&mut self, idx: usize, v: i64) -> Result<(), RtError> {
        let Some(ty) = self.sig_types.get(idx).copied().flatten() else {
            return Err(RtError {
                msg: format!("signal #{idx} is pure or unknown"),
            });
        };
        let table = self.machine.table();
        if let Some(val) = &mut self.values[idx] {
            let t = table.get(ty);
            if val.ty == ty && val.bytes.len() <= 8 && t.is_integer() {
                let le = v.to_le_bytes();
                let n = val.bytes.len();
                val.bytes[..n].copy_from_slice(&le[..n]);
                if t == ecl_types::Type::Bool {
                    val.bytes[0] = (v != 0) as u8;
                }
                return Ok(());
            }
        }
        self.values[idx] = Some(Value::from_i64(table, ty, v));
        Ok(())
    }

    /// [`Rt::set_input_value`] by signal index (cross-task value copy
    /// without a name lookup).
    ///
    /// # Errors
    ///
    /// Unknown index, pure signal, or a type mismatch.
    pub fn set_input_value_idx(&mut self, idx: usize, v: &Value) -> Result<(), RtError> {
        let Some(ty) = self.sig_types.get(idx).copied().flatten() else {
            return Err(RtError {
                msg: format!("signal #{idx} is pure or unknown"),
            });
        };
        let Some(conv) = v.clone().convert(self.machine.table(), ty) else {
            return Err(RtError {
                msg: format!("type mismatch for signal #{idx}"),
            });
        };
        self.values[idx] = Some(conv);
        Ok(())
    }

    /// Read a design variable (mangled name) as `i64` (tests/benches).
    pub fn var_i64(&self, mangled: &str) -> Option<i64> {
        self.machine
            .get(mangled)
            .map(|v| v.as_i64(self.machine.table()))
    }
}

impl DataHooks for Rt {
    fn eval_pred(&mut self, pred: PredId) -> bool {
        if self.error.is_some() {
            return false;
        }
        self.pred_evals += 1;
        // Split borrows: move the value store into a local reader; the
        // expression is read straight out of the (disjoint) data table.
        let values = std::mem::take(&mut self.values);
        let reader = OwnedReader {
            values: &values,
            by_name: &self.by_name,
        };
        let out = self
            .machine
            .eval(&self.data.preds[pred.0 as usize], &reader);
        self.values = values;
        match out {
            Ok(v) => v.is_truthy(),
            Err(e) => {
                self.error = Some(e);
                false
            }
        }
    }

    fn run_action(&mut self, action: ActionId) {
        if self.error.is_some() {
            return;
        }
        self.action_runs += 1;
        let values = std::mem::take(&mut self.values);
        let reader = OwnedReader {
            values: &values,
            by_name: &self.by_name,
        };
        for s in &self.data.actions[action.0 as usize] {
            match self.machine.exec(s, &reader) {
                Ok(_) => {}
                Err(e) => {
                    self.error = Some(e);
                    break;
                }
            }
        }
        self.values = values;
    }

    fn emit_value(&mut self, sig: Signal, expr: ExprId) {
        if self.error.is_some() {
            return;
        }
        let (e, target) = &self.data.emit_exprs[expr.0 as usize];
        debug_assert_eq!(*target, sig, "emit expr bound to a different signal");
        let values = std::mem::take(&mut self.values);
        let reader = OwnedReader {
            values: &values,
            by_name: &self.by_name,
        };
        let out = self.machine.eval(e, &reader);
        self.values = values;
        match out {
            Ok(v) => {
                let i = sig.0 as usize;
                if let Some(ty) = self.sig_types[i] {
                    match v.convert(self.machine.table(), ty) {
                        Some(cv) => self.values[i] = Some(cv),
                        None => {
                            self.error = Some(ecl_types::EvalError {
                                msg: format!(
                                    "emit_v value not convertible to signal type for signal {}",
                                    i
                                ),
                                span: e.span,
                            })
                        }
                    }
                }
            }
            Err(e) => self.error = Some(e),
        }
    }
}

/// Reader over a moved-out value store (borrow-splitting helper).
struct OwnedReader<'a> {
    values: &'a [Option<Value>],
    by_name: &'a FxHashMap<String, usize>,
}

impl<'a> SignalReader for OwnedReader<'a> {
    fn read_signal(&self, name: &str) -> Option<Value> {
        self.by_name
            .get(name)
            .and_then(|i| self.values.get(*i))
            .and_then(|v| v.clone())
    }
}

impl From<RtError> for ecl_syntax::EclError {
    fn from(e: RtError) -> Self {
        ecl_syntax::EclError::msg(
            ecl_syntax::Stage::Runtime,
            e.msg.clone(),
            ecl_syntax::Span::dummy(),
        )
    }
}
