//! The staged compilation pipeline — typed artifacts for every phase.
//!
//! The paper's flow is staged: parse → elaborate → reactive/data split
//! → EFSM → C/Verilog. This module exposes each stage as its own typed
//! artifact so tools (cost estimation, co-simulation, monitor
//! synthesis, HW/SW exploration) can stop at, inspect, or re-enter any
//! point without redoing earlier work:
//!
//! ```text
//! Source ──parse()──▶ Parsed ──elaborate(entry)──▶ Elaborated
//!    ──split()/split_with(strategy)──▶ Split ──ir()──▶ EsterelIr
//!    ──compile(opts)──▶ Machine ──(codegen::Artifacts)──▶ C/Verilog
//! ```
//!
//! Every stage:
//!
//! * is cheaply cloneable (`Arc`-backed) and `Send + Sync`, so a
//!   [`crate::workspace::Workspace`] can fan stages out across threads
//!   and memoize them;
//! * carries the [`Diagnostics`] accumulated so far (parse warnings
//!   survive to the EFSM stage);
//! * has an `advance()` method to the next stage with default
//!   parameters, and a `finish()` method running everything left;
//! * can be re-entered: one [`Parsed`] can be elaborated for several
//!   entry modules, one [`Elaborated`] split under both
//!   [`SplitStrategy`]s, without re-parsing.
//!
//! The legacy [`crate::Compiler`] facade is a thin shim over this
//! module.
//!
//! # Example
//!
//! ```
//! use ecl_core::pipeline::Source;
//! use ecl_core::SplitStrategy;
//!
//! let src = "module m(input pure a, output pure o) {
//!              int x;
//!              while (1) { await (a); x = x + 1; emit (o); } }";
//! let parsed = Source::new(src).parse().unwrap();
//! // Re-split the same parse under both strategies.
//! let max = parsed.elaborate("m").unwrap()
//!     .split_with(SplitStrategy::MaxEsterel).unwrap();
//! let min = parsed.elaborate("m").unwrap()
//!     .split_with(SplitStrategy::MinEsterel).unwrap();
//! assert!(min.report().actions <= max.report().actions);
//! // And carry one of them to an EFSM.
//! let machine = max.ir().compile(&Default::default()).unwrap();
//! assert!(machine.efsm().states.len() >= 2);
//! ```

use crate::compiler::{Design, Options};
use crate::elab::{self, Elab};
use crate::rt::Rt;
use crate::split::{self, SplitResult, SplitStrategy};
use ecl_syntax::ast::Program as Ast;
use ecl_syntax::diag::{Diagnostics, EclError, Stage};
use ecl_syntax::source::Span;
use esterel::compile::CompileOptions;
use std::sync::Arc;

/// Stage 0: raw ECL source text plus compiler options.
#[derive(Debug, Clone)]
pub struct Source {
    name: String,
    text: Arc<str>,
    options: Options,
}

impl Source {
    /// Wrap source text (diagnostics will cite `<input>`).
    pub fn new(text: impl Into<String>) -> Self {
        Source::named("<input>", text)
    }

    /// Wrap source text with a file name for diagnostics.
    pub fn named(name: impl Into<String>, text: impl Into<String>) -> Self {
        Source {
            name: name.into(),
            text: Arc::from(text.into()),
            options: Options::default(),
        }
    }

    /// Replace the compiler options (default strategy for later stages).
    pub fn with_options(mut self, options: Options) -> Self {
        self.options = options;
        self
    }

    /// The diagnostic file name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The raw text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The options later stages inherit.
    pub fn options(&self) -> Options {
        self.options
    }

    /// Advance: preprocess, lex and parse.
    ///
    /// # Errors
    ///
    /// [`EclError`] with stage `parse` carrying every diagnostic the
    /// front end produced.
    pub fn parse(&self) -> Result<Parsed, EclError> {
        let (ast, sink) = ecl_syntax::parse_collect(&self.text, &self.name);
        let mut diags = Diagnostics::new();
        let failed = sink.has_errors();
        diags.absorb_sink(Stage::Parse, sink);
        if failed {
            return Err(EclError::new(Stage::Parse, diags));
        }
        Ok(Parsed {
            source: self.clone(),
            ast: Arc::new(ast),
            diags,
        })
    }

    /// Same as [`Source::parse`] (uniform stage-walking name).
    ///
    /// # Errors
    ///
    /// See [`Source::parse`].
    pub fn advance(&self) -> Result<Parsed, EclError> {
        self.parse()
    }

    /// Run the whole pipeline for `entry` with default parameters.
    ///
    /// # Errors
    ///
    /// First failing stage, as [`EclError`].
    pub fn finish(&self, entry: &str) -> Result<Machine, EclError> {
        self.parse()?.finish(entry)
    }
}

/// Stage 1: a parsed translation unit (typedefs, functions, modules).
///
/// One `Parsed` can seed many downstream compilations: elaborate it
/// for different entry modules, or under different actual-signal
/// bindings, without re-parsing.
#[derive(Debug, Clone)]
pub struct Parsed {
    source: Source,
    ast: Arc<Ast>,
    diags: Diagnostics,
}

impl Parsed {
    /// Wrap an already-built AST (no source text available; used by
    /// the legacy [`crate::Compiler::compile_ast`] shim).
    pub fn from_ast(ast: Ast, options: Options) -> Self {
        Parsed {
            source: Source::named("<ast>", "").with_options(options),
            ast: Arc::new(ast),
            diags: Diagnostics::new(),
        }
    }

    /// The source this was parsed from.
    pub fn source(&self) -> &Source {
        &self.source
    }

    /// The syntax tree.
    pub fn ast(&self) -> &Ast {
        &self.ast
    }

    /// Diagnostics accumulated so far (parse warnings/notes).
    pub fn diagnostics(&self) -> &Diagnostics {
        &self.diags
    }

    /// Names of the modules declared in this unit (candidate entries).
    pub fn module_names(&self) -> Vec<String> {
        self.ast.modules().map(|m| m.name.name.clone()).collect()
    }

    /// The direct instantiations of `module` (used to partition a top
    /// level into asynchronous tasks).
    pub fn instantiations(&self, module: &str) -> Vec<elab::Instantiation> {
        elab::instantiations(&self.ast, module)
    }

    /// Advance: inline and rename with `entry` as the design top.
    ///
    /// # Errors
    ///
    /// [`EclError`] with stage `elaborate` (unknown module, recursion,
    /// arity mismatch, multiple writers, emitted inputs…).
    pub fn elaborate(&self, entry: &str) -> Result<Elaborated, EclError> {
        self.elaborate_bound(entry, None)
    }

    /// [`Parsed::elaborate`] with the entry's parameters renamed to
    /// `actuals` (global wire names) — used when compiling one
    /// submodule of a partitioned top level.
    ///
    /// # Errors
    ///
    /// See [`Parsed::elaborate`].
    pub fn elaborate_bound(
        &self,
        entry: &str,
        actuals: Option<&[String]>,
    ) -> Result<Elaborated, EclError> {
        let elab = elab::elaborate(&self.ast, entry, actuals)
            .map_err(|e| EclError::from(e).with_context(self.diags.clone()))?;
        check_single_writer(&elab).map_err(|e| e.with_context(self.diags.clone()))?;
        Ok(Elaborated {
            parsed: self.clone(),
            entry: entry.to_string(),
            elab: Arc::new(elab),
            diags: self.diags.clone(),
        })
    }

    /// Same as [`Parsed::elaborate`] (uniform stage-walking name).
    ///
    /// # Errors
    ///
    /// See [`Parsed::elaborate`].
    pub fn advance(&self, entry: &str) -> Result<Elaborated, EclError> {
        self.elaborate(entry)
    }

    /// Run the remaining stages for `entry` with default parameters.
    ///
    /// # Errors
    ///
    /// First failing stage.
    pub fn finish(&self, entry: &str) -> Result<Machine, EclError> {
        self.elaborate(entry)?.finish()
    }
}

/// The single-writer checks of paper Section 4 item 8: every signal
/// has at most one emitting instance, and design inputs are never
/// emitted internally.
fn check_single_writer(elab: &Elab) -> Result<(), EclError> {
    let mut writers: std::collections::HashMap<&str, Vec<&str>> = std::collections::HashMap::new();
    for (sig, path) in &elab.emitters {
        let w = writers.entry(sig.as_str()).or_default();
        if !w.contains(&path.as_str()) {
            w.push(path.as_str());
        }
    }
    for (sig, w) in &writers {
        if w.len() > 1 {
            return Err(EclError::msg(
                Stage::Elaborate,
                format!(
                    "signal `{sig}` has multiple writers: {w:?} \
                     (ECL requires a single writer per signal)"
                ),
                Span::dummy(),
            ));
        }
        if let Some(idx) = elab.signal(sig) {
            if elab.signals[idx].kind == efsm::SigKind::Input {
                return Err(EclError::msg(
                    Stage::Elaborate,
                    format!("design input `{sig}` is emitted internally"),
                    Span::dummy(),
                ));
            }
        }
    }
    Ok(())
}

/// Stage 2: the elaborated design — one flat statement tree plus
/// signal/variable/instance tables.
#[derive(Debug, Clone)]
pub struct Elaborated {
    parsed: Parsed,
    entry: String,
    elab: Arc<Elab>,
    diags: Diagnostics,
}

impl Elaborated {
    /// The stage this was produced from (re-entry point).
    pub fn parsed(&self) -> &Parsed {
        &self.parsed
    }

    /// The entry module.
    pub fn entry(&self) -> &str {
        &self.entry
    }

    /// The elaboration tables.
    pub fn elab(&self) -> &Elab {
        &self.elab
    }

    /// Diagnostics accumulated so far.
    pub fn diagnostics(&self) -> &Diagnostics {
        &self.diags
    }

    /// Advance: split reactive from data under the options' default
    /// strategy.
    ///
    /// # Errors
    ///
    /// [`EclError`] with stage `split` (unsupported constructs,
    /// instantaneous reactive loops…).
    pub fn split(&self) -> Result<Split, EclError> {
        self.split_with(self.parsed.source().options().strategy)
    }

    /// Advance with an explicit strategy — call twice to compare the
    /// paper's Section 3 and Section 6 schemes on one elaboration.
    ///
    /// # Errors
    ///
    /// See [`Elaborated::split`].
    pub fn split_with(&self, strategy: SplitStrategy) -> Result<Split, EclError> {
        let result = split::split(&self.elab, strategy)
            .map_err(|e| EclError::from(e).with_context(self.diags.clone()))?;
        Ok(Split {
            elaborated: self.clone(),
            strategy,
            result: Arc::new(result),
            diags: self.diags.clone(),
        })
    }

    /// Same as [`Elaborated::split`] (uniform stage-walking name).
    ///
    /// # Errors
    ///
    /// See [`Elaborated::split`].
    pub fn advance(&self) -> Result<Split, EclError> {
        self.split()
    }

    /// Run the remaining stages with default parameters.
    ///
    /// # Errors
    ///
    /// First failing stage.
    pub fn finish(&self) -> Result<Machine, EclError> {
        self.split()?.ir().compile(&CompileOptions::default())
    }
}

/// Stage 3: the reactive/data split — a kernel-Esterel program, the
/// extracted data tables, and splitter statistics.
#[derive(Debug, Clone)]
pub struct Split {
    elaborated: Elaborated,
    strategy: SplitStrategy,
    result: Arc<SplitResult>,
    diags: Diagnostics,
}

impl Split {
    /// The stage this was produced from (re-entry point).
    pub fn elaborated(&self) -> &Elaborated {
        &self.elaborated
    }

    /// The strategy that produced this split.
    pub fn strategy(&self) -> SplitStrategy {
        self.strategy
    }

    /// The full split result (program + data + report).
    pub fn result(&self) -> &SplitResult {
        &self.result
    }

    /// Splitter statistics.
    pub fn report(&self) -> split::SplitReport {
        self.result.report
    }

    /// Diagnostics accumulated so far.
    pub fn diagnostics(&self) -> &Diagnostics {
        &self.diags
    }

    /// Advance: view the reactive part as an Esterel-IR stage.
    pub fn ir(&self) -> EsterelIr {
        EsterelIr {
            split: self.clone(),
        }
    }

    /// Same as [`Split::ir`] (uniform stage-walking name).
    pub fn advance(&self) -> EsterelIr {
        self.ir()
    }

    /// Bundle this split as a legacy [`Design`] (cheap: shares the
    /// underlying `Arc`s). The `Design` is what the simulator and the
    /// back ends consume.
    pub fn to_design(&self) -> Design {
        Design {
            entry: self.elaborated.entry.clone(),
            ast: Arc::clone(&self.elaborated.parsed.ast),
            elab: Arc::clone(&self.elaborated.elab),
            split: Arc::clone(&self.result),
        }
    }

    /// Run the remaining stages with default parameters.
    ///
    /// # Errors
    ///
    /// First failing stage.
    pub fn finish(&self) -> Result<Machine, EclError> {
        self.ir().compile(&CompileOptions::default())
    }
}

/// Stage 4: the reactive program as kernel Esterel, ready for EFSM
/// synthesis or direct constructive interpretation.
#[derive(Debug, Clone)]
pub struct EsterelIr {
    split: Split,
}

impl EsterelIr {
    /// The stage this was produced from (re-entry point).
    pub fn split(&self) -> &Split {
        &self.split
    }

    /// The kernel-Esterel program.
    pub fn program(&self) -> &esterel::Program {
        &self.split.result.program
    }

    /// The extracted data part.
    pub fn data(&self) -> &split::DataTable {
        &self.split.result.data
    }

    /// Diagnostics accumulated so far.
    pub fn diagnostics(&self) -> &Diagnostics {
        &self.split.diags
    }

    /// A constructive interpreter over this program (reference
    /// semantics; no EFSM compilation).
    pub fn interpreter(&self) -> esterel::Machine<'_> {
        esterel::Machine::new(self.program())
    }

    /// Advance: compile to an EFSM.
    ///
    /// # Errors
    ///
    /// [`EclError`] with stage `efsm` (state explosion, incoherent
    /// programs…).
    pub fn compile(&self, opts: &CompileOptions) -> Result<Machine, EclError> {
        let efsm = esterel::compile::compile(self.program(), opts)
            .map_err(|e| EclError::from(e).with_context(self.split.diags.clone()))?;
        Ok(Machine {
            ir: self.clone(),
            opts: *opts,
            efsm: Arc::new(efsm),
            diags: self.split.diags.clone(),
        })
    }

    /// Same as [`EsterelIr::compile`] with defaults (uniform
    /// stage-walking name).
    ///
    /// # Errors
    ///
    /// See [`EsterelIr::compile`].
    pub fn advance(&self) -> Result<Machine, EclError> {
        self.compile(&CompileOptions::default())
    }

    /// Run the remaining stages with default parameters.
    ///
    /// # Errors
    ///
    /// See [`EsterelIr::compile`].
    pub fn finish(&self) -> Result<Machine, EclError> {
        self.advance()
    }
}

/// Stage 5: a compiled EFSM plus everything needed to run or lower it.
///
/// Terminal stage of `ecl-core`; the `codegen` crate's `Artifacts`
/// stage lowers a `Machine` to C and Verilog text.
#[derive(Debug, Clone)]
pub struct Machine {
    ir: EsterelIr,
    opts: CompileOptions,
    efsm: Arc<efsm::Efsm>,
    diags: Diagnostics,
}

impl Machine {
    /// The stage this was produced from (re-entry point).
    pub fn ir(&self) -> &EsterelIr {
        &self.ir
    }

    /// The EFSM-compilation options used.
    pub fn options(&self) -> CompileOptions {
        self.opts
    }

    /// The compiled machine.
    pub fn efsm(&self) -> &efsm::Efsm {
        &self.efsm
    }

    /// Shared handle to the compiled machine.
    pub fn efsm_arc(&self) -> Arc<efsm::Efsm> {
        Arc::clone(&self.efsm)
    }

    /// Diagnostics accumulated across all stages.
    pub fn diagnostics(&self) -> &Diagnostics {
        &self.diags
    }

    /// Bundle the underlying split as a legacy [`Design`] (cheap).
    pub fn design(&self) -> Design {
        self.ir.split.to_design()
    }

    /// Build a fresh data runtime for this design.
    ///
    /// # Errors
    ///
    /// [`EclError`] with stage `runtime` (unresolvable types).
    pub fn new_rt(&self) -> Result<Rt, EclError> {
        let s = &self.ir.split;
        Rt::new(&s.elaborated.parsed.ast, &s.elaborated.elab, &s.result.data)
            .map_err(EclError::from)
    }

    /// Structural validation of the compiled machine.
    ///
    /// # Errors
    ///
    /// [`EclError`] with stage `efsm`.
    pub fn validate(&self) -> Result<(), EclError> {
        self.efsm.validate_ecl()
    }

    /// Terminal stage: returns itself (uniform stage-walking name).
    pub fn finish(self) -> Machine {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RELAY: &str = "
        module a(input pure i, output pure m) { while (1) { await (i); emit (m); } }
        module b(input pure m, output pure o) { while (1) { await (m); emit (o); } }
        module top(input pure i, output pure o) {
          signal pure mid;
          par { a(i, mid); b(mid, o); }
        }";

    #[test]
    fn parse_once_elaborate_many() {
        let parsed = Source::new(RELAY).parse().unwrap();
        assert_eq!(parsed.module_names(), ["a", "b", "top"]);
        for entry in ["a", "b", "top"] {
            let e = parsed.elaborate(entry).unwrap();
            assert_eq!(e.entry(), entry);
        }
    }

    #[test]
    fn split_under_both_strategies_without_reparse() {
        let src = "
            module m(input pure a, output pure o) {
              int x; int y;
              while (1) { await (a); x = 1; y = x + 2; x = y * 3; emit (o); }
            }";
        let elaborated = Source::new(src).parse().unwrap().elaborate("m").unwrap();
        let max = elaborated.split_with(SplitStrategy::MaxEsterel).unwrap();
        let min = elaborated.split_with(SplitStrategy::MinEsterel).unwrap();
        assert!(min.result().data.actions.len() < max.result().data.actions.len());
        assert_eq!(max.strategy(), SplitStrategy::MaxEsterel);
        assert_eq!(min.strategy(), SplitStrategy::MinEsterel);
    }

    #[test]
    fn finish_runs_all_stages() {
        let machine = Source::new(RELAY).finish("top").unwrap();
        machine.validate().unwrap();
        assert!(machine.efsm().states.len() >= 2);
        let d = machine.design();
        assert_eq!(d.entry, "top");
    }

    #[test]
    fn parse_error_is_stage_tagged() {
        let e = Source::new("module broken(").parse().unwrap_err();
        assert_eq!(e.stage(), Stage::Parse);
        assert!(e.diagnostics().has_errors());
    }

    #[test]
    fn elaborate_error_is_stage_tagged() {
        let parsed = Source::new(RELAY).parse().unwrap();
        let e = parsed.elaborate("missing").unwrap_err();
        assert_eq!(e.stage(), Stage::Elaborate);
    }

    #[test]
    fn multiple_writers_detected_at_elaboration() {
        let src = "
            module w(input pure t, output pure s) { while (1) { await(t); emit (s); } }
            module top(input pure t, output pure s) { par { w(t, s); w(t, s); } }";
        let e = Source::new(src)
            .parse()
            .unwrap()
            .elaborate("top")
            .unwrap_err();
        assert_eq!(e.stage(), Stage::Elaborate);
        assert!(
            e.first_message().unwrap().contains("multiple writers"),
            "{e}"
        );
    }

    #[test]
    fn split_error_is_stage_tagged() {
        let src = "module m(input pure a, output pure o) { while (1) { emit (o); } }";
        let e = Source::new(src)
            .parse()
            .unwrap()
            .elaborate("m")
            .unwrap_err_or_split();
        assert_eq!(e.stage(), Stage::Split);
    }

    // Small helper so the test above reads naturally: elaboration
    // succeeds, splitting fails.
    trait UnwrapErrOrSplit {
        fn unwrap_err_or_split(self) -> EclError;
    }
    impl UnwrapErrOrSplit for Result<Elaborated, EclError> {
        fn unwrap_err_or_split(self) -> EclError {
            self.unwrap().split().unwrap_err()
        }
    }

    #[test]
    fn interpreter_runs_from_ir_stage() {
        use std::collections::HashSet;
        let split = Source::new(RELAY)
            .parse()
            .unwrap()
            .elaborate("top")
            .unwrap()
            .split()
            .unwrap();
        let ir = split.ir();
        let mut rt = ir.compile(&Default::default()).unwrap().new_rt().unwrap();
        let mut m = ir.interpreter();
        let i = ir.program().signal("i").unwrap();
        m.react(&HashSet::new(), &mut rt).unwrap();
        let mut on = HashSet::new();
        on.insert(i);
        let r = m.react(&on, &mut rt).unwrap();
        // `a` relays i -> mid in the same instant.
        assert!(!r.emitted.is_empty());
    }
}
