//! Elaboration: module inlining and renaming to a flat namespace.
//!
//! The ECL paper treats module instantiation as "syntactically
//! equivalent to C procedure call" (Section 4, item 9). Elaboration
//! replaces each instantiation with a copy of the callee's body in
//! which:
//!
//! * formal signal parameters are substituted by the actual (global)
//!   signal names;
//! * local signal declarations get fresh global names
//!   (`<instance-path>::<name>`);
//! * variables get fresh global names the same way, so the whole design
//!   shares one flat variable frame at run time.
//!
//! The entry module's own parameters become the design's inputs and
//! outputs. Recursion is rejected.

use ecl_syntax::ast::{
    Block, Declarator, Expr, ExprKind, Ident, Module, Program, SigExpr, SigExprKind, SignalDir,
    Stmt, StmtKind, TypeRef, VarDecl,
};
use ecl_syntax::source::Span;
use efsm::SigKind;
use std::collections::HashMap;
use std::fmt;

/// Elaboration failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElabError {
    /// Explanation.
    pub msg: String,
    /// Source location.
    pub span: Span,
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "elaboration error: {}", self.msg)
    }
}

impl std::error::Error for ElabError {}

fn err<T>(msg: impl Into<String>, span: Span) -> Result<T, ElabError> {
    Err(ElabError {
        msg: msg.into(),
        span,
    })
}

/// A signal of the elaborated design.
#[derive(Debug, Clone, PartialEq)]
pub struct SigEntry {
    /// Global name.
    pub name: String,
    /// Role relative to the design.
    pub kind: SigKind,
    /// Pure signals carry no value.
    pub pure: bool,
    /// Declared value type (syntactic; resolved later).
    pub ty: Option<TypeRef>,
}

/// A variable of the elaborated design (flattened frame slot).
#[derive(Debug, Clone, PartialEq)]
pub struct VarEntry {
    /// Mangled global name (`path::name`).
    pub name: String,
    /// Declared type (syntactic; resolved later).
    pub ty: TypeRef,
}

/// One inlined module instance (for reporting and cost attribution).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceInfo {
    /// Hierarchical path, e.g. `top/assemble`.
    pub path: String,
    /// Instantiated module name.
    pub module: String,
}

/// The elaborated design: one flat statement tree plus tables.
#[derive(Debug, Clone)]
pub struct Elab {
    /// Entry module name.
    pub entry: String,
    /// Flattened body (all instantiations inlined, names mangled).
    pub body: Block,
    /// Design signals (entry parameters first, then locals).
    pub signals: Vec<SigEntry>,
    /// All variables, with mangled names.
    pub vars: Vec<VarEntry>,
    /// Inlined instances.
    pub instances: Vec<InstanceInfo>,
    /// (global signal name, emitting instance path) pairs, for the
    /// single-writer check.
    pub emitters: Vec<(String, String)>,
}

impl Elab {
    /// Find a signal index by global name.
    pub fn signal(&self, name: &str) -> Option<usize> {
        self.signals.iter().position(|s| s.name == name)
    }
}

/// One instantiation found in a module body (used to partition a
/// top-level module into asynchronous tasks, paper Section 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instantiation {
    /// Callee module.
    pub module: String,
    /// Actual signal names, in parameter order.
    pub actuals: Vec<String>,
}

/// Extract the direct instantiations of `module` (e.g. the three
/// submodules of the paper's `toplevel`), with their actual signals.
pub fn instantiations(prog: &Program, module: &str) -> Vec<Instantiation> {
    let mut out = Vec::new();
    let Some(m) = prog.module(module) else {
        return out;
    };
    collect_insts(prog, &m.body.stmts, &mut out);
    out
}

fn collect_insts(prog: &Program, stmts: &[Stmt], out: &mut Vec<Instantiation>) {
    for s in stmts {
        match &s.kind {
            StmtKind::Expr(Some(Expr {
                kind: ExprKind::Call(name, args),
                ..
            })) if prog.module(&name.name).is_some() => {
                let actuals = args
                    .iter()
                    .filter_map(|a| match &a.kind {
                        ExprKind::Ident(id) => Some(id.name.clone()),
                        _ => None,
                    })
                    .collect();
                out.push(Instantiation {
                    module: name.name.clone(),
                    actuals,
                });
            }
            StmtKind::Par(branches) => collect_insts(prog, branches, out),
            StmtKind::Block(b) => collect_insts(prog, &b.stmts, out),
            _ => {}
        }
    }
}

/// Elaborate `entry` within `prog`. `actual_names`, when given, renames
/// the entry's parameters to those global names (used when compiling a
/// submodule as a separate asynchronous task wired by the top level).
pub fn elaborate(
    prog: &Program,
    entry: &str,
    actual_names: Option<&[String]>,
) -> Result<Elab, ElabError> {
    let Some(module) = prog.module(entry) else {
        return err(format!("no module named `{entry}`"), Span::dummy());
    };
    let mut ctx = Ctx {
        prog,
        signals: Vec::new(),
        vars: Vec::new(),
        instances: vec![InstanceInfo {
            path: "top".into(),
            module: entry.into(),
        }],
        stack: vec![entry.to_string()],
        emitters: Vec::new(),
    };
    // Entry parameters become design I/O.
    let mut scope = Scope::new();
    for (i, p) in module.params.iter().enumerate() {
        let global = match actual_names {
            Some(names) => names.get(i).cloned().ok_or_else(|| ElabError {
                msg: format!("missing actual for parameter `{}`", p.name.name),
                span: p.span,
            })?,
            None => p.name.name.clone(),
        };
        let kind = match p.dir {
            SignalDir::Input => SigKind::Input,
            SignalDir::Output => SigKind::Output,
        };
        // When two parameters are wired to one global name, reuse it.
        if !ctx.signals.iter().any(|s: &SigEntry| s.name == global) {
            ctx.signals.push(SigEntry {
                name: global.clone(),
                kind,
                pure: p.pure,
                ty: p.ty.clone(),
            });
        }
        scope.bind_signal(&p.name.name, &global);
    }
    let body = ctx.block(&module.body, &mut scope, "top")?;
    Ok(Elab {
        entry: entry.to_string(),
        body,
        signals: ctx.signals,
        vars: ctx.vars,
        instances: ctx.instances,
        emitters: ctx.emitters,
    })
}

/// Lexical scope: original name → (mangled name, is-signal).
#[derive(Debug, Clone, Default)]
struct Scope {
    frames: Vec<HashMap<String, (String, bool)>>,
}

impl Scope {
    fn new() -> Self {
        Scope {
            frames: vec![HashMap::new()],
        }
    }

    fn push(&mut self) {
        self.frames.push(HashMap::new());
    }

    fn pop(&mut self) {
        self.frames.pop();
    }

    fn bind_var(&mut self, original: &str, mangled: &str) {
        self.frames
            .last_mut()
            .expect("scope stack nonempty")
            .insert(original.into(), (mangled.into(), false));
    }

    fn bind_signal(&mut self, original: &str, global: &str) {
        self.frames
            .last_mut()
            .expect("scope stack nonempty")
            .insert(original.into(), (global.into(), true));
    }

    fn lookup(&self, name: &str) -> Option<&(String, bool)> {
        self.frames.iter().rev().find_map(|f| f.get(name))
    }
}

struct Ctx<'p> {
    prog: &'p Program,
    signals: Vec<SigEntry>,
    vars: Vec<VarEntry>,
    instances: Vec<InstanceInfo>,
    /// Instantiation stack for recursion detection.
    stack: Vec<String>,
    emitters: Vec<(String, String)>,
}

impl<'p> Ctx<'p> {
    fn fresh_signal(&mut self, path: &str, name: &str, pure: bool, ty: Option<TypeRef>) -> String {
        let mut global = format!("{path}::{name}");
        let mut k = 1;
        while self.signals.iter().any(|s| s.name == global) {
            global = format!("{path}::{name}#{k}");
            k += 1;
        }
        self.signals.push(SigEntry {
            name: global.clone(),
            kind: SigKind::Local,
            pure,
            ty,
        });
        global
    }

    fn fresh_var(&mut self, path: &str, name: &str, ty: TypeRef) -> String {
        let mut mangled = format!("{path}::{name}");
        let mut k = 1;
        while self.vars.iter().any(|v| v.name == mangled) {
            mangled = format!("{path}::{name}#{k}");
            k += 1;
        }
        self.vars.push(VarEntry {
            name: mangled.clone(),
            ty,
        });
        mangled
    }

    fn block(&mut self, b: &Block, scope: &mut Scope, path: &str) -> Result<Block, ElabError> {
        scope.push();
        let mut stmts = Vec::new();
        for s in &b.stmts {
            stmts.push(self.stmt(s, scope, path)?);
        }
        scope.pop();
        Ok(Block {
            stmts,
            span: b.span,
        })
    }

    fn stmt(&mut self, s: &Stmt, scope: &mut Scope, path: &str) -> Result<Stmt, ElabError> {
        let kind = match &s.kind {
            StmtKind::Expr(None) => StmtKind::Expr(None),
            StmtKind::Expr(Some(e)) => {
                // Module instantiation?
                if let ExprKind::Call(name, args) = &e.kind {
                    if let Some(callee) = self.prog.module(&name.name) {
                        return self.instantiate(callee.clone(), args, scope, path, s.span);
                    }
                }
                StmtKind::Expr(Some(self.expr(e, scope)?))
            }
            StmtKind::Decl(d) => {
                let mut decls = Vec::new();
                for dec in &d.decls {
                    let ty = self.type_ref(&dec.ty, scope)?;
                    let init = match &dec.init {
                        Some(e) => Some(self.expr(e, scope)?),
                        None => None,
                    };
                    let mangled = self.fresh_var(path, &dec.name.name, ty.clone());
                    scope.bind_var(&dec.name.name, &mangled);
                    decls.push(Declarator {
                        name: Ident::new(mangled, dec.name.span),
                        ty,
                        init,
                    });
                }
                StmtKind::Decl(VarDecl {
                    decls,
                    span: d.span,
                })
            }
            StmtKind::Signal(sd) => {
                let global = self.fresh_signal(path, &sd.name.name, sd.pure, sd.ty.clone());
                scope.bind_signal(&sd.name.name, &global);
                let mut sd2 = sd.clone();
                sd2.name = Ident::new(global, sd.name.span);
                StmtKind::Signal(sd2)
            }
            StmtKind::Block(b) => StmtKind::Block(self.block(b, scope, path)?),
            StmtKind::If { cond, then, els } => StmtKind::If {
                cond: self.expr(cond, scope)?,
                then: Box::new(self.stmt(then, scope, path)?),
                els: match els {
                    Some(e) => Some(Box::new(self.stmt(e, scope, path)?)),
                    None => None,
                },
            },
            StmtKind::While { cond, body } => StmtKind::While {
                cond: self.expr(cond, scope)?,
                body: Box::new(self.stmt(body, scope, path)?),
            },
            StmtKind::DoWhile { body, cond } => StmtKind::DoWhile {
                body: Box::new(self.stmt(body, scope, path)?),
                cond: self.expr(cond, scope)?,
            },
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                scope.push();
                let out = StmtKind::For {
                    init: match init {
                        Some(i) => Some(Box::new(self.stmt(i, scope, path)?)),
                        None => None,
                    },
                    cond: match cond {
                        Some(c) => Some(self.expr(c, scope)?),
                        None => None,
                    },
                    step: match step {
                        Some(st) => Some(self.expr(st, scope)?),
                        None => None,
                    },
                    body: Box::new(self.stmt(body, scope, path)?),
                };
                scope.pop();
                out
            }
            StmtKind::Switch { scrutinee, arms } => {
                let mut new_arms = Vec::new();
                for arm in arms {
                    let value = match &arm.value {
                        Some(v) => Some(self.expr(v, scope)?),
                        None => None,
                    };
                    let mut stmts = Vec::new();
                    for st in &arm.stmts {
                        stmts.push(self.stmt(st, scope, path)?);
                    }
                    new_arms.push(ecl_syntax::ast::SwitchArm {
                        value,
                        stmts,
                        span: arm.span,
                    });
                }
                StmtKind::Switch {
                    scrutinee: self.expr(scrutinee, scope)?,
                    arms: new_arms,
                }
            }
            StmtKind::Break => StmtKind::Break,
            StmtKind::Continue => StmtKind::Continue,
            StmtKind::Return(e) => StmtKind::Return(match e {
                Some(e) => Some(self.expr(e, scope)?),
                None => None,
            }),
            StmtKind::Await(None) => StmtKind::Await(None),
            StmtKind::Await(Some(c)) => StmtKind::Await(Some(self.sigexpr(c, scope)?)),
            StmtKind::AwaitImmediate(c) => StmtKind::AwaitImmediate(self.sigexpr(c, scope)?),
            StmtKind::Emit(n) => {
                let g = self.signal_ident(n, scope)?;
                self.emitters.push((g.name.clone(), path.to_string()));
                StmtKind::Emit(g)
            }
            StmtKind::EmitV(n, v) => {
                let g = self.signal_ident(n, scope)?;
                self.emitters.push((g.name.clone(), path.to_string()));
                StmtKind::EmitV(g, self.expr(v, scope)?)
            }
            StmtKind::Halt => StmtKind::Halt,
            StmtKind::Present { cond, then, els } => StmtKind::Present {
                cond: self.sigexpr(cond, scope)?,
                then: Box::new(self.stmt(then, scope, path)?),
                els: match els {
                    Some(e) => Some(Box::new(self.stmt(e, scope, path)?)),
                    None => None,
                },
            },
            StmtKind::Abort {
                body,
                kind,
                cond,
                handle,
            } => StmtKind::Abort {
                body: Box::new(self.stmt(body, scope, path)?),
                kind: *kind,
                cond: self.sigexpr(cond, scope)?,
                handle: match handle {
                    Some(h) => Some(Box::new(self.stmt(h, scope, path)?)),
                    None => None,
                },
            },
            StmtKind::Suspend { body, cond } => StmtKind::Suspend {
                body: Box::new(self.stmt(body, scope, path)?),
                cond: self.sigexpr(cond, scope)?,
            },
            StmtKind::Par(branches) => {
                let mut out = Vec::new();
                for b in branches {
                    out.push(self.stmt(b, scope, path)?);
                }
                StmtKind::Par(out)
            }
        };
        Ok(Stmt { kind, span: s.span })
    }

    fn instantiate(
        &mut self,
        callee: Module,
        args: &[Expr],
        scope: &mut Scope,
        path: &str,
        span: Span,
    ) -> Result<Stmt, ElabError> {
        if self.stack.contains(&callee.name.name) {
            return err(
                format!("recursive instantiation of module `{}`", callee.name.name),
                span,
            );
        }
        if args.len() != callee.params.len() {
            return err(
                format!(
                    "module `{}` takes {} signals, got {}",
                    callee.name.name,
                    callee.params.len(),
                    args.len()
                ),
                span,
            );
        }
        // Actuals must be signal names in the current scope.
        let mut sub_scope = Scope::new();
        for (p, a) in callee.params.iter().zip(args) {
            let ExprKind::Ident(id) = &a.kind else {
                return err(
                    "module instantiation arguments must be signal names",
                    a.span,
                );
            };
            let Some((global, is_sig)) = scope.lookup(&id.name).cloned() else {
                return err(format!("unknown signal `{}`", id.name), id.span);
            };
            if !is_sig {
                return err(
                    format!("`{}` is a variable, but a signal is required", id.name),
                    id.span,
                );
            }
            sub_scope.bind_signal(&p.name.name, &global);
        }
        // Unique instance path.
        let base = format!("{path}/{}", callee.name.name);
        let mut inst_path = base.clone();
        let mut k = 1;
        while self.instances.iter().any(|i| i.path == inst_path) {
            inst_path = format!("{base}#{k}");
            k += 1;
        }
        self.instances.push(InstanceInfo {
            path: inst_path.clone(),
            module: callee.name.name.clone(),
        });
        self.stack.push(callee.name.name.clone());
        let body = self.block(&callee.body, &mut sub_scope, &inst_path)?;
        self.stack.pop();
        Ok(Stmt {
            kind: StmtKind::Block(body),
            span,
        })
    }

    fn signal_ident(&mut self, n: &Ident, scope: &Scope) -> Result<Ident, ElabError> {
        match scope.lookup(&n.name) {
            Some((global, true)) => Ok(Ident::new(global.clone(), n.span)),
            Some((_, false)) => err(format!("`{}` is a variable, not a signal", n.name), n.span),
            None => err(format!("unknown signal `{}`", n.name), n.span),
        }
    }

    fn sigexpr(&mut self, e: &SigExpr, scope: &Scope) -> Result<SigExpr, ElabError> {
        let kind = match &e.kind {
            SigExprKind::Sig(id) => SigExprKind::Sig(self.signal_ident(id, scope)?),
            SigExprKind::Not(inner) => SigExprKind::Not(Box::new(self.sigexpr(inner, scope)?)),
            SigExprKind::And(a, b) => SigExprKind::And(
                Box::new(self.sigexpr(a, scope)?),
                Box::new(self.sigexpr(b, scope)?),
            ),
            SigExprKind::Or(a, b) => SigExprKind::Or(
                Box::new(self.sigexpr(a, scope)?),
                Box::new(self.sigexpr(b, scope)?),
            ),
        };
        Ok(SigExpr { kind, span: e.span })
    }

    fn type_ref(&mut self, t: &TypeRef, _scope: &Scope) -> Result<TypeRef, ElabError> {
        // Types reference typedefs/enums, which are global: unchanged.
        Ok(t.clone())
    }

    fn expr(&mut self, e: &Expr, scope: &Scope) -> Result<Expr, ElabError> {
        let kind = match &e.kind {
            ExprKind::Ident(id) => match scope.lookup(&id.name) {
                Some((mangled, _)) => ExprKind::Ident(Ident::new(mangled.clone(), id.span)),
                // Enum constants, function names: left intact.
                None => ExprKind::Ident(id.clone()),
            },
            ExprKind::IntLit(_)
            | ExprKind::FloatLit(_)
            | ExprKind::CharLit(_)
            | ExprKind::StrLit(_) => e.kind.clone(),
            ExprKind::Unary(op, x) => ExprKind::Unary(*op, Box::new(self.expr(x, scope)?)),
            ExprKind::Binary(op, a, b) => ExprKind::Binary(
                *op,
                Box::new(self.expr(a, scope)?),
                Box::new(self.expr(b, scope)?),
            ),
            ExprKind::Assign(op, a, b) => ExprKind::Assign(
                *op,
                Box::new(self.expr(a, scope)?),
                Box::new(self.expr(b, scope)?),
            ),
            ExprKind::PreIncDec(inc, x) => {
                ExprKind::PreIncDec(*inc, Box::new(self.expr(x, scope)?))
            }
            ExprKind::PostIncDec(inc, x) => {
                ExprKind::PostIncDec(*inc, Box::new(self.expr(x, scope)?))
            }
            ExprKind::Ternary(c, t, f) => ExprKind::Ternary(
                Box::new(self.expr(c, scope)?),
                Box::new(self.expr(t, scope)?),
                Box::new(self.expr(f, scope)?),
            ),
            ExprKind::Call(name, args) => {
                if self.prog.module(&name.name).is_some() {
                    return err(
                        "module instantiation cannot be used as an expression",
                        e.span,
                    );
                }
                let mut out = Vec::new();
                for a in args {
                    out.push(self.expr(a, scope)?);
                }
                ExprKind::Call(name.clone(), out)
            }
            ExprKind::Index(a, i) => ExprKind::Index(
                Box::new(self.expr(a, scope)?),
                Box::new(self.expr(i, scope)?),
            ),
            ExprKind::Member(a, f) => ExprKind::Member(Box::new(self.expr(a, scope)?), f.clone()),
            ExprKind::Arrow(a, f) => ExprKind::Arrow(Box::new(self.expr(a, scope)?), f.clone()),
            ExprKind::Cast(t, x) => {
                ExprKind::Cast(self.type_ref(t, scope)?, Box::new(self.expr(x, scope)?))
            }
            ExprKind::SizeofType(t) => ExprKind::SizeofType(self.type_ref(t, scope)?),
            ExprKind::SizeofExpr(x) => ExprKind::SizeofExpr(Box::new(self.expr(x, scope)?)),
            ExprKind::Comma(a, b) => ExprKind::Comma(
                Box::new(self.expr(a, scope)?),
                Box::new(self.expr(b, scope)?),
            ),
        };
        Ok(Expr { kind, span: e.span })
    }
}
impl From<ElabError> for ecl_syntax::EclError {
    fn from(e: ElabError) -> Self {
        ecl_syntax::EclError::msg(ecl_syntax::Stage::Elaborate, e.msg.clone(), e.span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_syntax::parse_str;

    fn elab(src: &str, entry: &str) -> Elab {
        let prog = parse_str(src).expect("parse");
        elaborate(&prog, entry, None).expect("elaborate")
    }

    #[test]
    fn entry_params_become_design_signals() {
        let e = elab(
            "module m(input pure a, output pure b) { await(a); emit(b); }",
            "m",
        );
        assert_eq!(e.signals.len(), 2);
        assert_eq!(e.signals[0].name, "a");
        assert_eq!(e.signals[0].kind, SigKind::Input);
        assert_eq!(e.signals[1].kind, SigKind::Output);
    }

    #[test]
    fn variables_are_mangled() {
        let e = elab("module m(input pure a) { int x; x = 1; }", "m");
        assert_eq!(e.vars.len(), 1);
        assert_eq!(e.vars[0].name, "top::x");
    }

    #[test]
    fn instantiation_inlines_and_renames() {
        let e = elab(
            "module sub(input pure i, output pure o) { int c; await(i); c = 1; emit(o); }\
             module top(input pure x, output pure y) { par { sub(x, y); sub(x, y); } }",
            "top",
        );
        assert_eq!(e.instances.len(), 3); // top + 2 × sub
        assert_eq!(e.vars.len(), 2);
        assert_ne!(e.vars[0].name, e.vars[1].name);
        // Only the design I/O signals; sub's params map to x/y.
        assert_eq!(e.signals.len(), 2);
    }

    #[test]
    fn local_signals_get_global_names() {
        let e = elab("module m(input pure a) { signal pure k; emit(k); }", "m");
        assert_eq!(e.signals.len(), 2);
        assert_eq!(e.signals[1].name, "top::k");
        assert_eq!(e.signals[1].kind, SigKind::Local);
    }

    #[test]
    fn recursion_rejected() {
        let prog = parse_str("module a(input pure x) { a(x); }").unwrap();
        let e = elaborate(&prog, "a", None).unwrap_err();
        assert!(e.msg.contains("recursive"));
    }

    #[test]
    fn scoped_shadowing() {
        let e = elab(
            "module m(input pure a) { int x; { int x; x = 2; } x = 1; }",
            "m",
        );
        assert_eq!(e.vars.len(), 2);
        assert_eq!(e.vars[0].name, "top::x");
        assert_eq!(e.vars[1].name, "top::x#1");
    }

    #[test]
    fn instantiation_args_must_be_signals() {
        let prog = parse_str(
            "module sub(input pure i) { await(i); }\
             module top(input pure x) { int v; sub(v); }",
        )
        .unwrap();
        let e = elaborate(&prog, "top", None).unwrap_err();
        assert!(e.msg.contains("variable"));
    }

    #[test]
    fn actual_names_rename_entry_params() {
        let prog =
            parse_str("module m(input pure a, output pure b) { await(a); emit(b); }").unwrap();
        let e = elaborate(&prog, "m", Some(&["reset".to_string(), "done".to_string()])).unwrap();
        assert_eq!(e.signals[0].name, "reset");
        assert_eq!(e.signals[1].name, "done");
    }

    #[test]
    fn instantiations_listing() {
        let prog = parse_str(
            "module sub(input pure i, output pure o) { await(i); emit(o); }\
             module top(input pure x, output pure y) { signal pure m; par { sub(x, m); sub(m, y); } }",
        )
        .unwrap();
        let insts = instantiations(&prog, "top");
        assert_eq!(insts.len(), 2);
        assert_eq!(insts[0].module, "sub");
        assert_eq!(insts[0].actuals, vec!["x", "m"]);
        assert_eq!(insts[1].actuals, vec!["m", "y"]);
    }

    #[test]
    fn signal_used_as_value_in_expr_keeps_global_name() {
        let e = elab(
            "typedef unsigned char byte;\
             module m(input byte b) { int x; x = b + 1; }",
            "m",
        );
        // The expression references the signal's global name `b`.
        let s = ecl_syntax::pretty::program(&ecl_syntax::ast::Program { items: vec![] });
        let _ = s;
        let StmtKind::Expr(Some(expr)) = &e.body.stmts[1].kind else {
            panic!()
        };
        let printed = ecl_syntax::pretty::expr(expr);
        assert!(printed.contains("b + 1"), "{printed}");
        assert!(printed.contains("top::x"), "{printed}");
    }
}
