//! The legacy one-shot compiler facade.
//!
//! **Deprecated surface** (kept working for existing callers): new
//! code should drive the staged pipeline in [`crate::pipeline`]
//! directly, or the batch [`crate::workspace::Workspace`] driver —
//! both expose every intermediate artifact and the unified
//! [`EclError`] diagnostics. `Compiler` is now a thin shim over those
//! stages: each method is one line of stage-walking.
//!
//! The result, a [`Design`], bundles everything later stages need: the
//! Esterel program, the extracted data tables, the elaboration tables,
//! and constructors for the runtime and for compiled EFSMs. `Design`
//! is `Arc`-backed, so cloning one (e.g. to hand to a simulator task)
//! is cheap.

use crate::elab::{Elab, Instantiation};
use crate::pipeline::{Parsed, Source};
use crate::rt::Rt;
use crate::split::{SplitResult, SplitStrategy};
use ecl_syntax::ast::Program as Ast;
use ecl_syntax::diag::{EclError, Stage};
use ecl_syntax::source::Span;
use efsm::Efsm;
use esterel::compile::CompileOptions;
use std::sync::Arc;

/// Compiler options.
#[derive(Debug, Clone, Copy, Default)]
pub struct Options {
    /// Splitting strategy (paper Section 3 vs. Section 6).
    pub strategy: SplitStrategy,
}

/// The ECL compiler (legacy facade over [`crate::pipeline`]).
#[derive(Debug, Clone, Default)]
pub struct Compiler {
    options: Options,
}

impl Compiler {
    /// Create a compiler with the given options.
    pub fn new(options: Options) -> Self {
        Compiler { options }
    }

    /// The configured options.
    pub fn options(&self) -> Options {
        self.options
    }

    /// Compile source text with `entry` as the top-level module.
    ///
    /// Shim for `Source::named(entry, src).parse()?.elaborate(entry)?
    /// .split()?.to_design()`.
    ///
    /// # Errors
    ///
    /// [`EclError`] from the first failing stage.
    pub fn compile_str(&self, src: &str, entry: &str) -> Result<Design, EclError> {
        Ok(Source::named(entry, src)
            .with_options(self.options)
            .parse()?
            .elaborate(entry)?
            .split()?
            .to_design())
    }

    /// Compile an already-parsed program.
    ///
    /// `actuals` renames the entry's parameters to global signal names
    /// (used when compiling one submodule of a partitioned top level).
    ///
    /// # Errors
    ///
    /// [`EclError`] from the first failing stage.
    pub fn compile_ast(
        &self,
        ast: Ast,
        entry: &str,
        actuals: Option<&[String]>,
    ) -> Result<Design, EclError> {
        Ok(Parsed::from_ast(ast, self.options)
            .elaborate_bound(entry, actuals)?
            .split()?
            .to_design())
    }

    /// Partition a top-level module into its direct sub-instantiations
    /// and compile each as an independent design (the paper's
    /// "asynchronous implementation": one task per source file). The
    /// source is parsed once; each submodule re-enters the shared
    /// [`Parsed`] stage.
    ///
    /// # Errors
    ///
    /// Fails if the top level has no instantiations, or any submodule
    /// fails to compile.
    pub fn partition(&self, src: &str, toplevel: &str) -> Result<Vec<Design>, EclError> {
        let parsed = Source::named(toplevel, src)
            .with_options(self.options)
            .parse()?;
        let insts = parsed.instantiations(toplevel);
        if insts.is_empty() {
            return Err(EclError::msg(
                Stage::Elaborate,
                format!("module `{toplevel}` instantiates no submodules"),
                Span::dummy(),
            ));
        }
        insts
            .into_iter()
            .map(|Instantiation { module, actuals }| {
                Ok(parsed
                    .elaborate_bound(&module, Some(&actuals))?
                    .split()?
                    .to_design())
            })
            .collect()
    }
}

/// A fully split design, ready for simulation or EFSM synthesis.
///
/// `Arc`-backed: clones share the parse, elaboration and split
/// results, which is what makes the [`crate::workspace::Workspace`]
/// memoization and the simulator's per-task design copies cheap.
#[derive(Debug, Clone)]
pub struct Design {
    /// Entry module name.
    pub entry: String,
    /// The parsed translation unit (typedefs + functions + modules).
    pub ast: Arc<Ast>,
    /// Elaboration tables.
    pub elab: Arc<Elab>,
    /// Reactive program + data tables.
    pub split: Arc<SplitResult>,
}

impl Design {
    /// The reactive (Esterel) program.
    pub fn program(&self) -> &esterel::Program {
        &self.split.program
    }

    /// Compile the reactive part to an EFSM.
    ///
    /// # Errors
    ///
    /// [`EclError`] with stage `efsm` (state explosion, incoherence…).
    pub fn to_efsm(&self, opts: &CompileOptions) -> Result<Efsm, EclError> {
        esterel::compile::compile(&self.split.program, opts).map_err(EclError::from)
    }

    /// Build a fresh data runtime for this design.
    ///
    /// # Errors
    ///
    /// [`EclError`] with stage `runtime` (unresolvable types).
    pub fn new_rt(&self) -> Result<Rt, EclError> {
        Rt::new(&self.ast, &self.elab, &self.split.data).map_err(EclError::from)
    }

    /// Signal handle by global name (valid for both the interpreter and
    /// compiled EFSMs — the tables share indices).
    pub fn signal(&self, name: &str) -> Option<efsm::Signal> {
        self.split.program.signal(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efsm::{NoHooks, SigKind};
    use std::collections::HashSet;

    const COUNTER: &str = "
        module counter(input pure tick, input pure reset, output pure full) {
          int n;
          while (1) {
            do {
              n = 0;
              while (n < 3) { await (tick); n = n + 1; }
              emit (full);
              halt ();
            } abort (reset);
          }
        }";

    #[test]
    fn counter_compiles_and_runs_interpreted() {
        let d = Compiler::default().compile_str(COUNTER, "counter").unwrap();
        let mut rt = d.new_rt().unwrap();
        let mut m = esterel::Machine::new(d.program());
        let tick = d.signal("tick").unwrap();
        let full = d.signal("full").unwrap();
        let mut on = HashSet::new();
        on.insert(tick);
        // Start instant (no tick).
        let r0 = m.react(&HashSet::new(), &mut rt).unwrap();
        assert!(!r0.has(full));
        // Three ticks fill the counter.
        for i in 0..3 {
            let r = m.react(&on, &mut rt).unwrap();
            assert!(rt.take_error().is_none());
            if i < 2 {
                assert!(!r.has(full), "tick {i}");
            } else {
                assert!(r.has(full), "tick {i} should emit full");
            }
        }
        // Halted now.
        let r = m.react(&on, &mut rt).unwrap();
        assert!(!r.has(full));
    }

    #[test]
    fn counter_efsm_matches_interpreter() {
        use rand::{Rng, SeedableRng};
        let d = Compiler::default().compile_str(COUNTER, "counter").unwrap();
        let machine = d.to_efsm(&Default::default()).unwrap();
        let tick = d.signal("tick").unwrap();
        let reset = d.signal("reset").unwrap();
        let full = d.signal("full").unwrap();
        for seed in 0..10u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut rt_i = d.new_rt().unwrap();
            let mut rt_m = d.new_rt().unwrap();
            let mut interp = esterel::Machine::new(d.program());
            let mut st = machine.init;
            for step in 0..60 {
                let mut present = HashSet::new();
                if rng.gen_bool(0.5) {
                    present.insert(tick);
                }
                if rng.gen_bool(0.15) {
                    present.insert(reset);
                }
                let r1 = interp.react(&present, &mut rt_i).unwrap();
                let r2 = machine.step(st, &present, &mut rt_m);
                st = r2.next;
                assert_eq!(
                    r1.has(full),
                    r2.emitted.contains(&full),
                    "divergence at seed {seed} step {step}"
                );
                assert!(rt_i.take_error().is_none());
                assert!(rt_m.take_error().is_none());
            }
        }
    }

    #[test]
    fn valued_signals_flow_through_rt() {
        let src = "
            typedef unsigned char byte;
            module echo(input byte inp, output byte outp) {
              while (1) { await (inp); emit_v (outp, inp + 1); }
            }";
        let d = Compiler::default().compile_str(src, "echo").unwrap();
        let mut rt = d.new_rt().unwrap();
        let mut m = esterel::Machine::new(d.program());
        let inp = d.signal("inp").unwrap();
        // Start.
        m.react(&HashSet::new(), &mut rt).unwrap();
        rt.set_input_i64("inp", 41).unwrap();
        let mut on = HashSet::new();
        on.insert(inp);
        let r = m.react(&on, &mut rt).unwrap();
        assert!(rt.take_error().is_none());
        assert!(!r.emitted.is_empty());
        let v = rt.signal_value_by_name("outp").unwrap();
        assert_eq!(v.as_i64(rt.machine().table()), 42);
    }

    #[test]
    fn multiple_writers_rejected() {
        let src = "
            module w(input pure t, output pure s) { while (1) { await(t); emit (s); } }
            module top(input pure t, output pure s) { par { w(t, s); w(t, s); } }";
        let e = Compiler::default().compile_str(src, "top").unwrap_err();
        assert_eq!(e.stage(), ecl_syntax::Stage::Elaborate);
        assert!(e.to_string().contains("multiple writers"), "{e}");
    }

    #[test]
    fn partition_compiles_each_submodule() {
        let src = "
            module a(input pure i, output pure m) { while (1) { await (i); emit (m); } }
            module b(input pure m, output pure o) { while (1) { await (m); emit (o); } }
            module top(input pure i, output pure o) {
              signal pure mid;
              par { a(i, mid); b(mid, o); }
            }";
        let parts = Compiler::default().partition(src, "top").unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].entry, "a");
        // Part a's output is the *global* wire name.
        let sigs: Vec<&str> = parts[0]
            .program()
            .signals()
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        // Wire names come from the top level's scope: `mid` is the
        // local signal's source name at the instantiation site.
        assert!(sigs.contains(&"mid"), "{sigs:?}");
        // And the whole thing also compiles monolithically.
        let whole = Compiler::default().compile_str(src, "top").unwrap();
        assert_eq!(
            whole
                .program()
                .signals()
                .iter()
                .filter(|s| s.kind == SigKind::Local)
                .count(),
            1
        );
        let m = whole.to_efsm(&Default::default()).unwrap();
        m.validate().unwrap();
        let _ = NoHooks;
    }

    #[test]
    fn min_strategy_produces_fewer_actions() {
        let src = "
            module m(input pure a, output pure o) {
              int x; int y;
              while (1) { await (a); x = 1; y = x + 2; x = y * 3; emit (o); }
            }";
        let max = Compiler::new(Options {
            strategy: SplitStrategy::MaxEsterel,
        })
        .compile_str(src, "m")
        .unwrap();
        let min = Compiler::new(Options {
            strategy: SplitStrategy::MinEsterel,
        })
        .compile_str(src, "m")
        .unwrap();
        assert!(min.split.data.actions.len() < max.split.data.actions.len());
    }

    #[test]
    fn design_clones_share_storage() {
        let d = Compiler::default().compile_str(COUNTER, "counter").unwrap();
        let d2 = d.clone();
        assert!(Arc::ptr_eq(&d.ast, &d2.ast));
        assert!(Arc::ptr_eq(&d.split, &d2.split));
    }
}
