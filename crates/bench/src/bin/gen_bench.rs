//! `gen_bench` — machine-readable reaction-throughput benchmark.
//!
//! Measures instants/second for the two evaluated designs
//! (protocol stack, voice pager) × two implementations (monolithic
//! single task, 3-task partition) × three instrumentation/backend
//! modes (traced: ring-buffer recording on; monitored: observers bound
//! and stepped per instant, `Backend::Walker` forced end to end —
//! s-graph walk + tree-walking data hooks; compiled: the same
//! monitored run under `Backend::Compiled` — fused per-task instant
//! programs, the production default), all on the interned-id fast
//! path, plus the same monitored runs through the legacy string shim
//! (`run_events_names` + name-matching monitors) as the reference
//! every config is normalized against. `speedup_compiled_over_walker`
//! is the headline fusion metric: compiled vs monitored on the same
//! workload, per design configuration. End-to-end compile times ride
//! along.
//!
//! Output is `BENCH_reaction.json`. With `--check BASELINE`, the run
//! is compared against a checked-in baseline: the *normalized* ratio
//! of each config against the same-process string-shim reference must
//! not regress by more than 20% (normalizing makes the check
//! meaningful across machines of different speeds).
//!
//! Note the string shim itself sits on the interned-id core, so the
//! in-process `speedup_ids_over_names` is the residual shim overhead,
//! not the headline gain. The headline — ≥2x over the *pre-refactor*
//! string path — was measured back-to-back against the prior commit
//! and is recorded as `pre_pr_reference` (see EXPERIMENTS.md).
//!
//! Usage: `gen_bench [--out PATH] [--check BASELINE] [--instants N]`

use ecl_core::{Compiler, Design};
use ecl_observe::{synthesize_all, Monitor, MonitorSpec};
use efsm::Backend;
use sim::runner::{AsyncRunner, Runner};
use sim::tb::{InstantEvents, PacketTb, PagerTb};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Default workload length (the ISSUE's "10k-instant run").
const DEFAULT_INSTANTS: usize = 10_000;
/// Allowed normalized-throughput regression against the baseline.
const TOLERANCE: f64 = 0.20;
/// The pre-refactor string path's monitored stack/mono throughput
/// (commit 2c70065, same machine, best of 3) — the reference for the
/// headline speedup claim.
const PRE_PR_STACK_MONO_MONITORED: f64 = 200_000.0;

struct Timed<T> {
    value: T,
    ms: f64,
}

fn timed<T>(f: impl FnOnce() -> T) -> Timed<T> {
    let t0 = Instant::now();
    let value = f();
    Timed {
        value,
        ms: t0.elapsed().as_secs_f64() * 1000.0,
    }
}

fn runner(designs: Vec<Design>) -> AsyncRunner {
    AsyncRunner::new(
        designs,
        &Default::default(),
        Default::default(),
        Default::default(),
    )
    .expect("runner builds")
}

/// Interleaved measurement rounds. Every configuration is measured
/// once per round and keeps its best rate, so each config's number
/// comes from the fastest machine phase seen over the *whole* run —
/// on shared machines with drifting CPU frequency this keeps the
/// normalized ratios (the CI regression metric) phase-independent.
const ROUNDS: usize = 3;

fn measure_all(mut jobs: Vec<(String, Box<dyn FnMut() -> usize + '_>)>) -> Vec<(String, f64)> {
    let mut best = vec![0.0f64; jobs.len()];
    for _ in 0..ROUNDS {
        for (j, (_, f)) in jobs.iter_mut().enumerate() {
            let t = timed(&mut *f);
            best[j] = best[j].max(t.value as f64 / (t.ms / 1000.0));
        }
    }
    jobs.iter()
        .map(|(label, _)| label.clone())
        .zip(best)
        .collect()
}

fn run_ids(mut r: AsyncRunner, events: &[InstantEvents], monitors: &mut [Monitor]) -> usize {
    r.run_events(events, |instant, present| {
        for m in monitors.iter_mut() {
            m.step_present(instant, present);
        }
    })
    .expect("run succeeds");
    events.len()
}

/// A runner forced onto `Backend::Walker` — s-graph walk and
/// tree-walking data hooks end to end (the `monitored`/`traced`
/// configs keep measuring the fully walked path so the checked-in
/// normalized baselines stay comparable, and so the walker keeps
/// getting exercised as the differential/demotion reference).
fn walked(designs: Vec<Design>) -> AsyncRunner {
    let mut r = runner(designs);
    r.set_backend(Backend::Walker);
    r
}

fn run_names(mut r: AsyncRunner, events: &[InstantEvents], monitors: &mut [Monitor]) -> usize {
    r.run_events_names(events, |instant, present| {
        for m in monitors.iter_mut() {
            m.step(instant, present);
        }
    })
    .expect("run succeeds");
    events.len()
}

fn run_traced(mut r: AsyncRunner, events: &[InstantEvents]) -> usize {
    r.enable_trace(256);
    r.run_events(events, |_, _| {}).expect("run succeeds");
    events.len()
}

/// Bound monitor instances on the given stepping backend (the walked
/// configs force the s-graph walker on monitors too, so they
/// reproduce the pre-fusion hot path end to end).
fn monitors_for(specs: &[Arc<MonitorSpec>], r: &AsyncRunner, backend: Backend) -> Vec<Monitor> {
    specs
        .iter()
        .map(|s| {
            let mut m = Monitor::new(Arc::clone(s));
            m.set_backend(backend);
            m.bind(r.sig_table());
            m
        })
        .collect()
}

fn main() {
    // Honors `ECL_TELEMETRY=1`: the same interleaved best-of-3
    // methodology then measures the *instrumented* hot path, which is
    // how EXPERIMENTS.md quantifies telemetry overhead. The shipped
    // baseline (and the `--check` gate) is a telemetry-off run.
    ecl_telemetry::init_from_env();
    let args: Vec<String> = std::env::args().collect();
    let mut out_path = "BENCH_reaction.json".to_string();
    let mut check_path: Option<String> = None;
    let mut instants = DEFAULT_INSTANTS;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = args[i + 1].clone();
                i += 2;
            }
            "--check" => {
                check_path = Some(args[i + 1].clone());
                i += 2;
            }
            "--instants" => {
                instants = args[i + 1].parse().expect("--instants takes a number");
                i += 2;
            }
            other => panic!("unknown argument `{other}`"),
        }
    }

    // Workloads, truncated to the same instant budget.
    let mut stack_ev = PacketTb {
        packets: instants / 65 + 2,
        corrupt_every: 0,
        reset_every: 0,
        seed: 1999,
    }
    .events();
    stack_ev.truncate(instants);
    let mut pager_ev = PagerTb {
        rounds: instants / 69 + 2,
        frames: 4,
        seed: 7,
    }
    .events();
    pager_ev.truncate(instants);

    // Compile (timed): four design configurations.
    let stack_src = sim::designs::PROTOCOL_STACK;
    let pager_src = sim::designs::VOICE_PAGER;
    let stack_mono = timed(|| {
        Compiler::default()
            .compile_str(stack_src, "toplevel")
            .unwrap()
    });
    let stack_parts = timed(|| {
        Compiler::default()
            .partition(stack_src, "toplevel")
            .unwrap()
    });
    let pager_mono = timed(|| Compiler::default().compile_str(pager_src, "pager").unwrap());
    let pager_parts = timed(|| Compiler::default().partition(pager_src, "pager").unwrap());
    let stack_specs =
        synthesize_all(&ecl_syntax::parse_str(stack_src).unwrap()).expect("stack observers");
    let pager_specs =
        synthesize_all(&ecl_syntax::parse_str(pager_src).unwrap()).expect("pager observers");

    // All configurations, measured in interleaved rounds: the twelve
    // id-path configs (traced/monitored/compiled × four design
    // configurations) plus the two string-shim references (monitored
    // mono runs through the legacy name path — per-instant
    // Vec<String> + name matching — one per design so every config
    // normalizes against its own workload).
    type Config<'a> = (
        &'a str,
        Vec<Design>,
        &'a [InstantEvents],
        &'a [Arc<MonitorSpec>],
    );
    let configs: [Config<'_>; 4] = [
        (
            "stack/mono",
            vec![stack_mono.value.clone()],
            &stack_ev,
            &stack_specs,
        ),
        (
            "stack/parts",
            stack_parts.value.clone(),
            &stack_ev,
            &stack_specs,
        ),
        (
            "pager/mono",
            vec![pager_mono.value.clone()],
            &pager_ev,
            &pager_specs,
        ),
        (
            "pager/parts",
            pager_parts.value.clone(),
            &pager_ev,
            &pager_specs,
        ),
    ];
    // Static backend coverage per design configuration: how many
    // states fuse into row-scan + residual-program form, and how much
    // of the data path the bytecode VM compiles — recorded so the
    // benchmark file says what the `compiled` configs actually
    // exercised (100% fused means no s-graph walk inside an instant).
    let coverage: Vec<(String, String)> = configs
        .iter()
        .map(|(label, designs, _, _)| {
            let r = runner(designs.clone());
            let cov = r.coverage();
            let pure: u32 = r.machines().map(|m| m.stats().pure_states).sum();
            (
                label.replace('/', "_"),
                format!(
                    "{{\"fused_states\": {}, \"states\": {}, \"fused_rows\": {}, \"pure_states\": {pure}, \"vm_compiled\": {}, \"vm_total\": {}}}",
                    cov.fused_states(),
                    cov.states(),
                    cov.fused_rows(),
                    cov.vm_compiled(),
                    cov.vm_total(),
                ),
            )
        })
        .collect();
    let mut jobs: Vec<(String, Box<dyn FnMut() -> usize + '_>)> = Vec::new();
    for (label, designs, events, specs) in &configs {
        let d = designs.clone();
        jobs.push((
            format!("{label}/traced"),
            Box::new(move || run_traced(walked(d.clone()), events)),
        ));
        let d = designs.clone();
        jobs.push((
            format!("{label}/monitored"),
            Box::new(move || {
                let r = walked(d.clone());
                let mut mons = monitors_for(specs, &r, Backend::Walker);
                run_ids(r, events, &mut mons)
            }),
        ));
        let d = designs.clone();
        jobs.push((
            format!("{label}/compiled"),
            Box::new(move || {
                let r = runner(d.clone());
                assert_eq!(r.backend(), Backend::Compiled);
                let mut mons = monitors_for(specs, &r, Backend::Compiled);
                run_ids(r, events, &mut mons)
            }),
        ));
    }
    let sm = stack_mono.value.clone();
    let (sspecs, sev) = (&stack_specs, &stack_ev);
    jobs.push((
        "stack/mono/monitored/names-shim".to_string(),
        Box::new(move || {
            let r = walked(vec![sm.clone()]);
            let mut mons = monitors_for(sspecs, &r, Backend::Walker);
            run_names(r, sev, &mut mons)
        }),
    ));
    let pm = pager_mono.value.clone();
    let (pspecs, pev) = (&pager_specs, &pager_ev);
    jobs.push((
        "pager/mono/monitored/names-shim".to_string(),
        Box::new(move || {
            let r = walked(vec![pm.clone()]);
            let mut mons = monitors_for(pspecs, &r, Backend::Walker);
            run_names(r, pev, &mut mons)
        }),
    ));
    let runs = measure_all(jobs);
    let rate_of = |label: &str| {
        runs.iter()
            .find(|(l, _)| l == label)
            .map(|(_, v)| *v)
            .unwrap()
    };
    let names_ref = rate_of("stack/mono/monitored/names-shim");
    let pager_names_ref = rate_of("pager/mono/monitored/names-shim");
    let ref_of = |label: &str| {
        if label.starts_with("pager") {
            pager_names_ref
        } else {
            names_ref
        }
    };

    let monitored_stack = rate_of("stack/mono/monitored");
    let speedup = monitored_stack / names_ref;
    // The fusion headline: one compiled backend vs the fully walked
    // path, same monitored workload, per design configuration.
    let compiled_speedup = |label: &str| {
        rate_of(&format!("{label}/compiled")) / rate_of(&format!("{label}/monitored"))
    };
    let compiled_speedups = [
        ("stack_mono", compiled_speedup("stack/mono")),
        ("stack_parts", compiled_speedup("stack/parts")),
        ("pager_mono", compiled_speedup("pager/mono")),
        ("pager_parts", compiled_speedup("pager/parts")),
    ];

    // Render JSON (no serde in the container: hand-rolled, stable).
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": 1,");
    let _ = writeln!(json, "  \"instants\": {instants},");
    let _ = writeln!(json, "  \"compile_ms\": {{");
    let _ = writeln!(json, "    \"stack_mono\": {:.2},", stack_mono.ms);
    let _ = writeln!(json, "    \"stack_parts\": {:.2},", stack_parts.ms);
    let _ = writeln!(json, "    \"pager_mono\": {:.2},", pager_mono.ms);
    let _ = writeln!(json, "    \"pager_parts\": {:.2}", pager_parts.ms);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"coverage\": {{");
    for (i, (key, obj)) in coverage.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{key}\": {obj}{}",
            if i + 1 < coverage.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"runs\": [");
    for (i, (label, rate)) in runs.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"config\": \"{label}\", \"instants_per_sec\": {:.0}, \"normalized\": {:.3}}}{}",
            rate,
            rate / ref_of(label),
            if i + 1 < runs.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedup_ids_over_names\": {speedup:.2},");
    let _ = writeln!(
        json,
        "  \"speedup_compiled_over_walker\": {{{}}},",
        compiled_speedups
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v:.2}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        json,
        "  \"pre_pr_reference\": {{\"config\": \"stack/mono/monitored\", \"instants_per_sec\": {PRE_PR_STACK_MONO_MONITORED:.0}, \"note\": \"pre-refactor string path measured on the reference machine (commit 2c70065, best of 3); only meaningful when this file was produced on that machine — cross-machine tracking uses the normalized ratios above\"}},"
    );
    let _ = writeln!(
        json,
        "  \"speedup_vs_pre_pr_on_ref_machine\": {:.2}",
        monitored_stack / PRE_PR_STACK_MONO_MONITORED
    );
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("{json}");
    println!("wrote {out_path}");

    if let Some(baseline) = check_path {
        let base = std::fs::read_to_string(&baseline)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline}: {e}"));
        let mut failures = Vec::new();
        for (label, rate) in &runs {
            let Some(base_norm) = extract_normalized(&base, label) else {
                continue; // new config: no baseline yet
            };
            let norm = rate / ref_of(label);
            if norm < base_norm * (1.0 - TOLERANCE) {
                failures.push(format!(
                    "{label}: normalized {norm:.3} regressed >{:.0}% against baseline {base_norm:.3}",
                    TOLERANCE * 100.0
                ));
            }
        }
        if failures.is_empty() {
            println!("check against {baseline}: OK");
        } else {
            eprintln!("benchmark regression against {baseline}:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
    }
}

/// Pull `"normalized": X` out of the baseline line whose config is
/// `label` (tiny line-oriented parser; the file is our own output).
fn extract_normalized(json: &str, label: &str) -> Option<f64> {
    let needle = format!("\"config\": \"{label}\"");
    let line = json.lines().find(|l| l.contains(&needle))?;
    let norm = line.split("\"normalized\":").nth(1)?;
    norm.trim()
        .trim_end_matches(['}', ',', ']'])
        .trim_end_matches('}')
        .trim()
        .parse()
        .ok()
}
