//! `fleet_bench` — aggregate reaction throughput of a supervised
//! session fleet.
//!
//! Runs ≥1k concurrent voice-pager sessions over one shared compiled
//! program (`ecl_fleet::Supervisor`, one shard per hardware thread)
//! and records *aggregate* instants/second — the fleet's capacity
//! number — plus the same fleet under periodic checkpointing, so the
//! snapshot overhead is measured honestly rather than claimed.
//!
//! Results merge into the `runs` array of the existing
//! `BENCH_reaction.json` (same line format, labels under
//! `pager/fleet/…`), normalized against a single-session solo run
//! measured in the same process — the normalized ratio is the fleet's
//! parallel scaling factor, which is what the 20% regression gate
//! compares across machines. Labels absent from a baseline are
//! skipped by the gate, so the first run on a fresh baseline passes.
//!
//! Usage: `fleet_bench [--out PATH] [--check BASELINE] [--sessions N] [--rounds N]`

use ecl_core::Compiler;
use ecl_fleet::{FleetConfig, SessionSpec, SessionStatus, Supervisor};
use sim::runner::{AsyncRunner, Runner};
use sim::tb::{InstantEvents, PagerTb};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Fleet size the ISSUE's capacity claim is stated for.
const DEFAULT_SESSIONS: usize = 1000;
/// Pager testbench rounds per session (~69 instants each).
const DEFAULT_ROUNDS: usize = 10;
/// Allowed normalized-throughput regression against the baseline
/// (the same tolerance `gen_bench` gates with).
const TOLERANCE: f64 = 0.20;
/// Interleaved measurement rounds; each config keeps its best rate.
const MEASURE_ROUNDS: usize = 3;

fn main() {
    ecl_telemetry::init_from_env();
    // A fault plan (ECL_FAULTS) turns this into the fleet chaos
    // smoke: killed sessions must restart from checkpoints and the
    // finished-count assertion below still holds. Injected kills are
    // caught by the supervisor, so keep their backtraces out of the
    // log; anything else still reaches the default hook.
    if ecl_faults::init_from_env() {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.starts_with("ecl-faults:"));
            if !injected {
                default_hook(info);
            }
        }));
    }
    let args: Vec<String> = std::env::args().collect();
    let mut out_path = "BENCH_reaction.json".to_string();
    let mut check_path: Option<String> = None;
    let mut sessions = DEFAULT_SESSIONS;
    let mut rounds = DEFAULT_ROUNDS;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = args[i + 1].clone();
                i += 2;
            }
            "--check" => {
                check_path = Some(args[i + 1].clone());
                i += 2;
            }
            "--sessions" => {
                sessions = args[i + 1].parse().expect("--sessions takes a number");
                i += 2;
            }
            "--rounds" => {
                rounds = args[i + 1].parse().expect("--rounds takes a number");
                i += 2;
            }
            other => panic!("unknown argument `{other}`"),
        }
    }

    let events: Arc<Vec<InstantEvents>> = Arc::new(
        PagerTb {
            rounds,
            frames: 4,
            seed: 7,
        }
        .events(),
    );
    let per_session = events.len();
    let designs = Compiler::default()
        .partition(sim::designs::VOICE_PAGER, "pager")
        .expect("pager partitions");
    let shards = std::thread::available_parallelism().map_or(4, |n| n.get());

    // (label, checkpoint cadence): `nockpt` takes only the initial
    // snapshot — the capacity headline; `ckpt64` snapshots every 64
    // instants — the difference is the honest checkpoint overhead.
    let configs: [(&str, u64); 2] = [("pager/fleet/nockpt", 0), ("pager/fleet/ckpt64", 64)];

    let sups: Vec<Supervisor> = configs
        .iter()
        .map(|(_, ckpt)| {
            Supervisor::new(
                designs.clone(),
                &Default::default(),
                FleetConfig {
                    shards,
                    queue_cap: sessions.max(1),
                    checkpoint_every: *ckpt,
                    ..Default::default()
                },
            )
            .expect("fleet compiles")
        })
        .collect();

    let mut rates: Vec<(String, f64)> = configs
        .iter()
        .map(|(label, _)| (label.to_string(), 0.0f64))
        .collect();
    let mut solo_rate = 0.0f64;
    for _ in 0..MEASURE_ROUNDS {
        for (c, sup) in sups.iter().enumerate() {
            let specs: Vec<SessionSpec> = (1..=sessions as u64)
                .map(|id| SessionSpec {
                    id,
                    events: Arc::clone(&events),
                    specs: Vec::new(),
                    trace_capacity: None,
                })
                .collect();
            let t0 = Instant::now();
            let rep = sup.run(specs);
            let secs = t0.elapsed().as_secs_f64();
            assert!(
                rep.sessions
                    .iter()
                    .all(|s| s.status == SessionStatus::Finished),
                "fleet bench sessions must finish: {:?}",
                rep.health
            );
            let total = (sessions * per_session) as f64;
            rates[c].1 = rates[c].1.max(total / secs);
        }
        // Solo reference: one bare runner (no supervisor, no queues)
        // over the same stream, repeated so fixed setup cost doesn't
        // pollute the denominator. The normalized ratio is therefore
        // "supervised fleet throughput over an unsupervised single
        // session" — supervision overhead shows up as ratio < shards.
        const SOLO_REPEATS: usize = 20;
        let mut r =
            AsyncRunner::from_shared(sups[0].shared(), Default::default(), Default::default());
        let t0 = Instant::now();
        for _ in 0..SOLO_REPEATS {
            r.run_events(&events, |_, _| {}).expect("solo run");
        }
        let secs = t0.elapsed().as_secs_f64();
        solo_rate = solo_rate.max((per_session * SOLO_REPEATS) as f64 / secs);
    }

    // Render the new run lines (same shape as gen_bench's entries;
    // `normalized` is the scaling factor over the solo session).
    let mut new_lines = String::new();
    for (label, rate) in &rates {
        let _ = writeln!(
            new_lines,
            "    {{\"config\": \"{label}\", \"instants_per_sec\": {:.0}, \"sessions\": {sessions}, \"instants_per_session\": {per_session}, \"shards\": {shards}, \"normalized\": {:.3}}},",
            rate,
            rate / solo_rate.max(1.0),
        );
    }

    let merged = merge_runs(&out_path, &new_lines, sessions, per_session);
    std::fs::write(&out_path, &merged).expect("write benchmark output");
    for (label, rate) in &rates {
        println!(
            "{label}: {rate:.0} aggregate instants/sec ({sessions} sessions x {per_session} instants, {shards} shards, x{:.2} over solo {solo_rate:.0})",
            rate / solo_rate.max(1.0)
        );
    }
    println!("wrote {out_path}");

    if let Some(baseline) = check_path {
        let base = std::fs::read_to_string(&baseline)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline}: {e}"));
        let mut failures = Vec::new();
        for (label, rate) in &rates {
            let Some(base_norm) = extract_normalized(&base, label) else {
                continue; // new config: no baseline yet
            };
            let norm = rate / solo_rate.max(1.0);
            if norm < base_norm * (1.0 - TOLERANCE) {
                failures.push(format!(
                    "{label}: normalized {norm:.3} regressed >{:.0}% against baseline {base_norm:.3}",
                    TOLERANCE * 100.0
                ));
            }
        }
        if failures.is_empty() {
            println!("check against {baseline}: OK");
        } else {
            eprintln!("fleet benchmark regression against {baseline}:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
    }
}

/// Merge the fleet lines into `path`'s `runs` array (replacing any
/// previous `pager/fleet/…` entries), or start a minimal file when no
/// benchmark output exists yet.
fn merge_runs(path: &str, new_lines: &str, sessions: usize, per_session: usize) -> String {
    match std::fs::read_to_string(path) {
        Ok(existing) if existing.contains("\"runs\": [") => {
            let mut out = String::new();
            for line in existing.lines() {
                if line.contains("\"config\": \"pager/fleet/") {
                    continue;
                }
                out.push_str(line);
                out.push('\n');
                if line.trim_start().starts_with("\"runs\": [") {
                    out.push_str(new_lines);
                }
            }
            out
        }
        _ => {
            // No gen_bench output to merge into: emit a minimal file
            // of the same shape. The last entry must not carry a
            // trailing comma.
            let trimmed = new_lines.trim_end().trim_end_matches(',');
            format!(
                "{{\n  \"schema\": 1,\n  \"instants\": {},\n  \"runs\": [\n{trimmed}\n  ]\n}}\n",
                sessions * per_session
            )
        }
    }
}

/// Pull `"normalized": X` out of the baseline line whose config is
/// `label` (the same tiny parser `gen_bench` uses).
fn extract_normalized(json: &str, label: &str) -> Option<f64> {
    let needle = format!("\"config\": \"{label}\"");
    let line = json.lines().find(|l| l.contains(&needle))?;
    let norm = line.split("\"normalized\":").nth(1)?;
    norm.trim()
        .trim_end_matches(['}', ',', ']'])
        .trim_end_matches('}')
        .trim()
        .parse()
        .ok()
}
