//! Regenerate the paper's Table 1 (synchronous vs. asynchronous
//! implementation trade-offs): `cargo run -p ecl-bench --bin gen_table1`.

use ecl_bench as b;

fn main() {
    println!("Table 1 reproduction — sync/async implementation trade-offs");
    println!("(testbench: 500 packets for Stack, 25 record/play rounds for Buffer)\n");
    let stack_ev = b::stack_events(500);
    let pager_ev = b::pager_events(25);

    println!("Example: Stack (protocol stack, Figures 1-4)");
    let s1 = b::row(vec![b::stack_mono()], &stack_ev, "1 task");
    println!("  {}", s1.row());
    let s3 = b::row(b::stack_parts(), &stack_ev, "3 tasks");
    println!("  {}", s3.row());

    println!("\nExample: Buffer (voice pager audio buffer controller)");
    let p1 = b::row(vec![b::pager_mono()], &pager_ev, "1 task");
    println!("  {}", p1.row());
    let p3 = b::row(b::pager_parts(), &pager_ev, "3 tasks");
    println!("  {}", p3.row());

    println!("\nStates per task:");
    println!("  Stack  1 task : {:?}", s1.states_per_task);
    println!("  Stack  3 tasks: {:?}", s3.states_per_task);
    println!("  Buffer 1 task : {:?}", p1.states_per_task);
    println!("  Buffer 3 tasks: {:?}", p3.states_per_task);

    println!("\nFunctional sanity (emission counts):");
    for (name, m) in [
        ("Stack 1t", &s1),
        ("Stack 3t", &s3),
        ("Buffer 1t", &p1),
        ("Buffer 3t", &p3),
    ] {
        let mut keys: Vec<_> = m.outputs.iter().collect();
        keys.sort();
        println!(
            "  {name}: {keys:?} (events lost: {} — {})",
            m.events_lost,
            m.losses()
        );
    }

    println!("\nShape checks vs. the paper:");
    let c1 = s1.task.code_bytes < s3.task.code_bytes;
    println!("  Stack: sync task code < async task code (paper: 1008 < 1632): {c1}");
    let c2 = p1.task.code_bytes > p3.task.code_bytes;
    println!("  Buffer: sync task code > async task code (paper: 7072 > 2544): {c2}");
    let c3 = s1.rtos.code_bytes < s3.rtos.code_bytes && p1.rtos.data_bytes < p3.rtos.data_bytes;
    println!("  RTOS footprint grows with task count: {c3}");
    let c4 = s1.rtos_kcycles < s3.rtos_kcycles;
    println!("  Stack: RTOS time grows with task count (paper: 8032 < 8815): {c4}");
}
