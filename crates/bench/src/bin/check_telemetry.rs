//! `check_telemetry` — validate a telemetry JSONL stream against the
//! versioned schema.
//!
//! Reads one file (or stdin with `-`), runs every non-empty line
//! through [`ecl_telemetry::schema::validate_line`] — full JSON parse,
//! schema version check, required preamble (`schema`/`ts`/`run_id`/
//! `event`), per-kind required fields, unknown-kind rejection — and
//! prints a per-kind tally. Any invalid line is reported with its
//! line number and the process exits non-zero, so CI can gate on the
//! example's emitted stream staying schema-valid.
//!
//! Usage: `check_telemetry <FILE|->`

use ecl_telemetry::schema;
use std::collections::BTreeMap;
use std::io::Read as _;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(path) = args.get(1) else {
        eprintln!("usage: check_telemetry <FILE|->");
        std::process::exit(2);
    };
    let input = if path == "-" {
        let mut s = String::new();
        std::io::stdin().read_to_string(&mut s).expect("read stdin");
        s
    } else {
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
    };

    let mut kinds: BTreeMap<String, u64> = BTreeMap::new();
    let mut bad = 0usize;
    let mut total = 0usize;
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        total += 1;
        match schema::validate_line(line) {
            Ok(()) => {
                // validate_line guarantees `event` exists and is a string.
                let kind = schema::parse(line)
                    .ok()
                    .and_then(|j| j.get("event").and_then(|e| e.as_str().map(String::from)))
                    .unwrap_or_default();
                *kinds.entry(kind).or_insert(0) += 1;
            }
            Err(e) => {
                eprintln!("line {}: {e}", i + 1);
                eprintln!("  {line}");
                bad += 1;
            }
        }
    }

    if total == 0 {
        eprintln!("{path}: no telemetry lines found");
        std::process::exit(1);
    }
    if bad > 0 {
        eprintln!("{path}: {bad}/{total} invalid lines");
        std::process::exit(1);
    }
    let tally = kinds
        .iter()
        .map(|(k, n)| format!("{k}: {n}"))
        .collect::<Vec<_>>()
        .join(", ");
    println!(
        "{path}: {total} lines OK (schema v{}; {tally})",
        schema::SCHEMA_VERSION
    );
}
