//! `gen_profile` — machine-readable hot-path profile of the two
//! evaluated designs.
//!
//! Where `gen_bench` answers "how fast", this answers "where does the
//! time go": it turns telemetry on, runs each design configuration
//! (protocol stack, voice pager × monolithic, 3-task partition) for
//! the standard 10k-instant monitored workload on the production
//! `Backend::Compiled` (fused instant programs + bytecode data
//! hooks), and dumps the full metric registry delta per configuration
//! — per-opcode VM counts and the FallbackStmt hit rate, table
//! row-scan/fused-program totals and rows-per-hit, kernel
//! dispatch/delivery/cycle counts and mailbox occupancy, per-instant
//! wall-time quantiles, and the static [`CoverageReport`] numbers
//! (fused states/rows, vm-compiled hooks, pure states).
//!
//! Each configuration is bracketed by a telemetry [`Run`], so piping
//! `ECL_TELEMETRY_OUT` somewhere also yields a schema-valid JSONL
//! stream; the profile JSON itself is written to `--out` (default
//! `PROFILE_reaction.json`) for CI artifacts and offline diffing.
//!
//! Usage: `gen_profile [--out PATH] [--instants N]`

use ecl_core::{Compiler, Design};
use ecl_observe::{synthesize_all, Monitor, MonitorSpec};
use ecl_telemetry::metrics as tm;
use ecl_telemetry::Run;
use efsm::Backend;
use sim::runner::{AsyncRunner, CoverageReport, Runner};
use sim::tb::{InstantEvents, PacketTb, PagerTb};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Default workload length (the same 10k instants `gen_bench` uses).
const DEFAULT_INSTANTS: usize = 10_000;

/// Everything the profile reports for one design configuration.
struct Profile {
    config: String,
    instants: usize,
    wall_ms: f64,
    coverage: CoverageReport,
    pure_states: u32,
}

fn monitors_for(specs: &[Arc<MonitorSpec>], r: &AsyncRunner) -> Vec<Monitor> {
    specs
        .iter()
        .map(|s| {
            let mut m = Monitor::new(Arc::clone(s));
            m.set_backend(Backend::Compiled);
            m.bind(r.sig_table());
            m
        })
        .collect()
}

/// Run one monitored configuration with a fresh metric registry and
/// return its profile; the registry is left holding exactly this
/// run's counts for the caller to render.
fn profile_one(
    config: &str,
    design: &str,
    designs: Vec<Design>,
    events: &[InstantEvents],
    specs: &[Arc<MonitorSpec>],
) -> Profile {
    tm::reset_all();
    let mut r = AsyncRunner::new(
        designs,
        &Default::default(),
        Default::default(),
        Default::default(),
    )
    .expect("runner builds");
    assert_eq!(r.backend(), Backend::Compiled);
    let coverage = r.coverage();
    let pure_states = r.machines().map(|m| m.stats().pure_states).sum();
    let mut mons = monitors_for(specs, &r);
    let run = Run::start(design, config);
    let t0 = Instant::now();
    r.run_events(events, |instant, present| {
        for m in &mut mons {
            m.step_present(instant, present);
        }
    })
    .expect("run succeeds");
    let wall_ms = t0.elapsed().as_secs_f64() * 1000.0;
    // The run_end event carries the coverage breakdown, so the JSONL
    // stream is self-describing about what backend actually ran.
    run.end_with_coverage(events.len() as u64, Some(&coverage.telemetry()));
    Profile {
        config: config.to_string(),
        instants: events.len(),
        wall_ms,
        coverage,
        pure_states,
    }
}

/// Render one configuration's section from the current registry state
/// (which `profile_one` left holding exactly that run's counts).
fn render(p: &Profile, out: &mut String) {
    let c = |name: &str| {
        tm::counters()
            .into_iter()
            .find(|c| c.name() == name)
            .map_or(0, |c| c.get())
    };
    let _ = writeln!(out, "    {{");
    let _ = writeln!(out, "      \"config\": \"{}\",", p.config);
    let _ = writeln!(out, "      \"instants\": {},", p.instants);
    let _ = writeln!(out, "      \"wall_ms\": {:.2},", p.wall_ms);
    let _ = writeln!(
        out,
        "      \"instants_per_sec\": {:.0},",
        p.instants as f64 / (p.wall_ms / 1000.0)
    );
    let _ = writeln!(
        out,
        "      \"coverage\": {{\"fused_states\": {}, \"states\": {}, \"fused_rows\": {}, \"vm_compiled\": {}, \"vm_total\": {}, \"demoted_sites\": {}, \"pure_states\": {}}},",
        p.coverage.fused_states(),
        p.coverage.states(),
        p.coverage.fused_rows(),
        p.coverage.vm_compiled(),
        p.coverage.vm_total(),
        p.coverage.demoted_sites(),
        p.pure_states
    );
    let _ = writeln!(
        out,
        "      \"rtk\": {{\"dispatches\": {}, \"deliveries\": {}, \"task_cycles\": {}, \"rtos_cycles\": {}, \"events_lost\": {}, \"mailbox_occupancy_p99\": {}}},",
        c("rtk.dispatches"),
        c("rtk.deliveries"),
        c("rtk.task_cycles"),
        c("rtk.rtos_cycles"),
        c("rtk.events_lost"),
        tm::RTK_MAILBOX_OCCUPANCY.quantile(0.99)
    );
    let _ = writeln!(
        out,
        "      \"sim\": {{\"instants\": {}, \"instant_ns_p50\": {}, \"instant_ns_p99\": {}, \"instant_ns_max\": {}}},",
        c("sim.instants"),
        tm::SIM_INSTANT_NS.quantile(0.5),
        tm::SIM_INSTANT_NS.quantile(0.99),
        tm::SIM_INSTANT_NS.max()
    );
    // rows-per-hit: scans divided by the steps that resolved in the
    // dense backend (steps minus walker fallbacks).
    let steps = c("table.steps");
    let hits = steps.saturating_sub(c("table.walk_fallbacks"));
    let _ = writeln!(
        out,
        "      \"table\": {{\"steps\": {}, \"rows_scanned\": {}, \"rows_per_hit\": {:.2}, \"always_hits\": {}, \"fused_hits\": {}, \"fused_ops\": {}, \"walk_fallbacks\": {}}},",
        steps,
        c("table.rows_scanned"),
        c("table.rows_scanned") as f64 / hits.max(1) as f64,
        c("table.always_hits"),
        c("table.fused_hits"),
        c("table.fused_ops"),
        c("table.walk_fallbacks")
    );
    let vm_op_total: u64 = tm::VM_OPS.iter().map(|c| c.get()).sum();
    let _ = writeln!(
        out,
        "      \"vm\": {{\"hook_runs\": {}, \"walker_hooks\": {}, \"ops_total\": {}, \"fallback_stmts\": {}, \"fallback_rate\": {:.4}, \"ops\": {{{}}}}},",
        c("vm.hook_runs"),
        c("vm.walker_hooks"),
        vm_op_total,
        c("vm.fallback_stmts"),
        c("vm.fallback_stmts") as f64 / vm_op_total.max(1) as f64,
        tm::VM_OPS
            .iter()
            .filter(|c| c.get() > 0)
            .map(|c| format!("\"{}\": {}", c.name(), c.get()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        out,
        "      \"mon\": {{\"steps\": {}, \"violations\": {}}}",
        c("mon.steps"),
        c("mon.violations")
    );
    let _ = write!(out, "    }}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut out_path = "PROFILE_reaction.json".to_string();
    let mut instants = DEFAULT_INSTANTS;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = args[i + 1].clone();
                i += 2;
            }
            "--instants" => {
                instants = args[i + 1].parse().expect("--instants takes a number");
                i += 2;
            }
            other => panic!("unknown argument `{other}`"),
        }
    }

    // The profile is the point: telemetry is always on here. A JSONL
    // sink is still optional (ECL_TELEMETRY_OUT), and the env may
    // tune the span cadence.
    ecl_telemetry::init_from_env();
    ecl_telemetry::set_enabled(true);

    let mut stack_ev = PacketTb {
        packets: instants / 65 + 2,
        corrupt_every: 0,
        reset_every: 0,
        seed: 1999,
    }
    .events();
    stack_ev.truncate(instants);
    let mut pager_ev = PagerTb {
        rounds: instants / 69 + 2,
        frames: 4,
        seed: 7,
    }
    .events();
    pager_ev.truncate(instants);

    let stack_src = sim::designs::PROTOCOL_STACK;
    let pager_src = sim::designs::VOICE_PAGER;
    let stack_mono = Compiler::default()
        .compile_str(stack_src, "toplevel")
        .unwrap();
    let stack_parts = Compiler::default()
        .partition(stack_src, "toplevel")
        .unwrap();
    let pager_mono = Compiler::default().compile_str(pager_src, "pager").unwrap();
    let pager_parts = Compiler::default().partition(pager_src, "pager").unwrap();
    let stack_specs =
        synthesize_all(&ecl_syntax::parse_str(stack_src).unwrap()).expect("stack observers");
    let pager_specs =
        synthesize_all(&ecl_syntax::parse_str(pager_src).unwrap()).expect("pager observers");

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": 1,");
    let _ = writeln!(json, "  \"instants\": {instants},");
    let _ = writeln!(json, "  \"configs\": [");
    type Config<'a> = (
        &'a str,
        &'a str,
        Vec<Design>,
        &'a [InstantEvents],
        &'a [Arc<MonitorSpec>],
    );
    let configs: [Config<'_>; 4] = [
        (
            "stack/mono",
            "protocol_stack",
            vec![stack_mono],
            &stack_ev,
            &stack_specs,
        ),
        (
            "stack/parts",
            "protocol_stack",
            stack_parts,
            &stack_ev,
            &stack_specs,
        ),
        (
            "pager/mono",
            "voice_pager",
            vec![pager_mono],
            &pager_ev,
            &pager_specs,
        ),
        (
            "pager/parts",
            "voice_pager",
            pager_parts,
            &pager_ev,
            &pager_specs,
        ),
    ];
    let n = configs.len();
    for (i, (config, design, designs, events, specs)) in configs.into_iter().enumerate() {
        let p = profile_one(config, design, designs, events, specs);
        render(&p, &mut json);
        json.push_str(if i + 1 < n { ",\n" } else { "\n" });
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write profile output");
    println!("{json}");
    println!("wrote {out_path}");
}
