//! Shared helpers for the benchmark harness.
//!
//! The binaries (`gen_table1`, `gen_ablation`) and the Criterion benches
//! all go through these helpers so the measured configurations are
//! identical everywhere. See DESIGN.md for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results.

use codegen::cost::CostParams;
use ecl_core::{Compiler, Design, Options};
use sim::measure::{measure, Measurement};
use sim::tb::{InstantEvents, PacketTb, PagerTb};

/// Compile the protocol stack (Figures 1–4) as one synchronous design.
pub fn stack_mono() -> Design {
    Compiler::default()
        .compile_str(sim::designs::PROTOCOL_STACK, "toplevel")
        .expect("stack compiles")
}

/// Compile the protocol stack as three asynchronous tasks.
pub fn stack_parts() -> Vec<Design> {
    Compiler::default()
        .partition(sim::designs::PROTOCOL_STACK, "toplevel")
        .expect("stack partitions")
}

/// Compile the voice pager as one synchronous design.
pub fn pager_mono() -> Design {
    Compiler::default()
        .compile_str(sim::designs::VOICE_PAGER, "pager")
        .expect("pager compiles")
}

/// Compile the voice pager as three asynchronous tasks.
pub fn pager_parts() -> Vec<Design> {
    Compiler::default()
        .partition(sim::designs::VOICE_PAGER, "pager")
        .expect("pager partitions")
}

/// The paper's packet workload (500 packets by default).
pub fn stack_events(packets: usize) -> Vec<InstantEvents> {
    PacketTb {
        packets,
        corrupt_every: 5,
        reset_every: 0,
        seed: 1999,
    }
    .events()
}

/// The pager workload.
pub fn pager_events(rounds: usize) -> Vec<InstantEvents> {
    PagerTb {
        rounds,
        frames: 4,
        seed: 7,
    }
    .events()
}

/// One Table 1 row.
pub fn row(designs: Vec<Design>, events: &[InstantEvents], label: &str) -> Measurement {
    measure(
        designs,
        events,
        label,
        &Default::default(),
        &CostParams::default(),
    )
    .expect("measurement succeeds")
}

/// Compile with an explicit splitter strategy.
pub fn compile_with(src: &str, entry: &str, strategy: ecl_core::SplitStrategy) -> Design {
    Compiler::new(Options { strategy })
        .compile_str(src, entry)
        .expect("compiles")
}
