//! Criterion bench for the Table 1 pipeline (T1): measures the wall
//! time of compiling + running each configuration at reduced workload
//! size (the full 500-packet row generator is `gen_table1`).

use criterion::{criterion_group, criterion_main, Criterion};
use ecl_bench as b;

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    let stack_ev = b::stack_events(10);
    let pager_ev = b::pager_events(2);
    g.bench_function("stack_1task", |bench| {
        bench.iter(|| b::row(vec![b::stack_mono()], &stack_ev, "1 task"))
    });
    g.bench_function("stack_3tasks", |bench| {
        bench.iter(|| b::row(b::stack_parts(), &stack_ev, "3 tasks"))
    });
    g.bench_function("buffer_1task", |bench| {
        bench.iter(|| b::row(vec![b::pager_mono()], &pager_ev, "1 task"))
    });
    g.bench_function("buffer_3tasks", |bench| {
        bench.iter(|| b::row(b::pager_parts(), &pager_ev, "3 tasks"))
    });
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
