//! Ablation benches:
//! A1 — MaxEsterel vs MinEsterel splitting (paper §3 vs §6);
//! A2 — EFSM optimization on/off (paper §3 "logic optimization");
//! A3 — hardware partition: Verilog generation for a pure-control
//!      machine (paper §4: "the CRC computation may be [a] good
//!      candidate for hardware");
//! A4 — delayed vs immediate await (reproduction extension).

use criterion::{criterion_group, criterion_main, Criterion};
use ecl_bench::compile_with;
use ecl_core::SplitStrategy;
use sim::designs::PROTOCOL_STACK;

fn bench_split(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_split");
    g.sample_size(10);
    for (name, strat) in [
        ("max_esterel", SplitStrategy::MaxEsterel),
        ("min_esterel", SplitStrategy::MinEsterel),
    ] {
        g.bench_function(name, |bench| {
            bench.iter(|| {
                let d = compile_with(PROTOCOL_STACK, "toplevel", strat);
                d.to_efsm(&Default::default()).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_opt(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_opt");
    g.sample_size(10);
    let d = compile_with(PROTOCOL_STACK, "toplevel", SplitStrategy::MaxEsterel);
    for (name, optimize) in [("optimized", true), ("unoptimized", false)] {
        g.bench_function(name, |bench| {
            bench.iter(|| {
                d.to_efsm(&esterel::CompileOptions {
                    optimize,
                    ..Default::default()
                })
                .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_hw(c: &mut Criterion) {
    let mut g = c.benchmark_group("hw_partition");
    g.sample_size(20);
    // A pure-control CRC-ready skeleton (the data part is what keeps
    // checkcrc in software; the control skeleton synthesizes).
    let src = "
        module crc_ctl(input pure reset, input pure pkt, output pure done) {
          while (1) { do { await (pkt); emit (done); } abort (reset); }
        }";
    let d = compile_with(src, "crc_ctl", SplitStrategy::MinEsterel);
    let m = d.to_efsm(&Default::default()).unwrap();
    g.bench_function("verilog_emit", |bench| {
        bench.iter(|| codegen::verilog::emit_verilog(&m).unwrap())
    });
    g.finish();
}

fn bench_await(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_await");
    g.sample_size(10);
    for (name, kw) in [("delayed", "await"), ("immediate", "await_immediate")] {
        // The delta after the emission keeps the loop non-instantaneous
        // even when `a` stays present (with `await_immediate` the
        // compiler correctly rejects the loop otherwise).
        let src = format!(
            "module m(input pure a, output pure o) {{ while (1) {{ {kw} (a); emit (o); await (); }} }}"
        );
        g.bench_function(name, |bench| {
            bench.iter(|| {
                let d = compile_with(&src, "m", SplitStrategy::MaxEsterel);
                d.to_efsm(&Default::default()).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_split, bench_opt, bench_hw, bench_await);
criterion_main!(benches);
