//! Reaction-throughput microbenchmarks: the interned-id fast path
//! (`instant_ids` via `run_events`) against the legacy string shim
//! (`instant` via `run_events_names`), on both evaluated designs.
//!
//! Run with `cargo bench -p ecl-bench --bench reaction`.

use criterion::{criterion_group, criterion_main, Criterion};
use ecl_bench::{pager_events, pager_mono, stack_events, stack_mono};
use ecl_core::Design;
use sim::runner::{AsyncRunner, Runner};
use sim::tb::InstantEvents;

const INSTANTS: usize = 1000;

fn runner(design: &Design) -> AsyncRunner {
    AsyncRunner::new(
        vec![design.clone()],
        &Default::default(),
        Default::default(),
        Default::default(),
    )
    .expect("runner builds")
}

fn drive_ids(design: &Design, events: &[InstantEvents]) {
    let mut r = runner(design);
    r.run_events(events, |_, _| {}).expect("run succeeds");
}

fn drive_names(design: &Design, events: &[InstantEvents]) {
    let mut r = runner(design);
    r.run_events_names(events, |_, _| {}).expect("run succeeds");
}

fn bench_reaction(c: &mut Criterion) {
    let stack = stack_mono();
    let mut stack_ev = stack_events(INSTANTS / 65 + 1);
    stack_ev.truncate(INSTANTS);
    let pager = pager_mono();
    let mut pager_ev = pager_events(INSTANTS / 69 + 1);
    pager_ev.truncate(INSTANTS);

    let mut g = c.benchmark_group("reaction");
    g.sample_size(10);
    g.bench_function("stack_ids", |b| b.iter(|| drive_ids(&stack, &stack_ev)));
    g.bench_function("stack_names_shim", |b| {
        b.iter(|| drive_names(&stack, &stack_ev))
    });
    g.bench_function("pager_ids", |b| b.iter(|| drive_ids(&pager, &pager_ev)));
    g.bench_function("pager_names_shim", |b| {
        b.iter(|| drive_names(&pager, &pager_ev))
    });
    g.finish();
}

criterion_group!(benches, bench_reaction);
criterion_main!(benches);
