//! Reaction-throughput microbenchmarks: the interned-id fast path
//! (`instant_ids` via `run_events`) against the legacy string shim
//! (`instant` via `run_events_names`), on both evaluated designs;
//! monitor stepping through fused instant programs vs the s-graph
//! walker; and the whole reaction on `Backend::Compiled`
//! (`data_compiled`: fused rows + bytecode data hooks) vs
//! `Backend::Walker` (`data_walker`: s-graph walk + tree-walking
//! interpreter).
//!
//! Run with `cargo bench -p ecl-bench --bench reaction`.

use criterion::{criterion_group, criterion_main, Criterion};
use ecl_bench::{pager_events, pager_mono, stack_events, stack_mono};
use ecl_core::Design;
use ecl_observe::Monitor;
use efsm::{Backend, BitSet};
use sim::runner::{AsyncRunner, Runner};
use sim::tb::InstantEvents;
use std::sync::Arc;

const INSTANTS: usize = 1000;

fn runner(design: &Design) -> AsyncRunner {
    AsyncRunner::new(
        vec![design.clone()],
        &Default::default(),
        Default::default(),
        Default::default(),
    )
    .expect("runner builds")
}

fn drive_ids(design: &Design, events: &[InstantEvents]) {
    let mut r = runner(design);
    r.run_events(events, |_, _| {}).expect("run succeeds");
}

/// Step every protocol-stack monitor over a fixed stimulus cycle on
/// the chosen backend (compiled tables vs s-graph walk). Synthesis
/// and binding stay outside the timed loop — only stepping is
/// measured; fresh `Monitor` instances per call reset latched state
/// (cheap clones of pre-synthesized specs).
struct MonitorBench {
    specs: Vec<Arc<ecl_observe::MonitorSpec>>,
    table: efsm::SigTable,
    pats: Vec<BitSet>,
}

impl MonitorBench {
    fn new() -> MonitorBench {
        let prog = ecl_syntax::parse_str(sim::designs::PROTOCOL_STACK).expect("stack parses");
        let specs = ecl_observe::synthesize_all(&prog).expect("observers synthesize");
        let mut table = efsm::SigTable::new();
        for s in ["byte", "packet", "crc_ok", "deliver", "reset"] {
            table.intern(s);
        }
        let pats: Vec<BitSet> = (0..4usize)
            .map(|k| (0..5).filter(|b| k != 0 && b % 4 == k - 1).collect())
            .collect();
        MonitorBench { specs, table, pats }
    }

    fn drive(&self, backend: Backend, steps: u64) {
        let mut mons: Vec<Monitor> = self
            .specs
            .iter()
            .map(|s| {
                let mut m = Monitor::new(Arc::clone(s));
                m.set_backend(backend);
                m.bind(&self.table);
                m
            })
            .collect();
        for i in 0..steps {
            let p = &self.pats[(i % 4) as usize];
            for m in mons.iter_mut() {
                m.step_ids(i, p, &self.table);
            }
        }
    }
}

fn drive_names(design: &Design, events: &[InstantEvents]) {
    let mut r = runner(design);
    r.run_events_names(events, |_, _| {}).expect("run succeeds");
}

/// The whole reaction on one backend knob: fused instant programs +
/// bytecode data hooks (`Backend::Compiled`) or the s-graph walker +
/// tree-walking interpreter (`Backend::Walker`).
fn drive_data(design: &Design, events: &[InstantEvents], backend: Backend) {
    let mut r = runner(design);
    r.set_backend(backend);
    r.run_events(events, |_, _| {}).expect("run succeeds");
}

fn bench_reaction(c: &mut Criterion) {
    let stack = stack_mono();
    let mut stack_ev = stack_events(INSTANTS / 65 + 1);
    stack_ev.truncate(INSTANTS);
    let pager = pager_mono();
    let mut pager_ev = pager_events(INSTANTS / 69 + 1);
    pager_ev.truncate(INSTANTS);

    let mut g = c.benchmark_group("reaction");
    g.sample_size(10);
    g.bench_function("stack_ids", |b| b.iter(|| drive_ids(&stack, &stack_ev)));
    g.bench_function("stack_names_shim", |b| {
        b.iter(|| drive_names(&stack, &stack_ev))
    });
    g.bench_function("pager_ids", |b| b.iter(|| drive_ids(&pager, &pager_ev)));
    g.bench_function("pager_names_shim", |b| {
        b.iter(|| drive_names(&pager, &pager_ev))
    });
    g.bench_function("data_compiled", |b| {
        b.iter(|| drive_data(&stack, &stack_ev, Backend::Compiled))
    });
    g.bench_function("data_walker", |b| {
        b.iter(|| drive_data(&stack, &stack_ev, Backend::Walker))
    });
    let mb = MonitorBench::new();
    g.bench_function("monitors_fused", |b| {
        b.iter(|| mb.drive(Backend::Compiled, 10_000))
    });
    g.bench_function("monitors_walked", |b| {
        b.iter(|| mb.drive(Backend::Walker, 10_000))
    });
    g.finish();
}

criterion_group!(benches, bench_reaction);
criterion_main!(benches);
