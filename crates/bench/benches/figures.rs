//! Criterion benches for Figures 1–4 (F1–F4): compile speed of each
//! paper module through the full ECL pipeline (parse → elaborate →
//! split → EFSM).

use criterion::{criterion_group, criterion_main, Criterion};
use ecl_core::Compiler;
use sim::designs::PROTOCOL_STACK;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(20);
    for (fig, module) in [
        ("fig1_assemble", "assemble"),
        ("fig2_checkcrc", "checkcrc"),
        ("fig3_prochdr", "prochdr"),
        ("fig4_toplevel", "toplevel"),
    ] {
        g.bench_function(fig, |bench| {
            bench.iter(|| {
                let d = Compiler::default()
                    .compile_str(PROTOCOL_STACK, module)
                    .unwrap();
                d.to_efsm(&Default::default()).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
