//! Back ends and cost models for compiled ECL designs.
//!
//! Reproduces the synthesis stage of the paper's flow (Section 3, phase
//! 3): "The EFSM is compiled into an optimized software (C) or hardware
//! implementation (VHDL or Verilog)". Three pieces:
//!
//! * [`c_backend`] — emits the C implementation of an EFSM in the POLIS
//!   style: a `switch`-dispatched reaction function whose body is the
//!   state's s-graph, plus the frame struct and the extracted data
//!   functions (printed back with `ecl-syntax`'s pretty printer — the
//!   data sub-language of ECL *is* C);
//! * [`verilog`] — emits synthesizable Verilog RTL for pure-control
//!   machines (the paper: hardware is an option when "the
//!   data-dominated C part is empty"), with a gate estimate;
//! * [`cost`] — a MIPS-R3000-flavoured size/latency model: code and
//!   data bytes per task, an RTOS footprint model, and per-construct
//!   cycle charges used by the simulator. Table 1 of the paper is
//!   regenerated with this model (shape, not absolute bytes — see
//!   EXPERIMENTS.md).

pub mod artifacts;
pub mod c_backend;
pub mod cost;
pub mod verilog;

pub use artifacts::{Artifacts, WorkspaceCodegenExt};
pub use c_backend::emit_monitor_c;
pub use cost::{CostParams, RtosCost, TaskCost};
