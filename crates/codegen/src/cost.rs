//! MIPS-R3000-flavoured cost model.
//!
//! The paper reports code/data memory in bytes and execution time in
//! clock cycles on a MIPS R3000. We do not have that toolchain, so this
//! module models it the way POLIS estimated software cost: charge a
//! fixed number of 4-byte instructions per s-graph node kind and per C
//! AST operator. The absolute constants are calibrated to R3000-era
//! code generation (fixed 32-bit instructions, loads ~2 cycles, ALU 1);
//! what the reproduction relies on is that the model is *monotone and
//! structural*, so comparisons between implementations (the whole point
//! of Table 1) are meaningful.

use ecl_core::Design;
use ecl_syntax::ast::{Expr, ExprKind, Stmt, StmtKind};
use efsm::sgraph::Node;
use efsm::Efsm;

/// Tunable constants of the model (defaults calibrated to the R3000).
#[derive(Debug, Clone, Copy)]
pub struct CostParams {
    /// Bytes per machine instruction (MIPS: fixed 4).
    pub bytes_per_insn: u32,
    /// Instructions per presence test (load flag + branch + delay slot).
    pub insns_test: u32,
    /// Extra instructions per predicate test beyond the expression.
    pub insns_pred_overhead: u32,
    /// Instructions per pure emission (set flag).
    pub insns_emit: u32,
    /// Instructions per valued emission (flag + value copy setup).
    pub insns_emit_valued: u32,
    /// Instructions per Goto leaf (store state + jump).
    pub insns_goto: u32,
    /// Instructions per state dispatch entry (jump table slot).
    pub insns_state_dispatch: u32,
    /// Fixed instructions per task (prologue, scheduler entry).
    pub insns_task_base: u32,
    /// Instructions per I/O port of a task (event detect/emit stubs —
    /// POLIS emits these per CFSM port; a monolithic compilation
    /// internalizes the wires and avoids them).
    pub insns_per_port: u32,
    /// RTOS kernel base code bytes.
    pub rtos_code_base: u32,
    /// RTOS code bytes per task (task stubs, config tables).
    pub rtos_code_per_task: u32,
    /// RTOS data base bytes (kernel structures).
    pub rtos_data_base: u32,
    /// RTOS data bytes per task (TCB + stack).
    pub rtos_data_per_task: u32,
    /// RTOS data bytes per inter-task signal (1-place mailbox header).
    pub rtos_data_per_mailbox: u32,
    // ---- cycle charges (simulation-time) ----
    /// Cycles per presence-test node.
    pub cyc_test: u64,
    /// Cycles per Goto node.
    pub cyc_goto: u64,
    /// Cycles per pure emission.
    pub cyc_emit: u64,
    /// Cycles per interpreter micro-operation (expression/statement
    /// node) inside actions and predicates.
    pub cyc_per_op: u64,
    /// Cycles per byte moved for valued emissions.
    pub cyc_per_value_byte: u64,
    /// Cycles per reaction invocation (call + I/O marshalling).
    pub cyc_reaction_base: u64,
    /// RTOS: cycles per scheduler dispatch.
    pub cyc_rtos_dispatch: u64,
    /// RTOS: cycles per inter-task event delivery.
    pub cyc_rtos_send: u64,
    /// RTOS: cycles per external input buffering.
    pub cyc_rtos_input: u64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            bytes_per_insn: 4,
            insns_test: 3,
            insns_pred_overhead: 2,
            insns_emit: 3,
            insns_emit_valued: 6,
            insns_goto: 2,
            insns_state_dispatch: 2,
            insns_task_base: 30,
            insns_per_port: 10,
            rtos_code_base: 5440,
            rtos_code_per_task: 144,
            rtos_data_base: 1384,
            rtos_data_per_task: 120,
            rtos_data_per_mailbox: 16,
            cyc_test: 3,
            cyc_goto: 2,
            cyc_emit: 4,
            cyc_per_op: 2,
            cyc_per_value_byte: 1,
            cyc_reaction_base: 12,
            cyc_rtos_dispatch: 60,
            cyc_rtos_send: 45,
            cyc_rtos_input: 25,
        }
    }
}

/// Estimated memory footprint of one task (paper Table 1 "Task(s)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TaskCost {
    /// Code bytes of the reaction function + extracted data functions.
    pub code_bytes: u32,
    /// Data bytes: frame + signal value buffers + state variable.
    pub data_bytes: u32,
}

impl std::ops::Add for TaskCost {
    type Output = TaskCost;
    fn add(self, o: TaskCost) -> TaskCost {
        TaskCost {
            code_bytes: self.code_bytes + o.code_bytes,
            data_bytes: self.data_bytes + o.data_bytes,
        }
    }
}

/// Estimated RTOS footprint (paper Table 1 "RTOS" columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RtosCost {
    /// Kernel + per-task stub code bytes.
    pub code_bytes: u32,
    /// Kernel structures, TCBs, stacks, mailboxes.
    pub data_bytes: u32,
}

/// Instruction estimate for a C expression (AST walk).
pub fn expr_insns(e: &Expr) -> u32 {
    match &e.kind {
        ExprKind::IntLit(_) | ExprKind::FloatLit(_) | ExprKind::CharLit(_) => 1,
        ExprKind::StrLit(_) => 2,
        ExprKind::Ident(_) => 2, // address + load (lw)
        ExprKind::Unary(_, x) => 1 + expr_insns(x),
        ExprKind::Binary(_, a, b) => 1 + expr_insns(a) + expr_insns(b),
        ExprKind::Assign(_, a, b) => 2 + expr_insns(a) + expr_insns(b), // store
        ExprKind::PreIncDec(_, x) | ExprKind::PostIncDec(_, x) => 3 + expr_insns(x),
        ExprKind::Ternary(c, t, f) => 2 + expr_insns(c) + expr_insns(t) + expr_insns(f),
        ExprKind::Call(_, args) => {
            4 + args.iter().map(expr_insns).sum::<u32>() // jal + arg moves
        }
        ExprKind::Index(a, i) => 3 + expr_insns(a) + expr_insns(i), // scale+add+load
        ExprKind::Member(a, _) => 1 + expr_insns(a),
        ExprKind::Arrow(a, _) => 2 + expr_insns(a),
        ExprKind::Cast(_, x) => 1 + expr_insns(x),
        ExprKind::SizeofExpr(_) | ExprKind::SizeofType(_) => 1,
        ExprKind::Comma(a, b) => expr_insns(a) + expr_insns(b),
    }
}

/// Instruction estimate for a C statement.
pub fn stmt_insns(s: &Stmt) -> u32 {
    match &s.kind {
        StmtKind::Expr(None) => 0,
        StmtKind::Expr(Some(e)) => expr_insns(e),
        StmtKind::Decl(d) => d
            .decls
            .iter()
            .map(|dec| dec.init.as_ref().map(expr_insns).unwrap_or(0) + 1)
            .sum(),
        StmtKind::Block(b) => b.stmts.iter().map(stmt_insns).sum(),
        StmtKind::If { cond, then, els } => {
            2 + expr_insns(cond) + stmt_insns(then) + els.as_deref().map(stmt_insns).unwrap_or(0)
        }
        StmtKind::While { cond, body } | StmtKind::DoWhile { body, cond } => {
            3 + expr_insns(cond) + stmt_insns(body)
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            3 + init.as_deref().map(stmt_insns).unwrap_or(0)
                + cond.as_ref().map(expr_insns).unwrap_or(0)
                + step.as_ref().map(expr_insns).unwrap_or(0)
                + stmt_insns(body)
        }
        StmtKind::Switch { scrutinee, arms } => {
            4 + expr_insns(scrutinee)
                + arms
                    .iter()
                    .map(|a| 2 + a.stmts.iter().map(stmt_insns).sum::<u32>())
                    .sum::<u32>()
        }
        StmtKind::Break | StmtKind::Continue => 1,
        StmtKind::Return(e) => 2 + e.as_ref().map(expr_insns).unwrap_or(0),
        // Reactive statements never appear in extracted data code.
        _ => 0,
    }
}

/// Estimate one task's footprint from its EFSM and design tables.
///
/// `m` is the compiled machine; `design` provides the extracted action
/// code and the variable frame (sizes resolved via the design's own
/// runtime type table).
pub fn task_cost(m: &Efsm, design: &Design, p: &CostParams) -> TaskCost {
    let mut insns: u64 = p.insns_task_base as u64;
    insns += (m.states.len() as u64) * p.insns_state_dispatch as u64;
    // Port marshalling stubs: one per external input/output signal.
    let ports = m
        .signals
        .iter()
        .filter(|s| s.kind != efsm::SigKind::Local)
        .count() as u64;
    insns += ports * p.insns_per_port as u64;
    // Count each live node once (shared subgraphs are shared code), and
    // each referenced data body once (the C back end emits one static
    // function per action/predicate/value expression; s-graph nodes are
    // *call sites*). This is what makes the paper's monolithic Stack
    // smaller than the 3-task version: the product machine reuses the
    // extracted functions across its branches.
    let mut counted = std::collections::HashSet::new();
    let mut used_actions = std::collections::HashSet::new();
    let mut used_preds = std::collections::HashSet::new();
    let mut used_exprs = std::collections::HashSet::new();
    const INSNS_CALL: u64 = 3; // jal + frame pointer arg + delay slot
    for st in &m.states {
        for id in efsm::sgraph::reachable_nodes(&m.nodes, st.root) {
            if !counted.insert(id) {
                continue;
            }
            insns += match &m.nodes[id.0 as usize] {
                Node::Test { .. } => p.insns_test as u64,
                Node::TestPred { pred, .. } => {
                    used_preds.insert(*pred);
                    (p.insns_pred_overhead as u64) + INSNS_CALL
                }
                Node::Do { action, .. } => {
                    used_actions.insert(*action);
                    INSNS_CALL
                }
                Node::Emit { value, .. } => {
                    if let Some(v) = value {
                        used_exprs.insert(*v);
                        p.insns_emit_valued as u64 + INSNS_CALL
                    } else {
                        p.insns_emit as u64
                    }
                }
                Node::Goto { .. } => p.insns_goto as u64,
            };
        }
    }
    // Bodies, once each.
    for a in used_actions {
        let stmts = &design.split.data.actions[a.0 as usize];
        insns += stmts.iter().map(stmt_insns).sum::<u32>() as u64 + 2; // prologue/ret
    }
    for pr in used_preds {
        let e = &design.split.data.preds[pr.0 as usize];
        insns += expr_insns(e) as u64 + 2;
    }
    for v in used_exprs {
        let (e, _) = &design.split.data.emit_exprs[v.0 as usize];
        insns += expr_insns(e) as u64 + 2;
    }
    let code_bytes = (insns as u32) * p.bytes_per_insn;
    // Data: frame variables + valued-signal buffers + 4B state word +
    // one status byte per signal (rounded up to 4).
    let mut data_bytes = 4u32;
    if let Ok(rt) = design.new_rt() {
        let table = rt.machine().table();
        for v in &design.elab.vars {
            if let Some(val) = rt.machine().get(&v.name) {
                let _ = val;
            }
            // Resolve through the runtime's frame (already built).
            if let Some(val) = rt.machine().get(&v.name) {
                data_bytes += val.bytes.len() as u32;
            }
        }
        for (i, s) in design.elab.signals.iter().enumerate() {
            if !s.pure {
                if let Some(v) = rt.signal_value(i) {
                    data_bytes += v.bytes.len() as u32;
                }
            }
        }
        let _ = table;
    }
    data_bytes += (design.elab.signals.len() as u32).div_ceil(4) * 4;
    TaskCost {
        code_bytes,
        data_bytes,
    }
}

/// Estimate the RTOS footprint for `tasks` tasks exchanging
/// `mailbox_bytes` of buffered signal values.
pub fn rtos_cost(tasks: u32, mailboxes: u32, mailbox_bytes: u32, p: &CostParams) -> RtosCost {
    RtosCost {
        code_bytes: p.rtos_code_base + p.rtos_code_per_task * tasks,
        data_bytes: p.rtos_data_base
            + p.rtos_data_per_task * tasks
            + p.rtos_data_per_mailbox * mailboxes
            + mailbox_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_core::Compiler;

    fn design(src: &str, entry: &str) -> Design {
        Compiler::default()
            .compile_str(src, entry)
            .expect("compile")
    }

    const SIMPLE: &str = "
        module m(input pure a, output pure o) {
          int n;
          while (1) { await (a); n = n + 1; emit (o); }
        }";

    #[test]
    fn cost_is_positive_and_monotone_in_states() {
        let d = design(SIMPLE, "m");
        let m = d.to_efsm(&Default::default()).unwrap();
        let p = CostParams::default();
        let c = task_cost(&m, &d, &p);
        assert!(c.code_bytes > p.insns_task_base * p.bytes_per_insn);
        assert!(c.data_bytes >= 8); // state word + n (int)
    }

    #[test]
    fn bigger_program_costs_more() {
        let d1 = design(SIMPLE, "m");
        let big_src = "
            module m(input pure a, input pure b, output pure o, output pure q) {
              int n; int k;
              par {
                while (1) { await (a); n = n + 1; emit (o); }
                while (1) { await (b); k = k + 2; emit (q); }
              }
            }";
        let d2 = design(big_src, "m");
        let p = CostParams::default();
        let m1 = d1.to_efsm(&Default::default()).unwrap();
        let m2 = d2.to_efsm(&Default::default()).unwrap();
        let c1 = task_cost(&m1, &d1, &p);
        let c2 = task_cost(&m2, &d2, &p);
        assert!(c2.code_bytes > c1.code_bytes);
        assert!(c2.data_bytes > c1.data_bytes);
    }

    #[test]
    fn rtos_footprint_slopes_match_calibration() {
        let p = CostParams::default();
        let one = rtos_cost(1, 0, 0, &p);
        let three = rtos_cost(3, 0, 0, &p);
        // Calibrated against the paper's Stack rows: 5584/5872 code,
        // 1504/1744 data.
        assert_eq!(one.code_bytes, 5584);
        assert_eq!(three.code_bytes, 5872);
        assert_eq!(one.data_bytes, 1504);
        assert_eq!(three.data_bytes, 1744);
    }

    #[test]
    fn expr_cost_scales_with_size() {
        use ecl_syntax::parse_str;
        let p = parse_str("void t() { int x; x = 1; x = (x + 2) * (x - 3) + x / 4; }").unwrap();
        let f = p.functions().next().unwrap();
        let b = f.body.as_ref().unwrap();
        let small = stmt_insns(&b.stmts[1]);
        let large = stmt_insns(&b.stmts[2]);
        assert!(large > small);
    }

    #[test]
    fn optimization_reduces_code_cost() {
        let d = design(SIMPLE, "m");
        let p = CostParams::default();
        let unopt = d
            .to_efsm(&esterel::CompileOptions {
                optimize: false,
                ..Default::default()
            })
            .unwrap();
        let mut opt = unopt.clone();
        efsm::opt::optimize(&mut opt);
        let c_un = task_cost(&unopt, &d, &p);
        let c_op = task_cost(&opt, &d, &p);
        assert!(c_op.code_bytes <= c_un.code_bytes);
    }
}
