//! The terminal pipeline stage: generated implementation artifacts.
//!
//! Lowers a compiled [`ecl_core::pipeline::Machine`] to the paper's
//! synthesis outputs (Section 3, phase 3): the C task implementation,
//! optionally Verilog RTL (hardware is an option when the machine is
//! pure control), a gate estimate, and the MIPS-flavoured size model.
//!
//! Batch emission over a whole [`ecl_core::workspace::Workspace`] is
//! provided by [`WorkspaceCodegenExt`].

use crate::c_backend::emit_c;
use crate::cost::{task_cost, CostParams, TaskCost};
use crate::verilog::{emit_verilog, estimate_gates, GateEstimate};
use ecl_core::pipeline::Machine;
use ecl_core::workspace::Workspace;
use ecl_core::Design;
use ecl_syntax::diag::{Diagnostics, EclError, Stage};
use ecl_syntax::source::Span;
use efsm::Efsm;

/// Stage 6: everything the back ends produce for one design.
#[derive(Debug, Clone)]
pub struct Artifacts {
    entry: String,
    c: String,
    verilog: Option<String>,
    gates: GateEstimate,
    cost: TaskCost,
    diags: Diagnostics,
}

impl Artifacts {
    /// Advance a pipeline [`Machine`] to its implementation artifacts
    /// with the default cost model.
    ///
    /// # Errors
    ///
    /// [`EclError`] with stage `codegen`.
    pub fn emit(machine: &Machine) -> Result<Artifacts, EclError> {
        Self::emit_with(machine, &CostParams::default())
    }

    /// [`Artifacts::emit`] with an explicit cost model.
    ///
    /// # Errors
    ///
    /// [`EclError`] with stage `codegen`.
    pub fn emit_with(machine: &Machine, params: &CostParams) -> Result<Artifacts, EclError> {
        let design = machine.design();
        let mut out = Self::from_parts(&design, machine.efsm(), params)?;
        // Carry the pipeline's accumulated diagnostics forward.
        let mut diags = machine.diagnostics().clone();
        diags.merge(std::mem::take(&mut out.diags));
        out.diags = diags;
        Ok(out)
    }

    /// Build artifacts from a legacy `(Design, Efsm)` pair (what a
    /// [`Workspace`] caches).
    ///
    /// # Errors
    ///
    /// [`EclError`] with stage `codegen`.
    pub fn from_parts(
        design: &Design,
        efsm: &Efsm,
        params: &CostParams,
    ) -> Result<Artifacts, EclError> {
        let c = emit_c(efsm, design);
        let mut diags = Diagnostics::new();
        let verilog = match emit_verilog(efsm) {
            Ok(v) => Some(v),
            Err(e) => {
                // Not an error: the paper keeps data-dominated machines
                // in software; hardware is an *option* for pure control.
                diags.note(
                    Stage::Codegen,
                    format!("no hardware option: {e}"),
                    Span::dummy(),
                );
                None
            }
        };
        Ok(Artifacts {
            entry: design.entry.clone(),
            c,
            verilog,
            gates: estimate_gates(efsm),
            cost: task_cost(efsm, design, params),
            diags,
        })
    }

    /// The design's entry module.
    pub fn entry(&self) -> &str {
        &self.entry
    }

    /// The generated C implementation.
    pub fn c(&self) -> &str {
        &self.c
    }

    /// The generated Verilog RTL, if the machine had a hardware option
    /// (pure control).
    pub fn verilog(&self) -> Option<&str> {
        self.verilog.as_deref()
    }

    /// The Verilog RTL, or a `codegen`-stage error explaining why the
    /// design has no hardware option.
    ///
    /// # Errors
    ///
    /// [`EclError`] with stage `codegen`.
    pub fn require_verilog(&self) -> Result<&str, EclError> {
        self.verilog.as_deref().ok_or_else(|| {
            EclError::msg(
                Stage::Codegen,
                format!(
                    "design `{}` has no hardware option (data-dominated machine)",
                    self.entry
                ),
                Span::dummy(),
            )
        })
    }

    /// Gate estimate for the control structure.
    pub fn gates(&self) -> GateEstimate {
        self.gates
    }

    /// Code/data size estimate under the cost model.
    pub fn cost(&self) -> TaskCost {
        self.cost
    }

    /// Diagnostics accumulated across all stages, including codegen
    /// notes (e.g. why no Verilog was produced).
    pub fn diagnostics(&self) -> &Diagnostics {
        &self.diags
    }
}

/// Batch code generation over a [`Workspace`] — the codegen side of
/// the session API. Designs and EFSMs come from the workspace's
/// memoized caches; machine compilation for a batch runs in parallel
/// via [`Workspace::machine_all`].
pub trait WorkspaceCodegenExt {
    /// Full artifacts per `(source, entry)` job, in job order.
    fn artifacts_all(&self, jobs: &[(&str, &str)]) -> Vec<Result<Artifacts, EclError>>;

    /// C implementation per job, in job order.
    fn emit_c_all(&self, jobs: &[(&str, &str)]) -> Vec<Result<String, EclError>>;

    /// Verilog RTL per job, in job order (errors for designs with no
    /// hardware option).
    fn emit_verilog_all(&self, jobs: &[(&str, &str)]) -> Vec<Result<String, EclError>>;
}

impl WorkspaceCodegenExt for Workspace {
    fn artifacts_all(&self, jobs: &[(&str, &str)]) -> Vec<Result<Artifacts, EclError>> {
        let machines = self.machine_all(jobs);
        jobs.iter()
            .zip(machines)
            .map(|((name, entry), machine)| {
                let efsm = machine?;
                let design = self.compile(name, entry)?;
                Artifacts::from_parts(&design, &efsm, &CostParams::default())
            })
            .collect()
    }

    fn emit_c_all(&self, jobs: &[(&str, &str)]) -> Vec<Result<String, EclError>> {
        // C-only path: no Verilog, gate estimation or cost modelling.
        let machines = self.machine_all(jobs);
        jobs.iter()
            .zip(machines)
            .map(|((name, entry), machine)| {
                let efsm = machine?;
                let design = self.compile(name, entry)?;
                Ok(emit_c(&efsm, &design))
            })
            .collect()
    }

    fn emit_verilog_all(&self, jobs: &[(&str, &str)]) -> Vec<Result<String, EclError>> {
        self.artifacts_all(jobs)
            .into_iter()
            .map(|r| r.and_then(|a| a.require_verilog().map(str::to_owned)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_core::pipeline::Source;

    const CTL: &str = "
        module ctl(input pure go, input pure reset, output pure done) {
          while (1) { do { await (go); emit (done); } abort (reset); }
        }";

    #[test]
    fn artifacts_from_pipeline_machine() {
        let machine = Source::new(CTL).finish("ctl").unwrap();
        let a = Artifacts::emit(&machine).unwrap();
        assert!(a.c().contains("ctl"), "C names the design");
        // Pure control: the hardware option exists.
        assert!(a.verilog().is_some());
        assert!(a.gates().flops >= 1);
        assert!(a.cost().code_bytes > 0);
    }

    #[test]
    fn data_design_has_no_hardware_option() {
        let src = "
            module m(input pure a, output pure o) {
              int x;
              while (1) { await (a); x = x + 1; emit (o); } }";
        let machine = Source::new(src).finish("m").unwrap();
        let a = Artifacts::emit(&machine).unwrap();
        assert!(a.verilog().is_none());
        let e = a.require_verilog().unwrap_err();
        assert_eq!(e.stage(), Stage::Codegen);
        // The reason is recorded as a note.
        assert!(!a.diagnostics().is_empty());
    }

    #[test]
    fn batch_codegen_over_workspace() {
        let mut ws = Workspace::new();
        ws.add_source(
            "two.ecl",
            "module x(input pure a, output pure o) { while (1) { await (a); emit (o); } }
             module y(input pure b, output pure p) { while (1) { await (b); emit (p); } }",
        );
        let jobs = [("two.ecl", "x"), ("two.ecl", "y")];
        let cs = ws.emit_c_all(&jobs);
        assert!(cs.iter().all(Result::is_ok));
        let vs = ws.emit_verilog_all(&jobs);
        assert!(vs.iter().all(Result::is_ok));
    }
}
