//! The lexer: raw text to [`Token`] stream.
//!
//! Handles C-style comments (`/* */` and `//`), all C operators used by
//! the ECL subset, decimal/hex/octal integer literals, float literals,
//! character and string literals with the common escapes, and keywords.
//! Preprocessor lines are *not* interpreted here; `#` is lexed as a
//! token and handled by [`crate::pp`].

use crate::diag::DiagSink;
use crate::source::{SourceFile, Span};
use crate::token::{Keyword, Punct, Token, TokenKind};

/// Lex an entire file into tokens (always terminated by `Eof`).
pub fn lex(file: &SourceFile, sink: &mut DiagSink) -> Vec<Token> {
    Lexer::new(file, sink).run()
}

struct Lexer<'a> {
    text: &'a [u8],
    pos: usize,
    sink: &'a mut DiagSink,
    at_line_start: bool,
}

impl<'a> Lexer<'a> {
    fn new(file: &'a SourceFile, sink: &'a mut DiagSink) -> Self {
        Lexer {
            text: file.text().as_bytes(),
            pos: 0,
            sink,
            at_line_start: true,
        }
    }

    fn run(mut self) -> Vec<Token> {
        let mut toks = Vec::new();
        loop {
            self.skip_trivia();
            let start = self.pos as u32;
            let line_start = self.at_line_start;
            let Some(c) = self.peek() else {
                toks.push(Token {
                    kind: TokenKind::Eof,
                    span: Span::new(start, start),
                    at_line_start: line_start,
                });
                return toks;
            };
            let kind = self.next_kind(c);
            let span = Span::new(start, self.pos as u32);
            if let Some(kind) = kind {
                toks.push(Token {
                    kind,
                    span,
                    at_line_start: line_start,
                });
                self.at_line_start = false;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.text.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.text.get(self.pos + 1).copied()
    }

    fn peek3(&self) -> Option<u8> {
        self.text.get(self.pos + 2).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    /// Skip whitespace and comments, tracking line starts.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b'\n') => {
                    self.pos += 1;
                    self.at_line_start = true;
                }
                Some(c) if c.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos as u32;
                    self.pos += 2;
                    let mut closed = false;
                    while let Some(c) = self.bump() {
                        if c == b'*' && self.peek() == Some(b'/') {
                            self.pos += 1;
                            closed = true;
                            break;
                        }
                        if c == b'\n' {
                            self.at_line_start = true;
                        }
                    }
                    if !closed {
                        self.sink.error(
                            "unterminated block comment",
                            Span::new(start, self.pos as u32),
                        );
                    }
                }
                _ => return,
            }
        }
    }

    fn next_kind(&mut self, c: u8) -> Option<TokenKind> {
        if c.is_ascii_alphabetic() || c == b'_' {
            return Some(self.ident_or_kw());
        }
        if c.is_ascii_digit() {
            return Some(self.number());
        }
        match c {
            b'\'' => Some(self.char_lit()),
            b'"' => Some(self.string_lit()),
            _ => self.punct(),
        }
    }

    fn ident_or_kw(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.text[start..self.pos]).expect("ascii identifier");
        match Keyword::from_str(s) {
            Some(kw) => TokenKind::Kw(kw),
            None => TokenKind::Ident(s.to_string()),
        }
    }

    fn number(&mut self) -> TokenKind {
        let start = self.pos;
        // Hex.
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.pos += 2;
            let hs = self.pos;
            while let Some(c) = self.peek() {
                if c.is_ascii_hexdigit() {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            let digits = std::str::from_utf8(&self.text[hs..self.pos]).expect("hex digits");
            let val = i64::from_str_radix(digits, 16).unwrap_or_else(|_| {
                self.sink.error(
                    "hex literal out of range",
                    Span::new(start as u32, self.pos as u32),
                );
                0
            });
            self.eat_int_suffix();
            return TokenKind::IntLit(val);
        }
        // Decimal / octal / float.
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                self.pos += 1;
            } else {
                break;
            }
        }
        let is_float = self.peek() == Some(b'.')
            && self.peek2().is_some_and(|c| c.is_ascii_digit())
            || matches!(self.peek(), Some(b'e') | Some(b'E'))
                && (self.peek2().is_some_and(|c| c.is_ascii_digit())
                    || matches!(self.peek2(), Some(b'+') | Some(b'-'))
                        && self.peek3().is_some_and(|c| c.is_ascii_digit()));
        if is_float {
            if self.peek() == Some(b'.') {
                self.pos += 1;
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            if matches!(self.peek(), Some(b'e') | Some(b'E')) {
                self.pos += 1;
                if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                    self.pos += 1;
                }
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            if matches!(self.peek(), Some(b'f') | Some(b'F')) {
                self.pos += 1;
            }
            let s = std::str::from_utf8(&self.text[start..self.pos]).expect("float digits");
            let s = s.trim_end_matches(['f', 'F']);
            let val: f64 = s.parse().unwrap_or_else(|_| {
                self.sink.error(
                    "malformed float literal",
                    Span::new(start as u32, self.pos as u32),
                );
                0.0
            });
            return TokenKind::FloatLit(val);
        }
        let s = std::str::from_utf8(&self.text[start..self.pos]).expect("digits");
        let val = if s.len() > 1 && s.starts_with('0') {
            i64::from_str_radix(&s[1..], 8).ok()
        } else {
            s.parse::<i64>().ok()
        };
        let val = val.unwrap_or_else(|| {
            self.sink.error(
                "integer literal out of range",
                Span::new(start as u32, self.pos as u32),
            );
            0
        });
        self.eat_int_suffix();
        TokenKind::IntLit(val)
    }

    fn eat_int_suffix(&mut self) {
        while matches!(
            self.peek(),
            Some(b'u') | Some(b'U') | Some(b'l') | Some(b'L')
        ) {
            self.pos += 1;
        }
    }

    fn escape(&mut self, quote_span_start: usize) -> u8 {
        match self.bump() {
            Some(b'n') => b'\n',
            Some(b't') => b'\t',
            Some(b'r') => b'\r',
            Some(b'0') => 0,
            Some(b'\\') => b'\\',
            Some(b'\'') => b'\'',
            Some(b'"') => b'"',
            Some(c) => {
                self.sink.error(
                    format!("unknown escape `\\{}`", c as char),
                    Span::new(quote_span_start as u32, self.pos as u32),
                );
                c
            }
            None => {
                self.sink.error(
                    "unterminated escape",
                    Span::new(quote_span_start as u32, self.pos as u32),
                );
                0
            }
        }
    }

    fn char_lit(&mut self) -> TokenKind {
        let start = self.pos;
        self.pos += 1; // opening quote
        let v = match self.bump() {
            Some(b'\\') => self.escape(start),
            Some(b'\'') => {
                self.sink.error(
                    "empty char literal",
                    Span::new(start as u32, self.pos as u32),
                );
                return TokenKind::CharLit(0);
            }
            Some(c) => c,
            None => {
                self.sink.error(
                    "unterminated char literal",
                    Span::new(start as u32, self.pos as u32),
                );
                return TokenKind::CharLit(0);
            }
        };
        if self.peek() == Some(b'\'') {
            self.pos += 1;
        } else {
            self.sink.error(
                "unterminated char literal",
                Span::new(start as u32, self.pos as u32),
            );
        }
        TokenKind::CharLit(v)
    }

    fn string_lit(&mut self) -> TokenKind {
        let start = self.pos;
        self.pos += 1; // opening quote
        let mut out = Vec::new();
        loop {
            match self.bump() {
                Some(b'"') => break,
                Some(b'\\') => out.push(self.escape(start)),
                Some(b'\n') | None => {
                    self.sink.error(
                        "unterminated string literal",
                        Span::new(start as u32, self.pos as u32),
                    );
                    break;
                }
                Some(c) => out.push(c),
            }
        }
        TokenKind::StrLit(String::from_utf8_lossy(&out).into_owned())
    }

    fn punct(&mut self) -> Option<TokenKind> {
        use Punct::*;
        let c = self.bump().expect("caller checked peek");
        let two = |l: &mut Self, p: Punct| {
            l.pos += 1;
            Some(TokenKind::Punct(p))
        };
        let p = match c {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b';' => Semi,
            b',' => Comma,
            b'?' => Question,
            b'.' => Dot,
            b'~' => Tilde,
            b'#' => Hash,
            b':' => Colon,
            b'+' => match self.peek() {
                Some(b'+') => return two(self, PlusPlus),
                Some(b'=') => return two(self, PlusEq),
                _ => Plus,
            },
            b'-' => match self.peek() {
                Some(b'-') => return two(self, MinusMinus),
                Some(b'=') => return two(self, MinusEq),
                Some(b'>') => return two(self, Arrow),
                _ => Minus,
            },
            b'*' => match self.peek() {
                Some(b'=') => return two(self, StarEq),
                _ => Star,
            },
            b'/' => match self.peek() {
                Some(b'=') => return two(self, SlashEq),
                _ => Slash,
            },
            b'%' => match self.peek() {
                Some(b'=') => return two(self, PercentEq),
                _ => Percent,
            },
            b'^' => match self.peek() {
                Some(b'=') => return two(self, CaretEq),
                _ => Caret,
            },
            b'!' => match self.peek() {
                Some(b'=') => return two(self, BangEq),
                _ => Bang,
            },
            b'=' => match self.peek() {
                Some(b'=') => return two(self, EqEq),
                _ => Eq,
            },
            b'&' => match self.peek() {
                Some(b'&') => return two(self, AmpAmp),
                Some(b'=') => return two(self, AmpEq),
                _ => Amp,
            },
            b'|' => match self.peek() {
                Some(b'|') => return two(self, PipePipe),
                Some(b'=') => return two(self, PipeEq),
                _ => Pipe,
            },
            b'<' => match self.peek() {
                Some(b'<') => {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        return two(self, ShlEq);
                    }
                    Shl
                }
                Some(b'=') => return two(self, Le),
                _ => Lt,
            },
            b'>' => match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        return two(self, ShrEq);
                    }
                    Shr
                }
                Some(b'=') => return two(self, Ge),
                _ => Gt,
            },
            other => {
                self.sink.error(
                    format!("unexpected character `{}`", other as char),
                    Span::new(self.pos as u32 - 1, self.pos as u32),
                );
                return None;
            }
        };
        Some(TokenKind::Punct(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex_ok(s: &str) -> Vec<TokenKind> {
        let f = SourceFile::new("t", s);
        let mut sink = DiagSink::new();
        let toks = lex(&f, &mut sink);
        assert!(!sink.has_errors(), "unexpected errors: {sink}");
        toks.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        let toks = lex_ok("module m await emit_v foo_bar");
        assert_eq!(
            toks,
            vec![
                TokenKind::Kw(Keyword::Module),
                TokenKind::Ident("m".into()),
                TokenKind::Kw(Keyword::Await),
                TokenKind::Kw(Keyword::EmitV),
                TokenKind::Ident("foo_bar".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        let toks = lex_ok("0 42 0x1F 017 1.5 2e3 6u 7L");
        assert_eq!(
            toks,
            vec![
                TokenKind::IntLit(0),
                TokenKind::IntLit(42),
                TokenKind::IntLit(31),
                TokenKind::IntLit(15),
                TokenKind::FloatLit(1.5),
                TokenKind::FloatLit(2000.0),
                TokenKind::IntLit(6),
                TokenKind::IntLit(7),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_multi_char_operators() {
        let toks = lex_ok("<<= >>= << >> <= >= == != && || -> ++ --");
        use Punct::*;
        let expect = [
            ShlEq, ShrEq, Shl, Shr, Le, Ge, EqEq, BangEq, AmpAmp, PipePipe, Arrow, PlusPlus,
            MinusMinus,
        ];
        for (i, p) in expect.iter().enumerate() {
            assert_eq!(toks[i], TokenKind::Punct(*p));
        }
    }

    #[test]
    fn lexes_strings_and_chars() {
        let toks = lex_ok(r#"'a' '\n' "hi\tthere""#);
        assert_eq!(toks[0], TokenKind::CharLit(b'a'));
        assert_eq!(toks[1], TokenKind::CharLit(b'\n'));
        assert_eq!(toks[2], TokenKind::StrLit("hi\tthere".into()));
    }

    #[test]
    fn skips_comments() {
        let toks = lex_ok("a /* multi\nline */ b // tail\nc");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn tracks_line_starts() {
        let f = SourceFile::new("t", "#define X 1\nY");
        let mut sink = DiagSink::new();
        let toks = lex(&f, &mut sink);
        assert!(toks[0].at_line_start); // '#'
        assert!(!toks[1].at_line_start); // 'define'
        assert!(toks[4].at_line_start); // 'Y'
    }

    #[test]
    fn reports_unterminated_comment() {
        let f = SourceFile::new("t", "/* never closed");
        let mut sink = DiagSink::new();
        let _ = lex(&f, &mut sink);
        assert!(sink.has_errors());
    }

    #[test]
    fn reports_stray_characters() {
        let f = SourceFile::new("t", "a @ b");
        let mut sink = DiagSink::new();
        let toks = lex(&f, &mut sink);
        assert!(sink.has_errors());
        // Lexing continues past the bad character.
        assert_eq!(toks.len(), 3); // a, b, eof
    }
}
