//! Pretty-printer: AST back to ECL source text.
//!
//! Used for golden tests (parse → print → parse round-trips), for
//! debugging the splitter (printing extracted data fragments), and by
//! the C back end in `codegen` (extracted data statements are printed
//! with this module since the data sub-language of ECL *is* C).

use crate::ast::*;
use std::fmt::Write as _;

/// Pretty-print a whole program.
pub fn program(p: &Program) -> String {
    let mut pr = Printer::new();
    for item in &p.items {
        pr.item(item);
    }
    pr.out
}

/// Pretty-print one statement (top-level indent).
pub fn stmt(s: &Stmt) -> String {
    let mut pr = Printer::new();
    pr.stmt(s);
    pr.out
}

/// Pretty-print one expression.
pub fn expr(e: &Expr) -> String {
    let mut pr = Printer::new();
    pr.expr(e);
    pr.out
}

/// Pretty-print a signal expression.
pub fn sigexpr(e: &SigExpr) -> String {
    let mut pr = Printer::new();
    pr.sigexpr(e);
    pr.out
}

/// Pretty-print a type with a declarator name, C style
/// (`int x[4]`, `char *p`).
pub fn typed_name(ty: &TypeRef, name: &str) -> String {
    let mut pr = Printer::new();
    pr.typed_name(ty, name);
    pr.out
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn new() -> Self {
        Printer {
            out: String::new(),
            indent: 0,
        }
    }

    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn open(&mut self, s: &str) {
        self.line(s);
        self.indent += 1;
    }

    fn close(&mut self, s: &str) {
        self.indent -= 1;
        self.line(s);
    }

    fn item(&mut self, item: &Item) {
        match item {
            Item::Typedef(t) => {
                let decl = typed_name(&t.ty, &t.name.name);
                self.line(&format!("typedef {decl};"));
            }
            Item::TypeDecl(ty) => {
                let s = type_str(ty);
                self.line(&format!("{s};"));
            }
            Item::Global(v) => {
                let s = self.var_decl_str(v);
                self.line(&s);
            }
            Item::Function(f) => {
                let params: Vec<String> = f
                    .params
                    .iter()
                    .map(|p| typed_name(&p.ty, &p.name.name))
                    .collect();
                let head = format!(
                    "{} {}({})",
                    type_str(&f.ret),
                    f.name.name,
                    if params.is_empty() {
                        "void".to_string()
                    } else {
                        params.join(", ")
                    }
                );
                match &f.body {
                    Some(b) => {
                        self.open(&format!("{head} {{"));
                        for s in &b.stmts {
                            self.stmt(s);
                        }
                        self.close("}");
                    }
                    None => self.line(&format!("{head};")),
                }
            }
            Item::Module(m) => {
                let params: Vec<String> = m
                    .params
                    .iter()
                    .map(|p| {
                        let dir = match p.dir {
                            SignalDir::Input => "input",
                            SignalDir::Output => "output",
                        };
                        match (&p.ty, p.pure) {
                            (_, true) => format!("{dir} pure {}", p.name.name),
                            (Some(t), false) => format!("{dir} {} {}", type_str(t), p.name.name),
                            (None, false) => format!("{dir} {}", p.name.name),
                        }
                    })
                    .collect();
                self.open(&format!("module {}({}) {{", m.name.name, params.join(", ")));
                for s in &m.body.stmts {
                    self.stmt(s);
                }
                self.close("}");
            }
            Item::Observer(o) => {
                let params: Vec<String> = o
                    .params
                    .iter()
                    .map(|p| match (&p.ty, p.pure) {
                        (_, true) => format!("input pure {}", p.name.name),
                        (Some(t), false) => format!("input {} {}", type_str(t), p.name.name),
                        (None, false) => format!("input {}", p.name.name),
                    })
                    .collect();
                self.open(&format!(
                    "observer {}({}) {{",
                    o.name.name,
                    params.join(", ")
                ));
                for p in &o.props {
                    let s = property_str(p);
                    self.line(&s);
                }
                self.close("}");
            }
        }
    }

    fn var_decl_str(&mut self, v: &VarDecl) -> String {
        let mut parts = Vec::new();
        for d in &v.decls {
            let mut s = typed_name(&d.ty, &d.name.name);
            if let Some(init) = &d.init {
                let mut p = Printer::new();
                p.expr(init);
                let _ = write!(s, " = {}", p.out);
            }
            parts.push(s);
        }
        format!("{};", parts.join("; "))
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Expr(None) => self.line(";"),
            StmtKind::Expr(Some(e)) => {
                let mut p = Printer::new();
                p.expr(e);
                self.line(&format!("{};", p.out));
            }
            StmtKind::Decl(v) => {
                let s = self.var_decl_str(v);
                self.line(&s);
            }
            StmtKind::Signal(sd) => {
                let s = match (&sd.ty, sd.pure) {
                    (_, true) => format!("signal pure {};", sd.name.name),
                    (Some(t), false) => format!("signal {} {};", type_str(t), sd.name.name),
                    (None, false) => format!("signal {};", sd.name.name),
                };
                self.line(&s);
            }
            StmtKind::Block(b) => {
                self.open("{");
                for st in &b.stmts {
                    self.stmt(st);
                }
                self.close("}");
            }
            StmtKind::If { cond, then, els } => {
                let mut p = Printer::new();
                p.expr(cond);
                self.open(&format!("if ({}) {{", p.out));
                self.stmt_inner(then);
                match els {
                    Some(e) => {
                        self.indent -= 1;
                        self.line("} else {");
                        self.indent += 1;
                        self.stmt_inner(e);
                        self.close("}");
                    }
                    None => self.close("}"),
                }
            }
            StmtKind::While { cond, body } => {
                let mut p = Printer::new();
                p.expr(cond);
                self.open(&format!("while ({}) {{", p.out));
                self.stmt_inner(body);
                self.close("}");
            }
            StmtKind::DoWhile { body, cond } => {
                self.open("do {");
                self.stmt_inner(body);
                let mut p = Printer::new();
                p.expr(cond);
                self.close(&format!("}} while ({});", p.out));
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                let init_s = match init {
                    Some(s) => {
                        let mut p = Printer::new();
                        p.stmt(s);
                        p.out.trim().trim_end_matches(';').to_string()
                    }
                    None => String::new(),
                };
                let cond_s = cond.as_ref().map(expr).unwrap_or_default();
                let step_s = step.as_ref().map(expr).unwrap_or_default();
                self.open(&format!("for ({init_s}; {cond_s}; {step_s}) {{"));
                self.stmt_inner(body);
                self.close("}");
            }
            StmtKind::Switch { scrutinee, arms } => {
                let mut p = Printer::new();
                p.expr(scrutinee);
                self.open(&format!("switch ({}) {{", p.out));
                for arm in arms {
                    match &arm.value {
                        Some(v) => {
                            let mut p = Printer::new();
                            p.expr(v);
                            self.line(&format!("case {}:", p.out));
                        }
                        None => self.line("default:"),
                    }
                    self.indent += 1;
                    for st in &arm.stmts {
                        self.stmt(st);
                    }
                    self.indent -= 1;
                }
                self.close("}");
            }
            StmtKind::Break => self.line("break;"),
            StmtKind::Continue => self.line("continue;"),
            StmtKind::Return(None) => self.line("return;"),
            StmtKind::Return(Some(e)) => {
                let mut p = Printer::new();
                p.expr(e);
                self.line(&format!("return {};", p.out));
            }
            StmtKind::Await(None) => self.line("await ();"),
            StmtKind::Await(Some(e)) => {
                let mut p = Printer::new();
                p.sigexpr(e);
                self.line(&format!("await ({});", p.out));
            }
            StmtKind::AwaitImmediate(e) => {
                let mut p = Printer::new();
                p.sigexpr(e);
                self.line(&format!("await_immediate ({});", p.out));
            }
            StmtKind::Emit(n) => self.line(&format!("emit ({});", n.name)),
            StmtKind::EmitV(n, v) => {
                let mut p = Printer::new();
                p.expr(v);
                self.line(&format!("emit_v ({}, {});", n.name, p.out));
            }
            StmtKind::Halt => self.line("halt ();"),
            StmtKind::Present { cond, then, els } => {
                let mut p = Printer::new();
                p.sigexpr(cond);
                self.open(&format!("present ({}) {{", p.out));
                self.stmt_inner(then);
                match els {
                    Some(e) => {
                        self.indent -= 1;
                        self.line("} else {");
                        self.indent += 1;
                        self.stmt_inner(e);
                        self.close("}");
                    }
                    None => self.close("}"),
                }
            }
            StmtKind::Abort {
                body,
                kind,
                cond,
                handle,
            } => {
                self.open("do {");
                self.stmt_inner(body);
                let kw = match kind {
                    AbortKind::Strong => "abort",
                    AbortKind::Weak => "weak_abort",
                };
                let mut p = Printer::new();
                p.sigexpr(cond);
                match handle {
                    Some(h) => {
                        self.indent -= 1;
                        self.line(&format!("}} {kw} ({}) handle {{", p.out));
                        self.indent += 1;
                        self.stmt_inner(h);
                        self.close("}");
                    }
                    None => self.close(&format!("}} {kw} ({});", p.out)),
                }
            }
            StmtKind::Suspend { body, cond } => {
                self.open("do {");
                self.stmt_inner(body);
                let mut p = Printer::new();
                p.sigexpr(cond);
                self.close(&format!("}} suspend ({});", p.out));
            }
            StmtKind::Par(branches) => {
                self.open("par {");
                for b in branches {
                    self.stmt(b);
                }
                self.close("}");
            }
        }
    }

    /// Print a statement that is the body of a braced construct: unwrap
    /// one block level to avoid doubled braces.
    fn stmt_inner(&mut self, s: &Stmt) {
        if let StmtKind::Block(b) = &s.kind {
            for st in &b.stmts {
                self.stmt(st);
            }
        } else {
            self.stmt(s);
        }
    }

    fn typed_name(&mut self, ty: &TypeRef, name: &str) {
        // Collect array dims from outside in.
        let mut dims = Vec::new();
        let mut cur = ty;
        while let TypeRefKind::Array(inner, len) = &cur.kind {
            dims.push(len.clone());
            cur = inner;
        }
        let mut prefix = String::new();
        let mut base = cur;
        while let TypeRefKind::Pointer(inner) = &base.kind {
            prefix.push('*');
            base = inner;
        }
        let _ = write!(self.out, "{} {prefix}{name}", type_str(base));
        for d in dims {
            match d {
                Some(e) => {
                    let mut p = Printer::new();
                    p.expr(&e);
                    let _ = write!(self.out, "[{}]", p.out);
                }
                None => {
                    let _ = write!(self.out, "[]");
                }
            }
        }
    }

    fn sigexpr(&mut self, e: &SigExpr) {
        match &e.kind {
            SigExprKind::Sig(id) => self.out.push_str(&id.name),
            SigExprKind::Not(inner) => {
                self.out.push('~');
                let needs_paren =
                    matches!(inner.kind, SigExprKind::And(_, _) | SigExprKind::Or(_, _));
                if needs_paren {
                    self.out.push('(');
                }
                self.sigexpr(inner);
                if needs_paren {
                    self.out.push(')');
                }
            }
            SigExprKind::And(a, b) => {
                self.sig_operand(a, true);
                self.out.push_str(" & ");
                self.sig_operand(b, true);
            }
            SigExprKind::Or(a, b) => {
                self.sig_operand(a, false);
                self.out.push_str(" | ");
                self.sig_operand(b, false);
            }
        }
    }

    fn sig_operand(&mut self, e: &SigExpr, in_and: bool) {
        let needs_paren = in_and && matches!(e.kind, SigExprKind::Or(_, _));
        if needs_paren {
            self.out.push('(');
        }
        self.sigexpr(e);
        if needs_paren {
            self.out.push(')');
        }
    }

    fn expr(&mut self, e: &Expr) {
        self.expr_prec(e, 0);
    }

    /// Precedence of an expression node for parenthesization.
    fn prec(e: &Expr) -> u8 {
        match &e.kind {
            ExprKind::Comma(_, _) => 1,
            ExprKind::Assign(_, _, _) => 2,
            ExprKind::Ternary(_, _, _) => 3,
            ExprKind::Binary(op, _, _) => match op {
                BinOp::LogOr => 4,
                BinOp::LogAnd => 5,
                BinOp::BitOr => 6,
                BinOp::BitXor => 7,
                BinOp::BitAnd => 8,
                BinOp::Eq | BinOp::Ne => 9,
                BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge => 10,
                BinOp::Shl | BinOp::Shr => 11,
                BinOp::Add | BinOp::Sub => 12,
                BinOp::Mul | BinOp::Div | BinOp::Rem => 13,
            },
            ExprKind::Unary(_, _)
            | ExprKind::PreIncDec(_, _)
            | ExprKind::Cast(_, _)
            | ExprKind::SizeofExpr(_)
            | ExprKind::SizeofType(_) => 14,
            _ => 15,
        }
    }

    fn expr_prec(&mut self, e: &Expr, min: u8) {
        let p = Self::prec(e);
        let paren = p < min;
        if paren {
            self.out.push('(');
        }
        match &e.kind {
            ExprKind::IntLit(v) => {
                let _ = write!(self.out, "{v}");
            }
            ExprKind::FloatLit(v) => {
                let _ = write!(self.out, "{v:?}");
            }
            ExprKind::CharLit(c) => {
                let _ = write!(self.out, "'{}'", (*c as char).escape_default());
            }
            ExprKind::StrLit(s) => {
                let _ = write!(self.out, "{s:?}");
            }
            ExprKind::Ident(id) => self.out.push_str(&id.name),
            ExprKind::Unary(op, inner) => {
                let s = match op {
                    UnOp::Neg => "-",
                    UnOp::Plus => "+",
                    UnOp::Not => "!",
                    UnOp::BitNot => "~",
                    UnOp::Deref => "*",
                    UnOp::AddrOf => "&",
                };
                self.out.push_str(s);
                self.expr_prec(inner, 14);
            }
            ExprKind::Binary(op, a, b) => {
                self.expr_prec(a, p);
                let _ = write!(self.out, " {} ", op.as_str());
                self.expr_prec(b, p + 1);
            }
            ExprKind::Assign(op, a, b) => {
                self.expr_prec(a, 15);
                let _ = write!(self.out, " {} ", op.as_str());
                self.expr_prec(b, 2);
            }
            ExprKind::PreIncDec(inc, inner) => {
                self.out.push_str(if *inc { "++" } else { "--" });
                self.expr_prec(inner, 14);
            }
            ExprKind::PostIncDec(inc, inner) => {
                self.expr_prec(inner, 15);
                self.out.push_str(if *inc { "++" } else { "--" });
            }
            ExprKind::Ternary(c, t, f) => {
                self.expr_prec(c, 4);
                self.out.push_str(" ? ");
                self.expr_prec(t, 2);
                self.out.push_str(" : ");
                self.expr_prec(f, 2);
            }
            ExprKind::Call(name, args) => {
                self.out.push_str(&name.name);
                self.out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr_prec(a, 2);
                }
                self.out.push(')');
            }
            ExprKind::Index(a, i) => {
                self.expr_prec(a, 15);
                self.out.push('[');
                self.expr_prec(i, 0);
                self.out.push(']');
            }
            ExprKind::Member(a, f) => {
                self.expr_prec(a, 15);
                let _ = write!(self.out, ".{}", f.name);
            }
            ExprKind::Arrow(a, f) => {
                self.expr_prec(a, 15);
                let _ = write!(self.out, "->{}", f.name);
            }
            ExprKind::Cast(ty, inner) => {
                let _ = write!(self.out, "({}) ", type_str(ty));
                self.expr_prec(inner, 14);
            }
            ExprKind::SizeofType(ty) => {
                let _ = write!(self.out, "sizeof({})", type_str(ty));
            }
            ExprKind::SizeofExpr(inner) => {
                self.out.push_str("sizeof ");
                self.expr_prec(inner, 14);
            }
            ExprKind::Comma(a, b) => {
                self.expr_prec(a, 1);
                self.out.push_str(", ");
                self.expr_prec(b, 2);
            }
        }
        if paren {
            self.out.push(')');
        }
    }
}

/// Render one observer property as source text.
pub fn property_str(p: &Property) -> String {
    match &p.kind {
        PropertyKind::Always(e) => format!("always ({});", sigexpr(e)),
        PropertyKind::Never(e) => format!("never ({});", sigexpr(e)),
        PropertyKind::EventuallyWithin(n, e) => {
            format!("eventually_within {n} ({});", sigexpr(e))
        }
        PropertyKind::Response {
            trigger,
            response,
            within,
        } => format!(
            "whenever ({}) expect ({}) within {within};",
            sigexpr(trigger),
            sigexpr(response)
        ),
    }
}

/// Render a type (without declarator name).
pub fn type_str(ty: &TypeRef) -> String {
    match &ty.kind {
        TypeRefKind::Prim(p) => prim_str(*p).to_string(),
        TypeRefKind::Named(id) => id.name.clone(),
        TypeRefKind::Struct(r) => record_str("struct", r),
        TypeRefKind::Union(r) => record_str("union", r),
        TypeRefKind::Enum(e) => {
            let mut s = String::from("enum");
            if let Some(t) = &e.tag {
                let _ = write!(s, " {}", t.name);
            }
            if let Some(vs) = &e.variants {
                s.push_str(" { ");
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    s.push_str(&v.name.name);
                    if let Some(val) = &v.value {
                        let _ = write!(s, " = {}", expr(val));
                    }
                }
                s.push_str(" }");
            }
            s
        }
        TypeRefKind::Pointer(inner) => format!("{} *", type_str(inner)),
        TypeRefKind::Array(inner, len) => {
            let l = len.as_ref().map(|e| expr(e)).unwrap_or_default();
            format!("{}[{l}]", type_str(inner))
        }
    }
}

fn record_str(kw: &str, r: &RecordRef) -> String {
    let mut s = String::from(kw);
    if let Some(t) = &r.tag {
        let _ = write!(s, " {}", t.name);
    }
    if let Some(fields) = &r.fields {
        s.push_str(" { ");
        for f in fields {
            let _ = write!(s, "{}; ", typed_name(&f.ty, &f.name.name));
        }
        s.push('}');
    }
    s
}

fn prim_str(p: PrimType) -> &'static str {
    match p {
        PrimType::Void => "void",
        PrimType::Bool => "bool",
        PrimType::Char => "char",
        PrimType::UChar => "unsigned char",
        PrimType::Short => "short",
        PrimType::UShort => "unsigned short",
        PrimType::Int => "int",
        PrimType::UInt => "unsigned int",
        PrimType::Long => "long",
        PrimType::ULong => "unsigned long",
        PrimType::Float => "float",
        PrimType::Double => "double",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_str;

    /// Parse, print, re-parse: the two ASTs must match (modulo spans,
    /// which `PartialEq` on the AST does compare — so we compare printed
    /// forms instead).
    fn round_trip(src: &str) {
        let p1 = parse_str(src).expect("first parse");
        let printed = program(&p1);
        let p2 = parse_str(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed:\n{e}\nprinted:\n{printed}"));
        let printed2 = program(&p2);
        assert_eq!(printed, printed2, "printing is not a fixed point");
    }

    #[test]
    fn round_trips_modules() {
        round_trip(
            "typedef unsigned char byte;\
             module m(input pure r, input byte b, output pure o) {\
               int cnt;\
               while (1) { do { await (b); cnt = cnt + 1; emit (o); } abort (r); } }",
        );
    }

    #[test]
    fn round_trips_expressions() {
        round_trip(
            "module m(input pure a) { int x; int y;\
               x = (1 + 2) * 3 - -y;\
               x <<= 2; x = y > 0 ? x : -x;\
               x = x & ~y | 4 ^ 2; }",
        );
    }

    #[test]
    fn round_trips_reactive_forms() {
        round_trip(
            "module m(input pure a, input pure b, output pure o) {\
               signal pure k;\
               par {\
                 do { halt (); } abort (a & ~b) handle { emit (o); }\
                 do { await (k); } suspend (b);\
                 present (a | b) { emit (o); } else { emit (k); }\
               } }",
        );
    }

    #[test]
    fn round_trips_c_constructs() {
        round_trip(
            "int f(int n) { int acc; for (acc = 0; n > 0; n--) { acc += n; } return acc; }\
             module m(input int v) { int x; switch (v) { case 1: x = 1; break; default: x = 0; } }",
        );
    }

    #[test]
    fn prints_arrays_c_style() {
        let p = parse_str("module m(input pure a) { int buf[4][2]; }").unwrap();
        let s = program(&p);
        assert!(s.contains("int buf[4][2];"), "got: {s}");
    }
}
