//! Syntax front end for the ECL language (Esterel/C Language, DAC 1999).
//!
//! This crate owns everything between raw source text and a typed-but-
//! unchecked abstract syntax tree:
//!
//! * [`source`] — source files, byte spans, line/column mapping;
//! * [`diag`] — structured diagnostics collected in a [`diag::DiagSink`];
//! * [`token`] / [`lexer`] — the C-plus-ECL token set and the lexer;
//! * [`pp`] — a small preprocessor handling object-like `#define`;
//! * [`ast`] — the abstract syntax tree (C subset + ECL reactive forms);
//! * [`parser`] — recursive-descent / Pratt parser producing [`ast::Program`];
//! * [`pretty`] — a pretty-printer that round-trips the AST to ECL text.
//!
//! The grammar follows the paper: ANSI-C style declarations, expressions
//! and statements, plus `module`, `signal`, `await`, `emit`, `emit_v`,
//! `halt`, `present`, `do .. abort/weak_abort/suspend (.. handle ..)` and
//! `par`. See `DESIGN.md` at the repository root for the few places where
//! the paper's examples required an interpretation call.
//!
//! # Example
//!
//! ```
//! use ecl_syntax::parse_str;
//! let program = parse_str("module m(input pure tick, output pure tock) { \
//!     while (1) { await (tick); emit (tock); } }").expect("parses");
//! assert_eq!(program.modules().count(), 1);
//! ```

pub mod ast;
pub mod diag;
pub mod fxmap;
pub mod lexer;
pub mod parser;
pub mod pp;
pub mod pretty;
pub mod source;
pub mod token;

pub use ast::Program;
pub use diag::{DiagSink, Diagnostic, Diagnostics, EclError, Severity, Stage};
pub use fxmap::{FxHashMap, FxHasher};
pub use source::{SourceFile, Span};

/// Parse a complete ECL translation unit from a string.
///
/// Convenience wrapper that builds a [`SourceFile`], runs the
/// preprocessor, lexer and parser, and returns the [`Program`] on
/// success.
///
/// # Errors
///
/// Returns the accumulated [`DiagSink`] if any error-severity
/// diagnostic was produced.
pub fn parse_str(text: &str) -> Result<Program, DiagSink> {
    parse_named(text, "<input>")
}

/// Parse a complete ECL translation unit, labelling diagnostics with
/// `name` as the file name.
///
/// # Errors
///
/// Returns the accumulated [`DiagSink`] if any error-severity
/// diagnostic was produced.
pub fn parse_named(text: &str, name: &str) -> Result<Program, DiagSink> {
    let (program, sink) = parse_collect(text, name);
    if sink.has_errors() {
        Err(sink)
    } else {
        Ok(program)
    }
}

/// Parse a translation unit, returning the program *and* every
/// diagnostic produced — including warnings and notes on success.
///
/// This is the entry point the staged pipeline uses: the [`DiagSink`]
/// is absorbed into the pipeline's cross-stage
/// [`diag::Diagnostics`] so later stages carry parse warnings along.
/// Callers decide how to treat errors (check
/// [`DiagSink::has_errors`]).
pub fn parse_collect(text: &str, name: &str) -> (Program, DiagSink) {
    let file = SourceFile::new(name, text);
    let mut sink = DiagSink::new();
    let toks = pp::preprocess(&file, &mut sink);
    let program = parser::Parser::new(&file, toks, &mut sink).parse_program();
    (program, sink)
}
