//! Source files and spans.
//!
//! A [`SourceFile`] owns the text of one translation unit; a [`Span`] is a
//! half-open byte range into that text. Spans are attached to every token,
//! AST node and diagnostic so that errors can be reported with line and
//! column numbers.

use std::fmt;

/// A half-open byte range `[start, end)` into a [`SourceFile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Create a span covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: u32, end: u32) -> Self {
        assert!(start <= end, "span start must not exceed end");
        Span { start, end }
    }

    /// A zero-length placeholder span (used for synthesized nodes).
    pub fn dummy() -> Self {
        Span { start: 0, end: 0 }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Whether the span covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A line/column position (both 1-based) computed from a [`Span`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (byte-based within the line).
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One source file: a name (for diagnostics) plus its full text.
#[derive(Debug, Clone)]
pub struct SourceFile {
    name: String,
    text: String,
    /// Byte offsets at which each line starts; `line_starts[0] == 0`.
    line_starts: Vec<u32>,
}

impl SourceFile {
    /// Build a source file, precomputing the line table.
    pub fn new(name: impl Into<String>, text: impl Into<String>) -> Self {
        let text = text.into();
        let mut line_starts = vec![0u32];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceFile {
            name: name.into(),
            text,
            line_starts,
        }
    }

    /// The file name used in diagnostics.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The complete source text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The text slice covered by `span`.
    ///
    /// # Panics
    ///
    /// Panics if the span is out of bounds for this file.
    pub fn snippet(&self, span: Span) -> &str {
        &self.text[span.start as usize..span.end as usize]
    }

    /// Line/column of a byte offset.
    pub fn line_col(&self, offset: u32) -> LineCol {
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line_idx as u32 + 1,
            col: offset - self.line_starts[line_idx] + 1,
        }
    }

    /// Line/column of the start of `span`.
    pub fn span_start(&self, span: Span) -> LineCol {
        self.line_col(span.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join_and_len() {
        let a = Span::new(2, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.to(b), Span::new(2, 9));
        assert_eq!(b.to(a), Span::new(2, 9));
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Span::dummy().is_empty());
    }

    #[test]
    #[should_panic(expected = "span start")]
    fn span_rejects_inverted_range() {
        let _ = Span::new(5, 2);
    }

    #[test]
    fn line_col_mapping() {
        let f = SourceFile::new("t.ecl", "ab\ncd\n\nxyz");
        assert_eq!(f.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(f.line_col(1), LineCol { line: 1, col: 2 });
        assert_eq!(f.line_col(3), LineCol { line: 2, col: 1 });
        assert_eq!(f.line_col(6), LineCol { line: 3, col: 1 });
        assert_eq!(f.line_col(7), LineCol { line: 4, col: 1 });
        assert_eq!(f.line_col(9), LineCol { line: 4, col: 3 });
    }

    #[test]
    fn snippet_extracts_text() {
        let f = SourceFile::new("t.ecl", "hello world");
        assert_eq!(f.snippet(Span::new(6, 11)), "world");
    }
}
