//! Recursive-descent parser for ECL (C subset + reactive statements).
//!
//! Expressions use a Pratt parser with the full C precedence table.
//! The classic C ambiguities are resolved the classic way:
//!
//! * *cast vs. parenthesized expression* — `(T) x` is a cast iff `T`
//!   starts a type (builtin keyword, `struct`/`union`/`enum`, or a name
//!   the parser has seen in a `typedef`);
//! * *declaration vs. expression statement* — a statement starting with
//!   a type-starting token is a declaration;
//! * *`do..while` vs. `do..abort/suspend`* — decided by the keyword
//!   following the body.

use crate::ast::*;
use crate::diag::DiagSink;
use crate::source::{SourceFile, Span};
use crate::token::{Keyword as Kw, Punct, Token, TokenKind};
use std::collections::HashSet;

/// The parser state over a preprocessed token stream.
pub struct Parser<'a> {
    toks: Vec<Token>,
    pos: usize,
    sink: &'a mut DiagSink,
    /// Names introduced by `typedef` (needed for cast/decl disambiguation).
    typedefs: HashSet<String>,
}

impl<'a> Parser<'a> {
    /// Create a parser over `toks` (must be `Eof`-terminated).
    ///
    /// The `SourceFile` argument is kept in the signature for symmetry
    /// with the other phases (and future use by error rendering) but the
    /// parser itself only needs the tokens.
    pub fn new(_file: &'a SourceFile, toks: Vec<Token>, sink: &'a mut DiagSink) -> Self {
        Parser {
            toks,
            pos: 0,
            sink,
            typedefs: HashSet::new(),
        }
    }

    // -- token helpers ----------------------------------------------------

    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos.min(self.toks.len() - 1)].kind
    }

    fn peek_nth(&self, n: usize) -> &TokenKind {
        &self.toks[(self.pos + n).min(self.toks.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.toks[self.pos.min(self.toks.len() - 1)].span
    }

    fn prev_span(&self) -> Span {
        self.toks[self.pos.saturating_sub(1).min(self.toks.len() - 1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, p: Punct) -> bool {
        matches!(self.peek(), TokenKind::Punct(q) if *q == p)
    }

    fn at_kw(&self, k: Kw) -> bool {
        matches!(self.peek(), TokenKind::Kw(q) if *q == k)
    }

    fn eat(&mut self, p: Punct) -> bool {
        if self.at(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, k: Kw) -> bool {
        if self.at_kw(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, p: Punct) -> Span {
        if self.at(p) {
            self.bump().span
        } else {
            let msg = format!(
                "expected `{}`, found {}",
                p.as_str(),
                self.peek().describe()
            );
            let sp = self.span();
            self.sink.error(msg, sp);
            sp
        }
    }

    fn expect_kw(&mut self, k: Kw) {
        if self.at_kw(k) {
            self.bump();
        } else {
            let msg = format!(
                "expected keyword `{}`, found {}",
                k.as_str(),
                self.peek().describe()
            );
            let sp = self.span();
            self.sink.error(msg, sp);
        }
    }

    fn expect_ident(&mut self) -> Ident {
        if let TokenKind::Ident(_) = self.peek() {
            let t = self.bump();
            let TokenKind::Ident(name) = t.kind else {
                unreachable!()
            };
            Ident { name, span: t.span }
        } else {
            let sp = self.span();
            self.sink.error(
                format!("expected identifier, found {}", self.peek().describe()),
                sp,
            );
            Ident::new("<error>", sp)
        }
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    /// Skip tokens until a likely statement/item boundary.
    fn synchronize(&mut self) {
        let mut depth = 0usize;
        while !self.at_eof() {
            match self.peek() {
                TokenKind::Punct(Punct::Semi) if depth == 0 => {
                    self.bump();
                    return;
                }
                TokenKind::Punct(Punct::LBrace) => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::Punct(Punct::RBrace) => {
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                    self.bump();
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    // -- program ------------------------------------------------------------

    /// Parse the whole translation unit.
    pub fn parse_program(mut self) -> Program {
        let mut items = Vec::new();
        while !self.at_eof() {
            let before = self.pos;
            if let Some(item) = self.item() {
                items.push(item);
            }
            if self.pos == before {
                // Defensive: never loop without progress.
                self.bump();
            }
        }
        Program { items }
    }

    fn item(&mut self) -> Option<Item> {
        if self.at_kw(Kw::Typedef) {
            return self.typedef_item();
        }
        if self.at_kw(Kw::Module) {
            return self.module_item();
        }
        // `observer` is a *contextual* keyword: it introduces an item
        // only when followed by a name (and not shadowed by a typedef),
        // so existing C code may keep using it — and the property words
        // inside observer bodies — as ordinary identifiers.
        if self.at_ctx_kw("observer")
            && !self.typedefs.contains("observer")
            && matches!(self.peek_nth(1), TokenKind::Ident(_))
        {
            return self.observer_item();
        }
        // `struct tag { .. };` style free-standing type declarations.
        if (self.at_kw(Kw::Struct) || self.at_kw(Kw::Union) || self.at_kw(Kw::Enum))
            && self.is_freestanding_type_decl()
        {
            let ty = self.type_specifier()?;
            self.expect(Punct::Semi);
            return Some(Item::TypeDecl(ty));
        }
        // Otherwise: function or global.
        self.function_or_global()
    }

    /// Look ahead: `struct X { .. } ;` or `struct { .. } ;` with no declarator.
    fn is_freestanding_type_decl(&self) -> bool {
        // struct [ident] { ... } ;   — find matching brace then `;`
        let mut i = self.pos + 1;
        if matches!(self.toks.get(i).map(|t| &t.kind), Some(TokenKind::Ident(_))) {
            i += 1;
        }
        if !matches!(
            self.toks.get(i).map(|t| &t.kind),
            Some(TokenKind::Punct(Punct::LBrace))
        ) {
            return false;
        }
        let mut depth = 0usize;
        while let Some(t) = self.toks.get(i) {
            match t.kind {
                TokenKind::Punct(Punct::LBrace) => depth += 1,
                TokenKind::Punct(Punct::RBrace) => {
                    depth -= 1;
                    if depth == 0 {
                        return matches!(
                            self.toks.get(i + 1).map(|t| &t.kind),
                            Some(TokenKind::Punct(Punct::Semi))
                        );
                    }
                }
                TokenKind::Eof => return false,
                _ => {}
            }
            i += 1;
        }
        false
    }

    fn typedef_item(&mut self) -> Option<Item> {
        let start = self.span();
        self.expect_kw(Kw::Typedef);
        let base = self.type_specifier()?;
        let (name, ty, _init) = self.declarator(base)?;
        self.expect(Punct::Semi);
        self.typedefs.insert(name.name.clone());
        Some(Item::Typedef(Typedef {
            ty,
            name,
            span: start.to(self.prev_span()),
        }))
    }

    fn module_item(&mut self) -> Option<Item> {
        let start = self.span();
        self.expect_kw(Kw::Module);
        let name = self.expect_ident();
        self.expect(Punct::LParen);
        let mut params = Vec::new();
        if !self.at(Punct::RParen) {
            loop {
                if let Some(p) = self.signal_param() {
                    params.push(p);
                }
                if !self.eat(Punct::Comma) {
                    break;
                }
            }
        }
        self.expect(Punct::RParen);
        let body = self.block()?;
        Some(Item::Module(Module {
            name,
            params,
            body,
            span: start.to(self.prev_span()),
        }))
    }

    // -- contextual keywords (observer sub-language) ----------------------

    fn at_ctx_kw(&self, word: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(n) if n == word)
    }

    fn eat_ctx_kw(&mut self, word: &str) -> bool {
        if self.at_ctx_kw(word) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ctx_kw(&mut self, word: &str) {
        if !self.eat_ctx_kw(word) {
            let sp = self.span();
            self.sink.error(
                format!("expected `{word}`, found {}", self.peek().describe()),
                sp,
            );
        }
    }

    fn observer_item(&mut self) -> Option<Item> {
        let start = self.span();
        self.expect_ctx_kw("observer");
        let name = self.expect_ident();
        self.expect(Punct::LParen);
        let mut params = Vec::new();
        if !self.at(Punct::RParen) {
            loop {
                if let Some(p) = self.signal_param() {
                    if p.dir == SignalDir::Output {
                        self.sink.error(
                            "observer signals must be `input` (observers never emit into the design)",
                            p.span,
                        );
                    }
                    params.push(p);
                }
                if !self.eat(Punct::Comma) {
                    break;
                }
            }
        }
        self.expect(Punct::RParen);
        self.expect(Punct::LBrace);
        let mut props = Vec::new();
        while !self.at(Punct::RBrace) && !self.at_eof() {
            let before = self.pos;
            match self.property() {
                Some(p) => props.push(p),
                None => self.synchronize(),
            }
            if self.pos == before {
                self.bump();
            }
        }
        self.expect(Punct::RBrace);
        Some(Item::Observer(Observer {
            name,
            params,
            props,
            span: start.to(self.prev_span()),
        }))
    }

    /// One temporal property inside an `observer` body.
    fn property(&mut self) -> Option<Property> {
        let start = self.span();
        let kind = if self.eat_ctx_kw("always") {
            PropertyKind::Always(self.paren_sigexpr()?)
        } else if self.eat_ctx_kw("never") {
            PropertyKind::Never(self.paren_sigexpr()?)
        } else if self.eat_ctx_kw("eventually_within") {
            let n = self.window_bound()?;
            PropertyKind::EventuallyWithin(n, self.paren_sigexpr()?)
        } else if self.eat_ctx_kw("whenever") {
            let trigger = self.paren_sigexpr()?;
            self.expect_ctx_kw("expect");
            let response = self.paren_sigexpr()?;
            let within = if self.eat_ctx_kw("within") {
                self.window_bound()?
            } else {
                0
            };
            PropertyKind::Response {
                trigger,
                response,
                within,
            }
        } else {
            let sp = self.span();
            self.sink.error(
                format!(
                    "expected `always`, `never`, `eventually_within` or `whenever`, found {}",
                    self.peek().describe()
                ),
                sp,
            );
            return None;
        };
        self.expect(Punct::Semi);
        Some(Property {
            kind,
            span: start.to(self.prev_span()),
        })
    }

    fn paren_sigexpr(&mut self) -> Option<SigExpr> {
        self.expect(Punct::LParen);
        let e = self.sigexpr()?;
        self.expect(Punct::RParen);
        Some(e)
    }

    /// A non-negative instant count (window length), capped at
    /// [`MAX_WINDOW`] — monitor states are linear in the bound.
    fn window_bound(&mut self) -> Option<u32> {
        if let TokenKind::IntLit(v) = *self.peek() {
            let sp = self.span();
            self.bump();
            match u32::try_from(v) {
                Ok(n) if n <= MAX_WINDOW => Some(n),
                _ => {
                    self.sink.error(
                        format!("window bound must be between 0 and {MAX_WINDOW} instants"),
                        sp,
                    );
                    None
                }
            }
        } else {
            let sp = self.span();
            self.sink.error(
                format!("expected instant count, found {}", self.peek().describe()),
                sp,
            );
            None
        }
    }

    fn signal_param(&mut self) -> Option<SignalParam> {
        let start = self.span();
        let dir = if self.eat_kw(Kw::Input) {
            SignalDir::Input
        } else if self.eat_kw(Kw::Output) {
            SignalDir::Output
        } else {
            let sp = self.span();
            self.sink.error(
                format!(
                    "expected `input` or `output` in signal parameter, found {}",
                    self.peek().describe()
                ),
                sp,
            );
            return None;
        };
        let (pure, ty) = self.signal_type()?;
        let name = self.expect_ident();
        Some(SignalParam {
            dir,
            pure,
            ty,
            name,
            span: start.to(self.prev_span()),
        })
    }

    /// Parse `pure` or a value type for a signal parameter/declaration.
    fn signal_type(&mut self) -> Option<(bool, Option<TypeRef>)> {
        if self.eat_kw(Kw::Pure) {
            Some((true, None))
        } else {
            let ty = self.type_specifier()?;
            Some((false, Some(ty)))
        }
    }

    fn function_or_global(&mut self) -> Option<Item> {
        let start = self.span();
        let base = match self.type_specifier() {
            Some(t) => t,
            None => {
                self.synchronize();
                return None;
            }
        };
        // Pointer stars belong to the declarator.
        let mut ty = base.clone();
        while self.eat(Punct::Star) {
            let sp = ty.span;
            ty = TypeRef {
                kind: TypeRefKind::Pointer(Box::new(ty)),
                span: sp,
            };
        }
        let name = self.expect_ident();
        if self.at(Punct::LParen) {
            // Function.
            self.bump();
            let mut params = Vec::new();
            if !self.at(Punct::RParen) {
                if self.at_kw(Kw::Void)
                    && matches!(self.peek_nth(1), TokenKind::Punct(Punct::RParen))
                {
                    self.bump(); // `(void)`
                } else {
                    loop {
                        let pty = self.type_specifier()?;
                        let (pname, pty, _) = self.declarator(pty)?;
                        params.push(FnParam {
                            ty: pty,
                            name: pname,
                        });
                        if !self.eat(Punct::Comma) {
                            break;
                        }
                    }
                }
            }
            self.expect(Punct::RParen);
            let body = if self.eat(Punct::Semi) {
                None
            } else {
                Some(self.block()?)
            };
            return Some(Item::Function(Function {
                ret: ty,
                name,
                params,
                body,
                span: start.to(self.prev_span()),
            }));
        }
        // Global variable(s).
        let first = self.declarator_suffix(ty, name)?;
        let mut decls = vec![first];
        while self.eat(Punct::Comma) {
            let (n2, t2, i2) = self.declarator(base.clone())?;
            decls.push(Declarator {
                name: n2,
                ty: t2,
                init: i2,
            });
        }
        self.expect(Punct::Semi);
        Some(Item::Global(VarDecl {
            decls,
            span: start.to(self.prev_span()),
        }))
    }

    // -- types ---------------------------------------------------------------

    /// Does the current token start a type?
    fn starts_type(&self) -> bool {
        match self.peek() {
            TokenKind::Kw(k) => matches!(
                k,
                Kw::Void
                    | Kw::Bool
                    | Kw::Char
                    | Kw::Short
                    | Kw::Int
                    | Kw::Long
                    | Kw::Float
                    | Kw::Double
                    | Kw::Signed
                    | Kw::Unsigned
                    | Kw::Struct
                    | Kw::Union
                    | Kw::Enum
                    | Kw::Const
                    | Kw::Static
                    | Kw::Extern
            ),
            TokenKind::Ident(n) => self.typedefs.contains(n),
            _ => false,
        }
    }

    /// Parse a type specifier (no declarator parts).
    fn type_specifier(&mut self) -> Option<TypeRef> {
        let start = self.span();
        // Skip (and ignore) storage/qualifier keywords.
        while self.eat_kw(Kw::Const) || self.eat_kw(Kw::Static) || self.eat_kw(Kw::Extern) {}
        if self.at_kw(Kw::Struct) || self.at_kw(Kw::Union) {
            let is_union = self.at_kw(Kw::Union);
            self.bump();
            let rec = self.record_ref()?;
            let kind = if is_union {
                TypeRefKind::Union(rec)
            } else {
                TypeRefKind::Struct(rec)
            };
            return Some(TypeRef {
                kind,
                span: start.to(self.prev_span()),
            });
        }
        if self.eat_kw(Kw::Enum) {
            let e = self.enum_ref()?;
            return Some(TypeRef {
                kind: TypeRefKind::Enum(e),
                span: start.to(self.prev_span()),
            });
        }
        // Scalar keyword combinations.
        let mut signed: Option<bool> = None;
        let mut base: Option<PrimType> = None;
        while let TokenKind::Kw(k) = self.peek() {
            let k = *k;
            match k {
                Kw::Signed => {
                    signed = Some(true);
                    self.bump();
                }
                Kw::Unsigned => {
                    signed = Some(false);
                    self.bump();
                }
                Kw::Void => {
                    base = Some(PrimType::Void);
                    self.bump();
                    break;
                }
                Kw::Bool => {
                    base = Some(PrimType::Bool);
                    self.bump();
                    break;
                }
                Kw::Char => {
                    base = Some(PrimType::Char);
                    self.bump();
                    break;
                }
                Kw::Short => {
                    base = Some(PrimType::Short);
                    self.bump();
                    self.eat_kw(Kw::Int);
                    break;
                }
                Kw::Int => {
                    base = Some(PrimType::Int);
                    self.bump();
                    break;
                }
                Kw::Long => {
                    base = Some(PrimType::Long);
                    self.bump();
                    self.eat_kw(Kw::Int);
                    break;
                }
                Kw::Float => {
                    base = Some(PrimType::Float);
                    self.bump();
                    break;
                }
                Kw::Double => {
                    base = Some(PrimType::Double);
                    self.bump();
                    break;
                }
                _ => break,
            }
        }
        let kind = match (signed, base) {
            (None, None) => {
                // Typedef name?
                if let TokenKind::Ident(n) = self.peek() {
                    if self.typedefs.contains(n) {
                        let id = self.expect_ident();
                        TypeRefKind::Named(id)
                    } else {
                        let sp = self.span();
                        self.sink.error(
                            format!("expected type, found {}", self.peek().describe()),
                            sp,
                        );
                        return None;
                    }
                } else {
                    let sp = self.span();
                    self.sink.error(
                        format!("expected type, found {}", self.peek().describe()),
                        sp,
                    );
                    return None;
                }
            }
            (Some(s), None) => {
                // bare `signed` / `unsigned` means int
                if s {
                    TypeRefKind::Prim(PrimType::Int)
                } else {
                    TypeRefKind::Prim(PrimType::UInt)
                }
            }
            (sign, Some(b)) => {
                let prim = match (sign, b) {
                    (Some(false), PrimType::Char) => PrimType::UChar,
                    (Some(false), PrimType::Short) => PrimType::UShort,
                    (Some(false), PrimType::Int) => PrimType::UInt,
                    (Some(false), PrimType::Long) => PrimType::ULong,
                    (_, b) => b,
                };
                TypeRefKind::Prim(prim)
            }
        };
        Some(TypeRef {
            kind,
            span: start.to(self.prev_span()),
        })
    }

    fn record_ref(&mut self) -> Option<RecordRef> {
        let tag = if let TokenKind::Ident(_) = self.peek() {
            Some(self.expect_ident())
        } else {
            None
        };
        let fields = if self.eat(Punct::LBrace) {
            let mut fields = Vec::new();
            while !self.at(Punct::RBrace) && !self.at_eof() {
                let fstart = self.span();
                let base = self.type_specifier()?;
                loop {
                    let (name, ty, init) = self.declarator(base.clone())?;
                    if init.is_some() {
                        self.sink
                            .error("struct fields cannot have initializers", name.span);
                    }
                    fields.push(FieldDecl {
                        ty,
                        name,
                        span: fstart.to(self.prev_span()),
                    });
                    if !self.eat(Punct::Comma) {
                        break;
                    }
                }
                self.expect(Punct::Semi);
            }
            self.expect(Punct::RBrace);
            Some(fields)
        } else {
            None
        };
        if tag.is_none() && fields.is_none() {
            let sp = self.span();
            self.sink.error("expected struct tag or body", sp);
            return None;
        }
        Some(RecordRef { tag, fields })
    }

    fn enum_ref(&mut self) -> Option<EnumRef> {
        let tag = if let TokenKind::Ident(_) = self.peek() {
            Some(self.expect_ident())
        } else {
            None
        };
        let variants = if self.eat(Punct::LBrace) {
            let mut vs = Vec::new();
            while !self.at(Punct::RBrace) && !self.at_eof() {
                let name = self.expect_ident();
                let value = if self.eat(Punct::Eq) {
                    Some(self.assign_expr()?)
                } else {
                    None
                };
                vs.push(EnumVariant { name, value });
                if !self.eat(Punct::Comma) {
                    break;
                }
            }
            self.expect(Punct::RBrace);
            Some(vs)
        } else {
            None
        };
        if tag.is_none() && variants.is_none() {
            let sp = self.span();
            self.sink.error("expected enum tag or body", sp);
            return None;
        }
        Some(EnumRef { tag, variants })
    }

    /// Parse a declarator: `*... name [len]... [= init]`. The
    /// initializer is always parsed (and returned) so contexts where
    /// it is illegal can diagnose it instead of choking on the `=`.
    fn declarator(&mut self, base: TypeRef) -> Option<(Ident, TypeRef, Option<Expr>)> {
        let mut ty = base;
        while self.eat(Punct::Star) {
            let sp = ty.span;
            ty = TypeRef {
                kind: TypeRefKind::Pointer(Box::new(ty)),
                span: sp,
            };
        }
        let name = self.expect_ident();
        let d = self.declarator_suffix(ty, name)?;
        Some((d.name, d.ty, d.init.clone()))
    }

    /// Array suffixes and initializer after the declared name.
    fn declarator_suffix(&mut self, mut ty: TypeRef, name: Ident) -> Option<Declarator> {
        // Array dimensions apply outermost-first: `int a[2][3]` is
        // array-2 of array-3 of int; build inside-out by collecting.
        let mut dims = Vec::new();
        while self.eat(Punct::LBracket) {
            let len = if self.at(Punct::RBracket) {
                None
            } else {
                Some(Box::new(self.assign_expr()?))
            };
            self.expect(Punct::RBracket);
            dims.push(len);
        }
        for len in dims.into_iter().rev() {
            let sp = ty.span;
            ty = TypeRef {
                kind: TypeRefKind::Array(Box::new(ty), len),
                span: sp,
            };
        }
        let init = if self.eat(Punct::Eq) {
            Some(self.assign_expr()?)
        } else {
            None
        };
        Some(Declarator { name, ty, init })
    }

    // -- statements ------------------------------------------------------

    fn block(&mut self) -> Option<Block> {
        let start = self.expect(Punct::LBrace);
        let mut stmts = Vec::new();
        while !self.at(Punct::RBrace) && !self.at_eof() {
            let before = self.pos;
            match self.stmt() {
                Some(s) => stmts.push(s),
                None => self.synchronize(),
            }
            if self.pos == before {
                self.bump();
            }
        }
        let end = self.expect(Punct::RBrace);
        Some(Block {
            stmts,
            span: start.to(end),
        })
    }

    /// Parse one statement.
    pub fn stmt(&mut self) -> Option<Stmt> {
        let start = self.span();
        let kind = match self.peek().clone() {
            TokenKind::Punct(Punct::LBrace) => StmtKind::Block(self.block()?),
            TokenKind::Punct(Punct::Semi) => {
                self.bump();
                StmtKind::Expr(None)
            }
            TokenKind::Kw(Kw::If) => {
                self.bump();
                self.expect(Punct::LParen);
                let cond = self.expr()?;
                self.expect(Punct::RParen);
                let then = Box::new(self.stmt()?);
                let els = if self.eat_kw(Kw::Else) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                StmtKind::If { cond, then, els }
            }
            TokenKind::Kw(Kw::While) => {
                self.bump();
                self.expect(Punct::LParen);
                let cond = self.expr()?;
                self.expect(Punct::RParen);
                let body = Box::new(self.stmt()?);
                StmtKind::While { cond, body }
            }
            TokenKind::Kw(Kw::Do) => {
                self.bump();
                let body = Box::new(self.stmt()?);
                if self.eat_kw(Kw::While) {
                    self.expect(Punct::LParen);
                    let cond = self.expr()?;
                    self.expect(Punct::RParen);
                    self.expect(Punct::Semi);
                    StmtKind::DoWhile { body, cond }
                } else if self.at_kw(Kw::Abort) || self.at_kw(Kw::WeakAbort) {
                    let kind = if self.eat_kw(Kw::Abort) {
                        AbortKind::Strong
                    } else {
                        self.expect_kw(Kw::WeakAbort);
                        AbortKind::Weak
                    };
                    self.expect(Punct::LParen);
                    let cond = self.sigexpr()?;
                    self.expect(Punct::RParen);
                    let handle = if self.eat_kw(Kw::Handle) {
                        Some(Box::new(self.stmt()?))
                    } else {
                        None
                    };
                    self.eat(Punct::Semi);
                    StmtKind::Abort {
                        body,
                        kind,
                        cond,
                        handle,
                    }
                } else if self.eat_kw(Kw::Suspend) {
                    self.expect(Punct::LParen);
                    let cond = self.sigexpr()?;
                    self.expect(Punct::RParen);
                    self.eat(Punct::Semi);
                    StmtKind::Suspend { body, cond }
                } else {
                    let sp = self.span();
                    self.sink.error(
                        format!(
                            "expected `while`, `abort`, `weak_abort` or `suspend` after `do` body, found {}",
                            self.peek().describe()
                        ),
                        sp,
                    );
                    return None;
                }
            }
            TokenKind::Kw(Kw::For) => {
                self.bump();
                self.expect(Punct::LParen);
                let init = if self.at(Punct::Semi) {
                    self.bump();
                    None
                } else if self.starts_type() {
                    let d = self.var_decl_stmt()?;
                    Some(Box::new(d))
                } else {
                    let e = self.expr()?;
                    self.expect(Punct::Semi);
                    Some(Box::new(Stmt::expr(e)))
                };
                let cond = if self.at(Punct::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Punct::Semi);
                let step = if self.at(Punct::RParen) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Punct::RParen);
                let body = Box::new(self.stmt()?);
                StmtKind::For {
                    init,
                    cond,
                    step,
                    body,
                }
            }
            TokenKind::Kw(Kw::Switch) => {
                self.bump();
                self.expect(Punct::LParen);
                let scrutinee = self.expr()?;
                self.expect(Punct::RParen);
                self.expect(Punct::LBrace);
                let mut arms = Vec::new();
                while !self.at(Punct::RBrace) && !self.at_eof() {
                    let aspan = self.span();
                    let value = if self.eat_kw(Kw::Case) {
                        let v = self.expr()?;
                        self.expect(Punct::Colon);
                        Some(v)
                    } else if self.eat_kw(Kw::Default) {
                        self.expect(Punct::Colon);
                        None
                    } else {
                        let sp = self.span();
                        self.sink.error("expected `case` or `default`", sp);
                        self.synchronize();
                        continue;
                    };
                    let mut stmts = Vec::new();
                    while !self.at(Punct::RBrace)
                        && !self.at_kw(Kw::Case)
                        && !self.at_kw(Kw::Default)
                        && !self.at_eof()
                    {
                        match self.stmt() {
                            Some(s) => stmts.push(s),
                            None => self.synchronize(),
                        }
                    }
                    arms.push(SwitchArm {
                        value,
                        stmts,
                        span: aspan.to(self.prev_span()),
                    });
                }
                self.expect(Punct::RBrace);
                StmtKind::Switch { scrutinee, arms }
            }
            TokenKind::Kw(Kw::Break) => {
                self.bump();
                self.expect(Punct::Semi);
                StmtKind::Break
            }
            TokenKind::Kw(Kw::Continue) => {
                self.bump();
                self.expect(Punct::Semi);
                StmtKind::Continue
            }
            TokenKind::Kw(Kw::Return) => {
                self.bump();
                let v = if self.at(Punct::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Punct::Semi);
                StmtKind::Return(v)
            }
            // -- ECL statements --------------------------------------
            TokenKind::Kw(Kw::Await) => {
                self.bump();
                self.expect(Punct::LParen);
                let e = if self.at(Punct::RParen) {
                    None
                } else {
                    Some(self.sigexpr()?)
                };
                self.expect(Punct::RParen);
                self.expect(Punct::Semi);
                StmtKind::Await(e)
            }
            TokenKind::Kw(Kw::AwaitImmediate) => {
                self.bump();
                self.expect(Punct::LParen);
                let e = self.sigexpr()?;
                self.expect(Punct::RParen);
                self.expect(Punct::Semi);
                StmtKind::AwaitImmediate(e)
            }
            TokenKind::Kw(Kw::Emit) => {
                self.bump();
                self.expect(Punct::LParen);
                let name = self.expect_ident();
                self.expect(Punct::RParen);
                self.expect(Punct::Semi);
                StmtKind::Emit(name)
            }
            TokenKind::Kw(Kw::EmitV) => {
                self.bump();
                self.expect(Punct::LParen);
                let name = self.expect_ident();
                self.expect(Punct::Comma);
                let value = self.assign_expr()?;
                self.expect(Punct::RParen);
                self.expect(Punct::Semi);
                StmtKind::EmitV(name, value)
            }
            TokenKind::Kw(Kw::Halt) => {
                self.bump();
                if self.eat(Punct::LParen) {
                    self.expect(Punct::RParen);
                }
                self.expect(Punct::Semi);
                StmtKind::Halt
            }
            TokenKind::Kw(Kw::Present) => {
                self.bump();
                self.expect(Punct::LParen);
                let cond = self.sigexpr()?;
                self.expect(Punct::RParen);
                let then = Box::new(self.stmt()?);
                let els = if self.eat_kw(Kw::Else) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                StmtKind::Present { cond, then, els }
            }
            TokenKind::Kw(Kw::Par) => {
                self.bump();
                self.expect(Punct::LBrace);
                let mut branches = Vec::new();
                while !self.at(Punct::RBrace) && !self.at_eof() {
                    match self.stmt() {
                        Some(s) => branches.push(s),
                        None => self.synchronize(),
                    }
                }
                self.expect(Punct::RBrace);
                StmtKind::Par(branches)
            }
            TokenKind::Kw(Kw::Signal) => {
                self.bump();
                let (pure, ty) = self.signal_type()?;
                let name = self.expect_ident();
                self.expect(Punct::Semi);
                StmtKind::Signal(SignalDecl {
                    pure,
                    ty,
                    name,
                    span: start.to(self.prev_span()),
                })
            }
            _ => {
                if self.starts_type() {
                    return self.var_decl_stmt();
                }
                let e = self.expr()?;
                self.expect(Punct::Semi);
                StmtKind::Expr(Some(e))
            }
        };
        Some(Stmt {
            kind,
            span: start.to(self.prev_span()),
        })
    }

    fn var_decl_stmt(&mut self) -> Option<Stmt> {
        let start = self.span();
        let base = self.type_specifier()?;
        let mut decls = Vec::new();
        loop {
            let (name, ty, init) = self.declarator(base.clone())?;
            decls.push(Declarator { name, ty, init });
            if !self.eat(Punct::Comma) {
                break;
            }
        }
        self.expect(Punct::Semi);
        Some(Stmt {
            kind: StmtKind::Decl(VarDecl {
                decls,
                span: start.to(self.prev_span()),
            }),
            span: start.to(self.prev_span()),
        })
    }

    // -- signal expressions ------------------------------------------------

    /// `sigexpr := or_term`; `or := and ('|' and)*`; `and := prim ('&' prim)*`;
    /// `prim := '~' prim | '(' sigexpr ')' | ident`.
    pub fn sigexpr(&mut self) -> Option<SigExpr> {
        self.sig_or()
    }

    fn sig_or(&mut self) -> Option<SigExpr> {
        let mut lhs = self.sig_and()?;
        while self.at(Punct::Pipe) || self.at(Punct::PipePipe) {
            self.bump();
            let rhs = self.sig_and()?;
            let span = lhs.span.to(rhs.span);
            lhs = SigExpr {
                kind: SigExprKind::Or(Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
        Some(lhs)
    }

    fn sig_and(&mut self) -> Option<SigExpr> {
        let mut lhs = self.sig_prim()?;
        while self.at(Punct::Amp) || self.at(Punct::AmpAmp) {
            self.bump();
            let rhs = self.sig_prim()?;
            let span = lhs.span.to(rhs.span);
            lhs = SigExpr {
                kind: SigExprKind::And(Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
        Some(lhs)
    }

    fn sig_prim(&mut self) -> Option<SigExpr> {
        let start = self.span();
        if self.eat(Punct::Tilde) || self.eat(Punct::Bang) {
            let inner = self.sig_prim()?;
            let span = start.to(inner.span);
            return Some(SigExpr {
                kind: SigExprKind::Not(Box::new(inner)),
                span,
            });
        }
        if self.eat(Punct::LParen) {
            let e = self.sigexpr()?;
            self.expect(Punct::RParen);
            return Some(e);
        }
        let id = self.expect_ident();
        let span = id.span;
        Some(SigExpr {
            kind: SigExprKind::Sig(id),
            span,
        })
    }

    // -- expressions ------------------------------------------------------

    /// Full expression (includes the comma operator).
    pub fn expr(&mut self) -> Option<Expr> {
        let mut lhs = self.assign_expr()?;
        while self.at(Punct::Comma) {
            self.bump();
            let rhs = self.assign_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::Comma(Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
        Some(lhs)
    }

    /// Assignment expression (no top-level comma).
    pub fn assign_expr(&mut self) -> Option<Expr> {
        let lhs = self.ternary_expr()?;
        let op = match self.peek() {
            TokenKind::Punct(Punct::Eq) => Some(AssignOp::Assign),
            TokenKind::Punct(Punct::PlusEq) => Some(AssignOp::Add),
            TokenKind::Punct(Punct::MinusEq) => Some(AssignOp::Sub),
            TokenKind::Punct(Punct::StarEq) => Some(AssignOp::Mul),
            TokenKind::Punct(Punct::SlashEq) => Some(AssignOp::Div),
            TokenKind::Punct(Punct::PercentEq) => Some(AssignOp::Rem),
            TokenKind::Punct(Punct::ShlEq) => Some(AssignOp::Shl),
            TokenKind::Punct(Punct::ShrEq) => Some(AssignOp::Shr),
            TokenKind::Punct(Punct::AmpEq) => Some(AssignOp::BitAnd),
            TokenKind::Punct(Punct::CaretEq) => Some(AssignOp::BitXor),
            TokenKind::Punct(Punct::PipeEq) => Some(AssignOp::BitOr),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.assign_expr()?; // right associative
            let span = lhs.span.to(rhs.span);
            return Some(Expr {
                kind: ExprKind::Assign(op, Box::new(lhs), Box::new(rhs)),
                span,
            });
        }
        Some(lhs)
    }

    fn ternary_expr(&mut self) -> Option<Expr> {
        let cond = self.binary_expr(0)?;
        if self.eat(Punct::Question) {
            let t = self.assign_expr()?;
            self.expect(Punct::Colon);
            let e = self.assign_expr()?;
            let span = cond.span.to(e.span);
            return Some(Expr {
                kind: ExprKind::Ternary(Box::new(cond), Box::new(t), Box::new(e)),
                span,
            });
        }
        Some(cond)
    }

    /// Binding power of a binary operator token (higher binds tighter),
    /// or `None` if it is not a binary operator.
    fn bin_op(&self) -> Option<(BinOp, u8)> {
        let p = match self.peek() {
            TokenKind::Punct(p) => *p,
            _ => return None,
        };
        Some(match p {
            Punct::Star => (BinOp::Mul, 10),
            Punct::Slash => (BinOp::Div, 10),
            Punct::Percent => (BinOp::Rem, 10),
            Punct::Plus => (BinOp::Add, 9),
            Punct::Minus => (BinOp::Sub, 9),
            Punct::Shl => (BinOp::Shl, 8),
            Punct::Shr => (BinOp::Shr, 8),
            Punct::Lt => (BinOp::Lt, 7),
            Punct::Gt => (BinOp::Gt, 7),
            Punct::Le => (BinOp::Le, 7),
            Punct::Ge => (BinOp::Ge, 7),
            Punct::EqEq => (BinOp::Eq, 6),
            Punct::BangEq => (BinOp::Ne, 6),
            Punct::Amp => (BinOp::BitAnd, 5),
            Punct::Caret => (BinOp::BitXor, 4),
            Punct::Pipe => (BinOp::BitOr, 3),
            Punct::AmpAmp => (BinOp::LogAnd, 2),
            Punct::PipePipe => (BinOp::LogOr, 1),
            _ => return None,
        })
    }

    fn binary_expr(&mut self, min_bp: u8) -> Option<Expr> {
        let mut lhs = self.unary_expr()?;
        while let Some((op, bp)) = self.bin_op() {
            if bp < min_bp {
                break;
            }
            self.bump();
            let rhs = self.binary_expr(bp + 1)?; // left associative
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
        Some(lhs)
    }

    fn unary_expr(&mut self) -> Option<Expr> {
        let start = self.span();
        let op = match self.peek() {
            TokenKind::Punct(Punct::Minus) => Some(UnOp::Neg),
            TokenKind::Punct(Punct::Plus) => Some(UnOp::Plus),
            TokenKind::Punct(Punct::Bang) => Some(UnOp::Not),
            TokenKind::Punct(Punct::Tilde) => Some(UnOp::BitNot),
            TokenKind::Punct(Punct::Star) => Some(UnOp::Deref),
            TokenKind::Punct(Punct::Amp) => Some(UnOp::AddrOf),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let inner = self.unary_expr()?;
            let span = start.to(inner.span);
            return Some(Expr {
                kind: ExprKind::Unary(op, Box::new(inner)),
                span,
            });
        }
        if self.at(Punct::PlusPlus) || self.at(Punct::MinusMinus) {
            let inc = self.at(Punct::PlusPlus);
            self.bump();
            let inner = self.unary_expr()?;
            let span = start.to(inner.span);
            return Some(Expr {
                kind: ExprKind::PreIncDec(inc, Box::new(inner)),
                span,
            });
        }
        if self.at_kw(Kw::Sizeof) {
            self.bump();
            if self.at(Punct::LParen) && self.type_starts_at(self.pos + 1) {
                self.bump();
                let ty = self.type_specifier()?;
                let ty = self.abstract_suffix(ty);
                self.expect(Punct::RParen);
                let span = start.to(self.prev_span());
                return Some(Expr {
                    kind: ExprKind::SizeofType(ty),
                    span,
                });
            }
            let inner = self.unary_expr()?;
            let span = start.to(inner.span);
            return Some(Expr {
                kind: ExprKind::SizeofExpr(Box::new(inner)),
                span,
            });
        }
        // Cast: `( type ) unary`.
        if self.at(Punct::LParen) && self.type_starts_at(self.pos + 1) {
            self.bump();
            let ty = self.type_specifier()?;
            let ty = self.abstract_suffix(ty);
            self.expect(Punct::RParen);
            let inner = self.unary_expr()?;
            let span = start.to(inner.span);
            return Some(Expr {
                kind: ExprKind::Cast(ty, Box::new(inner)),
                span,
            });
        }
        self.postfix_expr()
    }

    /// Abstract declarator suffix for casts/sizeof: `*`s and `[n]`s.
    fn abstract_suffix(&mut self, mut ty: TypeRef) -> TypeRef {
        while self.eat(Punct::Star) {
            let sp = ty.span;
            ty = TypeRef {
                kind: TypeRefKind::Pointer(Box::new(ty)),
                span: sp,
            };
        }
        ty
    }

    /// Does a type start at absolute token index `i`?
    fn type_starts_at(&self, i: usize) -> bool {
        match &self.toks[i.min(self.toks.len() - 1)].kind {
            TokenKind::Kw(k) => matches!(
                k,
                Kw::Void
                    | Kw::Bool
                    | Kw::Char
                    | Kw::Short
                    | Kw::Int
                    | Kw::Long
                    | Kw::Float
                    | Kw::Double
                    | Kw::Signed
                    | Kw::Unsigned
                    | Kw::Struct
                    | Kw::Union
                    | Kw::Enum
                    | Kw::Const
            ),
            TokenKind::Ident(n) => self.typedefs.contains(n),
            _ => false,
        }
    }

    fn postfix_expr(&mut self) -> Option<Expr> {
        let mut e = self.primary_expr()?;
        loop {
            match self.peek() {
                TokenKind::Punct(Punct::LBracket) => {
                    self.bump();
                    let idx = self.expr()?;
                    let end = self.expect(Punct::RBracket);
                    let span = e.span.to(end);
                    e = Expr {
                        kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                        span,
                    };
                }
                TokenKind::Punct(Punct::Dot) => {
                    self.bump();
                    let f = self.expect_ident();
                    let span = e.span.to(f.span);
                    e = Expr {
                        kind: ExprKind::Member(Box::new(e), f),
                        span,
                    };
                }
                TokenKind::Punct(Punct::Arrow) => {
                    self.bump();
                    let f = self.expect_ident();
                    let span = e.span.to(f.span);
                    e = Expr {
                        kind: ExprKind::Arrow(Box::new(e), f),
                        span,
                    };
                }
                TokenKind::Punct(Punct::PlusPlus) => {
                    self.bump();
                    let span = e.span.to(self.prev_span());
                    e = Expr {
                        kind: ExprKind::PostIncDec(true, Box::new(e)),
                        span,
                    };
                }
                TokenKind::Punct(Punct::MinusMinus) => {
                    self.bump();
                    let span = e.span.to(self.prev_span());
                    e = Expr {
                        kind: ExprKind::PostIncDec(false, Box::new(e)),
                        span,
                    };
                }
                _ => break,
            }
        }
        Some(e)
    }

    fn primary_expr(&mut self) -> Option<Expr> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::IntLit(v) => {
                self.bump();
                Some(Expr::int(v, start))
            }
            TokenKind::FloatLit(v) => {
                self.bump();
                Some(Expr {
                    kind: ExprKind::FloatLit(v),
                    span: start,
                })
            }
            TokenKind::CharLit(c) => {
                self.bump();
                Some(Expr {
                    kind: ExprKind::CharLit(c),
                    span: start,
                })
            }
            TokenKind::StrLit(s) => {
                self.bump();
                Some(Expr {
                    kind: ExprKind::StrLit(s),
                    span: start,
                })
            }
            TokenKind::Ident(_) => {
                let id = self.expect_ident();
                if self.at(Punct::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at(Punct::RParen) {
                        loop {
                            args.push(self.assign_expr()?);
                            if !self.eat(Punct::Comma) {
                                break;
                            }
                        }
                    }
                    let end = self.expect(Punct::RParen);
                    return Some(Expr {
                        kind: ExprKind::Call(id, args),
                        span: start.to(end),
                    });
                }
                let span = id.span;
                Some(Expr {
                    kind: ExprKind::Ident(id),
                    span,
                })
            }
            TokenKind::Punct(Punct::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect(Punct::RParen);
                Some(e)
            }
            other => {
                self.sink.error(
                    format!("expected expression, found {}", other.describe()),
                    start,
                );
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_str;

    fn parse_ok(s: &str) -> Program {
        match parse_str(s) {
            Ok(p) => p,
            Err(sink) => panic!("parse failed:\n{sink}"),
        }
    }

    #[test]
    fn parses_empty_module() {
        let p = parse_ok("module m(input pure a, output pure b) { }");
        let m = p.module("m").unwrap();
        assert_eq!(m.params.len(), 2);
        assert_eq!(m.params[0].dir, SignalDir::Input);
        assert!(m.params[0].pure);
        assert_eq!(m.params[1].dir, SignalDir::Output);
    }

    #[test]
    fn parses_valued_signal_param() {
        let p = parse_ok("typedef unsigned char byte; module m(input byte b, output int v) { }");
        let m = p.module("m").unwrap();
        assert!(!m.params[0].pure);
        assert!(matches!(
            m.params[0].ty.as_ref().unwrap().kind,
            TypeRefKind::Named(_)
        ));
        assert!(matches!(
            m.params[1].ty.as_ref().unwrap().kind,
            TypeRefKind::Prim(PrimType::Int)
        ));
    }

    #[test]
    fn parses_await_emit_halt() {
        let p = parse_ok(
            "module m(input pure a, output pure b) { await (a); emit (b); await (); halt (); }",
        );
        let m = p.module("m").unwrap();
        assert_eq!(m.body.stmts.len(), 4);
        assert!(matches!(m.body.stmts[0].kind, StmtKind::Await(Some(_))));
        assert!(matches!(m.body.stmts[1].kind, StmtKind::Emit(_)));
        assert!(matches!(m.body.stmts[2].kind, StmtKind::Await(None)));
        assert!(matches!(m.body.stmts[3].kind, StmtKind::Halt));
    }

    #[test]
    fn parses_do_abort_with_handle() {
        let p = parse_ok(
            "module m(input pure r, output pure o) {\
               do { halt(); } abort (r) handle { emit(o); } }",
        );
        let m = p.module("m").unwrap();
        let StmtKind::Abort {
            kind, handle, cond, ..
        } = &m.body.stmts[0].kind
        else {
            panic!("expected abort");
        };
        assert_eq!(*kind, AbortKind::Strong);
        assert!(handle.is_some());
        assert!(matches!(cond.kind, SigExprKind::Sig(_)));
    }

    #[test]
    fn parses_weak_abort_and_suspend() {
        let p = parse_ok(
            "module m(input pure r) { do { halt(); } weak_abort (r); do { halt(); } suspend (r); }",
        );
        let m = p.module("m").unwrap();
        assert!(matches!(
            m.body.stmts[0].kind,
            StmtKind::Abort {
                kind: AbortKind::Weak,
                ..
            }
        ));
        assert!(matches!(m.body.stmts[1].kind, StmtKind::Suspend { .. }));
    }

    #[test]
    fn do_while_still_works() {
        let p = parse_ok("module m(input pure r) { int i; do { i = i + 1; } while (i < 3); }");
        let m = p.module("m").unwrap();
        assert!(matches!(m.body.stmts[1].kind, StmtKind::DoWhile { .. }));
    }

    #[test]
    fn parses_present_else() {
        let p = parse_ok(
            "module m(input pure a, input pure b, output pure o) {\
               present (a & ~b) { emit(o); } else { halt(); } }",
        );
        let m = p.module("m").unwrap();
        let StmtKind::Present { cond, els, .. } = &m.body.stmts[0].kind else {
            panic!("expected present");
        };
        assert!(matches!(cond.kind, SigExprKind::And(_, _)));
        assert!(els.is_some());
    }

    #[test]
    fn parses_par_branches() {
        let p =
            parse_ok("module m(input pure a) { par { { await(a); } { halt(); } emit_v(a, 1); } }");
        let m = p.module("m").unwrap();
        let StmtKind::Par(bs) = &m.body.stmts[0].kind else {
            panic!("expected par");
        };
        assert_eq!(bs.len(), 3);
    }

    #[test]
    fn parses_local_signal_decls() {
        let p = parse_ok(
            "typedef unsigned char byte;\
             module m(input pure a) { signal pure k; signal byte v; }",
        );
        let m = p.module("m").unwrap();
        let StmtKind::Signal(s0) = &m.body.stmts[0].kind else {
            panic!()
        };
        assert!(s0.pure);
        let StmtKind::Signal(s1) = &m.body.stmts[1].kind else {
            panic!()
        };
        assert!(!s1.pure);
    }

    #[test]
    fn parses_struct_union_typedefs() {
        let p = parse_ok(
            "typedef unsigned char byte;\
             typedef struct { byte packet[64]; } v1_t;\
             typedef struct { byte header[6]; byte data[56]; byte crc[2]; } v2_t;\
             typedef union { v1_t raw; v2_t cooked; } packet_t;\
             module m(input packet_t p) { }",
        );
        assert_eq!(p.typedefs().count(), 4);
    }

    #[test]
    fn parses_expressions_with_precedence() {
        let p = parse_ok("module m(input pure a) { int x; x = 1 + 2 * 3 << 1 & 7; }");
        let m = p.module("m").unwrap();
        let StmtKind::Expr(Some(e)) = &m.body.stmts[1].kind else {
            panic!()
        };
        // ((1 + (2*3)) << 1) & 7
        let ExprKind::Assign(AssignOp::Assign, _, rhs) = &e.kind else {
            panic!()
        };
        let ExprKind::Binary(BinOp::BitAnd, l, _) = &rhs.kind else {
            panic!("got {rhs:?}")
        };
        assert!(matches!(l.kind, ExprKind::Binary(BinOp::Shl, _, _)));
    }

    #[test]
    fn parses_cast_of_member() {
        let p = parse_ok(
            "typedef unsigned char byte;\
             typedef struct { byte crc[2]; } v2_t;\
             module m(input v2_t p) { int c; c = (c == (int) p.crc); }",
        );
        let m = p.module("m").unwrap();
        assert_eq!(m.body.stmts.len(), 2);
    }

    #[test]
    fn parses_for_loop_with_two_inits() {
        let p = parse_ok(
            "module m(input pure a) { int i; unsigned int crc;\
             for (i = 0, crc = 0; i < 64; i++) { crc = (crc ^ i) << 1; } }",
        );
        let m = p.module("m").unwrap();
        let StmtKind::For {
            init, cond, step, ..
        } = &m.body.stmts[2].kind
        else {
            panic!()
        };
        assert!(init.is_some());
        assert!(cond.is_some());
        assert!(step.is_some());
    }

    #[test]
    fn parses_c_function() {
        let p = parse_ok("int add(int a, int b) { return a + b; }");
        let f = p.functions().next().unwrap();
        assert_eq!(f.params.len(), 2);
        assert!(f.body.is_some());
    }

    #[test]
    fn parses_module_instantiation_call() {
        let p = parse_ok(
            "module sub(input pure a, output pure b) { }\
             module top(input pure i, output pure o) { par { sub(i, o); } }",
        );
        let top = p.module("top").unwrap();
        let StmtKind::Par(bs) = &top.body.stmts[0].kind else {
            panic!()
        };
        let StmtKind::Expr(Some(e)) = &bs[0].kind else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::Call(_, _)));
    }

    #[test]
    fn error_recovery_continues() {
        let err = parse_str("module m(input pure a) { int x = ; await(a); }").unwrap_err();
        assert!(err.has_errors());
    }

    #[test]
    fn parses_switch() {
        let p = parse_ok(
            "module m(input int v) { int x; switch (x) { case 1: x = 2; break; default: break; } }",
        );
        let m = p.module("m").unwrap();
        let StmtKind::Switch { arms, .. } = &m.body.stmts[1].kind else {
            panic!()
        };
        assert_eq!(arms.len(), 2);
        assert!(arms[0].value.is_some());
        assert!(arms[1].value.is_none());
    }

    #[test]
    fn parses_multidim_arrays_and_pointers() {
        let p = parse_ok("module m(input pure a) { int g[2][3]; int *p; }");
        let m = p.module("m").unwrap();
        let StmtKind::Decl(d) = &m.body.stmts[0].kind else {
            panic!()
        };
        let TypeRefKind::Array(inner, _) = &d.decls[0].ty.kind else {
            panic!()
        };
        assert!(matches!(inner.kind, TypeRefKind::Array(_, _)));
        let StmtKind::Decl(d2) = &m.body.stmts[1].kind else {
            panic!()
        };
        assert!(matches!(d2.decls[0].ty.kind, TypeRefKind::Pointer(_)));
    }

    #[test]
    fn parses_enum() {
        let p =
            parse_ok("typedef enum { IDLE, RUN = 5, DONE } mode_t; module m(input mode_t x) {}");
        assert_eq!(p.typedefs().count(), 1);
    }

    #[test]
    fn parses_ternary_and_comma() {
        let p =
            parse_ok("module m(input pure a) { int x, y; x = y > 0 ? 1 : 2; x = (x = 1, x + 1); }");
        assert!(p.module("m").is_some());
    }
    #[test]
    fn parses_observer_with_all_property_forms() {
        let p = parse_ok(
            "typedef unsigned char byte;\
             module m(input pure a, output pure b) { await (a); emit (b); }\
             observer watch(input pure a, input byte b) {\
               always (a | ~b);\
               never (a & b);\
               eventually_within 10 (b);\
               whenever (a) expect (b) within 3;\
               whenever (a) expect (b);\
             }",
        );
        let o = p.observer("watch").unwrap();
        assert_eq!(o.params.len(), 2);
        assert!(o.params[0].pure);
        assert!(!o.params[1].pure);
        assert_eq!(o.props.len(), 5);
        assert!(matches!(o.props[0].kind, PropertyKind::Always(_)));
        assert!(matches!(o.props[1].kind, PropertyKind::Never(_)));
        assert!(matches!(
            o.props[2].kind,
            PropertyKind::EventuallyWithin(10, _)
        ));
        assert!(matches!(
            o.props[3].kind,
            PropertyKind::Response { within: 3, .. }
        ));
        // `within` defaults to 0 (same-instant response).
        assert!(matches!(
            o.props[4].kind,
            PropertyKind::Response { within: 0, .. }
        ));
        assert_eq!(p.observers().count(), 1);
    }

    #[test]
    fn observer_words_stay_usable_as_identifiers() {
        // The observer sub-language's words are contextual, not
        // reserved: C-side code may keep using them as names.
        let p = parse_ok(
            "module m(input pure a) {\
               int always; int within; int expect;\
               always = within + expect;\
             }",
        );
        assert!(p.module("m").is_some());
        // `observer` as a typedef name still declares globals.
        let p = parse_ok("typedef int observer; observer x;");
        assert_eq!(p.typedefs().count(), 1);
    }

    #[test]
    fn window_bound_is_capped() {
        let err = parse_str("observer w(input pure e) { eventually_within 4000000000 (e); }")
            .unwrap_err();
        let msgs: Vec<&str> = err.iter().map(|d| d.message.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("window bound")), "{msgs:?}");
        // The cap itself is accepted.
        let p = parse_ok(&format!(
            "observer w(input pure e) {{ eventually_within {MAX_WINDOW} (e); }}"
        ));
        assert!(p.observer("w").is_some());
    }

    #[test]
    fn observer_output_params_are_rejected() {
        let err = parse_str("observer w(output pure x) { always (x); }").unwrap_err();
        let msgs: Vec<&str> = err.iter().map(|d| d.message.as_str()).collect();
        assert!(
            msgs.iter().any(|m| m.contains("must be `input`")),
            "{msgs:?}"
        );
    }

    #[test]
    fn observer_bad_property_keyword_is_diagnosed() {
        let err = parse_str("observer w(input pure a) { sometimes (a); }").unwrap_err();
        assert!(err.has_errors());
    }

    #[test]
    fn observer_round_trips_through_pretty() {
        let src = "observer w(input pure a, input pure b) {\
                     never (a & ~b);\
                     whenever (a) expect (b) within 2;\
                   }";
        let printed = crate::pretty::program(&parse_ok(src));
        let reprinted = crate::pretty::program(&parse_ok(&printed));
        assert_eq!(printed, reprinted);
        assert!(printed.contains("whenever (a) expect (b) within 2;"));
    }

    #[test]
    fn struct_field_initializer_is_diagnosed() {
        let err = crate::parse_str("typedef struct { int x = 1; } t;").unwrap_err();
        let msgs: Vec<&str> = err.iter().map(|d| d.message.as_str()).collect();
        assert!(
            msgs.iter()
                .any(|m| m.contains("struct fields cannot have initializers")),
            "{msgs:?}"
        );
    }
}
