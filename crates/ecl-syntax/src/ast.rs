//! Abstract syntax tree for ECL.
//!
//! The tree mirrors the paper's language: a C subset (declarations,
//! expressions, statements) extended with `module` definitions whose
//! parameters are *signals*, plus the eight reactive statement forms of
//! Section 4 of the paper (`emit`/`emit_v`, `await`, `halt`, `present`,
//! `abort`/`weak_abort` with optional `handle`, `suspend`, `par`, and
//! module instantiation).
//!
//! The AST is deliberately *unresolved*: identifiers are plain strings,
//! and whether a name denotes a signal, a variable or a module is decided
//! by semantic analysis in `ecl-core` (the paper calls signal names
//! "overloaded": presence in reactive contexts, value elsewhere).

use crate::source::Span;

/// An identifier with its source location.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ident {
    /// The name as written.
    pub name: String,
    /// Where it was written.
    pub span: Span,
}

impl Ident {
    /// Construct an identifier (mostly for tests and synthesized nodes).
    pub fn new(name: impl Into<String>, span: Span) -> Self {
        Ident {
            name: name.into(),
            span,
        }
    }
}

impl std::fmt::Display for Ident {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

// ---------------------------------------------------------------------------
// Types (syntactic references; resolution happens in `ecl-types`)
// ---------------------------------------------------------------------------

/// Built-in scalar type keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimType {
    /// `void`
    Void,
    /// `bool` (ECL convenience; 1 byte)
    Bool,
    /// `char` (signed 8-bit)
    Char,
    /// `unsigned char`
    UChar,
    /// `short`
    Short,
    /// `unsigned short`
    UShort,
    /// `int`
    Int,
    /// `unsigned int`
    UInt,
    /// `long` (32-bit on the paper's MIPS R3000 target)
    Long,
    /// `unsigned long`
    ULong,
    /// `float`
    Float,
    /// `double`
    Double,
}

/// A syntactic type reference.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeRef {
    /// Shape of the reference.
    pub kind: TypeRefKind,
    /// Source range.
    pub span: Span,
}

/// The shape of a [`TypeRef`].
#[derive(Debug, Clone, PartialEq)]
pub enum TypeRefKind {
    /// Built-in scalar.
    Prim(PrimType),
    /// A typedef name (e.g. `packet_t`, `byte`).
    Named(Ident),
    /// `struct tag` or inline `struct { .. }`.
    Struct(RecordRef),
    /// `union tag` or inline `union { .. }`.
    Union(RecordRef),
    /// `enum tag` or inline `enum { .. }`.
    Enum(EnumRef),
    /// Pointer to a type.
    Pointer(Box<TypeRef>),
    /// Array with optional (constant) length expression.
    Array(Box<TypeRef>, Option<Box<Expr>>),
}

/// Reference to a struct/union: by tag, by inline definition, or both.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordRef {
    /// Tag name, if written.
    pub tag: Option<Ident>,
    /// Inline field definitions, if written.
    pub fields: Option<Vec<FieldDecl>>,
}

/// One field of a struct/union definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDecl {
    /// Field type.
    pub ty: TypeRef,
    /// Field name.
    pub name: Ident,
    /// Source range of the whole field declaration.
    pub span: Span,
}

/// Reference to an enum: by tag, by inline definition, or both.
#[derive(Debug, Clone, PartialEq)]
pub struct EnumRef {
    /// Tag name, if written.
    pub tag: Option<Ident>,
    /// Inline enumerator list, if written.
    pub variants: Option<Vec<EnumVariant>>,
}

/// One enumerator with optional explicit value.
#[derive(Debug, Clone, PartialEq)]
pub struct EnumVariant {
    /// Enumerator name.
    pub name: Ident,
    /// Explicit `= expr` value, if written.
    pub value: Option<Expr>,
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-x`
    Neg,
    /// `+x`
    Plus,
    /// `!x`
    Not,
    /// `~x`
    BitNot,
    /// `*x`
    Deref,
    /// `&x`
    AddrOf,
}

/// Binary operators (excluding assignment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // names mirror the C operators
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    BitAnd,
    BitXor,
    BitOr,
    LogAnd,
    LogOr,
}

impl BinOp {
    /// C source spelling.
    pub fn as_str(&self) -> &'static str {
        use BinOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Rem => "%",
            Shl => "<<",
            Shr => ">>",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            Eq => "==",
            Ne => "!=",
            BitAnd => "&",
            BitXor => "^",
            BitOr => "|",
            LogAnd => "&&",
            LogOr => "||",
        }
    }
}

/// Compound-assignment operators (`=` is `Assign`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AssignOp {
    Assign,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    BitAnd,
    BitXor,
    BitOr,
}

impl AssignOp {
    /// The underlying binary operator for compound assignments.
    pub fn binop(&self) -> Option<BinOp> {
        Some(match self {
            AssignOp::Assign => return None,
            AssignOp::Add => BinOp::Add,
            AssignOp::Sub => BinOp::Sub,
            AssignOp::Mul => BinOp::Mul,
            AssignOp::Div => BinOp::Div,
            AssignOp::Rem => BinOp::Rem,
            AssignOp::Shl => BinOp::Shl,
            AssignOp::Shr => BinOp::Shr,
            AssignOp::BitAnd => BinOp::BitAnd,
            AssignOp::BitXor => BinOp::BitXor,
            AssignOp::BitOr => BinOp::BitOr,
        })
    }

    /// C source spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            AssignOp::Assign => "=",
            AssignOp::Add => "+=",
            AssignOp::Sub => "-=",
            AssignOp::Mul => "*=",
            AssignOp::Div => "/=",
            AssignOp::Rem => "%=",
            AssignOp::Shl => "<<=",
            AssignOp::Shr => ">>=",
            AssignOp::BitAnd => "&=",
            AssignOp::BitXor => "^=",
            AssignOp::BitOr => "|=",
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Shape of the expression.
    pub kind: ExprKind,
    /// Source range.
    pub span: Span,
}

/// The shape of an [`Expr`].
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Floating literal.
    FloatLit(f64),
    /// Character literal.
    CharLit(u8),
    /// String literal.
    StrLit(String),
    /// Identifier (variable, signal value, enumerator — resolved later).
    Ident(Ident),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Assignment (simple or compound). LHS must be an lvalue.
    Assign(AssignOp, Box<Expr>, Box<Expr>),
    /// Prefix `++x` / `--x` (`true` = increment).
    PreIncDec(bool, Box<Expr>),
    /// Postfix `x++` / `x--` (`true` = increment).
    PostIncDec(bool, Box<Expr>),
    /// `c ? t : e`
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Function call (or module instantiation — disambiguated by sema).
    Call(Ident, Vec<Expr>),
    /// `a[i]`
    Index(Box<Expr>, Box<Expr>),
    /// `s.f`
    Member(Box<Expr>, Ident),
    /// `p->f`
    Arrow(Box<Expr>, Ident),
    /// `(type) e`
    Cast(TypeRef, Box<Expr>),
    /// `sizeof(type)`
    SizeofType(TypeRef),
    /// `sizeof expr`
    SizeofExpr(Box<Expr>),
    /// `a, b`
    Comma(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Build an integer literal expression.
    pub fn int(v: i64, span: Span) -> Expr {
        Expr {
            kind: ExprKind::IntLit(v),
            span,
        }
    }

    /// Build an identifier expression.
    pub fn ident(name: impl Into<String>, span: Span) -> Expr {
        Expr {
            kind: ExprKind::Ident(Ident::new(name, span)),
            span,
        }
    }
}

// ---------------------------------------------------------------------------
// Signal expressions (presence tests)
// ---------------------------------------------------------------------------

/// A signal-presence expression: signal names combined with `&`, `|`, `~`.
///
/// The paper restricts `await`/`present`/`abort`/`suspend` arguments to
/// this grammar (Section 4, item 2).
#[derive(Debug, Clone, PartialEq)]
pub struct SigExpr {
    /// Shape of the expression.
    pub kind: SigExprKind,
    /// Source range.
    pub span: Span,
}

/// The shape of a [`SigExpr`].
#[derive(Debug, Clone, PartialEq)]
pub enum SigExprKind {
    /// A signal name, tested for presence.
    Sig(Ident),
    /// Negation `~e`.
    Not(Box<SigExpr>),
    /// Conjunction `a & b`.
    And(Box<SigExpr>, Box<SigExpr>),
    /// Disjunction `a | b`.
    Or(Box<SigExpr>, Box<SigExpr>),
}

impl SigExpr {
    /// All signal names mentioned, in syntactic order (may repeat).
    pub fn signals(&self) -> Vec<&Ident> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out
    }

    fn collect<'a>(&'a self, out: &mut Vec<&'a Ident>) {
        match &self.kind {
            SigExprKind::Sig(id) => out.push(id),
            SigExprKind::Not(e) => e.collect(out),
            SigExprKind::And(a, b) | SigExprKind::Or(a, b) => {
                a.collect(out);
                b.collect(out);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

/// One declarator of a variable declaration (`int a, b[4];` has two).
#[derive(Debug, Clone, PartialEq)]
pub struct Declarator {
    /// Declared name.
    pub name: Ident,
    /// Full type after applying pointer/array derivations to the base.
    pub ty: TypeRef,
    /// Optional initializer.
    pub init: Option<Expr>,
}

/// A variable declaration (possibly multiple declarators).
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// The declarators.
    pub decls: Vec<Declarator>,
    /// Source range.
    pub span: Span,
}

/// A local signal declaration: `signal pure kill_check;` or
/// `signal packet_t packet;`.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalDecl {
    /// `pure` signals carry presence only; valued signals carry `ty`.
    pub pure: bool,
    /// Value type for valued signals.
    pub ty: Option<TypeRef>,
    /// Signal name.
    pub name: Ident,
    /// Source range.
    pub span: Span,
}

/// Which flavour of abortion a `do .. abort` statement uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortKind {
    /// Strong abortion: the body does not run in the triggering instant.
    Strong,
    /// Weak abortion: the body runs for the triggering instant, then stops.
    Weak,
}

/// A block `{ ... }`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Source range.
    pub span: Span,
}

/// One `case`/`default` arm of a `switch`.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchArm {
    /// `Some(expr)` for `case expr:`, `None` for `default:`.
    pub value: Option<Expr>,
    /// Statements until the next label (fallthrough is preserved).
    pub stmts: Vec<Stmt>,
    /// Source range of the label.
    pub span: Span,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Shape of the statement.
    pub kind: StmtKind,
    /// Source range.
    pub span: Span,
}

/// The shape of a [`Stmt`].
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `;` (empty) or `expr;`
    Expr(Option<Expr>),
    /// Local variable declaration.
    Decl(VarDecl),
    /// Local signal declaration.
    Signal(SignalDecl),
    /// Nested block.
    Block(Block),
    /// `if (c) t [else e]` — `c` is a *value* expression.
    If {
        /// Condition (C expression).
        cond: Expr,
        /// Then branch.
        then: Box<Stmt>,
        /// Optional else branch.
        els: Option<Box<Stmt>>,
    },
    /// `while (c) body`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `do body while (c);`
    DoWhile {
        /// Loop body.
        body: Box<Stmt>,
        /// Loop condition (tested after the body).
        cond: Expr,
    },
    /// `for (init; cond; step) body`
    For {
        /// Init clause: declaration or expression.
        init: Option<Box<Stmt>>,
        /// Optional condition.
        cond: Option<Expr>,
        /// Optional step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `switch (scrutinee) { arms }`
    Switch {
        /// Value switched on.
        scrutinee: Expr,
        /// Case arms in source order.
        arms: Vec<SwitchArm>,
    },
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `return [e];`
    Return(Option<Expr>),
    // --- ECL reactive statements -----------------------------------
    /// `await (sigexpr);` — ends the instant, waits for a *later*
    /// occurrence. `await ();` (no expression) is the "delta" form that
    /// merely splits the instant.
    Await(Option<SigExpr>),
    /// `await_immediate (sigexpr);` — reproduction extension: also
    /// checks the current instant (see DESIGN.md).
    AwaitImmediate(SigExpr),
    /// `emit (S);` — pure emission.
    Emit(Ident),
    /// `emit_v (S, value);` — valued emission.
    EmitV(Ident, Expr),
    /// `halt ();`
    Halt,
    /// `present (sigexpr) s1 [else s2]`
    Present {
        /// Presence expression tested this instant.
        cond: SigExpr,
        /// Branch when present.
        then: Box<Stmt>,
        /// Optional branch when absent.
        els: Option<Box<Stmt>>,
    },
    /// `do body abort/weak_abort (sigexpr) [handle h]`
    Abort {
        /// Guarded body.
        body: Box<Stmt>,
        /// Strong or weak abortion.
        kind: AbortKind,
        /// Triggering expression (tested in later instants).
        cond: SigExpr,
        /// Optional abort handler (like Java `catch`).
        handle: Option<Box<Stmt>>,
    },
    /// `do body suspend (sigexpr)`
    Suspend {
        /// Suspended body.
        body: Box<Stmt>,
        /// Freeze condition.
        cond: SigExpr,
    },
    /// `par { s1; s2; ... }`
    Par(Vec<Stmt>),
}

impl Stmt {
    /// Make an expression statement.
    pub fn expr(e: Expr) -> Stmt {
        let span = e.span;
        Stmt {
            kind: StmtKind::Expr(Some(e)),
            span,
        }
    }
}

// ---------------------------------------------------------------------------
// Top-level items
// ---------------------------------------------------------------------------

/// Signal parameter direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalDir {
    /// `input`
    Input,
    /// `output`
    Output,
}

/// One signal parameter of a module.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalParam {
    /// Direction.
    pub dir: SignalDir,
    /// Pure (presence-only) signal?
    pub pure: bool,
    /// Value type for valued signals.
    pub ty: Option<TypeRef>,
    /// Parameter name.
    pub name: Ident,
    /// Source range.
    pub span: Span,
}

/// A module definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Module name.
    pub name: Ident,
    /// Signal interface.
    pub params: Vec<SignalParam>,
    /// Body.
    pub body: Block,
    /// Source range.
    pub span: Span,
}

/// One parameter of a C function.
#[derive(Debug, Clone, PartialEq)]
pub struct FnParam {
    /// Parameter type.
    pub ty: TypeRef,
    /// Parameter name.
    pub name: Ident,
}

/// A plain C function definition (callable from data code).
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Return type.
    pub ret: TypeRef,
    /// Function name.
    pub name: Ident,
    /// Parameters.
    pub params: Vec<FnParam>,
    /// Body (`None` for a prototype).
    pub body: Option<Block>,
    /// Source range.
    pub span: Span,
}

// ---------------------------------------------------------------------------
// Observers (ecl-observe): temporal properties over interface signals
// ---------------------------------------------------------------------------

/// Largest accepted property window, in instants. Monitor machines
/// unroll one control state per window instant, so the bound keeps
/// synthesis linear and small; the parser and `ecl-observe` both
/// enforce it.
pub const MAX_WINDOW: u32 = 4096;

/// The shape of one temporal [`Property`] of an observer.
///
/// Properties range over *signal presence* only (the same [`SigExpr`]
/// grammar the reactive statements use); windows are counted in
/// instants, bounded by [`MAX_WINDOW`].
#[derive(Debug, Clone, PartialEq)]
pub enum PropertyKind {
    /// `always (e);` — `e` must hold at every instant.
    Always(SigExpr),
    /// `never (e);` — `e` must hold at no instant.
    Never(SigExpr),
    /// `eventually_within N (e);` — `e` must hold at some instant in
    /// the first `N + 1` instants of the run.
    EventuallyWithin(u32, SigExpr),
    /// `whenever (t) expect (r) within N;` — bounded response: each
    /// time `t` holds, `r` must hold within `N` instants (the trigger
    /// instant counts as distance 0). Windows do not overlap: triggers
    /// inside an open window are absorbed by it.
    Response {
        /// The triggering presence expression.
        trigger: SigExpr,
        /// The expected response expression.
        response: SigExpr,
        /// Window length in instants after the trigger (0 = same
        /// instant).
        within: u32,
    },
}

/// One temporal property of an [`Observer`].
#[derive(Debug, Clone, PartialEq)]
pub struct Property {
    /// Shape of the property.
    pub kind: PropertyKind,
    /// Source range.
    pub span: Span,
}

/// An `observer` declaration: a named set of temporal properties over
/// an interface of watched signals. Observers ride alongside modules
/// in a translation unit and are synthesized into monitor EFSMs by the
/// `ecl-observe` crate.
#[derive(Debug, Clone, PartialEq)]
pub struct Observer {
    /// Observer name.
    pub name: Ident,
    /// Watched signals (all `input`: observers never emit into the
    /// design).
    pub params: Vec<SignalParam>,
    /// The properties, in source order.
    pub props: Vec<Property>,
    /// Source range.
    pub span: Span,
}

/// A `typedef` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Typedef {
    /// The aliased type.
    pub ty: TypeRef,
    /// The new name.
    pub name: Ident,
    /// Source range.
    pub span: Span,
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `typedef` alias.
    Typedef(Typedef),
    /// Free-standing `struct`/`union`/`enum` definition.
    TypeDecl(TypeRef),
    /// Global variable declaration (diagnosed later: the paper notes
    /// globals are unsupported under Esterel scoping).
    Global(VarDecl),
    /// Plain C function.
    Function(Function),
    /// ECL module.
    Module(Module),
    /// ECL observer (temporal properties; see [`Observer`]).
    Observer(Observer),
}

/// A parsed translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Items in source order.
    pub items: Vec<Item>,
}

impl Program {
    /// Iterate over the modules in the program.
    pub fn modules(&self) -> impl Iterator<Item = &Module> {
        self.items.iter().filter_map(|i| match i {
            Item::Module(m) => Some(m),
            _ => None,
        })
    }

    /// Find a module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules().find(|m| m.name.name == name)
    }

    /// Iterate over plain C functions.
    pub fn functions(&self) -> impl Iterator<Item = &Function> {
        self.items.iter().filter_map(|i| match i {
            Item::Function(f) => Some(f),
            _ => None,
        })
    }

    /// Iterate over typedefs.
    pub fn typedefs(&self) -> impl Iterator<Item = &Typedef> {
        self.items.iter().filter_map(|i| match i {
            Item::Typedef(t) => Some(t),
            _ => None,
        })
    }

    /// Iterate over the observers in the program.
    pub fn observers(&self) -> impl Iterator<Item = &Observer> {
        self.items.iter().filter_map(|i| match i {
            Item::Observer(o) => Some(o),
            _ => None,
        })
    }

    /// Find an observer by name.
    pub fn observer(&self, name: &str) -> Option<&Observer> {
        self.observers().find(|o| o.name.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigexpr_collects_signals() {
        let s = |n: &str| SigExpr {
            kind: SigExprKind::Sig(Ident::new(n, Span::dummy())),
            span: Span::dummy(),
        };
        let e = SigExpr {
            kind: SigExprKind::And(
                Box::new(s("a")),
                Box::new(SigExpr {
                    kind: SigExprKind::Not(Box::new(s("b"))),
                    span: Span::dummy(),
                }),
            ),
            span: Span::dummy(),
        };
        let names: Vec<_> = e.signals().iter().map(|i| i.name.clone()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn assign_op_binop_mapping() {
        assert_eq!(AssignOp::Assign.binop(), None);
        assert_eq!(AssignOp::Shl.binop(), Some(BinOp::Shl));
        assert_eq!(AssignOp::Add.as_str(), "+=");
    }

    #[test]
    fn program_accessors() {
        let m = Module {
            name: Ident::new("m", Span::dummy()),
            params: vec![],
            body: Block::default(),
            span: Span::dummy(),
        };
        let p = Program {
            items: vec![Item::Module(m)],
        };
        assert!(p.module("m").is_some());
        assert!(p.module("n").is_none());
        assert_eq!(p.functions().count(), 0);
    }
}
