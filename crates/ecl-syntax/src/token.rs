//! Token definitions for the C + ECL lexical grammar.

use crate::source::Span;
use std::fmt;

/// Keywords of the C subset and of the ECL extensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Keyword {
    // C storage / type keywords.
    Typedef,
    Struct,
    Union,
    Enum,
    Void,
    Char,
    Short,
    Int,
    Long,
    Float,
    Double,
    Signed,
    Unsigned,
    Bool,
    Const,
    Static,
    Extern,
    Sizeof,
    // C statement keywords.
    If,
    Else,
    While,
    For,
    Do,
    Switch,
    Case,
    Default,
    Break,
    Continue,
    Return,
    Goto,
    // ECL keywords.
    Module,
    Signal,
    Input,
    Output,
    Pure,
    Await,
    AwaitImmediate,
    Emit,
    EmitV,
    Halt,
    Present,
    Abort,
    WeakAbort,
    Suspend,
    Handle,
    Par,
}

impl Keyword {
    /// Map an identifier spelling to a keyword, if it is one.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s {
            "typedef" => Typedef,
            "struct" => Struct,
            "union" => Union,
            "enum" => Enum,
            "void" => Void,
            "char" => Char,
            "short" => Short,
            "int" => Int,
            "long" => Long,
            "float" => Float,
            "double" => Double,
            "signed" => Signed,
            "unsigned" => Unsigned,
            "bool" => Bool,
            "const" => Const,
            "static" => Static,
            "extern" => Extern,
            "sizeof" => Sizeof,
            "if" => If,
            "else" => Else,
            "while" => While,
            "for" => For,
            "do" => Do,
            "switch" => Switch,
            "case" => Case,
            "default" => Default,
            "break" => Break,
            "continue" => Continue,
            "return" => Return,
            "goto" => Goto,
            "module" => Module,
            "signal" => Signal,
            "input" => Input,
            "output" => Output,
            "pure" => Pure,
            "await" => Await,
            "await_immediate" => AwaitImmediate,
            "emit" => Emit,
            "emit_v" => EmitV,
            "halt" => Halt,
            "present" => Present,
            "abort" => Abort,
            "weak_abort" => WeakAbort,
            "suspend" => Suspend,
            "handle" => Handle,
            "par" => Par,
            _ => return None,
        })
    }

    /// Canonical source spelling.
    pub fn as_str(&self) -> &'static str {
        use Keyword::*;
        match self {
            Typedef => "typedef",
            Struct => "struct",
            Union => "union",
            Enum => "enum",
            Void => "void",
            Char => "char",
            Short => "short",
            Int => "int",
            Long => "long",
            Float => "float",
            Double => "double",
            Signed => "signed",
            Unsigned => "unsigned",
            Bool => "bool",
            Const => "const",
            Static => "static",
            Extern => "extern",
            Sizeof => "sizeof",
            If => "if",
            Else => "else",
            While => "while",
            For => "for",
            Do => "do",
            Switch => "switch",
            Case => "case",
            Default => "default",
            Break => "break",
            Continue => "continue",
            Return => "return",
            Goto => "goto",
            Module => "module",
            Signal => "signal",
            Input => "input",
            Output => "output",
            Pure => "pure",
            Await => "await",
            AwaitImmediate => "await_immediate",
            Emit => "emit",
            EmitV => "emit_v",
            Halt => "halt",
            Present => "present",
            Abort => "abort",
            WeakAbort => "weak_abort",
            Suspend => "suspend",
            Handle => "handle",
            Par => "par",
        }
    }
}

/// Punctuation and operator tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // names mirror the symbols directly
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    Question,
    Dot,
    Arrow,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    BangEq,
    AmpAmp,
    PipePipe,
    Shl,
    Shr,
    Eq,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    AmpEq,
    PipeEq,
    CaretEq,
    ShlEq,
    ShrEq,
    PlusPlus,
    MinusMinus,
    Hash,
}

impl Punct {
    /// Canonical source spelling.
    pub fn as_str(&self) -> &'static str {
        use Punct::*;
        match self {
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBracket => "[",
            RBracket => "]",
            Semi => ";",
            Comma => ",",
            Colon => ":",
            Question => "?",
            Dot => ".",
            Arrow => "->",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Percent => "%",
            Amp => "&",
            Pipe => "|",
            Caret => "^",
            Tilde => "~",
            Bang => "!",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            EqEq => "==",
            BangEq => "!=",
            AmpAmp => "&&",
            PipePipe => "||",
            Shl => "<<",
            Shr => ">>",
            Eq => "=",
            PlusEq => "+=",
            MinusEq => "-=",
            StarEq => "*=",
            SlashEq => "/=",
            PercentEq => "%=",
            AmpEq => "&=",
            PipeEq => "|=",
            CaretEq => "^=",
            ShlEq => "<<=",
            ShrEq => ">>=",
            PlusPlus => "++",
            MinusMinus => "--",
            Hash => "#",
        }
    }
}

/// The kind of one token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier (not a keyword).
    Ident(String),
    /// Keyword.
    Kw(Keyword),
    /// Integer literal with its value (suffixes folded away).
    IntLit(i64),
    /// Floating literal.
    FloatLit(f64),
    /// Character literal (value of the character).
    CharLit(u8),
    /// String literal (unescaped contents).
    StrLit(String),
    /// Operator or punctuation.
    Punct(Punct),
    /// End of file.
    Eof,
}

impl TokenKind {
    /// Short human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Kw(k) => format!("keyword `{}`", k.as_str()),
            TokenKind::IntLit(v) => format!("integer literal `{v}`"),
            TokenKind::FloatLit(v) => format!("float literal `{v}`"),
            TokenKind::CharLit(c) => format!("char literal `{}`", *c as char),
            TokenKind::StrLit(s) => format!("string literal {s:?}"),
            TokenKind::Punct(p) => format!("`{}`", p.as_str()),
            TokenKind::Eof => "end of file".to_string(),
        }
    }
}

/// One lexed token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
    /// True when this token is the first on its source line (needed by
    /// the line-oriented preprocessor).
    pub at_line_start: bool,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kw in [
            Keyword::Module,
            Keyword::Await,
            Keyword::EmitV,
            Keyword::WeakAbort,
            Keyword::Unsigned,
        ] {
            assert_eq!(Keyword::from_str(kw.as_str()), Some(kw));
        }
        assert_eq!(Keyword::from_str("not_a_keyword"), None);
    }

    #[test]
    fn punct_spellings() {
        assert_eq!(Punct::ShlEq.as_str(), "<<=");
        assert_eq!(Punct::Arrow.as_str(), "->");
    }

    #[test]
    fn token_describe() {
        assert_eq!(
            TokenKind::Ident("foo".into()).describe(),
            "identifier `foo`"
        );
        assert_eq!(TokenKind::Punct(Punct::Semi).describe(), "`;`");
    }
}
