//! Structured diagnostics.
//!
//! All phases of the compiler report problems through a [`DiagSink`]
//! rather than panicking or returning early, so a single run can surface
//! every issue it finds. Errors are fatal for the phase that produced
//! them; warnings and notes are informational.

use crate::source::{SourceFile, Span};
use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Additional context attached to a prior diagnostic.
    Note,
    /// Suspicious but accepted construct.
    Warning,
    /// Construct that the compiler cannot accept.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        f.write_str(s)
    }
}

/// A single diagnostic message with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Human-readable message (lowercase, no trailing period).
    pub message: String,
    /// Source range the message refers to.
    pub span: Span,
}

impl Diagnostic {
    /// Build an error diagnostic.
    pub fn error(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span,
        }
    }

    /// Build a warning diagnostic.
    pub fn warning(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            message: message.into(),
            span,
        }
    }

    /// Build a note diagnostic.
    pub fn note(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Note,
            message: message.into(),
            span,
        }
    }

    /// Render with file/line/column resolved against `file`.
    pub fn render(&self, file: &SourceFile) -> String {
        let lc = file.span_start(self.span);
        format!(
            "{}:{}: {}: {}",
            file.name(),
            lc,
            self.severity,
            self.message
        )
    }
}

/// Accumulates diagnostics across a compilation phase.
#[derive(Debug, Clone, Default)]
pub struct DiagSink {
    diags: Vec<Diagnostic>,
}

impl DiagSink {
    /// Create an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// Record an error.
    pub fn error(&mut self, message: impl Into<String>, span: Span) {
        self.push(Diagnostic::error(message, span));
    }

    /// Record a warning.
    pub fn warning(&mut self, message: impl Into<String>, span: Span) {
        self.push(Diagnostic::warning(message, span));
    }

    /// Record a note.
    pub fn note(&mut self, message: impl Into<String>, span: Span) {
        self.push(Diagnostic::note(message, span));
    }

    /// Whether any error-severity diagnostic has been recorded.
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Error)
    }

    /// All recorded diagnostics in emission order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter()
    }

    /// Number of recorded diagnostics (all severities).
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// Whether no diagnostics have been recorded.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Render all diagnostics, one per line, against `file`.
    pub fn render_all(&self, file: &SourceFile) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.render(file));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for DiagSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diags {
            writeln!(f, "{}: {} (at {})", d.severity, d.message, d.span)?;
        }
        Ok(())
    }
}

impl IntoIterator for DiagSink {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.diags.into_iter()
    }
}

/// The compilation stage that produced a diagnostic.
///
/// This is the shared vocabulary for the whole workspace: every crate
/// reports failures as an [`EclError`] tagged with the stage that
/// detected the problem, so drivers (CLI, `Workspace`, servers) can
/// render and group diagnostics uniformly without knowing each
/// crate's private error types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Preprocessing, lexing and parsing (`ecl-syntax`).
    Parse,
    /// Module inlining and renaming (`ecl-core::elab`).
    Elaborate,
    /// Reactive/data separation (`ecl-core::split`).
    Split,
    /// Esterel IR construction and structural checks (`esterel::ir`).
    Ir,
    /// EFSM generation and validation (`esterel::compile`, `efsm`).
    Efsm,
    /// Back-end emission (`codegen`).
    Codegen,
    /// Data-runtime construction and evaluation (`ecl-core::rt`).
    Runtime,
    /// Simulation (`sim`).
    Sim,
    /// Observer synthesis and monitor checking (`ecl-observe`).
    Observe,
}

impl Stage {
    /// Stable lowercase name (used in rendered diagnostics).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Elaborate => "elaborate",
            Stage::Split => "split",
            Stage::Ir => "ir",
            Stage::Efsm => "efsm",
            Stage::Codegen => "codegen",
            Stage::Runtime => "runtime",
            Stage::Sim => "sim",
            Stage::Observe => "observe",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Stage-tagged diagnostics accumulated along a compilation pipeline.
///
/// Unlike [`DiagSink`] (which lives inside one phase), `Diagnostics`
/// travels *across* stages: each pipeline stage appends what it found
/// and hands the collection forward, so the final artifact can report
/// every warning from parse to codegen with its origin.
#[derive(Debug, Clone, Default)]
pub struct Diagnostics {
    entries: Vec<(Stage, Diagnostic)>,
}

impl Diagnostics {
    /// An empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one diagnostic under `stage`.
    pub fn push(&mut self, stage: Stage, d: Diagnostic) {
        self.entries.push((stage, d));
    }

    /// Record an error under `stage`.
    pub fn error(&mut self, stage: Stage, message: impl Into<String>, span: Span) {
        self.push(stage, Diagnostic::error(message, span));
    }

    /// Record a warning under `stage`.
    pub fn warning(&mut self, stage: Stage, message: impl Into<String>, span: Span) {
        self.push(stage, Diagnostic::warning(message, span));
    }

    /// Record a note under `stage`.
    pub fn note(&mut self, stage: Stage, message: impl Into<String>, span: Span) {
        self.push(stage, Diagnostic::note(message, span));
    }

    /// Absorb a phase-local [`DiagSink`], tagging everything with `stage`.
    pub fn absorb_sink(&mut self, stage: Stage, sink: DiagSink) {
        for d in sink {
            self.push(stage, d);
        }
    }

    /// Append all entries of `other`.
    pub fn merge(&mut self, other: Diagnostics) {
        self.entries.extend(other.entries);
    }

    /// Whether any error-severity diagnostic has been recorded.
    pub fn has_errors(&self) -> bool {
        self.entries
            .iter()
            .any(|(_, d)| d.severity == Severity::Error)
    }

    /// All entries in emission order.
    pub fn iter(&self) -> impl Iterator<Item = (Stage, &Diagnostic)> {
        self.entries.iter().map(|(s, d)| (*s, d))
    }

    /// Entries produced by one stage.
    pub fn for_stage(&self, stage: Stage) -> impl Iterator<Item = &Diagnostic> {
        self.entries
            .iter()
            .filter(move |(s, _)| *s == stage)
            .map(|(_, d)| d)
    }

    /// Number of recorded diagnostics (all severities, all stages).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (stage, d) in self.iter() {
            writeln!(f, "[{stage}] {}: {} (at {})", d.severity, d.message, d.span)?;
        }
        Ok(())
    }
}

impl IntoIterator for Diagnostics {
    type Item = (Stage, Diagnostic);
    type IntoIter = std::vec::IntoIter<(Stage, Diagnostic)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// The unified workspace error: span-annotated diagnostics plus the
/// stage that failed.
///
/// Every fallible operation along the compilation pipeline — parsing,
/// elaboration, splitting, EFSM generation, codegen, runtime
/// construction, simulation — converges on this type, so callers only
/// handle one error shape regardless of how deep the failure occurred.
#[derive(Debug, Clone)]
pub struct EclError {
    stage: Stage,
    diags: Diagnostics,
}

impl EclError {
    /// Wrap already-collected diagnostics.
    pub fn new(stage: Stage, diags: Diagnostics) -> Self {
        EclError { stage, diags }
    }

    /// Single-message constructor.
    pub fn msg(stage: Stage, message: impl Into<String>, span: Span) -> Self {
        let mut diags = Diagnostics::new();
        diags.error(stage, message, span);
        EclError { stage, diags }
    }

    /// The stage that failed.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// The diagnostics carried by this error.
    pub fn diagnostics(&self) -> &Diagnostics {
        &self.diags
    }

    /// Prepend earlier-stage context (e.g. warnings accumulated before
    /// the failure) to the error's diagnostics.
    pub fn with_context(mut self, mut earlier: Diagnostics) -> Self {
        earlier.merge(std::mem::take(&mut self.diags));
        self.diags = earlier;
        self
    }

    /// The first error-severity message, if any (convenience for tests
    /// and log lines).
    pub fn first_message(&self) -> Option<&str> {
        self.diags
            .iter()
            .find(|(_, d)| d.severity == Severity::Error)
            .map(|(_, d)| d.message.as_str())
    }
}

impl fmt::Display for EclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} stage failed", self.stage)?;
        if self.diags.is_empty() {
            return Ok(());
        }
        writeln!(f, ":")?;
        for (stage, d) in self.diags.iter() {
            writeln!(
                f,
                "  [{stage}] {}: {} (at {})",
                d.severity, d.message, d.span
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for EclError {}

impl From<DiagSink> for EclError {
    fn from(sink: DiagSink) -> Self {
        let mut diags = Diagnostics::new();
        diags.absorb_sink(Stage::Parse, sink);
        EclError::new(Stage::Parse, diags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_tracks_errors() {
        let mut sink = DiagSink::new();
        assert!(!sink.has_errors());
        sink.warning("looks odd", Span::new(0, 1));
        assert!(!sink.has_errors());
        assert_eq!(sink.len(), 1);
        sink.error("broken", Span::new(1, 2));
        assert!(sink.has_errors());
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn diagnostic_renders_location() {
        let f = SourceFile::new("m.ecl", "abc\ndef");
        let d = Diagnostic::error("bad token", Span::new(4, 5));
        assert_eq!(d.render(&f), "m.ecl:2:1: error: bad token");
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
    }
}
