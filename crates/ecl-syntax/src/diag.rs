//! Structured diagnostics.
//!
//! All phases of the compiler report problems through a [`DiagSink`]
//! rather than panicking or returning early, so a single run can surface
//! every issue it finds. Errors are fatal for the phase that produced
//! them; warnings and notes are informational.

use crate::source::{SourceFile, Span};
use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Additional context attached to a prior diagnostic.
    Note,
    /// Suspicious but accepted construct.
    Warning,
    /// Construct that the compiler cannot accept.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        f.write_str(s)
    }
}

/// A single diagnostic message with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Human-readable message (lowercase, no trailing period).
    pub message: String,
    /// Source range the message refers to.
    pub span: Span,
}

impl Diagnostic {
    /// Build an error diagnostic.
    pub fn error(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span,
        }
    }

    /// Build a warning diagnostic.
    pub fn warning(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            message: message.into(),
            span,
        }
    }

    /// Build a note diagnostic.
    pub fn note(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Note,
            message: message.into(),
            span,
        }
    }

    /// Render with file/line/column resolved against `file`.
    pub fn render(&self, file: &SourceFile) -> String {
        let lc = file.span_start(self.span);
        format!("{}:{}: {}: {}", file.name(), lc, self.severity, self.message)
    }
}

/// Accumulates diagnostics across a compilation phase.
#[derive(Debug, Clone, Default)]
pub struct DiagSink {
    diags: Vec<Diagnostic>,
}

impl DiagSink {
    /// Create an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// Record an error.
    pub fn error(&mut self, message: impl Into<String>, span: Span) {
        self.push(Diagnostic::error(message, span));
    }

    /// Record a warning.
    pub fn warning(&mut self, message: impl Into<String>, span: Span) {
        self.push(Diagnostic::warning(message, span));
    }

    /// Record a note.
    pub fn note(&mut self, message: impl Into<String>, span: Span) {
        self.push(Diagnostic::note(message, span));
    }

    /// Whether any error-severity diagnostic has been recorded.
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Error)
    }

    /// All recorded diagnostics in emission order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter()
    }

    /// Number of recorded diagnostics (all severities).
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// Whether no diagnostics have been recorded.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Render all diagnostics, one per line, against `file`.
    pub fn render_all(&self, file: &SourceFile) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.render(file));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for DiagSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diags {
            writeln!(f, "{}: {} (at {})", d.severity, d.message, d.span)?;
        }
        Ok(())
    }
}

impl IntoIterator for DiagSink {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.diags.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_tracks_errors() {
        let mut sink = DiagSink::new();
        assert!(!sink.has_errors());
        sink.warning("looks odd", Span::new(0, 1));
        assert!(!sink.has_errors());
        assert_eq!(sink.len(), 1);
        sink.error("broken", Span::new(1, 2));
        assert!(sink.has_errors());
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn diagnostic_renders_location() {
        let f = SourceFile::new("m.ecl", "abc\ndef");
        let d = Diagnostic::error("bad token", Span::new(4, 5));
        assert_eq!(d.render(&f), "m.ecl:2:1: error: bad token");
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
    }
}
