//! A fast non-cryptographic hasher for hot name-keyed maps.
//!
//! Variable frames and signal tables are keyed by long mangled names
//! (`toplevel::prochdr#0::count`); hashing them with SipHash on every
//! identifier access is a measurable share of a reaction. This is the
//! classic Fx multiply-rotate word hash (as used by rustc): not
//! DoS-resistant, which is fine for interpreter-internal tables keyed
//! by program-derived names.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Word-at-a-time multiply-rotate hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_distinct_hashes() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(format!("toplevel::mod#{i}::var"), i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000 {
            assert_eq!(m.get(&format!("toplevel::mod#{i}::var")), Some(&i));
        }
    }

    #[test]
    fn empty_and_short_keys() {
        let mut m: FxHashMap<&str, u8> = FxHashMap::default();
        m.insert("", 0);
        m.insert("a", 1);
        m.insert("ab", 2);
        assert_eq!(m[""], 0);
        assert_eq!(m["a"], 1);
        assert_eq!(m["ab"], 2);
    }
}
