//! Minimal preprocessor.
//!
//! The ECL examples in the paper use object-like `#define` for constants
//! (`#define PKTSIZE HDRSIZE+DATASIZE+CRCSIZE`). This module implements
//! exactly that: a token-level object macro facility with recursive
//! expansion (guarded against self-reference), plus `#undef`. Other
//! directives (`#include`, conditionals, function-like macros) are
//! diagnosed and skipped — the reproduction's designs do not need them.

use crate::diag::DiagSink;
use crate::lexer;
use crate::source::{SourceFile, Span};
use crate::token::{Token, TokenKind};
use std::collections::HashMap;

/// Lex and preprocess a file: returns the macro-expanded token stream.
pub fn preprocess(file: &SourceFile, sink: &mut DiagSink) -> Vec<Token> {
    let raw = lexer::lex(file, sink);
    expand(raw, sink)
}

/// Expand preprocessor directives and macros over a raw token stream.
pub fn expand(raw: Vec<Token>, sink: &mut DiagSink) -> Vec<Token> {
    let mut macros: HashMap<String, Vec<Token>> = HashMap::new();
    let mut out = Vec::with_capacity(raw.len());
    let mut i = 0;
    while i < raw.len() {
        let tok = &raw[i];
        if matches!(tok.kind, TokenKind::Punct(crate::token::Punct::Hash)) && tok.at_line_start {
            i = directive(&raw, i, &mut macros, sink);
            continue;
        }
        if matches!(tok.kind, TokenKind::Eof) {
            out.push(tok.clone());
            break;
        }
        expand_token(tok, &macros, &mut Vec::new(), &mut out, sink);
        i += 1;
    }
    out
}

/// Handle one `#...` directive starting at `raw[at]`; returns the index
/// of the first token after the directive line.
fn directive(
    raw: &[Token],
    at: usize,
    macros: &mut HashMap<String, Vec<Token>>,
    sink: &mut DiagSink,
) -> usize {
    let hash_span = raw[at].span;
    // Collect the directive's tokens: everything up to the next token
    // that starts a new line (or EOF).
    let mut end = at + 1;
    while end < raw.len() && !raw[end].at_line_start && !matches!(raw[end].kind, TokenKind::Eof) {
        end += 1;
    }
    let line = &raw[at + 1..end];
    let Some(first) = line.first() else {
        sink.error("empty preprocessor directive", hash_span);
        return end;
    };
    let name = match &first.kind {
        TokenKind::Ident(s) => s.as_str(),
        // `#if`, `#else` lex as keywords.
        TokenKind::Kw(k) => k.as_str(),
        _ => {
            sink.error("malformed preprocessor directive", first.span);
            return end;
        }
    };
    match name {
        "define" => {
            let Some(target) = line.get(1) else {
                sink.error("`#define` needs a name", hash_span);
                return end;
            };
            let TokenKind::Ident(macro_name) = &target.kind else {
                sink.error("`#define` target must be an identifier", target.span);
                return end;
            };
            // Reject function-like macros: `#define F(x)` has `(` glued
            // right after the name; we cannot see adjacency at token
            // level, so detect by `(` immediately following.
            if matches!(
                line.get(2).map(|t| &t.kind),
                Some(TokenKind::Punct(crate::token::Punct::LParen))
            ) && line.get(2).map(|t| t.span.start) == Some(target.span.end)
            {
                sink.error(
                    "function-like macros are not supported by this ECL front end",
                    target.span,
                );
                return end;
            }
            let body: Vec<Token> = line[2..].to_vec();
            if macros.insert(macro_name.clone(), body).is_some() {
                sink.warning(format!("macro `{macro_name}` redefined"), target.span);
            }
        }
        "undef" => {
            if let Some(TokenKind::Ident(n)) = line.get(1).map(|t| &t.kind) {
                macros.remove(n);
            } else {
                sink.error("`#undef` needs a name", hash_span);
            }
        }
        "include" => {
            sink.warning(
                "`#include` ignored (self-contained designs only)",
                hash_span,
            );
        }
        other => {
            sink.error(
                format!("unsupported preprocessor directive `#{other}`"),
                hash_span,
            );
        }
    }
    end
}

/// Expand one token (recursively for macros), appending to `out`.
#[allow(clippy::only_used_in_recursion)]
fn expand_token(
    tok: &Token,
    macros: &HashMap<String, Vec<Token>>,
    active: &mut Vec<String>,
    out: &mut Vec<Token>,
    sink: &mut DiagSink,
) {
    if let TokenKind::Ident(name) = &tok.kind {
        if let Some(body) = macros.get(name) {
            if active.iter().any(|a| a == name) {
                // Self-referential macro: emit the name literally, as C does.
                out.push(tok.clone());
                return;
            }
            active.push(name.clone());
            for t in body {
                // Substituted tokens carry the *use site* span so
                // diagnostics point at the macro invocation.
                let mut t2 = t.clone();
                t2.span = tok.span;
                t2.at_line_start = false;
                expand_token(&t2, macros, active, out, sink);
            }
            active.pop();
            return;
        }
    }
    out.push(tok.clone());
}

/// Convenience: preprocess a bare string (used by tests).
pub fn preprocess_str(text: &str, sink: &mut DiagSink) -> Vec<Token> {
    let f = SourceFile::new("<pp>", text);
    preprocess(&f, sink)
}

/// Render a token stream back to text (lossy whitespace) — useful in
/// tests and debugging.
pub fn tokens_to_string(toks: &[Token]) -> String {
    let mut s = String::new();
    for t in toks {
        match &t.kind {
            TokenKind::Eof => break,
            TokenKind::Ident(n) => s.push_str(n),
            TokenKind::Kw(k) => s.push_str(k.as_str()),
            TokenKind::IntLit(v) => s.push_str(&v.to_string()),
            TokenKind::FloatLit(v) => s.push_str(&v.to_string()),
            TokenKind::CharLit(c) => s.push_str(&format!("'{}'", *c as char)),
            TokenKind::StrLit(v) => s.push_str(&format!("{v:?}")),
            TokenKind::Punct(p) => s.push_str(p.as_str()),
        }
        s.push(' ');
    }
    s.trim_end().to_string()
}

#[allow(dead_code)]
fn _span_unused(_: Span) {}

#[cfg(test)]
mod tests {
    use super::*;

    fn pp(text: &str) -> (String, DiagSink) {
        let mut sink = DiagSink::new();
        let toks = preprocess_str(text, &mut sink);
        (tokens_to_string(&toks), sink)
    }

    #[test]
    fn simple_define() {
        let (s, sink) = pp("#define N 4\nint x = N;");
        assert!(!sink.has_errors());
        assert_eq!(s, "int x = 4 ;");
    }

    #[test]
    fn chained_defines_like_pktsize() {
        let (s, sink) = pp(
            "#define HDRSIZE 6\n#define DATASIZE 56\n#define CRCSIZE 2\n\
             #define PKTSIZE HDRSIZE+DATASIZE+CRCSIZE\nint a[PKTSIZE];",
        );
        assert!(!sink.has_errors());
        assert_eq!(s, "int a [ 6 + 56 + 2 ] ;");
    }

    #[test]
    fn self_referential_macro_stops() {
        let (s, sink) = pp("#define X X + 1\nint y = X;");
        assert!(!sink.has_errors());
        assert_eq!(s, "int y = X + 1 ;");
    }

    #[test]
    fn undef_removes_macro() {
        let (s, _) = pp("#define A 1\n#undef A\nint x = A;");
        assert_eq!(s, "int x = A ;");
    }

    #[test]
    fn redefinition_warns() {
        let (_, sink) = pp("#define A 1\n#define A 2\n");
        assert!(!sink.has_errors());
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn include_warns_only() {
        let (_, sink) = pp("#include \"foo.h\"\nint x;");
        assert!(!sink.has_errors());
        assert!(sink.len() == 1);
    }

    #[test]
    fn unknown_directive_errors() {
        let (_, sink) = pp("#pragma once\n");
        assert!(sink.has_errors());
    }

    #[test]
    fn macro_body_can_be_empty() {
        let (s, sink) = pp("#define EMPTY\nint EMPTY x;");
        assert!(!sink.has_errors());
        assert_eq!(s, "int x ;");
    }
}
