//! `ecl-faults` — seedable, fully deterministic fault injection for
//! the reaction stack.
//!
//! The kernel, the runners and the `Rt` data path call the site
//! functions below at well-defined points (event posting, input
//! setters, backend dispatch, instant boundaries). With no plan
//! installed every site is one relaxed atomic load and a predicted
//! branch — the same master-switch contract as
//! `ecl_telemetry::enabled()`, so the hot path is untouched when
//! faults are off (the zero-allocation and bench gates both run with
//! the switch off).
//!
//! # Determinism contract
//!
//! Every decision is a pure function of the plan seed and the site's
//! *coordinates*, never of global query order:
//!
//! * **keyed sites** (external drop/delay, fuel starvation, VM/table
//!   demotion, panic) hash `(seed, site salt, coordinates)` — e.g.
//!   `(instant, signal)` or `(hook kind, index)` — with a SplitMix64
//!   finalizer. Two backends that query the same site with the same
//!   coordinates get the same answer regardless of how many *other*
//!   sites fired in between.
//! * **stream sites** (internal drop/delay, input corruption) draw
//!   from a per-site `rand::rngs::StdRng` seeded from
//!   `(seed, site salt)`. Their call sequences are identical across
//!   the walker, table and VM backends (posting order and input
//!   setter order are backend-invariant), so the streams replay
//!   bit-identically too.
//!
//! Installing a plan resets all per-site state, so the same seed
//! replays the same faults run after run — the chaos differential
//! suite relies on byte-identical traces across interp ≡ tables ≡ VM.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

use ecl_telemetry::metrics as tm;

/// Master switch. Off unless a plan is installed; every site function
/// short-circuits on a relaxed load of this flag.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is a fault plan installed? One relaxed load — hot paths call this
/// (or hoist it per instant) before touching any site function.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A deterministic fault plan. All rates are probabilities in
/// `[0, 1]`; the default plan injects nothing even when installed.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every per-site decision stream.
    pub seed: u64,
    /// P(drop) per external event, keyed by `(instant, signal)`.
    pub drop_external: f64,
    /// P(delay) per external event, keyed by `(instant, signal)`.
    /// A delayed event is re-presented 1..=`max_delay` instants later.
    pub delay_external: f64,
    /// Upper bound (in instants) of an external delay; min 1.
    pub max_delay: u64,
    /// P(drop) per internal (inter-task) event, stream-drawn.
    pub drop_internal: f64,
    /// P(defer to the next instant) per internal event, stream-drawn.
    pub delay_internal: f64,
    /// Shrunk per-task mailbox capacity (pending-set size); `None`
    /// keeps the 1-place-per-signal semantics unbounded across
    /// signals.
    pub mailbox_cap: Option<usize>,
    /// P(corrupt) per `Rt` index-based input write, stream-drawn; the
    /// written value is XOR-perturbed, never left equal.
    pub corrupt_input: f64,
    /// P(starve) per instant, keyed by instant: data-path fuel is
    /// capped at `starved_fuel` for that instant and restored after.
    pub fuel_starve: f64,
    /// The fuel cap applied by a starved instant.
    pub starved_fuel: u64,
    /// P(demote) per VM hook program, keyed by `(hook kind, index)`:
    /// the compiled program is latched onto the tree-walker.
    pub vm_fault: f64,
    /// P(demote) per `(task, state)` table row, keyed: the compiled
    /// transition table is latched onto the s-graph walker for that
    /// state.
    pub table_fault: f64,
    /// Panic injected at the start of this instant (once per
    /// install) — exercises the session containment boundary.
    pub panic_at: Option<u64>,
    /// P(a fleet session is killed at all), keyed by session id. A
    /// killed session dies (injected panic) at a deterministic
    /// instant in `[0, kill_within)`, at most once per install — the
    /// supervisor's restart path replays past the site without
    /// re-dying.
    pub kill_session: f64,
    /// Exclusive upper bound of the kill instant; min 1.
    pub kill_within: u64,
    /// P(stall) per `(shard, quantum)`, keyed: the fleet worker
    /// sleeps `stall_ms` before running the quantum. Purely temporal
    /// — session results must be byte-identical under any stall
    /// pattern (the chaos suite proves it).
    pub shard_stall: f64,
    /// Stall duration in milliseconds.
    pub stall_ms: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_external: 0.0,
            delay_external: 0.0,
            max_delay: 1,
            drop_internal: 0.0,
            delay_internal: 0.0,
            mailbox_cap: None,
            corrupt_input: 0.0,
            fuel_starve: 0.0,
            starved_fuel: 64,
            vm_fault: 0.0,
            table_fault: 0.0,
            panic_at: None,
            kill_session: 0.0,
            kill_within: 100,
            shard_stall: 0.0,
            stall_ms: 1,
        }
    }
}

impl FaultPlan {
    /// An inert plan with the given seed.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }
}

/// How many injections each site performed since `install`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionStats {
    /// External events dropped at the runner boundary.
    pub dropped_external: u64,
    /// External events delayed at the runner boundary.
    pub delayed_external: u64,
    /// Internal events dropped at `Kernel::post_internal`.
    pub dropped_internal: u64,
    /// Internal events deferred one instant at `Kernel::post_internal`.
    pub delayed_internal: u64,
    /// Deliveries rejected by the shrunk mailbox capacity.
    pub mailbox_rejections: u64,
    /// Input values corrupted at the `Rt` setters.
    pub corrupted_inputs: u64,
    /// Instants that ran under a squeezed fuel budget.
    pub starved_instants: u64,
    /// VM hook programs demoted to the walker.
    pub vm_demotions: u64,
    /// Table states demoted to the walker.
    pub table_demotions: u64,
    /// Panics injected.
    pub panics: u64,
    /// Fleet sessions killed at an instant boundary.
    pub session_kills: u64,
    /// Fleet shard quanta stalled.
    pub shard_stalls: u64,
}

impl InjectionStats {
    /// Total injections across all sites.
    pub fn total(&self) -> u64 {
        self.dropped_external
            + self.delayed_external
            + self.dropped_internal
            + self.delayed_internal
            + self.mailbox_rejections
            + self.corrupted_inputs
            + self.starved_instants
            + self.vm_demotions
            + self.table_demotions
            + self.panics
            + self.session_kills
            + self.shard_stalls
    }
}

/// Per-site stream state, reset on every `install`.
struct Active {
    plan: FaultPlan,
    internal_rng: StdRng,
    corrupt_rng: StdRng,
    panic_fired: bool,
    /// Sessions the kill site already fired for (one-shot per
    /// session per install, so checkpoint replay survives the site).
    kills_fired: Vec<u64>,
    stats: InjectionStats,
}

static ACTIVE: Mutex<Option<Active>> = Mutex::new(None);

fn active() -> MutexGuard<'static, Option<Active>> {
    ACTIVE.lock().unwrap_or_else(|e| e.into_inner())
}

// Distinct per-site salts so one site's decisions never alias
// another's.
const SALT_DROP_EXT: u64 = 0x1;
const SALT_DELAY_EXT: u64 = 0x2;
const SALT_DELAY_EXT_N: u64 = 0x3;
const SALT_DROP_INT: u64 = 0x4;
const SALT_CORRUPT: u64 = 0x6;
const SALT_FUEL: u64 = 0x7;
const SALT_VM: u64 = 0x8;
const SALT_TABLE: u64 = 0x9;
const SALT_KILL: u64 = 0x5;
const SALT_KILL_AT: u64 = 0xA;
const SALT_STALL: u64 = 0xB;

/// SplitMix64 finalizer over the seed, a site salt and two
/// coordinates — the keyed-site decision function.
fn mix(seed: u64, salt: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        .wrapping_add(salt.wrapping_mul(0x9E3779B97F4A7C15))
        .wrapping_add(a.wrapping_mul(0xBF58476D1CE4E5B9))
        .wrapping_add(b.wrapping_mul(0x94D049BB133111EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` from the top 53 bits of a hash.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn hit(seed: u64, salt: u64, a: u64, b: u64, p: f64) -> bool {
    p > 0.0 && unit(mix(seed, salt, a, b)) < p
}

/// Emit a `fault_injected` telemetry line (no-op when telemetry is
/// off or sinkless) and bump the injection counter.
fn note_injected(site: &str, a: u64, b: u64) {
    tm::FAULTS_INJECTED.incr();
    if let Some(e) = ecl_telemetry::event("fault_injected") {
        e.str("site", site).u64("a", a).u64("b", b).emit();
    }
}

/// Record a graceful degradation: a compiled backend was latched onto
/// the walker at `site` (`"vm"` or `"table"`). Bumps the degradation
/// counter and emits both a `degraded` line and an `error` line (the
/// ladder is an error-class condition even though the run continues).
pub fn note_degraded(site: &str, key: &str, index: u64) {
    tm::FAULTS_DEGRADED.incr();
    if let Some(e) = ecl_telemetry::event("degraded") {
        e.str("site", site)
            .str("kind", key)
            .u64("index", index)
            .emit();
    }
    if let Some(e) = ecl_telemetry::event("error") {
        e.str("msg", "compiled backend demoted to walker")
            .u64("session", ecl_telemetry::current_session())
            .str("site", site)
            .str("kind", key)
            .u64("index", index)
            .emit();
    }
}

/// Install `plan` and flip the master switch on. Resets every
/// per-site stream and the injection stats, so the same seed replays
/// the same faults.
pub fn install(plan: FaultPlan) {
    let mut g = active();
    *g = Some(Active {
        internal_rng: StdRng::seed_from_u64(
            plan.seed ^ SALT_DROP_INT.wrapping_mul(0x9E3779B97F4A7C15),
        ),
        corrupt_rng: StdRng::seed_from_u64(
            plan.seed ^ SALT_CORRUPT.wrapping_mul(0x9E3779B97F4A7C15),
        ),
        panic_fired: false,
        kills_fired: Vec::new(),
        stats: InjectionStats::default(),
        plan,
    });
    ENABLED.store(true, Ordering::Relaxed);
}

/// Flip the master switch off and drop the plan, returning the
/// injection stats of the finished chaos run (if one was installed).
pub fn uninstall() -> Option<InjectionStats> {
    ENABLED.store(false, Ordering::Relaxed);
    active().take().map(|a| a.stats)
}

/// Injection stats of the installed plan, if any.
pub fn stats() -> Option<InjectionStats> {
    active().as_ref().map(|a| a.stats)
}

/// The installed plan, if any.
pub fn current_plan() -> Option<FaultPlan> {
    active().as_ref().map(|a| a.plan.clone())
}

/// Should this external event be dropped? Keyed by
/// `(instant, signal)` — runners ask before posting environment
/// stimuli.
pub fn drop_external(instant: u64, sig: u32) -> bool {
    if !enabled() {
        return false;
    }
    let mut g = active();
    let Some(a) = g.as_mut() else { return false };
    if hit(
        a.plan.seed,
        SALT_DROP_EXT,
        instant,
        sig as u64,
        a.plan.drop_external,
    ) {
        a.stats.dropped_external += 1;
        drop(g);
        note_injected("drop_external", instant, sig as u64);
        true
    } else {
        false
    }
}

/// Should this external event be delayed? Returns the number of
/// instants (1..=`max_delay`) to hold it, keyed by
/// `(instant, signal)`. Queried only for events that survived
/// [`drop_external`].
pub fn delay_external(instant: u64, sig: u32) -> Option<u64> {
    if !enabled() {
        return None;
    }
    let mut g = active();
    let a = g.as_mut()?;
    if !hit(
        a.plan.seed,
        SALT_DELAY_EXT,
        instant,
        sig as u64,
        a.plan.delay_external,
    ) {
        return None;
    }
    let span = a.plan.max_delay.max(1);
    let d = 1 + mix(a.plan.seed, SALT_DELAY_EXT_N, instant, sig as u64) % span;
    a.stats.delayed_external += 1;
    drop(g);
    note_injected("delay_external", instant, sig as u64);
    Some(d)
}

/// Should this internal (inter-task) event be dropped? Stream-drawn —
/// `Kernel::post_internal` asks once per emission, and emission order
/// is backend-invariant.
pub fn drop_internal(sig: u32) -> bool {
    if !enabled() {
        return false;
    }
    let mut g = active();
    let Some(a) = g.as_mut() else { return false };
    let p = a.plan.drop_internal;
    if p > 0.0 && unit(a.internal_rng.next_u64()) < p {
        a.stats.dropped_internal += 1;
        drop(g);
        note_injected("drop_internal", sig as u64, 0);
        true
    } else {
        false
    }
}

/// Should this internal event be deferred to the next instant?
/// Stream-drawn, queried only for events that survived
/// [`drop_internal`].
pub fn delay_internal(sig: u32) -> bool {
    if !enabled() {
        return false;
    }
    let mut g = active();
    let Some(a) = g.as_mut() else { return false };
    let p = a.plan.delay_internal;
    if p > 0.0 && unit(a.internal_rng.next_u64()) < p {
        a.stats.delayed_internal += 1;
        drop(g);
        note_injected("delay_internal", sig as u64, 0);
        true
    } else {
        false
    }
}

/// The shrunk mailbox capacity, if the plan applies pressure.
pub fn mailbox_cap() -> Option<usize> {
    if !enabled() {
        return None;
    }
    active().as_ref().and_then(|a| a.plan.mailbox_cap)
}

/// Record one delivery rejected by the shrunk capacity (the kernel
/// counts the loss itself — this only keeps the injection stats and
/// event stream honest).
pub fn note_mailbox_rejection(task: u64, sig: u32) {
    let mut g = active();
    let Some(a) = g.as_mut() else { return };
    a.stats.mailbox_rejections += 1;
    drop(g);
    note_injected("mailbox_cap", task, sig as u64);
}

/// Corrupt an input value about to be written at slot `idx`? Returns
/// the replacement (always different from `v`). Stream-drawn — the
/// runners call the setters in testbench order on every backend.
pub fn corrupt_i64(idx: usize, v: i64) -> Option<i64> {
    if !enabled() {
        return None;
    }
    let mut g = active();
    let a = g.as_mut()?;
    let p = a.plan.corrupt_input;
    if !(p > 0.0 && unit(a.corrupt_rng.next_u64()) < p) {
        return None;
    }
    // A non-zero XOR mask guarantees the value actually changes.
    let mut mask = a.corrupt_rng.next_u64() as i64;
    if mask == 0 {
        mask = 1;
    }
    a.stats.corrupted_inputs += 1;
    drop(g);
    note_injected("corrupt_input", idx as u64, 0);
    Some(v ^ mask)
}

/// Is this instant fuel-starved? Returns the squeezed fuel cap, keyed
/// by instant. Runners apply the cap for the instant and restore the
/// unconsumed balance afterwards.
pub fn fuel_cap(instant: u64) -> Option<u64> {
    if !enabled() {
        return None;
    }
    let mut g = active();
    let a = g.as_mut()?;
    if !hit(a.plan.seed, SALT_FUEL, instant, 0, a.plan.fuel_starve) {
        return None;
    }
    let cap = a.plan.starved_fuel;
    a.stats.starved_instants += 1;
    drop(g);
    note_injected("fuel_starve", instant, cap);
    Some(cap)
}

/// Hook-kind coordinate of a VM predicate program.
pub const VM_PRED: u64 = 0;
/// Hook-kind coordinate of a VM action program.
pub const VM_ACTION: u64 = 1;
/// Hook-kind coordinate of a VM valued-emit program.
pub const VM_EMIT: u64 = 2;

/// Should this compiled VM hook be demoted to the walker? Keyed by
/// `(hook kind, program index)` — asked once per program; the caller
/// latches the answer.
pub fn vm_fault(kind: u64, index: u32) -> bool {
    if !enabled() {
        return false;
    }
    let mut g = active();
    let Some(a) = g.as_mut() else { return false };
    if hit(a.plan.seed, SALT_VM, kind, index as u64, a.plan.vm_fault) {
        a.stats.vm_demotions += 1;
        drop(g);
        note_injected("vm_fault", kind, index as u64);
        true
    } else {
        false
    }
}

/// Should this compiled table state be demoted to the walker? Keyed
/// by `(task, state)` — asked once per pair; the caller latches the
/// answer.
pub fn table_fault(task: usize, state: u32) -> bool {
    if !enabled() {
        return false;
    }
    let mut g = active();
    let Some(a) = g.as_mut() else { return false };
    if hit(
        a.plan.seed,
        SALT_TABLE,
        task as u64,
        state as u64,
        a.plan.table_fault,
    ) {
        a.stats.table_demotions += 1;
        drop(g);
        note_injected("table_fault", task as u64, state as u64);
        true
    } else {
        false
    }
}

/// Is the injected panic due at this instant? Fires at most once per
/// `install` (a batch run contains exactly one poisoned session).
pub fn panic_due(instant: u64) -> bool {
    if !enabled() {
        return false;
    }
    let mut g = active();
    let Some(a) = g.as_mut() else { return false };
    if a.panic_fired || a.plan.panic_at != Some(instant) {
        return false;
    }
    a.panic_fired = true;
    a.stats.panics += 1;
    drop(g);
    note_injected("panic", instant, 0);
    true
}

/// Should fleet session `session` be killed at `instant`? Keyed: the
/// victim set is chosen by `(seed, session)` and each victim dies at
/// one deterministic instant in `[0, kill_within)`. One-shot per
/// session per install — the supervisor's checkpoint replay crosses
/// the same instant again without re-dying, so restarts converge.
pub fn kill_due(session: u64, instant: u64) -> bool {
    if !enabled() {
        return false;
    }
    let mut g = active();
    let Some(a) = g.as_mut() else { return false };
    if !hit(a.plan.seed, SALT_KILL, session, 0, a.plan.kill_session) {
        return false;
    }
    let at = mix(a.plan.seed, SALT_KILL_AT, session, 0) % a.plan.kill_within.max(1);
    if instant != at || a.kills_fired.contains(&session) {
        return false;
    }
    a.kills_fired.push(session);
    a.stats.session_kills += 1;
    drop(g);
    note_injected("kill_session", session, instant);
    true
}

/// Which instant would [`kill_due`] fire at for `session`, if any —
/// lets chaos tests predict the victim set without consuming the
/// one-shot latch.
pub fn kill_instant(session: u64) -> Option<u64> {
    if !enabled() {
        return None;
    }
    let g = active();
    let a = g.as_ref()?;
    hit(a.plan.seed, SALT_KILL, session, 0, a.plan.kill_session)
        .then(|| mix(a.plan.seed, SALT_KILL_AT, session, 0) % a.plan.kill_within.max(1))
}

/// Should fleet shard `shard` stall before running quantum `quantum`?
/// Returns the stall in milliseconds. Keyed — purely temporal: the
/// chaos suite proves session outputs are byte-identical under any
/// stall pattern.
pub fn shard_stall(shard: u64, quantum: u64) -> Option<u64> {
    if !enabled() {
        return None;
    }
    let mut g = active();
    let a = g.as_mut()?;
    if !hit(a.plan.seed, SALT_STALL, shard, quantum, a.plan.shard_stall) {
        return None;
    }
    let ms = a.plan.stall_ms;
    a.stats.shard_stalls += 1;
    drop(g);
    note_injected("shard_stall", shard, quantum);
    Some(ms)
}

/// Configure from the environment: `ECL_FAULTS` holds a
/// comma-separated `key=value` list, e.g.
/// `ECL_FAULTS=seed=7,drop_external=0.02,mailbox_cap=3,panic_at=100`.
/// Keys are the [`FaultPlan`] field names. Returns whether a plan was
/// installed. Unknown keys and malformed values are reported on
/// stderr and skipped, never fatal.
pub fn init_from_env() -> bool {
    let Ok(spec) = std::env::var("ECL_FAULTS") else {
        return false;
    };
    if spec.is_empty() || spec == "0" {
        return false;
    }
    let mut plan = FaultPlan::default();
    for item in spec.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        let Some((k, v)) = item.split_once('=') else {
            eprintln!("ecl-faults: malformed ECL_FAULTS item `{item}` (want key=value)");
            continue;
        };
        let ok = match k.trim() {
            "seed" => v.parse().map(|x| plan.seed = x).is_ok(),
            "drop_external" => v.parse().map(|x| plan.drop_external = x).is_ok(),
            "delay_external" => v.parse().map(|x| plan.delay_external = x).is_ok(),
            "max_delay" => v.parse().map(|x| plan.max_delay = x).is_ok(),
            "drop_internal" => v.parse().map(|x| plan.drop_internal = x).is_ok(),
            "delay_internal" => v.parse().map(|x| plan.delay_internal = x).is_ok(),
            "mailbox_cap" => v.parse().map(|x| plan.mailbox_cap = Some(x)).is_ok(),
            "corrupt_input" => v.parse().map(|x| plan.corrupt_input = x).is_ok(),
            "fuel_starve" => v.parse().map(|x| plan.fuel_starve = x).is_ok(),
            "starved_fuel" => v.parse().map(|x| plan.starved_fuel = x).is_ok(),
            "vm_fault" => v.parse().map(|x| plan.vm_fault = x).is_ok(),
            "table_fault" => v.parse().map(|x| plan.table_fault = x).is_ok(),
            "panic_at" => v.parse().map(|x| plan.panic_at = Some(x)).is_ok(),
            "kill_session" => v.parse().map(|x| plan.kill_session = x).is_ok(),
            "kill_within" => v.parse().map(|x| plan.kill_within = x).is_ok(),
            "shard_stall" => v.parse().map(|x| plan.shard_stall = x).is_ok(),
            "stall_ms" => v.parse().map(|x| plan.stall_ms = x).is_ok(),
            other => {
                eprintln!("ecl-faults: unknown ECL_FAULTS key `{other}`");
                continue;
            }
        };
        if !ok {
            eprintln!("ecl-faults: bad value in ECL_FAULTS item `{item}`");
        }
    }
    install(plan);
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    // The plan is process-global; serialize the tests that install
    // one.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_sites_are_inert() {
        let _g = locked();
        uninstall();
        assert!(!enabled());
        assert!(!drop_external(3, 7));
        assert!(delay_external(3, 7).is_none());
        assert!(!drop_internal(7));
        assert!(!delay_internal(7));
        assert!(mailbox_cap().is_none());
        assert!(corrupt_i64(0, 42).is_none());
        assert!(fuel_cap(5).is_none());
        assert!(!vm_fault(VM_PRED, 0));
        assert!(!table_fault(0, 0));
        assert!(!panic_due(0));
        assert!(!kill_due(0, 0));
        assert!(kill_instant(0).is_none());
        assert!(shard_stall(0, 0).is_none());
        assert!(stats().is_none());
    }

    #[test]
    fn kill_site_is_one_shot_per_session() {
        let _g = locked();
        install(FaultPlan {
            kill_session: 1.0,
            kill_within: 10,
            ..FaultPlan::seeded(11)
        });
        let at = kill_instant(3).expect("rate 1.0 marks every session");
        assert!(at < 10);
        assert!(!kill_due(3, at + 1), "kill must fire at its own instant");
        assert!(kill_due(3, at));
        assert!(!kill_due(3, at), "kill site must be one-shot per session");
        // Other sessions keep their own independent latch.
        let at4 = kill_instant(4).unwrap();
        assert!(kill_due(4, at4));
        install(FaultPlan {
            kill_session: 1.0,
            kill_within: 10,
            ..FaultPlan::seeded(11)
        });
        assert_eq!(
            kill_instant(3),
            Some(at),
            "kill instant moved under reinstall"
        );
        assert!(kill_due(3, at), "reinstall re-arms the kill site");
        assert_eq!(uninstall().unwrap().session_kills, 1);
    }

    #[test]
    fn stall_site_is_keyed_and_bounded() {
        let _g = locked();
        install(FaultPlan {
            shard_stall: 0.5,
            stall_ms: 3,
            ..FaultPlan::seeded(21)
        });
        let a: Vec<Option<u64>> = (0..64).map(|q| shard_stall(1, q)).collect();
        install(FaultPlan {
            shard_stall: 0.5,
            stall_ms: 3,
            ..FaultPlan::seeded(21)
        });
        let b: Vec<Option<u64>> = (0..64).map(|q| shard_stall(1, q)).collect();
        assert_eq!(a, b, "keyed stall decisions moved under reinstall");
        assert!(a.iter().any(|x| x == &Some(3)), "stall never fired");
        assert!(a.iter().any(|x| x.is_none()), "stall always fired");
        uninstall();
    }

    #[test]
    fn keyed_sites_are_query_order_free() {
        let _g = locked();
        install(FaultPlan {
            drop_external: 0.5,
            fuel_starve: 0.5,
            vm_fault: 0.5,
            table_fault: 0.5,
            ..FaultPlan::seeded(42)
        });
        let forward: Vec<bool> = (0..64).map(|i| drop_external(i, (i % 5) as u32)).collect();
        let fuel: Vec<Option<u64>> = (0..64).map(fuel_cap).collect();
        // Reinstall and interleave the queries in a different order —
        // keyed answers must not move.
        install(FaultPlan {
            drop_external: 0.5,
            fuel_starve: 0.5,
            vm_fault: 0.5,
            table_fault: 0.5,
            ..FaultPlan::seeded(42)
        });
        for i in (0..64).rev() {
            assert_eq!(fuel_cap(i), fuel[i as usize]);
            let first = vm_fault(VM_PRED, i as u32);
            assert_eq!(vm_fault(VM_PRED, i as u32), first, "keyed answer moved");
            assert_eq!(
                drop_external(i, (i % 5) as u32),
                forward[i as usize],
                "instant {i}"
            );
        }
        let s = uninstall().unwrap();
        assert!(s.total() > 0, "a 0.5-rate plan injected nothing");
    }

    #[test]
    fn stream_sites_replay_under_the_same_seed() {
        let _g = locked();
        let plan = FaultPlan {
            drop_internal: 0.3,
            delay_internal: 0.2,
            corrupt_input: 0.4,
            ..FaultPlan::seeded(1999)
        };
        install(plan.clone());
        let a: Vec<(bool, bool, Option<i64>)> = (0..128)
            .map(|i| {
                (
                    drop_internal(i),
                    delay_internal(i),
                    corrupt_i64(i as usize, i as i64),
                )
            })
            .collect();
        install(plan);
        let b: Vec<(bool, bool, Option<i64>)> = (0..128)
            .map(|i| {
                (
                    drop_internal(i),
                    delay_internal(i),
                    corrupt_i64(i as usize, i as i64),
                )
            })
            .collect();
        assert_eq!(a, b, "stream sites diverged under an identical seed");
        assert!(a.iter().any(|x| x.0), "drop stream never fired");
        assert!(
            a.iter().any(|x| x.2.is_some()),
            "corrupt stream never fired"
        );
        // Corruption really changes the value.
        for (i, x) in a.iter().enumerate() {
            if let Some(v) = x.2 {
                assert_ne!(v, i as i64);
            }
        }
        uninstall();
    }

    #[test]
    fn different_seeds_differ() {
        let _g = locked();
        install(FaultPlan {
            drop_external: 0.5,
            ..FaultPlan::seeded(1)
        });
        let a: Vec<bool> = (0..256).map(|i| drop_external(i, 0)).collect();
        install(FaultPlan {
            drop_external: 0.5,
            ..FaultPlan::seeded(2)
        });
        let b: Vec<bool> = (0..256).map(|i| drop_external(i, 0)).collect();
        assert_ne!(a, b, "two seeds produced identical drop patterns");
        uninstall();
    }

    #[test]
    fn panic_site_fires_once_per_install() {
        let _g = locked();
        install(FaultPlan {
            panic_at: Some(5),
            ..FaultPlan::seeded(0)
        });
        assert!(!panic_due(4));
        assert!(panic_due(5));
        assert!(!panic_due(5), "panic site must be one-shot");
        install(FaultPlan {
            panic_at: Some(5),
            ..FaultPlan::seeded(0)
        });
        assert!(panic_due(5), "reinstall re-arms the panic site");
        assert_eq!(uninstall().unwrap().panics, 1);
    }

    #[test]
    fn delay_is_bounded_by_max_delay() {
        let _g = locked();
        install(FaultPlan {
            delay_external: 1.0,
            max_delay: 4,
            ..FaultPlan::seeded(7)
        });
        for i in 0..256 {
            let d = delay_external(i, 3).expect("rate 1.0 always delays");
            assert!((1..=4).contains(&d), "delay {d} out of range");
        }
        uninstall();
    }

    #[test]
    fn env_spec_parses_and_installs() {
        let _g = locked();
        // Direct plan parse via the same code path `init_from_env`
        // uses, but without mutating the process environment (other
        // test binaries read it concurrently).
        std::env::set_var(
            "ECL_FAULTS",
            "seed=9,drop_external=0.25,mailbox_cap=2,panic_at=17,starved_fuel=128",
        );
        assert!(init_from_env());
        let p = current_plan().unwrap();
        assert_eq!(p.seed, 9);
        assert_eq!(p.drop_external, 0.25);
        assert_eq!(p.mailbox_cap, Some(2));
        assert_eq!(p.panic_at, Some(17));
        assert_eq!(p.starved_fuel, 128);
        std::env::remove_var("ECL_FAULTS");
        uninstall();
    }
}
