//! Offline shim for the subset of the `rand 0.8` API this workspace
//! uses. Deterministic per seed (SplitMix64 core); streams are not
//! bit-compatible with upstream `rand`, which no caller relies on.

use std::ops::{Range, RangeInclusive};

/// Seedable generators (shim of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::gen`] (shim of the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value from `next`.
    fn sample_standard(next: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard(next: u64) -> Self {
                next as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard(next: u64) -> Self {
        next & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard(next: u64) -> Self {
        (next >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Integer types usable with [`Rng::gen_range`] (shim of
/// `SampleUniform`).
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[lo, hi)` given a raw draw.
    fn from_u64_in(lo: Self, hi: Self, next: u64) -> Self;
    /// Sample uniformly from `[lo, hi]` given a raw draw.
    fn from_u64_incl(lo: Self, hi: Self, next: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_u64_in(lo: Self, hi: Self, next: u64) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                debug_assert!(span > 0, "gen_range called with empty range");
                let off = (next as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
            fn from_u64_incl(lo: Self, hi: Self, next: u64) -> Self {
                // i128 arithmetic: `hi + 1` cannot overflow even for
                // T::MAX-inclusive ranges.
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (next as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`] (shim of `SampleRange`).
pub trait SampleRange<T> {
    /// Sample one value using a raw draw.
    fn sample_from(self, next: u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, next: u64) -> T {
        T::from_u64_in(self.start, self.end, next)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, next: u64) -> T {
        let (lo, hi) = self.into_inner();
        T::from_u64_incl(lo, hi, next)
    }
}

/// The generator interface (shim of `rand::Rng`).
pub trait Rng {
    /// Next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// Draw a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self.next_u64())
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self.next_u64()) < p
    }

    /// Uniform draw from a (half-open or inclusive) range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self.next_u64())
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic generator (SplitMix64; shim of `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Scramble the seed once so small seeds diverge quickly.
            let mut r = StdRng { state: seed };
            let _ = r.next_u64();
            r
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (public domain, Sebastiano Vigna).
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = r.gen_range(0..5);
            assert!(v < 5);
            let w: i32 = r.gen_range(1..=3);
            assert!((1..=3).contains(&w));
            let b: u8 = r.gen();
            let _ = b;
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }
    #[test]
    fn inclusive_range_at_type_max_does_not_overflow() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let v: u64 = r.gen_range(u64::MAX - 1..=u64::MAX);
            assert!(v >= u64::MAX - 1);
            let w: u8 = r.gen_range(0..=u8::MAX);
            let _ = w;
            let x: i64 = r.gen_range(i64::MIN..=i64::MAX);
            let _ = x;
        }
    }
}
