//! Offline shim for the subset of the `proptest` API this workspace
//! uses: the `proptest!` macro, integer-range and `any::<T>()`
//! strategies, tuple composition, `Strategy::prop_map`,
//! `prop_assert!`/`prop_assert_eq!`, `ProptestConfig::with_cases`, and
//! `TestCaseError`. Cases are generated deterministically (SplitMix64
//! over the case index), so failures are reproducible; there is no
//! shrinking.

/// Error and config types (shim of `proptest::test_runner`).
pub mod test_runner {
    use std::fmt;

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure with its rendered message.
        Fail(String),
        /// Case rejected (not counted as failure).
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Build a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Runner configuration (shim of `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// The case count actually run: the `PROPTEST_CASES` environment
    /// variable overrides the in-source config (mirroring real
    /// proptest), so CI can deepen the search without a rebuild —
    /// e.g. the `differential` job runs with `PROPTEST_CASES=512`.
    ///
    /// # Panics
    ///
    /// Panics on an unparsable `PROPTEST_CASES` (like real proptest):
    /// silently falling back would let a CI env typo run the shallow
    /// tier under a deep-search label.
    pub fn resolve_cases(config_cases: u32) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v
                .trim()
                .parse()
                .unwrap_or_else(|e| panic!("invalid PROPTEST_CASES `{v}`: {e}")),
            Err(_) => config_cases,
        }
    }
}

/// Deterministic value generation (shim of `proptest::strategy`).
pub mod strategy {
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// Deterministic per-case generator state (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct CaseRng {
        state: u64,
    }

    impl CaseRng {
        /// Generator for case number `case`.
        pub fn new(case: u64) -> Self {
            // Offset so case 0 does not start at the weak all-zero state.
            CaseRng {
                state: case.wrapping_mul(0x2545F4914F6CDD1D) ^ 0xDEADBEEFCAFEF00D,
            }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    /// A deterministic value source (shim of `proptest::Strategy`).
    pub trait Strategy: Sized {
        /// The generated type.
        type Value;

        /// Generate one value for the current case.
        fn generate(&self, rng: &mut CaseRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut CaseRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Types generable by [`any`].
    pub trait Arbitrary: Sized {
        /// Build a value from one raw draw.
        fn from_draw(draw: u64) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn from_draw(draw: u64) -> Self {
                    draw as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn from_draw(draw: u64) -> Self {
            draw & 1 == 1
        }
    }

    /// Full-range strategy for `T` (shim of `proptest::arbitrary::any`).
    pub struct Any<T>(PhantomData<T>);

    /// Strategy drawing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut CaseRng) -> T {
            T::from_draw(rng.next_u64())
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut CaseRng) -> $t {
                    let span = (self.end as i128 - self.start as i128) as u128;
                    assert!(span > 0, "empty proptest range");
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut CaseRng) -> $t {
                    // i128 arithmetic: `end + 1` cannot overflow even
                    // for T::MAX-inclusive ranges.
                    let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (*self.start() as i128 + off as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut CaseRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

/// The common imports (shim of `proptest::prelude`).
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Run deterministic property tests (shim of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let cases = $crate::test_runner::resolve_cases(cfg.cases);
                for case in 0..cases {
                    let mut rng = $crate::strategy::CaseRng::new(case as u64);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err(e) => panic!("proptest case {case} failed: {e}"),
                    }
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
}

/// Property assertion (returns `TestCaseError` instead of panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{:?}` != `{:?}`", a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            let msg = format!($($fmt)+);
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`: {}", a, b, msg),
            ));
        }
    }};
}
