//! Offline shim for the subset of the `criterion` API this workspace
//! uses: `benchmark_group`, `sample_size`, `bench_function`,
//! `Bencher::iter`, `finish`, and the `criterion_group!` /
//! `criterion_main!` macros. Measures wall time with `std::time` and
//! prints mean per-iteration timings.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver (shim of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: if self.sample_size == 0 {
                20
            } else {
                self.sample_size
            },
            _parent: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            name,
            if self.sample_size == 0 {
                20
            } else {
                self.sample_size
            },
            f,
        );
        self
    }
}

/// A named group of benchmarks (shim of `BenchmarkGroup`).
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples taken per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_bench<F>(label: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    for _ in 0..samples {
        f(&mut b);
    }
    let mean = if b.iters > 0 {
        b.elapsed / b.iters as u32
    } else {
        Duration::ZERO
    };
    println!("bench {label:<40} {:>12?}/iter ({} iters)", mean, b.iters);
}

/// Passed to the closure of `bench_function` (shim of `Bencher`).
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time one call of `f` (samples aggregate across calls).
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let t0 = Instant::now();
        let out = f();
        self.elapsed += t0.elapsed();
        self.iters += 1;
        drop(black_box(out));
    }
}

/// Declare a group of benchmark functions (shim of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Produce `fn main` running the groups (shim of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
