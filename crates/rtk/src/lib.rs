//! A POLIS-style real-time kernel simulator.
//!
//! The paper's asynchronous implementation runs each ECL module "as
//! separate tasks under control of a simple real-time kernel" [1]. This
//! crate models that kernel the way POLIS generates it:
//!
//! * static-priority, run-to-completion scheduling (a task's reaction is
//!   never preempted — CFSM reactions are atomic);
//! * one-place mailboxes per (task, signal): a new event *overwrites* an
//!   unconsumed one (CFSM semantics — "events can be lost"), counted in
//!   [`Kernel::events_lost`];
//! * explicit cycle accounting split into **task** cycles (reaction
//!   bodies, charged by the caller) and **RTOS** cycles (dispatch,
//!   event delivery, input buffering) — the two "Execution time"
//!   columns of the paper's Table 1.
//!
//! The kernel is deliberately independent of what a "task" computes: the
//! simulator in the `sim` crate runs compiled EFSMs inside tasks.

use std::collections::{HashMap, HashSet};

/// Handle of a registered task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub usize);

/// Cycle costs of kernel services (defaults roughly R3000-sized).
#[derive(Debug, Clone, Copy)]
pub struct KernelParams {
    /// Cycles to pick and dispatch the next ready task.
    pub dispatch_cycles: u64,
    /// Cycles to deliver one inter-task event (post + wakeup).
    pub send_cycles: u64,
    /// Cycles to buffer one external input event.
    pub input_cycles: u64,
}

impl Default for KernelParams {
    fn default() -> Self {
        KernelParams {
            dispatch_cycles: 60,
            send_cycles: 45,
            input_cycles: 25,
        }
    }
}

#[derive(Debug, Clone)]
struct TaskCb {
    name: String,
    priority: u8,
    /// Signal names this task consumes.
    watches: HashSet<String>,
    /// Pending events (1-place per signal: a set).
    pending: HashSet<String>,
    /// Events overwritten in this task's mailboxes before consumption.
    lost: u64,
}

/// The kernel: tasks, mailboxes, scheduler and cycle accounting.
#[derive(Debug, Clone)]
pub struct Kernel {
    params: KernelParams,
    tasks: Vec<TaskCb>,
    /// Reverse index: signal name → watching tasks.
    watchers: HashMap<String, Vec<TaskId>>,
    /// Total cycles charged to application reactions.
    pub task_cycles: u64,
    /// Total cycles charged to kernel services.
    pub rtos_cycles: u64,
    /// Events overwritten in a 1-place mailbox before being consumed.
    pub events_lost: u64,
    /// Dispatches performed.
    pub dispatches: u64,
    /// Events delivered (external + internal).
    pub deliveries: u64,
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::new(KernelParams::default())
    }
}

impl Kernel {
    /// Create a kernel with the given service costs.
    pub fn new(params: KernelParams) -> Self {
        Kernel {
            params,
            tasks: Vec::new(),
            watchers: HashMap::new(),
            task_cycles: 0,
            rtos_cycles: 0,
            events_lost: 0,
            dispatches: 0,
            deliveries: 0,
        }
    }

    /// Register a task with a static priority (higher runs first) and
    /// the set of signal names it consumes.
    pub fn add_task(
        &mut self,
        name: impl Into<String>,
        priority: u8,
        watches: HashSet<String>,
    ) -> TaskId {
        let id = TaskId(self.tasks.len());
        for w in &watches {
            self.watchers.entry(w.clone()).or_default().push(id);
        }
        self.tasks.push(TaskCb {
            name: name.into(),
            priority,
            watches,
            pending: HashSet::new(),
            lost: 0,
        });
        id
    }

    /// Number of registered tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Task name.
    pub fn task_name(&self, id: TaskId) -> &str {
        &self.tasks[id.0].name
    }

    /// Post an *external* event (environment input). Charged as input
    /// buffering per watching task.
    pub fn post_external(&mut self, signal: &str) {
        let watchers = self.watchers.get(signal).cloned().unwrap_or_default();
        for t in watchers {
            self.rtos_cycles += self.params.input_cycles;
            self.deliveries += 1;
            if !self.tasks[t.0].pending.insert(signal.to_string()) {
                self.events_lost += 1;
                self.tasks[t.0].lost += 1;
            }
        }
    }

    /// Post an *internal* event (emitted by `from`). Charged as an
    /// inter-task send per receiving task. The emitting task never
    /// receives its own emission.
    pub fn post_internal(&mut self, from: TaskId, signal: &str) {
        let watchers = self.watchers.get(signal).cloned().unwrap_or_default();
        for t in watchers {
            if t == from {
                continue;
            }
            self.rtos_cycles += self.params.send_cycles;
            self.deliveries += 1;
            if !self.tasks[t.0].pending.insert(signal.to_string()) {
                self.events_lost += 1;
                self.tasks[t.0].lost += 1;
            }
        }
    }

    /// Per-task loss counters: `(task name, events lost)` in
    /// registration order. Sums to [`Kernel::events_lost`].
    pub fn events_lost_by_task(&self) -> Vec<(String, u64)> {
        self.tasks
            .iter()
            .map(|t| (t.name.clone(), t.lost))
            .collect()
    }

    /// Is any task ready (has pending events)?
    pub fn any_ready(&self) -> bool {
        self.tasks.iter().any(|t| !t.pending.is_empty())
    }

    /// Pick the highest-priority ready task and drain its mailbox
    /// (run-to-completion: the caller executes one reaction with all
    /// pending events as the input snapshot). Charges a dispatch.
    pub fn schedule(&mut self) -> Option<(TaskId, HashSet<String>)> {
        let best = self
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.pending.is_empty())
            .max_by_key(|(i, t)| (t.priority, usize::MAX - i))?;
        let id = TaskId(best.0);
        self.rtos_cycles += self.params.dispatch_cycles;
        self.dispatches += 1;
        let events = std::mem::take(&mut self.tasks[id.0].pending);
        Some((id, events))
    }

    /// Dispatch a *specific* task (the periodic tick of the paper's
    /// footnote: modules with pending `await ()` deltas must be
    /// rescheduled even without events). Drains its mailbox and charges
    /// a dispatch.
    pub fn dispatch(&mut self, id: TaskId) -> HashSet<String> {
        self.rtos_cycles += self.params.dispatch_cycles;
        self.dispatches += 1;
        std::mem::take(&mut self.tasks[id.0].pending)
    }

    /// Charge application cycles (the caller measured a reaction).
    pub fn charge_task(&mut self, cycles: u64) {
        self.task_cycles += cycles;
    }

    /// Does `task` watch `signal`?
    pub fn watches(&self, task: TaskId, signal: &str) -> bool {
        self.tasks[task.0].watches.contains(signal)
    }

    /// Tasks watching a signal.
    pub fn watchers_of(&self, signal: &str) -> Vec<TaskId> {
        self.watchers.get(signal).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(names: &[&str]) -> HashSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn external_events_wake_watchers() {
        let mut k = Kernel::default();
        let a = k.add_task("a", 1, set(&["x"]));
        let _b = k.add_task("b", 2, set(&["y"]));
        k.post_external("x");
        assert!(k.any_ready());
        let (t, ev) = k.schedule().unwrap();
        assert_eq!(t, a);
        assert!(ev.contains("x"));
        assert!(!k.any_ready());
    }

    #[test]
    fn priority_order() {
        let mut k = Kernel::default();
        let _lo = k.add_task("lo", 1, set(&["x"]));
        let hi = k.add_task("hi", 9, set(&["x"]));
        k.post_external("x");
        let (t, _) = k.schedule().unwrap();
        assert_eq!(t, hi, "higher priority runs first");
    }

    #[test]
    fn one_place_mailbox_loses_events() {
        let mut k = Kernel::default();
        let _a = k.add_task("a", 1, set(&["x"]));
        k.post_external("x");
        k.post_external("x"); // overwrites
        assert_eq!(k.events_lost, 1);
        let (_, ev) = k.schedule().unwrap();
        assert_eq!(ev.len(), 1);
    }

    #[test]
    fn losses_are_attributed_per_task() {
        let mut k = Kernel::default();
        let a = k.add_task("a", 1, set(&["x"]));
        let _b = k.add_task("b", 2, set(&["x", "y"]));
        k.post_external("x");
        k.post_external("x"); // lost in both mailboxes
        k.post_internal(a, "y");
        k.post_internal(a, "y"); // lost in b only
        assert_eq!(k.events_lost, 3);
        assert_eq!(
            k.events_lost_by_task(),
            vec![("a".to_string(), 1), ("b".to_string(), 2)]
        );
    }

    #[test]
    fn internal_send_skips_sender() {
        let mut k = Kernel::default();
        let a = k.add_task("a", 1, set(&["m"]));
        let b = k.add_task("b", 1, set(&["m"]));
        k.post_internal(a, "m");
        let (t, _) = k.schedule().unwrap();
        assert_eq!(t, b, "emitter must not receive its own event");
        assert!(!k.any_ready());
    }

    #[test]
    fn cycle_accounting_separates_task_and_rtos() {
        let p = KernelParams::default();
        let mut k = Kernel::new(p);
        let a = k.add_task("a", 1, set(&["x"]));
        k.post_external("x");
        let _ = k.schedule().unwrap();
        k.charge_task(123);
        k.post_internal(a, "y"); // no watchers: free
        assert_eq!(k.task_cycles, 123);
        assert_eq!(k.rtos_cycles, p.input_cycles + p.dispatch_cycles);
    }

    #[test]
    fn equal_priority_ties_break_by_index() {
        let mut k = Kernel::default();
        let a = k.add_task("a", 1, set(&["x"]));
        let b = k.add_task("b", 1, set(&["x"]));
        k.post_external("x");
        let (t1, _) = k.schedule().unwrap();
        assert_eq!(t1, a);
        let (t2, _) = k.schedule().unwrap();
        assert_eq!(t2, b);
    }

    #[test]
    fn watchers_index() {
        let mut k = Kernel::default();
        let a = k.add_task("a", 1, set(&["x", "y"]));
        assert!(k.watches(a, "x"));
        assert!(!k.watches(a, "z"));
        assert_eq!(k.watchers_of("y"), vec![a]);
        assert_eq!(k.task_count(), 1);
        assert_eq!(k.task_name(a), "a");
    }
}
