//! A POLIS-style real-time kernel simulator.
//!
//! The paper's asynchronous implementation runs each ECL module "as
//! separate tasks under control of a simple real-time kernel" [1]. This
//! crate models that kernel the way POLIS generates it:
//!
//! * static-priority, run-to-completion scheduling (a task's reaction is
//!   never preempted — CFSM reactions are atomic);
//! * one-place mailboxes per (task, signal): a new event *overwrites* an
//!   unconsumed one (CFSM semantics — "events can be lost"), counted in
//!   [`Kernel::events_lost`];
//! * explicit cycle accounting split into **task** cycles (reaction
//!   bodies, charged by the caller) and **RTOS** cycles (dispatch,
//!   event delivery, input buffering) — the two "Execution time"
//!   columns of the paper's Table 1.
//!
//! Signals are dense interned ids (`u32`, see `efsm::SigTable`) and
//! mailboxes are [`BitSet`] presence sets, so posting, scheduling and
//! draining are branch-light word operations with no per-event heap
//! traffic. The kernel is deliberately independent of what a "task"
//! computes: the simulator in the `sim` crate runs compiled EFSMs
//! inside tasks and owns the id ↔ name mapping.

use ecl_telemetry::metrics as tm;
use efsm::BitSet;

/// Handle of a registered task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub usize);

/// Cycle costs of kernel services (defaults roughly R3000-sized).
#[derive(Debug, Clone, Copy)]
pub struct KernelParams {
    /// Cycles to pick and dispatch the next ready task.
    pub dispatch_cycles: u64,
    /// Cycles to deliver one inter-task event (post + wakeup).
    pub send_cycles: u64,
    /// Cycles to buffer one external input event.
    pub input_cycles: u64,
}

impl Default for KernelParams {
    fn default() -> Self {
        KernelParams {
            dispatch_cycles: 60,
            send_cycles: 45,
            input_cycles: 25,
        }
    }
}

#[derive(Debug, Clone)]
struct TaskCb {
    name: String,
    priority: u8,
    /// Signal ids this task consumes.
    watches: BitSet,
    /// Pending events (1-place per signal: a presence set).
    pending: BitSet,
    /// Events overwritten in this task's mailboxes before consumption.
    lost: u64,
}

/// The kernel: tasks, mailboxes, scheduler and cycle accounting.
#[derive(Debug, Clone)]
pub struct Kernel {
    params: KernelParams,
    tasks: Vec<TaskCb>,
    /// Reverse index: signal id → watching tasks.
    watchers: Vec<Vec<TaskId>>,
    /// Internal events held back by the delay-internal fault site,
    /// delivered by [`Kernel::flush_deferred`] (empty with faults
    /// off).
    deferred: Vec<(TaskId, u32)>,
    /// Total cycles charged to application reactions.
    pub task_cycles: u64,
    /// Total cycles charged to kernel services.
    pub rtos_cycles: u64,
    /// Events overwritten in a 1-place mailbox before being consumed.
    pub events_lost: u64,
    /// Dispatches performed.
    pub dispatches: u64,
    /// Events delivered (external + internal).
    pub deliveries: u64,
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::new(KernelParams::default())
    }
}

impl Kernel {
    /// Create a kernel with the given service costs.
    pub fn new(params: KernelParams) -> Self {
        Kernel {
            params,
            tasks: Vec::new(),
            watchers: Vec::new(),
            deferred: Vec::new(),
            task_cycles: 0,
            rtos_cycles: 0,
            events_lost: 0,
            dispatches: 0,
            deliveries: 0,
        }
    }

    /// Register a task with a static priority (higher runs first) and
    /// the presence set of signal ids it consumes.
    pub fn add_task(&mut self, name: impl Into<String>, priority: u8, watches: BitSet) -> TaskId {
        let id = TaskId(self.tasks.len());
        for sig in watches.iter() {
            if self.watchers.len() <= sig {
                self.watchers.resize(sig + 1, Vec::new());
            }
            self.watchers[sig].push(id);
        }
        self.tasks.push(TaskCb {
            name: name.into(),
            priority,
            watches,
            pending: BitSet::new(),
            lost: 0,
        });
        id
    }

    /// Number of registered tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Task name.
    pub fn task_name(&self, id: TaskId) -> &str {
        &self.tasks[id.0].name
    }

    /// Post an *external* event (environment input). Charged as input
    /// buffering per watching task.
    pub fn post_external(&mut self, sig: u32) {
        let cap = ecl_faults::mailbox_cap();
        let Some(watchers) = self.watchers.get(sig as usize) else {
            return;
        };
        for t in watchers {
            self.rtos_cycles += self.params.input_cycles;
            self.deliveries += 1;
            tm::RTK_DELIVERIES.incr();
            tm::RTK_RTOS_CYCLES.add(self.params.input_cycles);
            let cb = &mut self.tasks[t.0];
            if cb.pending.contains(sig as usize) {
                self.events_lost += 1;
                cb.lost += 1;
                tm::RTK_EVENTS_LOST.incr();
                continue;
            }
            if let Some(cap) = cap {
                if cb.pending.len() >= cap {
                    // Mailbox pressure: no free slot, the event is
                    // lost before it ever lands — the same loss
                    // accounting as an overwrite.
                    self.events_lost += 1;
                    cb.lost += 1;
                    tm::RTK_EVENTS_LOST.incr();
                    ecl_faults::note_mailbox_rejection(t.0 as u64, sig);
                    continue;
                }
            }
            cb.pending.insert(sig as usize);
        }
    }

    /// Post an *internal* event (emitted by `from`). Charged as an
    /// inter-task send per receiving task. The emitting task never
    /// receives its own emission.
    pub fn post_internal(&mut self, from: TaskId, sig: u32) {
        if self.watchers.get(sig as usize).is_none_or(Vec::is_empty) {
            return;
        }
        if ecl_faults::enabled() {
            // Stream-drawn decisions: posting order is emission
            // order, identical on every backend.
            if ecl_faults::drop_internal(sig) {
                return;
            }
            if ecl_faults::delay_internal(sig) {
                self.deferred.push((from, sig));
                return;
            }
        }
        self.deliver_internal(from, sig);
    }

    fn deliver_internal(&mut self, from: TaskId, sig: u32) {
        let cap = ecl_faults::mailbox_cap();
        let Some(watchers) = self.watchers.get(sig as usize) else {
            return;
        };
        for t in watchers {
            if *t == from {
                continue;
            }
            self.rtos_cycles += self.params.send_cycles;
            self.deliveries += 1;
            tm::RTK_DELIVERIES.incr();
            tm::RTK_RTOS_CYCLES.add(self.params.send_cycles);
            let cb = &mut self.tasks[t.0];
            if cb.pending.contains(sig as usize) {
                self.events_lost += 1;
                cb.lost += 1;
                tm::RTK_EVENTS_LOST.incr();
                continue;
            }
            if let Some(cap) = cap {
                if cb.pending.len() >= cap {
                    self.events_lost += 1;
                    cb.lost += 1;
                    tm::RTK_EVENTS_LOST.incr();
                    ecl_faults::note_mailbox_rejection(t.0 as u64, sig);
                    continue;
                }
            }
            cb.pending.insert(sig as usize);
        }
    }

    /// Deliver events held back by the delay-internal fault site.
    /// Runners call this at the start of each instant; with faults
    /// off the queue is always empty and this is one branch.
    pub fn flush_deferred(&mut self) {
        if self.deferred.is_empty() {
            return;
        }
        let mut deferred = std::mem::take(&mut self.deferred);
        for &(from, sig) in &deferred {
            self.deliver_internal(from, sig);
        }
        deferred.clear();
        self.deferred = deferred;
    }

    /// Per-task loss counters: `(task, events lost)` in registration
    /// order. Sums to [`Kernel::events_lost`]. Names are resolved
    /// only at the telemetry/report boundary (see
    /// [`Kernel::task_name`]).
    pub fn events_lost_by_task(&self) -> Vec<(TaskId, u64)> {
        self.tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (TaskId(i), t.lost))
            .collect()
    }

    /// Is any task ready (has pending events)?
    pub fn any_ready(&self) -> bool {
        self.tasks.iter().any(|t| !t.pending.is_empty())
    }

    /// Pick the highest-priority ready task, copy its pending events
    /// into `events` (cleared first) and drain its mailbox
    /// (run-to-completion: the caller executes one reaction with all
    /// pending events as the input snapshot). Charges a dispatch.
    pub fn schedule_into(&mut self, events: &mut BitSet) -> Option<TaskId> {
        let best = self
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.pending.is_empty())
            .max_by_key(|(i, t)| (t.priority, usize::MAX - i))?;
        let id = TaskId(best.0);
        self.rtos_cycles += self.params.dispatch_cycles;
        self.dispatches += 1;
        if ecl_telemetry::enabled() {
            tm::RTK_DISPATCHES.raw_add(1);
            tm::RTK_RTOS_CYCLES.raw_add(self.params.dispatch_cycles);
            tm::RTK_MAILBOX_OCCUPANCY.raw_record(self.tasks[id.0].pending.len() as u64);
        }
        events.clear();
        events.union_with(&self.tasks[id.0].pending);
        self.tasks[id.0].pending.clear();
        Some(id)
    }

    /// Dispatch a *specific* task (the periodic tick of the paper's
    /// footnote: modules with pending `await ()` deltas must be
    /// rescheduled even without events). Copies the mailbox into
    /// `events` (cleared first), drains it, and charges a dispatch.
    pub fn dispatch_into(&mut self, id: TaskId, events: &mut BitSet) {
        self.rtos_cycles += self.params.dispatch_cycles;
        self.dispatches += 1;
        if ecl_telemetry::enabled() {
            tm::RTK_DISPATCHES.raw_add(1);
            tm::RTK_RTOS_CYCLES.raw_add(self.params.dispatch_cycles);
            tm::RTK_MAILBOX_OCCUPANCY.raw_record(self.tasks[id.0].pending.len() as u64);
        }
        events.clear();
        events.union_with(&self.tasks[id.0].pending);
        self.tasks[id.0].pending.clear();
    }

    /// Charge application cycles (the caller measured a reaction).
    pub fn charge_task(&mut self, cycles: u64) {
        self.task_cycles += cycles;
        tm::RTK_TASK_CYCLES.add(cycles);
    }

    /// Emit the per-task loss totals as an `events_lost` telemetry
    /// warning (no-op when nothing was lost or telemetry is off). Run
    /// harnesses call this once at the end of a simulation so mailbox
    /// overwrites are visible in the event stream, not just in Table 1.
    pub fn emit_events_lost_event(&self) {
        if self.events_lost == 0 {
            return;
        }
        if let Some(e) = ecl_telemetry::event("events_lost") {
            e.u64("total", self.events_lost)
                .obj_u64(
                    "by_task",
                    self.tasks
                        .iter()
                        .filter(|t| t.lost > 0)
                        .map(|t| (t.name.as_str(), t.lost)),
                )
                .emit();
        }
    }

    /// Does `task` watch `sig`?
    pub fn watches(&self, task: TaskId, sig: u32) -> bool {
        self.tasks[task.0].watches.contains(sig as usize)
    }

    /// Tasks watching a signal.
    pub fn watchers_of(&self, sig: u32) -> &[TaskId] {
        self.watchers
            .get(sig as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: u32 = 0;
    const Y: u32 = 1;

    fn set(sigs: &[u32]) -> BitSet {
        sigs.iter().map(|s| *s as usize).collect()
    }

    fn schedule(k: &mut Kernel) -> Option<(TaskId, BitSet)> {
        let mut ev = BitSet::new();
        k.schedule_into(&mut ev).map(|id| (id, ev))
    }

    #[test]
    fn external_events_wake_watchers() {
        let mut k = Kernel::default();
        let a = k.add_task("a", 1, set(&[X]));
        let _b = k.add_task("b", 2, set(&[Y]));
        k.post_external(X);
        assert!(k.any_ready());
        let (t, ev) = schedule(&mut k).unwrap();
        assert_eq!(t, a);
        assert!(ev.contains(X as usize));
        assert!(!k.any_ready());
    }

    #[test]
    fn priority_order() {
        let mut k = Kernel::default();
        let _lo = k.add_task("lo", 1, set(&[X]));
        let hi = k.add_task("hi", 9, set(&[X]));
        k.post_external(X);
        let (t, _) = schedule(&mut k).unwrap();
        assert_eq!(t, hi, "higher priority runs first");
    }

    #[test]
    fn one_place_mailbox_loses_events() {
        let mut k = Kernel::default();
        let _a = k.add_task("a", 1, set(&[X]));
        k.post_external(X);
        k.post_external(X); // overwrites
        assert_eq!(k.events_lost, 1);
        let (_, ev) = schedule(&mut k).unwrap();
        assert_eq!(ev.len(), 1);
    }

    #[test]
    fn losses_are_attributed_per_task() {
        let mut k = Kernel::default();
        let a = k.add_task("a", 1, set(&[X]));
        let b = k.add_task("b", 2, set(&[X, Y]));
        k.post_external(X);
        k.post_external(X); // lost in both mailboxes
        k.post_internal(a, Y);
        k.post_internal(a, Y); // lost in b only
        assert_eq!(k.events_lost, 3);
        assert_eq!(k.events_lost_by_task(), vec![(a, 1), (b, 2)]);
        // Names resolve at the report boundary, not in the counters.
        let names: Vec<&str> = k
            .events_lost_by_task()
            .iter()
            .map(|(t, _)| k.task_name(*t))
            .collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    // Fault-site tests share the process-global plan; serialize them.
    static FAULT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn fault_locked() -> std::sync::MutexGuard<'static, ()> {
        FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn mailbox_cap_rejects_and_counts_losses() {
        let _g = fault_locked();
        ecl_faults::install(ecl_faults::FaultPlan {
            mailbox_cap: Some(1),
            ..ecl_faults::FaultPlan::seeded(1)
        });
        let mut k = Kernel::default();
        let a = k.add_task("a", 1, set(&[X, Y]));
        k.post_external(X); // fills the single slot
        k.post_external(Y); // rejected by the cap
        assert_eq!(k.events_lost, 1);
        assert_eq!(k.events_lost_by_task(), vec![(a, 1)]);
        let mut ev = BitSet::new();
        k.dispatch_into(a, &mut ev);
        assert!(ev.contains(X as usize) && !ev.contains(Y as usize));
        let stats = ecl_faults::uninstall().unwrap();
        assert_eq!(stats.mailbox_rejections, 1);
        // Switch off: the cap is gone.
        k.post_external(X);
        k.post_external(Y);
        assert_eq!(k.events_lost, 1, "no cap without a plan");
    }

    #[test]
    fn internal_drops_are_seed_deterministic() {
        let _g = fault_locked();
        let plan = ecl_faults::FaultPlan {
            drop_internal: 0.5,
            ..ecl_faults::FaultPlan::seeded(99)
        };
        let run = |k: &mut Kernel, a: TaskId| -> Vec<bool> {
            (0..64)
                .map(|_| {
                    let before = k.tasks[1].pending.contains(Y as usize);
                    k.post_internal(a, Y);
                    let after = k.tasks[1].pending.contains(Y as usize);
                    let mut ev = BitSet::new();
                    let _ = k.schedule_into(&mut ev);
                    !before && !after
                })
                .collect()
        };
        ecl_faults::install(plan.clone());
        let mut k1 = Kernel::default();
        let a1 = k1.add_task("a", 1, set(&[X]));
        let _ = k1.add_task("b", 2, set(&[Y]));
        let dropped1 = run(&mut k1, a1);
        ecl_faults::install(plan);
        let mut k2 = Kernel::default();
        let a2 = k2.add_task("a", 1, set(&[X]));
        let _ = k2.add_task("b", 2, set(&[Y]));
        let dropped2 = run(&mut k2, a2);
        ecl_faults::uninstall();
        assert_eq!(dropped1, dropped2, "drop stream diverged under one seed");
        assert!(dropped1.iter().any(|d| *d), "rate 0.5 never dropped");
        assert!(!dropped1.iter().all(|d| *d), "rate 0.5 dropped everything");
    }

    #[test]
    fn delayed_internal_events_arrive_after_flush() {
        let _g = fault_locked();
        ecl_faults::install(ecl_faults::FaultPlan {
            delay_internal: 1.0,
            ..ecl_faults::FaultPlan::seeded(3)
        });
        let mut k = Kernel::default();
        let a = k.add_task("a", 1, set(&[X]));
        let b = k.add_task("b", 2, set(&[Y]));
        k.post_internal(a, Y);
        assert!(!k.any_ready(), "event must be held in the deferred queue");
        k.flush_deferred();
        assert!(k.any_ready());
        let mut ev = BitSet::new();
        assert_eq!(k.schedule_into(&mut ev), Some(b));
        assert!(ev.contains(Y as usize));
        assert_eq!(k.events_lost, 0, "a deferred event is late, not lost");
        let stats = ecl_faults::uninstall().unwrap();
        assert_eq!(stats.delayed_internal, 1);
    }

    #[test]
    fn internal_send_skips_sender() {
        let mut k = Kernel::default();
        let a = k.add_task("a", 1, set(&[X]));
        let b = k.add_task("b", 1, set(&[X]));
        k.post_internal(a, X);
        let (t, _) = schedule(&mut k).unwrap();
        assert_eq!(t, b, "emitter must not receive its own event");
        assert!(!k.any_ready());
    }

    #[test]
    fn cycle_accounting_separates_task_and_rtos() {
        let p = KernelParams::default();
        let mut k = Kernel::new(p);
        let a = k.add_task("a", 1, set(&[X]));
        k.post_external(X);
        let _ = schedule(&mut k).unwrap();
        k.charge_task(123);
        k.post_internal(a, Y); // no watchers: free
        assert_eq!(k.task_cycles, 123);
        assert_eq!(k.rtos_cycles, p.input_cycles + p.dispatch_cycles);
    }

    #[test]
    fn equal_priority_ties_break_by_index() {
        let mut k = Kernel::default();
        let a = k.add_task("a", 1, set(&[X]));
        let b = k.add_task("b", 1, set(&[X]));
        k.post_external(X);
        let (t1, _) = schedule(&mut k).unwrap();
        assert_eq!(t1, a);
        let (t2, _) = schedule(&mut k).unwrap();
        assert_eq!(t2, b);
    }

    #[test]
    fn dispatch_into_drains_a_specific_task() {
        let mut k = Kernel::default();
        let a = k.add_task("a", 1, set(&[X]));
        k.post_external(X);
        let mut ev = BitSet::new();
        k.dispatch_into(a, &mut ev);
        assert!(ev.contains(X as usize));
        assert!(!k.any_ready());
        // A drained mailbox dispatches again as empty.
        k.dispatch_into(a, &mut ev);
        assert!(ev.is_empty());
    }

    #[test]
    fn watchers_index() {
        let mut k = Kernel::default();
        let a = k.add_task("a", 1, set(&[X, Y]));
        assert!(k.watches(a, X));
        assert!(!k.watches(a, 7));
        assert_eq!(k.watchers_of(Y), &[a]);
        assert!(k.watchers_of(9).is_empty());
        assert_eq!(k.task_count(), 1);
        assert_eq!(k.task_name(a), "a");
    }
}
