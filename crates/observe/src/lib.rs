//! `ecl-observe` — observer specifications compiled to monitor EFSMs,
//! checked online in the simulator and offline against recorded
//! traces.
//!
//! The ECL paper positions the environment for *specification and
//! validation*; this crate adds the validation half in the spirit of
//! assertion-monitor synthesis (Gadkari & Ramesh): temporal properties
//! are written as `observer` declarations next to the design's
//! modules, synthesized through the **same** Esterel → EFSM pipeline
//! as the design itself, and run lockstep with it:
//!
//! * [`synth`] — `observer` AST → kernel Esterel → deterministic
//!   monitor [`efsm::Efsm`] (one `fail_i` output per property);
//! * [`monitor`] — monitor execution: per-instant stepping over
//!   present signal names, `Pass`/`Fail{instant, witness}` verdicts,
//!   mangling-tolerant name resolution, trace replay;
//! * [`check`] — online checking against both simulator runners (the
//!   constructive interpreter and the RTOS-backed task runner), with
//!   ring-buffered [`sim::Trace`] recording on the side;
//! * [`stage`] — the `Monitored` terminal pipeline stage next to
//!   `codegen::Artifacts`, batch-compiled and memoized by
//!   [`ecl_core::Workspace`], including monitor C emission;
//! * [`session`] — panic-isolated batch checking: one poisoned or
//!   panicking session surfaces as a contained
//!   [`SessionOutcome::Poisoned`] while its siblings complete.
//!
//! # Example
//!
//! ```
//! use ecl_core::Compiler;
//! use ecl_observe::{check_interp, synthesize_all};
//! use sim::tb::InstantEvents;
//!
//! let src = "
//!   module m(input pure a, output pure o) { while (1) { await (a); emit (o); } }
//!   observer w(input pure a, input pure o) { whenever (a) expect (o); }";
//! let specs = synthesize_all(&ecl_syntax::parse_str(src).unwrap()).unwrap();
//! let design = Compiler::default().compile_str(src, "m").unwrap();
//! let tick = |on: bool| InstantEvents {
//!     pure: if on { vec!["a".into()] } else { vec![] },
//!     valued: vec![],
//! };
//! let run = check_interp(&design, &[tick(false), tick(true)], &specs, 0).unwrap();
//! assert!(run.report.all_pass());
//! ```

pub mod check;
pub mod monitor;
pub mod session;
pub mod stage;
pub mod synth;

pub use check::{check_async, check_async_with, check_interp, check_interp_with, MonitoredRun};
pub use monitor::{name_matches, Monitor, MonitorReport, Verdict, Violation};
pub use session::{run_session, run_sessions, SessionOutcome};
pub use stage::{Monitored, WorkspaceObserveExt};
pub use synth::{synthesize, synthesize_all, MonitorSpec, PropInfo};
