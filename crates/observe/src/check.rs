//! Online checking: drive a testbench through a simulator runner with
//! monitors attached, recording a signal trace on the side.
//!
//! Both entry points use the runners' `run_events` testbench hook: the
//! per-instant present set (stimuli plus emissions, as interned ids)
//! feeds every monitor lockstep with the design, and the runner's
//! built-in recorder captures the same instants into a [`Trace`] — so
//! an online verdict can always be re-derived offline with
//! [`crate::Monitor::replay`]. Monitors are bound to the runner's
//! signal table once, before the run: per instant they do pure bitset
//! work, no name matching.

use crate::monitor::{Monitor, MonitorReport};
use crate::synth::MonitorSpec;
use codegen::cost::CostParams;
use ecl_core::Design;
use ecl_syntax::diag::EclError;
use rtk::KernelParams;
use sim::runner::{AsyncRunner, InterpRunner, Runner, SimError, WatchdogBudget};
use sim::tb::InstantEvents;
use sim::trace::Trace;
use std::sync::Arc;

/// The outcome of a monitored run: final verdicts plus the recorded
/// trace window.
#[derive(Debug, Clone)]
pub struct MonitoredRun {
    /// Final verdict per monitor.
    pub report: MonitorReport,
    /// The recorded trace (ring of the last `trace_capacity` instants).
    pub trace: Trace,
}

fn instances(specs: &[Arc<MonitorSpec>], table: &efsm::SigTable) -> Vec<Monitor> {
    specs
        .iter()
        .map(|s| {
            let mut m = Monitor::new(Arc::clone(s));
            m.bind(table);
            m
        })
        .collect()
}

/// Conclude a monitored run whose simulation loop returned `result`:
/// a clean run concludes normally; a run cut short by an
/// *inconclusive* error kind (watchdog trip, livelock budget) yields
/// `Inconclusive` verdicts rather than an `Err` — the run is a valid,
/// reportable outcome, just not a conclusive one. Hard errors
/// propagate.
fn conclude_run<R: Runner>(
    mut runner: R,
    monitors: Vec<Monitor>,
    result: Result<(), SimError>,
) -> Result<MonitoredRun, EclError> {
    let report = match result {
        Ok(()) => MonitorReport::conclude(monitors),
        Err(e) if e.kind.is_inconclusive() => {
            MonitorReport::conclude_inconclusive(monitors, runner.now(), &e.msg)
        }
        Err(e) => return Err(e.into()),
    };
    Ok(MonitoredRun {
        report,
        trace: runner.take_trace().unwrap_or_default(),
    })
}

/// Run `events` through the constructive interpreter with `specs`
/// attached as online monitors.
///
/// # Errors
///
/// Propagates simulation failures as [`EclError`] (stage `sim`).
pub fn check_interp(
    design: &Design,
    events: &[InstantEvents],
    specs: &[Arc<MonitorSpec>],
    trace_capacity: usize,
) -> Result<MonitoredRun, EclError> {
    check_interp_with(design, events, specs, trace_capacity, None)
}

/// [`check_interp`] with per-instant watchdog budgets. A watchdog trip
/// (or livelock budget) does not abort the check: monitors that were
/// still running conclude [`crate::Verdict::Inconclusive`] and the
/// partial trace is returned.
///
/// # Errors
///
/// Propagates non-recoverable simulation failures as [`EclError`].
pub fn check_interp_with(
    design: &Design,
    events: &[InstantEvents],
    specs: &[Arc<MonitorSpec>],
    trace_capacity: usize,
    watchdog: Option<WatchdogBudget>,
) -> Result<MonitoredRun, EclError> {
    let mut runner = InterpRunner::new(design)?;
    runner.set_watchdog(watchdog);
    runner.enable_trace(trace_capacity);
    let mut monitors = instances(specs, runner.sig_table());
    let r = runner.run_events(events, |instant, present| {
        for m in &mut monitors {
            m.step_present(instant, present);
        }
    });
    conclude_run(runner, monitors, r)
}

/// Run `events` through the RTOS-backed runner (one design =
/// synchronous single task, several = asynchronous tasks) with `specs`
/// attached as online monitors.
///
/// # Errors
///
/// Propagates compilation and simulation failures as [`EclError`].
pub fn check_async(
    designs: Vec<Design>,
    events: &[InstantEvents],
    specs: &[Arc<MonitorSpec>],
    trace_capacity: usize,
) -> Result<MonitoredRun, EclError> {
    check_async_with(designs, events, specs, trace_capacity, None)
}

/// [`check_async`] with per-instant watchdog budgets; trips conclude
/// as [`crate::Verdict::Inconclusive`], like [`check_interp_with`].
/// Mailbox-overwrite losses surface in the telemetry stream via the
/// runner's `run_events` loss bracket (on the error path too).
///
/// # Errors
///
/// Propagates non-recoverable compilation and simulation failures.
pub fn check_async_with(
    designs: Vec<Design>,
    events: &[InstantEvents],
    specs: &[Arc<MonitorSpec>],
    trace_capacity: usize,
    watchdog: Option<WatchdogBudget>,
) -> Result<MonitoredRun, EclError> {
    let mut runner = AsyncRunner::new(
        designs,
        &Default::default(),
        CostParams::default(),
        KernelParams::default(),
    )?;
    runner.set_watchdog(watchdog);
    runner.enable_trace(trace_capacity);
    let mut monitors = instances(specs, runner.sig_table());
    let r = runner.run_events(events, |instant, present| {
        for m in &mut monitors {
            m.step_present(instant, present);
        }
    });
    conclude_run(runner, monitors, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::synthesize_all;
    use ecl_core::Compiler;

    /// Relay with a monitor: `o` must answer `i` within 2 instants.
    const SRC: &str = "
        module a(input pure i, output pure m) { while (1) { await (i); emit (m); } }
        module b(input pure m, output pure o) { while (1) { await (m); emit (o); } }
        module top(input pure i, output pure o) {
          signal pure mid;
          par { a(i, mid); b(mid, o); }
        }
        observer relay_latency(input pure i, input pure o) {
          whenever (i) expect (o) within 2;
        }
        observer no_spurious(input pure o, input pure mid) {
          never (o & ~mid);
        }";

    fn events(pattern: &[bool]) -> Vec<InstantEvents> {
        pattern
            .iter()
            .map(|on| InstantEvents {
                pure: if *on { vec!["i".into()] } else { vec![] },
                valued: vec![],
            })
            .collect()
    }

    #[test]
    fn interp_and_async_agree_on_clean_run() {
        let prog = ecl_syntax::parse_str(SRC).unwrap();
        let specs = synthesize_all(&prog).unwrap();
        assert_eq!(specs.len(), 2);
        let d = Compiler::default().compile_str(SRC, "top").unwrap();
        // i every other instant: o answers 2 instants later (mid is a
        // delayed hop), inside the window.
        let ev = events(&[false, true, false, true, false, true, false, false, false]);
        let r1 = check_interp(&d, &ev, &specs, 0).unwrap();
        assert!(r1.report.all_pass(), "{}", r1.report);
        let r2 = check_async(vec![d.clone()], &ev, &specs, 0).unwrap();
        assert!(r2.report.all_pass(), "{}", r2.report);
        // The partitioned implementation satisfies the same observers.
        let parts = Compiler::default().partition(SRC, "top").unwrap();
        let r3 = check_async(parts, &ev, &specs, 0).unwrap();
        assert!(r3.report.all_pass(), "{}", r3.report);
        // Traces were recorded on all runs.
        assert_eq!(r1.trace.len(), ev.len());
        assert_eq!(r2.trace.len(), ev.len());
    }

    #[test]
    fn online_verdict_matches_offline_replay() {
        let prog = ecl_syntax::parse_str(SRC).unwrap();
        let specs = synthesize_all(&prog).unwrap();
        let d = Compiler::default().compile_str(SRC, "top").unwrap();
        // A final lone i never gets its o: the run must fail.
        let ev = events(&[false, true, false, false, false, false, true]);
        let run = check_interp(&d, &ev, &specs, 0).unwrap();
        for spec in &specs {
            let mut offline = Monitor::new(Arc::clone(spec));
            let off = offline.replay(&run.trace);
            let on = run.report.verdict(&spec.name).unwrap();
            assert_eq!(*on, off, "monitor {}", spec.name);
        }
    }
}
