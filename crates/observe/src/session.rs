//! Panic-isolated checking sessions: run a batch of monitored checks
//! so that one panicking (or poisoned) session never takes down its
//! siblings or the process.
//!
//! A *session* is one monitored run — a closure producing a
//! [`MonitoredRun`] (typically a [`crate::check_async_with`] or
//! [`crate::check_interp_with`] call). [`run_session`] wraps it in
//! `catch_unwind`; a panic is contained and surfaces as
//! [`SessionOutcome::Poisoned`] with the panic message, a
//! `sim.poisoned_sessions` counter bump and a telemetry `error`
//! event. [`run_sessions`] drives a batch sequentially, isolating
//! each — the batch always returns one outcome per session, in order.
//!
//! The runners cooperate: a panic that unwinds out of an instant
//! leaves the runner's `in_instant` latch set, so any later use of the
//! same runner is refused with a `poisoned` error instead of
//! continuing from torn state (see `sim::runner`). Sessions built
//! through the closures here construct a fresh runner per session, so
//! poisoning cannot leak across sessions either way.

use crate::check::MonitoredRun;
use ecl_syntax::diag::EclError;
use ecl_telemetry::metrics as tm;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// What became of one isolated checking session.
#[derive(Debug)]
pub enum SessionOutcome {
    /// The session ran to completion (its report may still contain
    /// `Fail` or `Inconclusive` verdicts).
    Finished(MonitoredRun),
    /// The session returned an error through the normal channel.
    Error(EclError),
    /// The session panicked; the panic was contained at the session
    /// boundary and the rest of the batch kept running.
    Poisoned {
        /// The panic payload, when it was a string.
        msg: String,
    },
}

impl SessionOutcome {
    /// Did the session run to completion?
    pub fn is_finished(&self) -> bool {
        matches!(self, SessionOutcome::Finished(_))
    }

    /// The completed run, if the session finished.
    pub fn run(&self) -> Option<&MonitoredRun> {
        match self {
            SessionOutcome::Finished(r) => Some(r),
            _ => None,
        }
    }
}

/// Extract a printable message from a panic payload.
fn panic_msg(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
        .to_string()
}

/// Run one checking session with panic isolation. A panic inside `f`
/// is caught at this boundary: it bumps `sim.poisoned_sessions`,
/// emits a telemetry `error` event (kind `panic`) and returns
/// [`SessionOutcome::Poisoned`] — it never unwinds into the caller.
pub fn run_session<F>(label: &str, f: F) -> SessionOutcome
where
    F: FnOnce() -> Result<MonitoredRun, EclError>,
{
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(Ok(run)) => SessionOutcome::Finished(run),
        Ok(Err(e)) => SessionOutcome::Error(e),
        Err(p) => {
            let msg = panic_msg(p.as_ref());
            tm::SIM_POISONED_SESSIONS.incr();
            if let Some(e) = ecl_telemetry::event("error") {
                e.str("kind", "panic")
                    .str("session", label)
                    .str("msg", &msg)
                    .emit();
            }
            SessionOutcome::Poisoned { msg }
        }
    }
}

/// Run a batch of labelled sessions, each isolated by
/// [`run_session`]. One outcome per session, in batch order; a
/// poisoned session never prevents its siblings from running.
pub fn run_sessions<F>(sessions: Vec<(String, F)>) -> Vec<SessionOutcome>
where
    F: FnOnce() -> Result<MonitoredRun, EclError>,
{
    sessions
        .into_iter()
        .map(|(label, f)| run_session(&label, f))
        .collect()
}
