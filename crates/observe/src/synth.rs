//! Monitor synthesis: an `observer` declaration becomes a
//! deterministic monitor EFSM through the *existing* compilation
//! pipeline — each property is translated to kernel Esterel and the
//! whole observer is compiled by `esterel::compile`, exactly like a
//! design's reactive part.
//!
//! Translation per property (`fail_i` is the property's verdict
//! output):
//!
//! ```text
//! always (e)                loop { present ~e { emit fail }; pause }
//! never (e)                 loop { present  e { emit fail }; pause }
//! eventually_within N (e)   trap { [present e exit; pause;] × N
//!                                  present e exit; emit fail }; halt
//! whenever (t) expect (r)   loop { await_immediate t;
//!   within N                       trap { present r exit;
//!                                         [pause; present r exit;] × N
//!                                         emit fail };
//!                                  pause }
//! ```
//!
//! Response windows are *non-overlapping*: a trigger inside an open
//! window is absorbed by it (the monitor re-arms one instant after the
//! window closes). All properties of one observer run in parallel in
//! one machine; the `fail_i` outputs identify the violated property.

use ecl_syntax::ast;
use ecl_syntax::diag::{EclError, Stage};
use ecl_syntax::pretty;
use ecl_syntax::source::Span;
use efsm::{CompiledEfsm, Efsm, SigKind, Signal};
use esterel::compile::CompileOptions;
use esterel::ir::ProgramBuilder;
use esterel::{SigExpr, Stmt};
use std::collections::HashMap;
use std::sync::Arc;

/// One synthesized property inside a [`MonitorSpec`].
#[derive(Debug, Clone)]
pub struct PropInfo {
    /// Property index in source order.
    pub index: usize,
    /// The property as source text (for reports).
    pub describe: String,
    /// The verdict output in the monitor machine's signal table.
    pub fail: Signal,
}

/// A synthesized monitor: the observer's kernel-Esterel program, its
/// compiled EFSM, and the property/verdict table.
#[derive(Debug, Clone)]
pub struct MonitorSpec {
    /// Observer name.
    pub name: String,
    /// Watched interface names, in declaration order.
    pub watched: Vec<String>,
    /// The monitor as kernel Esterel (reference semantics).
    pub program: Arc<esterel::Program>,
    /// The compiled monitor machine (runs lockstep with the design).
    pub efsm: Arc<Efsm>,
    /// Dense transition tables over `efsm`. Monitors are pure control,
    /// so every state flattens and stepping is row scans only (the
    /// walker remains as the structural fallback).
    pub table: Arc<CompiledEfsm>,
    /// Per-property verdict signals.
    pub props: Vec<PropInfo>,
}

fn obs_err<T>(msg: impl Into<String>, span: Span) -> Result<T, EclError> {
    Err(EclError::msg(Stage::Observe, msg, span))
}

/// Synthesize one observer into a monitor machine.
///
/// # Errors
///
/// [`EclError`] with stage `observe`: properties over undeclared
/// signals, or (defensively) a property set whose machine the Esterel
/// compiler rejects.
pub fn synthesize(obs: &ast::Observer) -> Result<MonitorSpec, EclError> {
    if obs.props.is_empty() {
        return obs_err(
            format!("observer `{}` declares no properties", obs.name.name),
            obs.span,
        );
    }
    let mut b = ProgramBuilder::new(format!("monitor_{}", obs.name.name));
    let mut by_name: HashMap<&str, Signal> = HashMap::new();
    let mut watched = Vec::new();
    for p in &obs.params {
        let s = b.input(&p.name.name);
        by_name.insert(p.name.name.as_str(), s);
        watched.push(p.name.name.clone());
    }
    let mut props = Vec::new();
    let mut branches = Vec::new();
    for (index, prop) in obs.props.iter().enumerate() {
        let fail = b.add(&format!("fail_{index}"), SigKind::Output, false);
        props.push(PropInfo {
            index,
            describe: pretty::property_str(prop),
            fail,
        });
        branches.push(prop_stmt(&prop.kind, fail, &by_name)?);
    }
    let body = Stmt::par(branches);
    let program = b.finish(body).map_err(|e| {
        EclError::msg(
            Stage::Observe,
            format!("observer `{}` synthesis failed: {e}", obs.name.name),
            obs.span,
        )
    })?;
    let efsm =
        esterel::compile::compile(&program, &CompileOptions::default()).map_err(EclError::from)?;
    let table = CompiledEfsm::compile(&efsm);
    Ok(MonitorSpec {
        name: obs.name.name.clone(),
        watched,
        program: Arc::new(program),
        efsm: Arc::new(efsm),
        table: Arc::new(table),
        props,
    })
}

/// Synthesize every observer of a translation unit, in source order.
///
/// # Errors
///
/// First failing observer.
pub fn synthesize_all(prog: &ast::Program) -> Result<Vec<Arc<MonitorSpec>>, EclError> {
    prog.observers()
        .map(|o| synthesize(o).map(Arc::new))
        .collect()
}

/// Translate one property to its monitor statement.
fn prop_stmt(
    kind: &ast::PropertyKind,
    fail: Signal,
    by_name: &HashMap<&str, Signal>,
) -> Result<Stmt, EclError> {
    // The parser enforces this too; re-check for hand-built ASTs —
    // window() unrolls 2N statements and the EFSM N states.
    if let ast::PropertyKind::EventuallyWithin(n, _)
    | ast::PropertyKind::Response { within: n, .. } = kind
    {
        if *n > ast::MAX_WINDOW {
            return obs_err(
                format!(
                    "property window {n} exceeds the {} instant limit",
                    ast::MAX_WINDOW
                ),
                Span::dummy(),
            );
        }
    }
    Ok(match kind {
        ast::PropertyKind::Always(e) => Stmt::loop_(Stmt::seq(vec![
            Stmt::present(sig_expr(e, by_name)?, Stmt::nothing(), Stmt::emit(fail)),
            Stmt::pause(),
        ])),
        ast::PropertyKind::Never(e) => Stmt::loop_(Stmt::seq(vec![
            Stmt::present(sig_expr(e, by_name)?, Stmt::emit(fail), Stmt::nothing()),
            Stmt::pause(),
        ])),
        ast::PropertyKind::EventuallyWithin(n, e) => {
            let e = sig_expr(e, by_name)?;
            Stmt::seq(vec![window(&e, *n, fail), Stmt::halt()])
        }
        ast::PropertyKind::Response {
            trigger,
            response,
            within,
        } => {
            let t = sig_expr(trigger, by_name)?;
            let r = sig_expr(response, by_name)?;
            Stmt::loop_(Stmt::seq(vec![
                Stmt::await_immediate(t),
                window(&r, *within, fail),
                Stmt::pause(),
            ]))
        }
    })
}

/// `trap { present e exit; [pause; present e exit;] × n; emit fail }`:
/// succeed silently if `e` holds within `n` instants of entry,
/// otherwise emit `fail` at instant `n` and terminate.
fn window(e: &SigExpr, n: u32, fail: Signal) -> Stmt {
    let check = |e: &SigExpr| Stmt::present(e.clone(), Stmt::exit(0), Stmt::nothing());
    let mut body = vec![check(e)];
    for _ in 0..n {
        body.push(Stmt::pause());
        body.push(check(e));
    }
    body.push(Stmt::emit(fail));
    Stmt::trap(Stmt::seq(body))
}

/// AST presence expression → IR presence expression over the
/// observer's declared inputs.
fn sig_expr(e: &ast::SigExpr, by_name: &HashMap<&str, Signal>) -> Result<SigExpr, EclError> {
    Ok(match &e.kind {
        ast::SigExprKind::Sig(id) => match by_name.get(id.name.as_str()) {
            Some(s) => SigExpr::Sig(*s),
            None => {
                return obs_err(
                    format!(
                        "property references `{}`, which is not a declared \
                         observer signal",
                        id.name
                    ),
                    id.span,
                )
            }
        },
        ast::SigExprKind::Not(inner) => sig_expr(inner, by_name)?.not_(),
        ast::SigExprKind::And(a, b) => sig_expr(a, by_name)?.and_(sig_expr(b, by_name)?),
        ast::SigExprKind::Or(a, b) => sig_expr(a, by_name)?.or_(sig_expr(b, by_name)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(src: &str, name: &str) -> MonitorSpec {
        let prog = ecl_syntax::parse_str(src).expect("parses");
        synthesize(prog.observer(name).expect("observer exists")).expect("synthesizes")
    }

    #[test]
    fn synthesizes_pure_machines_only() {
        let s = spec(
            "observer w(input pure a, input pure b) {\
               always (a | ~b); never (a & b); whenever (a) expect (b) within 2;\
             }",
            "w",
        );
        assert_eq!(s.watched, vec!["a", "b"]);
        assert_eq!(s.props.len(), 3);
        let st = s.efsm.stats();
        assert_eq!(st.pred_tests, 0, "monitors carry no data part");
        assert_eq!(st.actions, 0);
        assert_eq!(st.pure_states, st.states, "every monitor state is pure");
        assert!(
            s.table.fully_fused(),
            "monitors compile fully to fused rows"
        );
        s.efsm.validate().unwrap();
    }

    #[test]
    fn unknown_signal_is_an_observe_stage_error() {
        let prog = ecl_syntax::parse_str("observer w(input pure a) { never (ghost); }").unwrap();
        let e = synthesize(prog.observer("w").unwrap()).unwrap_err();
        assert_eq!(e.stage(), Stage::Observe);
        assert!(e.first_message().unwrap().contains("ghost"), "{e}");
    }

    #[test]
    fn empty_observer_is_rejected() {
        let prog = ecl_syntax::parse_str("observer w(input pure a) { }").unwrap();
        assert!(synthesize(prog.observer("w").unwrap()).is_err());
    }

    #[test]
    fn fail_signals_are_outputs() {
        let s = spec("observer w(input pure a) { never (a); always (a); }", "w");
        for p in &s.props {
            assert_eq!(s.efsm.signal_info(p.fail).kind, SigKind::Output);
        }
    }
}
