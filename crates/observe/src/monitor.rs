//! Monitor execution: step a synthesized machine lockstep with a
//! design run (or a recorded trace) and report verdicts.
//!
//! A monitor watches *names*, not handles: its watched interface is
//! resolved against the run's global signal namespace tolerating
//! elaboration mangling — watched name `packet` matches both the
//! partitioned run's wire `packet` and the monolithic run's local
//! `top::packet` — so one observer checks every implementation of the
//! same design.
//!
//! Resolution happens **once**, not per instant: [`Monitor::bind`]
//! precomputes, for every input of the monitor machine, the
//! [`BitSet`] of global [`SigId`]s that denote it. From then on
//! [`Monitor::step_ids`] turns a present-id set into machine inputs
//! with a handful of word intersections and steps the machine through
//! its *compiled transition tables* (monitors are pure control, so
//! states table fully up to the row cap — normally one masked row
//! scan per instant; a state wide enough to blow
//! [`efsm::table::ROW_CAP`] keeps the identical-semantics s-graph
//! walk). The name-based [`Monitor::step`] remains as a compatibility
//! shim with identical verdicts.

use crate::synth::MonitorSpec;
use efsm::{Backend, BitSet, NoHooks, SigTable, Signal, StateId};
use sim::runner::Present;
use sim::trace::Trace;
use std::fmt;
use std::sync::Arc;

/// A property violation: the paper-style `Fail{instant, witness}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Environment instant at which the violation was detected.
    pub instant: u64,
    /// Index of the violated property (source order).
    pub property: usize,
    /// The violated property as source text.
    pub describe: String,
    /// The present signal names at the failing instant.
    pub witness: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FAIL at instant {}: {} (witness: {:?})",
            self.instant, self.describe, self.witness
        )
    }
}

/// The state of a monitor relative to a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Still checking (no violation so far).
    Running,
    /// The run ended with no violation.
    Pass,
    /// A property was violated (first violation is latched).
    Fail(Violation),
    /// The run was cut short (watchdog trip, livelock budget) before
    /// the monitor could conclude: not a pass, not a violation.
    Inconclusive {
        /// Instant at which the run was cut short.
        instant: u64,
        /// Why the run could not conclude (e.g. the watchdog message).
        reason: String,
    },
}

impl Verdict {
    /// Is this a (final or provisional) pass? An inconclusive run is
    /// *not* a pass: the property was never checked to completion.
    pub fn is_pass(&self) -> bool {
        matches!(self, Verdict::Running | Verdict::Pass)
    }

    /// Was the run cut short before this monitor could conclude?
    pub fn is_inconclusive(&self) -> bool {
        matches!(self, Verdict::Inconclusive { .. })
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Running => write!(f, "RUNNING"),
            Verdict::Pass => write!(f, "PASS"),
            Verdict::Fail(v) => write!(f, "{v}"),
            Verdict::Inconclusive { instant, reason } => {
                write!(f, "INCONCLUSIVE at instant {instant}: {reason}")
            }
        }
    }
}

/// Does the full (possibly mangled) signal name `full` denote the
/// watched interface name `watched`? Exact match, or a `::`-mangled
/// suffix (`top/sub::name` ⊇ `name`).
pub fn name_matches(full: &str, watched: &str) -> bool {
    if full == watched {
        return true;
    }
    full.len() > watched.len() + 2
        && full.ends_with(watched)
        && full[..full.len() - watched.len()].ends_with("::")
}

/// A running instance of a [`MonitorSpec`].
#[derive(Debug, Clone)]
pub struct Monitor {
    spec: Arc<MonitorSpec>,
    state: StateId,
    verdict: Verdict,
    /// Per machine input: the mask of global ids that denote it
    /// (computed by [`Monitor::bind`]; empty until then).
    binding: Vec<(Signal, BitSet)>,
    bound: bool,
    /// Step through the spec's fused transition rows
    /// ([`Backend::Compiled`], the default) or force the s-graph
    /// walker (identical verdicts; the switch exists for measurement
    /// and differential testing).
    backend: Backend,
    input_scratch: BitSet,
    emit_scratch: Vec<Signal>,
}

impl Monitor {
    /// Fresh instance at the monitor machine's initial state.
    pub fn new(spec: Arc<MonitorSpec>) -> Monitor {
        let state = spec.efsm.init;
        Monitor {
            spec,
            state,
            verdict: Verdict::Running,
            binding: Vec::new(),
            bound: false,
            backend: Backend::default(),
            input_scratch: BitSet::new(),
            emit_scratch: Vec::new(),
        }
    }

    /// Choose the stepping backend: [`Backend::Compiled`] (the
    /// default) scans the spec's fused transition rows,
    /// [`Backend::Walker`] walks the s-graph. Verdicts are identical
    /// either way.
    pub fn set_backend(&mut self, backend: Backend) {
        self.backend = backend;
    }

    /// The active stepping backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// One machine instant over the chosen backend, with
    /// `input_scratch` as the monitor-local present set.
    fn machine_step(&mut self) {
        ecl_telemetry::metrics::MON_STEPS.incr();
        self.emit_scratch.clear();
        let r = if self.backend == Backend::Compiled {
            self.spec.table.step_table(
                &self.spec.efsm,
                self.state,
                &self.input_scratch,
                &mut NoHooks,
                &mut self.emit_scratch,
            )
        } else {
            self.spec.efsm.step_bits(
                self.state,
                &self.input_scratch,
                &mut NoHooks,
                &mut self.emit_scratch,
            )
        };
        self.state = r.next;
    }

    /// The underlying spec.
    pub fn spec(&self) -> &MonitorSpec {
        &self.spec
    }

    /// The verdict so far.
    pub fn verdict(&self) -> &Verdict {
        &self.verdict
    }

    /// Pre-bind the watched interface against a run's signal table:
    /// for each input of the monitor machine, compute the mask of
    /// global ids whose (possibly mangled) name denotes it. Stepping
    /// by ids after this is pure bitset work. Idempotent per table;
    /// call again to re-bind against a different run.
    pub fn bind(&mut self, table: &SigTable) {
        self.binding.clear();
        for (s, info) in self.spec.efsm.inputs() {
            let mask: BitSet = table
                .iter()
                .filter(|(_, name)| name_matches(name, &info.name))
                .map(|(id, _)| id.bit())
                .collect();
            self.binding.push((s, mask));
        }
        self.bound = true;
    }

    /// Step one environment instant with `present` as the set of
    /// present global ids (resolved against `table`, which the monitor
    /// lazily binds to on first use). After the first violation the
    /// monitor latches its verdict and ignores further instants.
    /// Returns the violation detected *this* instant, if any.
    /// Allocation-free in steady state (until a violation is latched).
    pub fn step_ids(
        &mut self,
        instant: u64,
        present: &BitSet,
        table: &SigTable,
    ) -> Option<&Violation> {
        if matches!(self.verdict, Verdict::Fail(_)) {
            return None;
        }
        if !self.bound {
            self.bind(table);
        }
        self.input_scratch.clear();
        for (s, mask) in &self.binding {
            if mask.intersects(present) {
                self.input_scratch.insert(s.0 as usize);
            }
        }
        self.machine_step();
        if let Some(p) = first_failed(&self.spec, &self.emit_scratch) {
            let (index, describe) = (p.index, p.describe.clone());
            let mut witness: Vec<String> = table.names_of(present).map(str::to_string).collect();
            witness.sort_unstable();
            self.note_violation(instant, index);
            self.verdict = Verdict::Fail(Violation {
                instant,
                property: index,
                describe,
                witness,
            });
            if let Verdict::Fail(v) = &self.verdict {
                return Some(v);
            }
        }
        None
    }

    /// Telemetry on a freshly latched violation: bump the counter and
    /// emit a `verdict` event (slow path — runs at most once per
    /// monitor per run).
    fn note_violation(&self, instant: u64, property: usize) {
        ecl_telemetry::metrics::MON_VIOLATIONS.incr();
        if let Some(e) = ecl_telemetry::event("verdict") {
            e.str("monitor", &self.spec.name)
                .str("verdict", "fail")
                .u64("instant", instant)
                .u64("property", property as u64)
                .emit();
        }
    }

    /// [`Monitor::step_ids`] on a runner's [`Present`] set — the
    /// `run_events` callback shape.
    pub fn step_present(&mut self, instant: u64, present: Present<'_>) -> Option<&Violation> {
        self.step_ids(instant, present.ids(), present.table())
    }

    /// Step one environment instant with the given present names.
    /// Compatibility shim over the id path (name-matches each watched
    /// input per instant); verdicts are identical to
    /// [`Monitor::step_ids`] on the equivalent id set.
    pub fn step<S: AsRef<str>>(&mut self, instant: u64, present: &[S]) -> Option<&Violation> {
        if matches!(self.verdict, Verdict::Fail(_)) {
            return None;
        }
        self.input_scratch.clear();
        for (s, info) in self.spec.efsm.inputs() {
            if present.iter().any(|p| name_matches(p.as_ref(), &info.name)) {
                self.input_scratch.insert(s.0 as usize);
            }
        }
        self.machine_step();
        if let Some(p) = first_failed(&self.spec, &self.emit_scratch) {
            let (index, describe) = (p.index, p.describe.clone());
            let mut witness: Vec<String> = present.iter().map(|s| s.as_ref().to_string()).collect();
            witness.sort_unstable();
            self.note_violation(instant, index);
            self.verdict = Verdict::Fail(Violation {
                instant,
                property: index,
                describe,
                witness,
            });
            if let Verdict::Fail(v) = &self.verdict {
                return Some(v);
            }
        }
        None
    }

    /// Replay a recorded [`Trace`] from its first retained instant.
    /// Returns the final verdict.
    pub fn replay(&mut self, trace: &Trace) -> Verdict {
        for rec in trace.records() {
            let present = trace.present_names(rec);
            self.step(rec.instant, &present);
        }
        self.finish()
    }

    /// Conclude the run: a monitor still `Running` passes.
    pub fn finish(&mut self) -> Verdict {
        if self.verdict == Verdict::Running {
            self.verdict = Verdict::Pass;
        }
        self.verdict.clone()
    }
}

/// The first property whose `fail_i` output is in `emitted`.
fn first_failed<'s>(spec: &'s MonitorSpec, emitted: &[Signal]) -> Option<&'s crate::PropInfo> {
    spec.props.iter().find(|p| emitted.contains(&p.fail))
}

/// The verdicts of a set of monitors over one run.
#[derive(Debug, Clone)]
pub struct MonitorReport {
    /// `(observer name, final verdict)` in attachment order.
    pub verdicts: Vec<(String, Verdict)>,
}

impl MonitorReport {
    /// Conclude a set of monitors into a report, emitting one final
    /// `verdict` telemetry event per monitor.
    pub fn conclude(monitors: Vec<Monitor>) -> MonitorReport {
        MonitorReport {
            verdicts: monitors
                .into_iter()
                .map(|mut m| {
                    let v = m.finish();
                    if let Some(e) = ecl_telemetry::event("verdict") {
                        let e = e.str("monitor", &m.spec.name).bool("final", true);
                        match &v {
                            Verdict::Fail(viol) => e
                                .str("verdict", "fail")
                                .u64("instant", viol.instant)
                                .u64("property", viol.property as u64)
                                .emit(),
                            _ => e.str("verdict", "pass").emit(),
                        }
                    }
                    (m.spec.name.clone(), v)
                })
                .collect(),
        }
    }

    /// Conclude a run that was cut short at `instant` (watchdog trip,
    /// livelock budget): monitors still `Running` become
    /// [`Verdict::Inconclusive`] — never `Pass` — while already-latched
    /// violations are kept. One final `verdict` telemetry event per
    /// monitor, as in [`MonitorReport::conclude`].
    pub fn conclude_inconclusive(
        monitors: Vec<Monitor>,
        instant: u64,
        reason: &str,
    ) -> MonitorReport {
        MonitorReport {
            verdicts: monitors
                .into_iter()
                .map(|mut m| {
                    let v = match m.finish() {
                        Verdict::Fail(viol) => Verdict::Fail(viol),
                        _ => Verdict::Inconclusive {
                            instant,
                            reason: reason.to_string(),
                        },
                    };
                    if let Some(e) = ecl_telemetry::event("verdict") {
                        let e = e.str("monitor", &m.spec.name).bool("final", true);
                        match &v {
                            Verdict::Fail(viol) => e
                                .str("verdict", "fail")
                                .u64("instant", viol.instant)
                                .u64("property", viol.property as u64)
                                .emit(),
                            _ => e
                                .str("verdict", "inconclusive")
                                .u64("instant", instant)
                                .emit(),
                        }
                    }
                    (m.spec.name.clone(), v)
                })
                .collect(),
        }
    }

    /// Did every monitor pass?
    pub fn all_pass(&self) -> bool {
        self.verdicts.iter().all(|(_, v)| *v == Verdict::Pass)
    }

    /// Was any monitor's run cut short before it could conclude?
    pub fn any_inconclusive(&self) -> bool {
        self.verdicts.iter().any(|(_, v)| v.is_inconclusive())
    }

    /// The first violation, if any.
    pub fn first_fail(&self) -> Option<(&str, &Violation)> {
        self.verdicts.iter().find_map(|(n, v)| match v {
            Verdict::Fail(viol) => Some((n.as_str(), viol)),
            _ => None,
        })
    }

    /// Verdict for a named monitor.
    pub fn verdict(&self, name: &str) -> Option<&Verdict> {
        self.verdicts
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }
}

impl fmt::Display for MonitorReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in &self.verdicts {
            writeln!(f, "  {name}: {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::synthesize;

    fn monitor(src: &str, name: &str) -> Monitor {
        let prog = ecl_syntax::parse_str(src).unwrap();
        Monitor::new(Arc::new(synthesize(prog.observer(name).unwrap()).unwrap()))
    }

    fn names(ns: &[&str]) -> Vec<String> {
        ns.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn name_matching_tolerates_mangling() {
        assert!(name_matches("packet", "packet"));
        assert!(name_matches("top::packet", "packet"));
        assert!(name_matches("top/sub::out_sample", "out_sample"));
        assert!(!name_matches("top::packets", "packet"));
        assert!(!name_matches("mypacket", "packet"));
        assert!(!name_matches("packet", "top::packet"));
    }

    #[test]
    fn never_fails_at_the_offending_instant() {
        let mut m = monitor(
            "observer w(input pure a, input pure b) { never (a & b); }",
            "w",
        );
        m.step(0, &names(&[]));
        m.step(1, &names(&["a"]));
        assert!(m.verdict().is_pass());
        let v = m.step(2, &names(&["a", "b"])).cloned().unwrap();
        assert_eq!(v.instant, 2);
        assert_eq!(v.property, 0);
        assert_eq!(v.witness, names(&["a", "b"]));
        // Latched: later instants do not change the verdict.
        m.step(3, &names(&[]));
        assert!(matches!(m.verdict(), Verdict::Fail(f) if f.instant == 2));
    }

    #[test]
    fn always_fails_when_the_invariant_lapses() {
        let mut m = monitor("observer w(input pure a) { always (a); }", "w");
        m.step(0, &names(&["a"]));
        assert!(m.verdict().is_pass());
        let v = m.step(1, &names(&[])).cloned().unwrap();
        assert_eq!(v.instant, 1);
    }

    #[test]
    fn response_window_passes_and_fails_at_the_bound() {
        let src = "observer w(input pure t, input pure r) { whenever (t) expect (r) within 2; }";
        // Response inside the window: pass.
        let mut m = monitor(src, "w");
        m.step(0, &names(&["t"]));
        m.step(1, &names(&[]));
        m.step(2, &names(&["r"]));
        assert_eq!(m.finish(), Verdict::Pass);
        // No response: fail exactly when the window closes (t at 3 → fail at 5).
        let mut m = monitor(src, "w");
        m.step(0, &names(&[]));
        m.step(1, &names(&[]));
        m.step(2, &names(&[]));
        m.step(3, &names(&["t"]));
        assert!(m.step(4, &names(&[])).is_none());
        let v = m.step(5, &names(&[])).cloned().unwrap();
        assert_eq!(v.instant, 5);
    }

    #[test]
    fn same_instant_response_satisfies_window_zero() {
        let mut m = monitor(
            "observer w(input pure t, input pure r) { whenever (t) expect (r); }",
            "w",
        );
        m.step(0, &names(&["t", "r"]));
        assert_eq!(m.finish(), Verdict::Pass);
    }

    #[test]
    fn eventually_within_passes_and_fails() {
        let src = "observer w(input pure e) { eventually_within 3 (e); }";
        let mut m = monitor(src, "w");
        m.step(0, &names(&[]));
        m.step(1, &names(&["e"]));
        assert_eq!(m.finish(), Verdict::Pass);
        let mut m = monitor(src, "w");
        for i in 0..3 {
            assert!(m.step(i, &names(&[])).is_none(), "instant {i}");
        }
        let v = m.step(3, &names(&[])).cloned().unwrap();
        assert_eq!(v.instant, 3);
        // After the deadline the monitor halts; a late `e` cannot help.
        m.step(4, &names(&["e"]));
        assert!(matches!(m.verdict(), Verdict::Fail(_)));
    }

    #[test]
    fn replay_over_trace_matches_online_stepping() {
        let src = "observer w(input pure t, input pure r) { whenever (t) expect (r) within 1; }";
        let mut online = monitor(src, "w");
        let mut trace = Trace::new(0);
        let steps: Vec<Vec<&str>> = vec![vec![], vec!["t"], vec![], vec![]];
        for (i, ev) in steps.iter().enumerate() {
            trace.begin_instant(i as u64);
            for n in ev {
                trace.record(n, None, true);
            }
            trace.end_instant();
            online.step(i as u64, &names(ev));
        }
        let mut offline = monitor(src, "w");
        let off = offline.replay(&trace);
        assert_eq!(online.finish(), off);
        assert!(matches!(off, Verdict::Fail(v) if v.instant == 2));
    }

    #[test]
    fn report_summarizes_verdicts() {
        let pass = monitor("observer p(input pure a) { never (a); }", "p");
        let mut fail = monitor("observer f(input pure a) { always (a); }", "f");
        fail.step(0, &names(&[]));
        let report = MonitorReport::conclude(vec![pass, fail]);
        assert!(!report.all_pass());
        let (name, v) = report.first_fail().unwrap();
        assert_eq!(name, "f");
        assert_eq!(v.instant, 0);
        assert_eq!(report.verdict("p"), Some(&Verdict::Pass));
    }
}
