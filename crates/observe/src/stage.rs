//! The `Monitored` terminal stage: a compiled design bundled with the
//! synthesized monitors of its translation unit, plus their C
//! emission — the observer-side sibling of `codegen::Artifacts`.
//!
//! Two entry points mirror the driver split elsewhere in the
//! workspace:
//!
//! * [`Monitored::attach`] advances a pipeline
//!   [`ecl_core::pipeline::Machine`] (stage-level tooling);
//! * [`WorkspaceObserveExt::monitored`] serves batch requests from a
//!   [`Workspace`], memoized by `(source, entry)` through the
//!   workspace extension cache exactly like designs and machines.

use crate::monitor::Monitor;
use crate::synth::{synthesize_all, MonitorSpec};
use ecl_core::pipeline::Machine;
use ecl_core::workspace::Workspace;
use ecl_syntax::ast;
use ecl_syntax::diag::EclError;
use std::sync::Arc;

/// A design with its observers synthesized: the `Monitored` stage.
#[derive(Debug, Clone)]
pub struct Monitored {
    entry: String,
    specs: Vec<Arc<MonitorSpec>>,
    c: String,
}

impl Monitored {
    /// Advance a pipeline [`Machine`] to its monitored form:
    /// synthesize every observer declared alongside the design.
    ///
    /// # Errors
    ///
    /// [`EclError`] with stage `observe` from the first failing
    /// observer.
    pub fn attach(machine: &Machine) -> Result<Monitored, EclError> {
        let ast = machine.ir().split().elaborated().parsed().ast().clone();
        Monitored::from_ast(&machine.design().entry, &ast)
    }

    /// Build from a parsed translation unit (what a [`Workspace`]
    /// caches per source).
    ///
    /// # Errors
    ///
    /// See [`Monitored::attach`].
    pub fn from_ast(entry: &str, ast: &ast::Program) -> Result<Monitored, EclError> {
        let specs = synthesize_all(ast)?;
        let c = specs
            .iter()
            .map(|s| codegen::emit_monitor_c(&s.efsm))
            .collect::<Vec<_>>()
            .join("\n");
        Ok(Monitored {
            entry: entry.to_string(),
            specs,
            c,
        })
    }

    /// The monitored design's entry module.
    pub fn entry(&self) -> &str {
        &self.entry
    }

    /// The synthesized monitors, in declaration order.
    pub fn specs(&self) -> &[Arc<MonitorSpec>] {
        &self.specs
    }

    /// Fresh monitor instances for one run.
    pub fn monitors(&self) -> Vec<Monitor> {
        self.specs
            .iter()
            .map(|s| Monitor::new(Arc::clone(s)))
            .collect()
    }

    /// Fresh monitor instances pre-bound to a run's signal table: the
    /// watched interface is resolved to global id masks here, once, so
    /// per-instant stepping is pure bitset work.
    pub fn bound_monitors(&self, table: &efsm::SigTable) -> Vec<Monitor> {
        self.specs
            .iter()
            .map(|s| {
                let mut m = Monitor::new(Arc::clone(s));
                m.bind(table);
                m
            })
            .collect()
    }

    /// The monitors' C emission (pure reaction functions, one per
    /// observer) — generated task code carries its assertions.
    pub fn c(&self) -> &str {
        &self.c
    }
}

/// Batch monitor synthesis over a [`Workspace`] — the observe side of
/// the session API.
pub trait WorkspaceObserveExt {
    /// The monitored form of `(source, entry)`: design machine
    /// compiled (and cached) plus every observer of `source`
    /// synthesized. Memoized by `(source, entry)`.
    ///
    /// # Errors
    ///
    /// First failing stage (design compilation or observer synthesis).
    fn monitored(&self, source: &str, entry: &str) -> Result<Arc<Monitored>, EclError>;

    /// [`WorkspaceObserveExt::monitored`] for a batch of jobs, in job
    /// order.
    fn monitored_all(&self, jobs: &[(&str, &str)]) -> Vec<Result<Arc<Monitored>, EclError>>;
}

impl WorkspaceObserveExt for Workspace {
    fn monitored(&self, source: &str, entry: &str) -> Result<Arc<Monitored>, EclError> {
        self.memo_ext(source, entry, "observe::monitored", || {
            // The design machine is a prerequisite artifact (and lands
            // in the workspace caches for later runs).
            self.machine(source, entry)?;
            let parsed = self.parsed(source)?;
            Monitored::from_ast(entry, parsed.ast()).map(Arc::new)
        })
    }

    fn monitored_all(&self, jobs: &[(&str, &str)]) -> Vec<Result<Arc<Monitored>, EclError>> {
        // Warm the machine cache in parallel, then attach monitors
        // (cheap, memoized per job).
        let machines = self.machine_all(jobs);
        jobs.iter()
            .zip(machines)
            .map(|((source, entry), m)| {
                m?;
                self.monitored(source, entry)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_core::pipeline::Source;

    const SRC: &str = "
        module m(input pure a, output pure o) {
          while (1) { await (a); emit (o); }
        }
        observer w(input pure a, input pure o) {
          whenever (a) expect (o) within 1;
        }";

    #[test]
    fn attach_advances_a_pipeline_machine() {
        let machine = Source::new(SRC).finish("m").unwrap();
        let mon = Monitored::attach(&machine).unwrap();
        assert_eq!(mon.entry(), "m");
        assert_eq!(mon.specs().len(), 1);
        assert!(mon.c().contains("monitor_w_react"), "{}", mon.c());
        assert_eq!(mon.monitors().len(), 1);
    }

    #[test]
    fn workspace_monitored_is_memoized() {
        let mut ws = Workspace::new();
        ws.add_source("m.ecl", SRC);
        let a = ws.monitored("m.ecl", "m").unwrap();
        let b = ws.monitored("m.ecl", "m").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = ws.cache_stats();
        assert_eq!(stats.ext_misses, 1);
        assert_eq!(stats.ext_hits, 1);
        // The design machine was compiled (and cached) underneath.
        assert_eq!(stats.machine_misses, 1);
    }

    #[test]
    fn batch_monitored_over_workspace() {
        let mut ws = Workspace::new();
        ws.add_source("m.ecl", SRC);
        ws.add_source(
            "plain.ecl",
            "module p(input pure a, output pure o) { while (1) { await (a); emit (o); } }",
        );
        let results = ws.monitored_all(&[("m.ecl", "m"), ("plain.ecl", "p")]);
        assert_eq!(results[0].as_ref().unwrap().specs().len(), 1);
        // A source without observers yields an empty (but valid) set.
        assert_eq!(results[1].as_ref().unwrap().specs().len(), 0);
    }
}
