//! `ecl-fleet` — a supervised multi-tenant session fleet.
//!
//! One compiled design, many independent simulations: the supervisor
//! compiles a set of designs **once** into a [`sim::SharedProgram`]
//! (`Arc`-shared EFSMs, fused tables and lowered data programs) and
//! instantiates a cheap per-session [`sim::AsyncRunner`] clone for
//! every admitted [`SessionSpec`], sharded across worker threads with
//! bounded per-shard run queues. Three robustness pillars, all
//! deterministic under a seed:
//!
//! * **Checkpoint/restore** — at every `checkpoint_every`-instant
//!   boundary the session's full reaction state (kernel mailboxes and
//!   watch sets, EFSM current states, the `Rt` slot file, monitor
//!   states, trace ring, emission counters) is captured through
//!   [`sim::Snapshot`]. A restored session replays its buffered inputs
//!   and converges to byte-identical traces, verdicts and counters.
//! * **Restart with backoff** — a panic caught mid-instant (the
//!   runner's poisoning latch), a watchdog trip or a livelock budget
//!   restores the last checkpoint after a seeded exponential backoff
//!   with deterministic jitter ([`RestartPolicy`]); the restart budget
//!   exhausting escalates the session to [`SessionStatus::Failed`].
//!   Loss accounting survives the crash: the supervisor flushes
//!   `events_lost` from its outcome path even when the in-run bracket
//!   never ran.
//! * **Admission control & graceful degradation** — shard queues are
//!   bounded; occupancy climbs a [`Pressure`] ladder that sheds work
//!   in order of expendability (trace recording → span summaries →
//!   monitor sampling) before the fleet refuses instants outright
//!   (admission rejection, attributed per session in telemetry like
//!   `events_lost`).
//!
//! Fault hooks: `ecl_faults::kill_due` panics a chosen session at a
//! chosen instant (exercising the restart path end to end) and
//! `ecl_faults::shard_stall` delays a shard quantum without changing
//! any session's outputs — chaos tests assert byte-identical survivor
//! behavior under both.

use codegen::cost::CostParams;
use ecl_core::Design;
use ecl_observe::{Monitor, MonitorReport, MonitorSpec};
use ecl_telemetry::metrics as tm;
use efsm::{Backend, BitSet};
use esterel::CompileOptions;
use rtk::KernelParams;
use sim::runner::{
    AsyncRunner, Runner, RunnerSnapshot, SharedProgram, SimError, SimErrorKind, Snapshot,
    WatchdogBudget,
};
use sim::tb::InstantEvents;
use sim::trace::Trace;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// SplitMix64 finalizer — the same mixer `ecl-faults` uses for its
/// keyed sites, so backoff jitter is a pure function of
/// `(seed, session, attempt)` and independent of thread timing.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Restart budget and backoff shape for one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartPolicy {
    /// Restarts allowed before the session escalates to
    /// [`SessionStatus::Failed`].
    pub max_retries: u32,
    /// Backoff of the first retry, in virtual ticks (1 tick = 1 µs of
    /// real sleep on the shard worker).
    pub base_ticks: u64,
    /// Exponential growth cap, in ticks.
    pub max_ticks: u64,
    /// Jitter seed; the jitter for attempt `a` of session `s` is
    /// `splitmix(seed, s, a) % backoff` — deterministic, but
    /// decorrelated across sessions.
    pub seed: u64,
}

impl Default for RestartPolicy {
    fn default() -> RestartPolicy {
        RestartPolicy {
            max_retries: 3,
            base_ticks: 64,
            max_ticks: 4096,
            seed: 0xEC1F,
        }
    }
}

impl RestartPolicy {
    /// Backoff before retry `attempt` (1-based) of `session`:
    /// exponential in the attempt, capped, plus deterministic jitter
    /// in `[0, backoff)`.
    pub fn backoff_ticks(&self, session: u64, attempt: u32) -> u64 {
        let exp = (self.base_ticks << attempt.saturating_sub(1).min(20))
            .min(self.max_ticks)
            .max(1);
        let jitter = splitmix(self.seed ^ splitmix(session ^ splitmix(attempt as u64))) % exp;
        exp + jitter
    }
}

/// The degradation ladder, climbed as shard-queue occupancy rises at
/// admission time. Each rung sheds the next most expendable work;
/// refusing instants outright (admission rejection) sits above the
/// top rung.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Pressure {
    /// Full observability: trace, spans, every monitor instant.
    Nominal,
    /// Trace recording shed (queue ≥ 50% full).
    ShedTrace,
    /// Span summaries also shed (queue ≥ 75% full).
    ShedSpans,
    /// Monitors stepped on a sampling stride (queue ≥ 90% full) —
    /// verdicts become best-effort, honestly so.
    SampleMonitors,
}

impl Pressure {
    /// Numeric rung for telemetry (`fleet_health.pressure`).
    pub fn level(self) -> u64 {
        match self {
            Pressure::Nominal => 0,
            Pressure::ShedTrace => 1,
            Pressure::ShedSpans => 2,
            Pressure::SampleMonitors => 3,
        }
    }

    /// The rung for an admission finding `depth` sessions already
    /// queued on a shard with capacity `cap`.
    pub fn from_occupancy(depth: usize, cap: usize) -> Pressure {
        let f = depth as f64 / cap.max(1) as f64;
        if f >= 0.9 {
            Pressure::SampleMonitors
        } else if f >= 0.75 {
            Pressure::ShedSpans
        } else if f >= 0.5 {
            Pressure::ShedTrace
        } else {
            Pressure::Nominal
        }
    }
}

/// Fleet-wide tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Worker threads; sessions are admitted round-robin.
    pub shards: usize,
    /// Bounded per-shard run-queue capacity — the admission limit the
    /// pressure ladder is computed against.
    pub queue_cap: usize,
    /// Instants per checkpoint (0 = only the initial checkpoint).
    pub checkpoint_every: u64,
    /// Restart budget and backoff shape.
    pub restart: RestartPolicy,
    /// Execution backend for every session.
    pub backend: Backend,
    /// Per-instant watchdog budgets (applied to every session).
    pub watchdog: Option<WatchdogBudget>,
    /// Monitor stride under [`Pressure::SampleMonitors`] (step
    /// monitors every n-th instant; min 1).
    pub monitor_sample: u64,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            shards: 2,
            queue_cap: 64,
            checkpoint_every: 64,
            restart: RestartPolicy::default(),
            backend: Backend::default(),
            watchdog: None,
            monitor_sample: 2,
        }
    }
}

/// One tenant: a session id, its input stream and its observers.
/// Event streams and specs are `Arc`-shared — a thousand sessions
/// replaying one testbench hold one copy.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Fleet-unique session id (keys `kill_due`, telemetry `session`
    /// fields and backoff jitter).
    pub id: u64,
    /// The environment instants to drive.
    pub events: Arc<Vec<InstantEvents>>,
    /// Observers attached to the run.
    pub specs: Vec<Arc<MonitorSpec>>,
    /// Trace-ring capacity (`Some(0)` = unbounded, `None` = no trace).
    /// Shed entirely at [`Pressure::ShedTrace`] and above.
    pub trace_capacity: Option<usize>,
}

/// Terminal state of one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// Ran its whole event stream; verdicts concluded.
    Finished,
    /// Exhausted the restart budget on poisoned/inconclusive
    /// outcomes; monitors concluded `Inconclusive`.
    Failed,
    /// A definite simulation error (not restartable).
    Errored,
    /// Refused admission by a full shard queue.
    Rejected,
}

/// What one session produced.
#[derive(Debug)]
pub struct SessionReport {
    /// The session's id, as admitted.
    pub id: u64,
    /// Terminal state.
    pub status: SessionStatus,
    /// Final monitor verdicts (`None` for rejected/errored sessions).
    pub report: Option<MonitorReport>,
    /// Recorded trace, unless shed or disabled.
    pub trace: Option<Trace>,
    /// Emission counts by signal name.
    pub counts: HashMap<String, u64>,
    /// Mailbox-overwrite losses in the final (kept) execution.
    pub events_lost: u64,
    /// Instants actually retired (excluding replayed work).
    pub instants: u64,
    /// Checkpoint restores performed.
    pub restarts: u32,
    /// Total virtual backoff ticks slept across restarts.
    pub backoff_ticks: u64,
    /// Degradation rung applied at admission.
    pub pressure: Pressure,
    /// Terminal error message, if any.
    pub error: Option<String>,
}

/// Aggregate fleet outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetHealth {
    /// Sessions submitted.
    pub sessions: usize,
    /// Sessions admitted to a shard queue.
    pub admitted: usize,
    /// Sessions refused admission.
    pub rejected: usize,
    /// Sessions that finished their stream.
    pub finished: usize,
    /// Sessions that exhausted their restart budget.
    pub failed: usize,
    /// Sessions ended by a definite error.
    pub errored: usize,
    /// Checkpoint restores across the fleet.
    pub restarts: u64,
    /// Highest pressure rung any admission saw.
    pub max_pressure: u64,
}

/// Everything [`Supervisor::run`] returns: per-session reports in
/// submission order plus the aggregate health snapshot (also emitted
/// as a `fleet_health` telemetry event).
#[derive(Debug)]
pub struct FleetReport {
    /// One report per submitted session, in submission order.
    pub sessions: Vec<SessionReport>,
    /// The aggregate.
    pub health: FleetHealth,
}

impl FleetReport {
    /// The report of session `id`.
    pub fn session(&self, id: u64) -> Option<&SessionReport> {
        self.sessions.iter().find(|s| s.id == id)
    }
}

/// An admitted session: its queue slot plus the pressure rung frozen
/// at admission time.
struct Admitted {
    index: usize,
    spec: SessionSpec,
    pressure: Pressure,
}

/// Did one quantum end the stream or leave more instants to run?
enum Step {
    Done,
    More,
}

/// Checkpoint of one session: the runner snapshot plus the pieces the
/// supervisor owns (monitor states and the input cursor).
struct SessionCkpt {
    snap: RunnerSnapshot,
    monitors: Vec<Monitor>,
    cursor: usize,
}

/// The fleet supervisor: compile once, run many.
pub struct Supervisor {
    shared: SharedProgram,
    cfg: FleetConfig,
}

impl Supervisor {
    /// Compile `designs` once into the shared program every session
    /// runs against.
    ///
    /// # Errors
    ///
    /// Propagates compilation failures.
    pub fn new(
        designs: Vec<Design>,
        opts: &CompileOptions,
        cfg: FleetConfig,
    ) -> Result<Supervisor, SimError> {
        Ok(Supervisor {
            shared: SharedProgram::compile(designs, opts)?,
            cfg,
        })
    }

    /// The shared compilation product (one solo runner can be
    /// instantiated from it for differential comparison).
    pub fn shared(&self) -> &SharedProgram {
        &self.shared
    }

    /// The active configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Admit and run `sessions` to completion across the configured
    /// shards. Blocking; returns per-session reports in submission
    /// order and emits one `fleet_health` telemetry event.
    pub fn run(&self, sessions: Vec<SessionSpec>) -> FleetReport {
        let n = sessions.len();
        let shards = self.cfg.shards.max(1);
        let cap = self.cfg.queue_cap.max(1);
        let mut queues: Vec<Vec<Admitted>> = (0..shards).map(|_| Vec::new()).collect();
        let mut reports: Vec<Option<SessionReport>> = (0..n).map(|_| None).collect();
        let mut health = FleetHealth {
            sessions: n,
            ..FleetHealth::default()
        };

        // Admission: round-robin over shards against the bounded
        // queues. The pressure rung is frozen per session at admission
        // so a session's degradation level is a deterministic function
        // of the submission order, not of worker timing.
        for (index, spec) in sessions.into_iter().enumerate() {
            let shard = index % shards;
            let depth = queues[shard].len();
            if depth >= cap {
                // Refusing instants: the rung above the ladder.
                // Attribute the shed work to the session exactly like
                // mailbox losses are attributed to tasks.
                tm::FLEET_REJECTED.incr();
                if let Some(e) = ecl_telemetry::event("events_lost") {
                    e.u64("total", spec.events.len() as u64)
                        .u64("session", spec.id)
                        .str("reason", "admission_refused")
                        .emit();
                }
                health.rejected += 1;
                health.max_pressure = health
                    .max_pressure
                    .max(Pressure::SampleMonitors.level() + 1);
                reports[index] = Some(SessionReport {
                    id: spec.id,
                    status: SessionStatus::Rejected,
                    report: None,
                    trace: None,
                    counts: HashMap::new(),
                    events_lost: 0,
                    instants: 0,
                    restarts: 0,
                    backoff_ticks: 0,
                    pressure: Pressure::SampleMonitors,
                    error: Some("admission refused: shard queue full".into()),
                });
                continue;
            }
            let pressure = Pressure::from_occupancy(depth, cap);
            if pressure > Pressure::Nominal {
                tm::FLEET_SHED.incr();
            }
            health.admitted += 1;
            health.max_pressure = health.max_pressure.max(pressure.level());
            queues[shard].push(Admitted {
                index,
                spec,
                pressure,
            });
        }

        // Shard workers: each drains its own queue sequentially, so
        // per-shard quantum numbering (the `shard_stall` key) is
        // deterministic.
        let done: Mutex<Vec<(usize, SessionReport)>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for (shard_id, queue) in queues.into_iter().enumerate() {
                let done = &done;
                let shared = &self.shared;
                let cfg = &self.cfg;
                s.spawn(move || {
                    let mut quantum_seq = 0u64;
                    for adm in queue {
                        let index = adm.index;
                        let rep =
                            drive_session(shared, cfg, adm, shard_id as u64, &mut quantum_seq);
                        done.lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push((index, rep));
                    }
                });
            }
        });
        for (index, rep) in done.into_inner().unwrap_or_else(|e| e.into_inner()) {
            match rep.status {
                SessionStatus::Finished => health.finished += 1,
                SessionStatus::Failed => health.failed += 1,
                SessionStatus::Errored => health.errored += 1,
                SessionStatus::Rejected => health.rejected += 1,
            }
            health.restarts += rep.restarts as u64;
            reports[index] = Some(rep);
        }

        if let Some(e) = ecl_telemetry::event("fleet_health") {
            e.u64("sessions", health.sessions as u64)
                .u64("pressure", health.max_pressure)
                .u64("admitted", health.admitted as u64)
                .u64("rejected", health.rejected as u64)
                .u64("finished", health.finished as u64)
                .u64("failed", health.failed as u64)
                .u64("errored", health.errored as u64)
                .u64("restarts", health.restarts)
                .emit();
        }

        FleetReport {
            sessions: reports
                .into_iter()
                .map(|r| r.expect("every session reported"))
                .collect(),
            health,
        }
    }
}

/// Extract a printable message from a caught panic payload.
fn panic_msg(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

/// Run one session to a terminal state on its shard worker.
fn drive_session(
    shared: &SharedProgram,
    cfg: &FleetConfig,
    adm: Admitted,
    shard: u64,
    quantum_seq: &mut u64,
) -> SessionReport {
    let Admitted { spec, pressure, .. } = adm;
    let config_label = format!(
        "fleet/{}",
        match cfg.backend {
            Backend::Compiled => "compiled",
            Backend::Walker => "walker",
        }
    );
    let run = ecl_telemetry::Run::start_session(
        shared.designs().next().map_or("", |d| &d.entry),
        &config_label,
        spec.id,
    );

    let mut runner =
        AsyncRunner::from_shared(shared, CostParams::default(), KernelParams::default());
    runner.set_session(spec.id);
    runner.set_backend(cfg.backend);
    runner.set_watchdog(cfg.watchdog);
    if pressure < Pressure::ShedTrace {
        if let Some(cap) = spec.trace_capacity {
            runner.enable_trace(cap);
        }
    }
    let mut monitors: Vec<Monitor> = spec
        .specs
        .iter()
        .map(|s| {
            let mut m = Monitor::new(Arc::clone(s));
            m.bind(runner.sig_table());
            m
        })
        .collect();
    let mut cursor = 0usize;

    // The initial checkpoint: a kill before the first periodic
    // boundary restores to instant 0.
    let mut ckpt = SessionCkpt {
        snap: runner.snapshot().expect("fresh runner snapshots"),
        monitors: monitors.clone(),
        cursor,
    };
    tm::FLEET_CHECKPOINTS.incr();

    let mut restarts = 0u32;
    let mut attempt = 0u32;
    let mut backoff_total = 0u64;

    // One iteration = one quantum (`checkpoint_every` instants) under
    // a panic guard. The runner lives *outside* the guard so the
    // outcome path can still flush loss accounting and restore state
    // after a caught panic.
    loop {
        if let Some(ms) = ecl_faults::shard_stall(shard, *quantum_seq) {
            std::thread::sleep(Duration::from_millis(ms));
        }
        *quantum_seq += 1;
        let res = catch_unwind(AssertUnwindSafe(|| {
            run_quantum(
                &mut runner,
                &mut monitors,
                &spec,
                cfg,
                &mut cursor,
                pressure,
            )
        }));
        match res {
            Ok(Ok(Step::Done)) => {
                runner.emit_losses();
                let report = MonitorReport::conclude(monitors);
                let instants = runner.now();
                run.end(instants);
                return SessionReport {
                    id: spec.id,
                    status: SessionStatus::Finished,
                    report: Some(report),
                    trace: runner.take_trace(),
                    counts: runner.counts(),
                    events_lost: runner.kernel().events_lost,
                    instants,
                    restarts,
                    backoff_ticks: backoff_total,
                    pressure,
                    error: None,
                };
            }
            Ok(Ok(Step::More)) => {
                // Quantum boundary: the runner is quiescent, so the
                // snapshot cannot be torn.
                if let Ok(snap) = runner.snapshot() {
                    ckpt = SessionCkpt {
                        snap,
                        monitors: monitors.clone(),
                        cursor,
                    };
                    tm::FLEET_CHECKPOINTS.incr();
                }
            }
            Ok(Err(e)) if e.kind.is_inconclusive() || e.kind == SimErrorKind::Poisoned => {
                runner.emit_losses();
                attempt += 1;
                if attempt > cfg.restart.max_retries {
                    return escalate(
                        runner,
                        monitors,
                        run,
                        &spec,
                        &e.msg,
                        restarts,
                        backoff_total,
                        pressure,
                    );
                }
                restart(
                    &mut runner,
                    &mut monitors,
                    &mut cursor,
                    &ckpt,
                    &cfg.restart,
                    spec.id,
                    attempt,
                    &mut restarts,
                    &mut backoff_total,
                );
            }
            Ok(Err(e)) => {
                // Definite error: not restartable (replaying the same
                // inputs re-derives the same failure).
                runner.emit_losses();
                let instants = runner.now();
                run.end(instants);
                return SessionReport {
                    id: spec.id,
                    status: SessionStatus::Errored,
                    report: None,
                    trace: runner.take_trace(),
                    counts: runner.counts(),
                    events_lost: runner.kernel().events_lost,
                    instants,
                    restarts,
                    backoff_ticks: backoff_total,
                    pressure,
                    error: Some(e.msg),
                };
            }
            Err(p) => {
                // A panic mid-quantum: the runner may be torn
                // (poisoning latch set). Flush losses from the
                // supervisor side — the in-run bracket never got to —
                // then restore or escalate.
                let msg = panic_msg(p);
                tm::SIM_POISONED_SESSIONS.incr();
                if let Some(e) = ecl_telemetry::event("error") {
                    e.u64("instant", runner.now())
                        .u64("session", spec.id)
                        .str("kind", "panic")
                        .str("msg", &msg)
                        .emit();
                }
                runner.emit_losses();
                attempt += 1;
                if attempt > cfg.restart.max_retries {
                    return escalate(
                        runner,
                        monitors,
                        run,
                        &spec,
                        &msg,
                        restarts,
                        backoff_total,
                        pressure,
                    );
                }
                restart(
                    &mut runner,
                    &mut monitors,
                    &mut cursor,
                    &ckpt,
                    &cfg.restart,
                    spec.id,
                    attempt,
                    &mut restarts,
                    &mut backoff_total,
                );
            }
        }
    }
}

/// Restore the last checkpoint after a seeded backoff sleep.
#[allow(clippy::too_many_arguments)]
fn restart(
    runner: &mut AsyncRunner,
    monitors: &mut Vec<Monitor>,
    cursor: &mut usize,
    ckpt: &SessionCkpt,
    policy: &RestartPolicy,
    session: u64,
    attempt: u32,
    restarts: &mut u32,
    backoff_total: &mut u64,
) {
    let ticks = policy.backoff_ticks(session, attempt);
    *backoff_total += ticks;
    std::thread::sleep(Duration::from_micros(ticks));
    runner
        .restore(&ckpt.snap)
        .expect("restore into the runner the snapshot came from");
    *monitors = ckpt.monitors.clone();
    *cursor = ckpt.cursor;
    *restarts += 1;
    tm::FLEET_RESTARTS.incr();
}

/// The restart budget is spent: conclude what the monitors can still
/// say (`Inconclusive`, never `Pass`) and mark the session `Failed`.
#[allow(clippy::too_many_arguments)]
fn escalate(
    mut runner: AsyncRunner,
    monitors: Vec<Monitor>,
    run: ecl_telemetry::Run,
    spec: &SessionSpec,
    msg: &str,
    restarts: u32,
    backoff_ticks: u64,
    pressure: Pressure,
) -> SessionReport {
    tm::FLEET_FAILED.incr();
    let instants = runner.now();
    let report = MonitorReport::conclude_inconclusive(monitors, instants, msg);
    run.end(instants);
    SessionReport {
        id: spec.id,
        status: SessionStatus::Failed,
        report: Some(report),
        trace: runner.take_trace(),
        counts: runner.counts(),
        events_lost: runner.kernel().events_lost,
        instants,
        restarts,
        backoff_ticks,
        pressure,
        error: Some(msg.to_string()),
    }
}

/// Drive up to `checkpoint_every` instants (the whole remaining
/// stream when 0). Mirrors `Runner::run_events`' id fast path, plus
/// the fleet's degradation hooks: the `kill_due` fault site panics at
/// its chosen instant boundary, span summaries are shed at
/// [`Pressure::ShedSpans`], and monitors run on a stride at
/// [`Pressure::SampleMonitors`].
fn run_quantum(
    runner: &mut AsyncRunner,
    monitors: &mut [Monitor],
    spec: &SessionSpec,
    cfg: &FleetConfig,
    cursor: &mut usize,
    pressure: Pressure,
) -> Result<Step, SimError> {
    let quantum = if cfg.checkpoint_every == 0 {
        usize::MAX
    } else {
        cfg.checkpoint_every as usize
    };
    let stride = if pressure >= Pressure::SampleMonitors {
        cfg.monitor_sample.max(1)
    } else {
        1
    };
    let spans = ecl_telemetry::enabled() && pressure < Pressure::ShedSpans;
    let span_from = runner.now();
    let span_t0 = spans.then(std::time::Instant::now);

    let mut ev_bits = BitSet::new();
    let mut present = BitSet::new();
    let mut in_quantum = 0usize;
    while *cursor < spec.events.len() && in_quantum < quantum {
        let instant = runner.now();
        if ecl_faults::kill_due(spec.id, instant) {
            panic!(
                "ecl-faults: session {} killed at instant {instant}",
                spec.id
            );
        }
        let ev = &spec.events[*cursor];
        ev_bits.clear();
        for (name, v) in &ev.valued {
            let Some(id) = runner.sig_table().lookup(name) else {
                return Err(SimError::eval(format!("no task reads signal `{name}`")));
            };
            runner.set_input_i64_id(id, *v)?;
            ev_bits.insert(id.bit());
        }
        for name in ev.pure.iter() {
            if let Some(id) = runner.sig_table().lookup(name) {
                ev_bits.insert(id.bit());
            }
        }
        runner.instant_ids(&ev_bits, &mut present)?;
        present.union_with(&ev_bits);
        if instant.is_multiple_of(stride) {
            let table = Arc::clone(runner.sig_table());
            for m in monitors.iter_mut() {
                m.step_ids(instant, &present, &table);
            }
        }
        *cursor += 1;
        in_quantum += 1;
    }

    // One span summary per quantum (sub-cadence of the solo runners'
    // `span_every`; shed under pressure).
    if spans {
        if let Some(e) = ecl_telemetry::event("span") {
            let window_ns = span_t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
            e.u64("from", span_from)
                .u64("to", runner.now())
                .u64("window_ns", window_ns)
                .u64("session", runner.session())
                .emit();
        }
    }

    Ok(if *cursor >= spec.events.len() {
        Step::Done
    } else {
        Step::More
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_core::Compiler;
    use ecl_observe::synthesize_all;

    /// Serialize tests that install a process-global fault plan.
    static FAULT_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    const SRC: &str = "
        module a(input pure i, output pure m) { while (1) { await (i); emit (m); } }
        module b(input pure m, output pure o) { while (1) { await (m); emit (o); } }
        module top(input pure i, output pure o) {
          signal pure mid;
          par { a(i, mid); b(mid, o); }
        }
        observer relay_latency(input pure i, input pure o) {
          whenever (i) expect (o) within 2;
        }";

    fn design() -> Design {
        Compiler::default().compile_str(SRC, "top").unwrap()
    }

    fn specs() -> Vec<Arc<MonitorSpec>> {
        let prog = ecl_syntax::parse_str(SRC).unwrap();
        synthesize_all(&prog).unwrap()
    }

    fn events(n: usize) -> Arc<Vec<InstantEvents>> {
        Arc::new(
            (0..n)
                .map(|k| InstantEvents {
                    pure: if k % 3 == 1 { vec!["i".into()] } else { vec![] },
                    valued: vec![],
                })
                .collect(),
        )
    }

    fn spec_for(id: u64, n: usize) -> SessionSpec {
        SessionSpec {
            id,
            events: events(n),
            specs: specs(),
            trace_capacity: Some(0),
        }
    }

    #[test]
    fn fleet_finishes_all_sessions_and_matches_solo_run() {
        let _g = locked();
        let sup = Supervisor::new(
            vec![design()],
            &Default::default(),
            FleetConfig {
                shards: 2,
                checkpoint_every: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let rep = sup.run((0..4).map(|id| spec_for(id + 1, 30)).collect());
        assert_eq!(rep.health.finished, 4);
        assert_eq!(rep.health.restarts, 0);
        let solo = ecl_observe::check_async(vec![design()], &events(30), &specs(), 0).unwrap();
        for s in &rep.sessions {
            assert_eq!(s.status, SessionStatus::Finished);
            let r = s.report.as_ref().unwrap();
            assert!(r.all_pass(), "{r:?}");
            assert_eq!(
                s.trace.as_ref().unwrap().to_vcd("t"),
                solo.trace.to_vcd("t"),
                "session {} trace diverged from the solo run",
                s.id
            );
        }
    }

    #[test]
    fn admission_refusal_and_pressure_ladder() {
        let _g = locked();
        let sup = Supervisor::new(
            vec![design()],
            &Default::default(),
            FleetConfig {
                shards: 1,
                queue_cap: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let rep = sup.run((0..4).map(|id| spec_for(id + 1, 12)).collect());
        assert_eq!(rep.health.admitted, 2);
        assert_eq!(rep.health.rejected, 2);
        // Session 1 admitted at occupancy 0/2 (nominal); session 2 at
        // 1/2 — the first rung sheds its trace.
        assert_eq!(rep.sessions[0].pressure, Pressure::Nominal);
        assert!(rep.sessions[0].trace.is_some());
        assert_eq!(rep.sessions[1].pressure, Pressure::ShedTrace);
        assert!(rep.sessions[1].trace.is_none());
        assert_eq!(rep.sessions[2].status, SessionStatus::Rejected);
        assert_eq!(rep.sessions[3].status, SessionStatus::Rejected);
        // Degraded sessions still conclude real verdicts.
        assert!(rep.sessions[1].report.as_ref().unwrap().all_pass());
    }

    #[test]
    fn killed_session_restarts_and_converges() {
        let _g = locked();
        let plan = ecl_faults::FaultPlan {
            seed: 11,
            kill_session: 1.0,
            kill_within: 20,
            ..Default::default()
        };
        ecl_faults::install(plan);
        let sup = Supervisor::new(
            vec![design()],
            &Default::default(),
            FleetConfig {
                shards: 1,
                checkpoint_every: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let rep = sup.run(vec![spec_for(7, 30)]);
        let _ = ecl_faults::uninstall();
        let s = &rep.sessions[0];
        assert_eq!(s.status, SessionStatus::Finished, "{:?}", s.error);
        assert_eq!(s.restarts, 1, "exactly one kill, one restore");
        assert!(s.backoff_ticks > 0);
        // Convergence: the restarted run ends byte-identical to an
        // unfaulted solo run.
        let solo = ecl_observe::check_async(vec![design()], &events(30), &specs(), 0).unwrap();
        assert_eq!(
            s.trace.as_ref().unwrap().to_vcd("t"),
            solo.trace.to_vcd("t")
        );
        assert!(s.report.as_ref().unwrap().all_pass());
        assert_eq!(s.counts, solo_counts(&events(30)));
    }

    /// Emission counts of an unfaulted solo run.
    fn solo_counts(ev: &[InstantEvents]) -> HashMap<String, u64> {
        let mut r = AsyncRunner::new(
            vec![design()],
            &Default::default(),
            CostParams::default(),
            KernelParams::default(),
        )
        .unwrap();
        r.run_events(ev, |_, _| {}).unwrap();
        r.counts()
    }

    #[test]
    fn deterministic_failure_escalates_after_retry_budget() {
        let _g = locked();
        let sup = Supervisor::new(
            vec![design()],
            &Default::default(),
            FleetConfig {
                shards: 1,
                restart: RestartPolicy {
                    max_retries: 2,
                    base_ticks: 1,
                    max_ticks: 4,
                    seed: 3,
                },
                // Trips on the first instant, every attempt.
                watchdog: Some(WatchdogBudget {
                    max_nodes: Some(0),
                    ..Default::default()
                }),
                ..Default::default()
            },
        )
        .unwrap();
        let rep = sup.run(vec![spec_for(9, 10)]);
        let s = &rep.sessions[0];
        assert_eq!(s.status, SessionStatus::Failed);
        assert_eq!(s.restarts, 2, "budget of 2 retries spent");
        assert!(rep.health.failed == 1);
        let r = s.report.as_ref().unwrap();
        assert!(r.any_inconclusive(), "{r:?}");
    }

    #[test]
    fn backoff_is_seeded_exponential_with_jitter() {
        let p = RestartPolicy {
            max_retries: 5,
            base_ticks: 8,
            max_ticks: 64,
            seed: 42,
        };
        let a1 = p.backoff_ticks(1, 1);
        let a2 = p.backoff_ticks(1, 2);
        let a4 = p.backoff_ticks(1, 4);
        assert!((8..16).contains(&a1), "{a1}");
        assert!((16..32).contains(&a2), "{a2}");
        assert!((64..128).contains(&a4), "capped at max_ticks: {a4}");
        // Deterministic, and decorrelated across sessions.
        assert_eq!(a1, p.backoff_ticks(1, 1));
        assert_ne!(a1, p.backoff_ticks(2, 1));
    }
}
