//! Kernel Esterel: IR, constructive interpreter, and EFSM compilation.
//!
//! The ECL compiler (paper Section 3) translates the reactive part of an
//! ECL program into Esterel and relies on "the native Esterel compiler"
//! to produce an extended FSM. This crate is that substrate, built from
//! scratch:
//!
//! * [`ir`] — the kernel statements (`nothing`, `pause`, `emit`,
//!   `present`, sequence, `loop`, parallel, `trap`/`exit`, `suspend`)
//!   plus the two *data* extension points the ECL splitter needs
//!   (`Action` and `IfData` with opaque ids), and builders for the
//!   derived forms used by ECL (`halt`, `await`, `abort`, `weak_abort`,
//!   `suspend`, with optional handlers);
//! * [`interp`] — a reference interpreter implementing the constructive
//!   semantics: three-valued signal statuses, Must-execution with
//!   Can-based absence inference, exact-once data actions;
//! * [`compile`] — compilation to an [`efsm::Efsm`]: reachable control
//!   states are sets of active pause points, and each state's reaction
//!   is explored path-by-path into a POLIS-style s-graph (inputs become
//!   `Test` nodes, data predicates `TestPred` nodes; local signals are
//!   resolved by guess-and-check and compiled away).
//!
//! Completion codes follow Berry: `0` terminated, `1` paused, `k ≥ 2`
//! exit of the trap at depth `k − 2`.
//!
//! # Example
//!
//! ```
//! use esterel::ir::{ProgramBuilder, Stmt};
//! let mut b = ProgramBuilder::new("abro_lite");
//! let a = b.input("a");
//! let o = b.output("o");
//! // loop { await a; emit o }
//! let body = Stmt::loop_(Stmt::seq(vec![Stmt::await_(a.into()), Stmt::emit(o)]));
//! let prog = b.finish(body).unwrap();
//! let efsm = esterel::compile::compile(&prog, &Default::default()).unwrap();
//! assert!(efsm.states.len() >= 2);
//! ```

pub mod compile;
mod engine;
pub mod interp;
pub mod ir;

pub use compile::{compile, CompileError, CompileOptions};
pub use interp::{Machine, Reaction, RuntimeError};
pub use ir::{Program, ProgramBuilder, SigExpr, Stmt};
