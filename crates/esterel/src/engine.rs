//! Shared single-instant execution engine.
//!
//! Both the constructive interpreter ([`crate::interp`]) and the EFSM
//! compiler ([`crate::compile`]) need to execute one synchronous instant
//! over the frozen program tree. The control skeleton (sequencing,
//! parallel synchronization with max-codes, traps, suspension, pause
//! selection/resumption) is identical; what differs is how signal
//! statuses, data predicates, actions and emissions are resolved. That
//! difference is abstracted behind the [`Sem`] trait.
//!
//! The engine is *restartable*: a pass that cannot resolve a signal test
//! returns [`ExecOut::Blocked`] and the driver re-runs the pass after
//! refining its knowledge. Drivers guarantee exactly-once data effects
//! across re-runs by keying on `(node, occurrence)` — the traversal is
//! deterministic, so the k-th visit of a node is the same logical visit
//! in every pass.

use crate::ir::{Node, Program, SigExpr, StmtId, Tri};
use efsm::{ActionId, BitSet, ExprId, PredId, Signal};
use std::collections::HashMap;

/// Resolution callbacks for one instant.
pub trait Sem {
    /// Current status of a signal (may be refined between passes).
    fn status(&mut self, s: Signal) -> Tri;
    /// Called when a test cannot be decided because `s` is unknown.
    fn blocked_on(&mut self, s: Signal);
    /// Evaluate a data predicate at `(node, occurrence)`. `None` means
    /// the run must block/fork (compiler); the interpreter always
    /// answers.
    fn pred(&mut self, at: (StmtId, u32), p: PredId) -> Option<bool>;
    /// Execute a data action at `(node, occurrence)` (exactly once per
    /// instant — implementations use the key to deduplicate re-runs).
    fn action(&mut self, at: (StmtId, u32), a: ActionId);
    /// Emit a signal. Returning `false` aborts the run as inconsistent
    /// (used by the compiler's guess-and-check on internal signals).
    fn emit(&mut self, at: (StmtId, u32), s: Signal, value: Option<ExprId>) -> bool;
}

/// Result of one execution pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecOut {
    /// The pass completed with Berry completion `code` and the set of
    /// pause points active for the next instant.
    Done {
        /// Completion code: 0 terminated, 1 paused, k≥2 exit.
        code: u32,
        /// Pauses selected for the next instant.
        pauses: BitSet,
    },
    /// A signal test could not be decided ([`Sem::blocked_on`] was
    /// called with the culprit).
    Blocked,
    /// The run is inconsistent (guess-and-check failure) or the
    /// program misbehaved dynamically.
    Failed(ExecFailure),
}

/// Why a pass failed hard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecFailure {
    /// A loop body terminated instantaneously twice (should be caught
    /// statically; kept as a dynamic backstop).
    InstantaneousLoop,
    /// An emission contradicted an assumed-absent signal.
    InconsistentEmission(Signal),
}

/// One execution pass over the program.
pub struct Engine<'p, S: Sem> {
    prog: &'p Program,
    /// Selection (active pauses) from the previous instant.
    sel: &'p BitSet,
    /// Per-node visit counters for this pass.
    occ: HashMap<StmtId, u32>,
    /// The driver's resolution strategy.
    pub sem: S,
}

impl<'p, S: Sem> Engine<'p, S> {
    /// Create an engine for one pass.
    pub fn new(prog: &'p Program, sel: &'p BitSet, sem: S) -> Self {
        Engine {
            prog,
            sel,
            occ: HashMap::new(),
            sem,
        }
    }

    fn next_occ(&mut self, id: StmtId) -> u32 {
        let c = self.occ.entry(id).or_insert(0);
        let v = *c;
        *c += 1;
        v
    }

    /// Evaluate a signal expression three-valued. On Unknown, the first
    /// relevant unknown signal is reported via [`Sem::blocked_on`]; the
    /// implementation may *resolve* it there (the compiler's oracle), in
    /// which case evaluation retries. If the status stays unknown the
    /// test blocks.
    fn eval_expr(&mut self, e: &SigExpr) -> Option<bool> {
        loop {
            match eval3_with(e, &mut self.sem) {
                Tri::True => return Some(true),
                Tri::False => return Some(false),
                Tri::Unknown => {
                    let s = first_unknown_with(e, &mut self.sem)?;
                    self.sem.blocked_on(s);
                    if self.sem.status(s) == Tri::Unknown {
                        return None;
                    }
                }
            }
        }
    }

    /// Execute node `id`; `start` selects start vs. resume mode.
    pub fn exec(&mut self, id: StmtId, start: bool) -> ExecOut {
        use ExecOut::*;
        match self.prog.node(id).clone() {
            Node::Nothing => Done {
                code: 0,
                pauses: BitSet::new(),
            },
            Node::Pause(p) => {
                if start {
                    let mut b = BitSet::new();
                    b.insert(p as usize);
                    Done { code: 1, pauses: b }
                } else {
                    // Resumed ⇒ this pause was selected ⇒ it terminates.
                    Done {
                        code: 0,
                        pauses: BitSet::new(),
                    }
                }
            }
            Node::Emit(s, value) => {
                let occ = self.next_occ(id);
                if self.sem.emit((id, occ), s, value) {
                    Done {
                        code: 0,
                        pauses: BitSet::new(),
                    }
                } else {
                    Failed(ExecFailure::InconsistentEmission(s))
                }
            }
            Node::Present(cond, t, e) => {
                if start {
                    match self.eval_expr(&cond) {
                        Some(true) => self.exec(t, true),
                        Some(false) => self.exec(e, true),
                        None => Blocked,
                    }
                } else {
                    // Resume the branch holding the selection; the test
                    // is not re-evaluated.
                    if self.prog.selected(t, self.sel) {
                        self.exec(t, false)
                    } else {
                        self.exec(e, false)
                    }
                }
            }
            Node::IfData(p, t, e) => {
                if start {
                    let occ = self.next_occ(id);
                    match self.sem.pred((id, occ), p) {
                        Some(true) => self.exec(t, true),
                        Some(false) => self.exec(e, true),
                        None => Blocked,
                    }
                } else if self.prog.selected(t, self.sel) {
                    self.exec(t, false)
                } else {
                    self.exec(e, false)
                }
            }
            Node::Action(a) => {
                let occ = self.next_occ(id);
                self.sem.action((id, occ), a);
                Done {
                    code: 0,
                    pauses: BitSet::new(),
                }
            }
            Node::Seq(children) => {
                let mut idx = 0;
                let mut mode_start = start;
                if !start {
                    // Find the child holding the selection.
                    match children
                        .iter()
                        .position(|c| self.prog.selected(*c, self.sel))
                    {
                        Some(i) => idx = i,
                        None => {
                            // Selection vanished (should not happen).
                            return Done {
                                code: 0,
                                pauses: BitSet::new(),
                            };
                        }
                    }
                    mode_start = false;
                }
                while idx < children.len() {
                    match self.exec(children[idx], mode_start) {
                        Done { code: 0, .. } => {
                            idx += 1;
                            mode_start = true;
                        }
                        other => return other,
                    }
                }
                Done {
                    code: 0,
                    pauses: BitSet::new(),
                }
            }
            Node::Loop(body) => {
                let first = self.exec(body, start);
                match first {
                    Done { code: 0, .. } => {
                        // Body finished within the instant: restart once.
                        match self.exec(body, true) {
                            Done { code: 0, .. } => Failed(ExecFailure::InstantaneousLoop),
                            other => other,
                        }
                    }
                    other => other,
                }
            }
            Node::Par(children) => {
                let mut blocked = false;
                let mut code = 0u32;
                let mut pauses = BitSet::new();
                for c in children {
                    let child_out = if start {
                        self.exec(c, true)
                    } else if self.prog.selected(c, self.sel) {
                        self.exec(c, false)
                    } else {
                        // Terminated in an earlier instant.
                        Done {
                            code: 0,
                            pauses: BitSet::new(),
                        }
                    };
                    match child_out {
                        Done {
                            code: c2,
                            pauses: p2,
                        } => {
                            code = code.max(c2);
                            pauses.union_with(&p2);
                        }
                        Blocked => blocked = true,
                        Failed(f) => return Failed(f),
                    }
                }
                if blocked {
                    Blocked
                } else {
                    Done { code, pauses }
                }
            }
            Node::Trap(body) => match self.exec(body, start) {
                Done { code: 2, .. } => Done {
                    // Caught: the whole body is killed, pauses dropped.
                    code: 0,
                    pauses: BitSet::new(),
                },
                Done { code, pauses } if code > 2 => Done {
                    code: code - 1,
                    pauses,
                },
                other => other,
            },
            Node::Exit(d) => Done {
                code: d + 2,
                pauses: BitSet::new(),
            },
            Node::Suspend(guard, body) => {
                if start {
                    // The guard is not tested in the starting instant.
                    self.exec(body, true)
                } else {
                    match self.eval_expr(&guard) {
                        Some(true) => {
                            // Frozen: keep the body's current selection.
                            let m = self.prog.meta(body);
                            let mut kept = BitSet::new();
                            for b in self.sel.iter() {
                                if b >= m.pause_lo as usize && b < m.pause_hi as usize {
                                    kept.insert(b);
                                }
                            }
                            Done {
                                code: 1,
                                pauses: kept,
                            }
                        }
                        Some(false) => self.exec(body, false),
                        None => Blocked,
                    }
                }
            }
        }
    }
}

/// Evaluate three-valued against [`Sem::status`].
fn eval3_with<S: Sem>(e: &SigExpr, sem: &mut S) -> Tri {
    match e {
        SigExpr::Const(true) => Tri::True,
        SigExpr::Const(false) => Tri::False,
        SigExpr::Sig(s) => sem.status(*s),
        SigExpr::Not(x) => eval3_with(x, sem).not(),
        SigExpr::And(a, b) => eval3_with(a, sem).and(eval3_with(b, sem)),
        SigExpr::Or(a, b) => eval3_with(a, sem).or(eval3_with(b, sem)),
    }
}

/// First unknown signal that matters for `e`'s value.
fn first_unknown_with<S: Sem>(e: &SigExpr, sem: &mut S) -> Option<Signal> {
    if eval3_with(e, sem) != Tri::Unknown {
        return None;
    }
    match e {
        SigExpr::Const(_) => None,
        SigExpr::Sig(s) => (sem.status(*s) == Tri::Unknown).then_some(*s),
        SigExpr::Not(x) => first_unknown_with(x, sem),
        SigExpr::And(a, b) | SigExpr::Or(a, b) => {
            first_unknown_with(a, sem).or_else(|| first_unknown_with(b, sem))
        }
    }
}

/// Suppress unused warnings for ids used only through trait calls.
#[allow(dead_code)]
fn _phantom(_: ActionId, _: PredId) {}
