//! Constructive reference interpreter.
//!
//! Executes one instant at a time: inputs are fully known, outputs and
//! locals start [`Tri::Unknown`] and are refined monotonically. Each
//! pass runs the shared engine; when it blocks on an unknown signal, the
//! driver runs a *Can* (potential) analysis over the whole program — if
//! no potential execution can emit the signal, it is set absent and the
//! pass restarts. Failure to make progress means the program is not
//! constructive (e.g. `present S else emit S`).
//!
//! Data effects (actions, predicate evaluations, valued emissions) are
//! journaled by `(node, occurrence)` so that restarts never re-execute
//! them — see `engine.rs` for why that key is stable. They resolve
//! through the same [`DataHooks`] ids the compiled EFSM uses, so the
//! runtime's data backend (the register bytecode VM, or its
//! tree-walker under `Backend::Walker`) accelerates this interpreter
//! and the compiled machine identically — one journal entry per hook
//! call either way.

use crate::engine::{Engine, ExecFailure, ExecOut, Sem};
use crate::ir::{Node, Program, SigExpr, StmtId, Tri};
use efsm::{ActionId, BitSet, DataHooks, ExprId, PredId, SigKind, Signal};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Error raised while executing an instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// No execution order can resolve these signals (causality cycle).
    NonConstructive {
        /// The signals still unknown when progress stopped.
        unresolved: Vec<Signal>,
    },
    /// A loop body completed twice in one instant.
    InstantaneousLoop,
    /// An emission contradicted an inferred absence — this indicates a
    /// bug in the Can analysis and is surfaced loudly.
    CausalityViolation(Signal),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NonConstructive { unresolved } => {
                write!(
                    f,
                    "program is not constructive; unresolved signals: {unresolved:?}"
                )
            }
            RuntimeError::InstantaneousLoop => write!(f, "loop body ran twice in one instant"),
            RuntimeError::CausalityViolation(s) => {
                write!(f, "signal {s:?} emitted after being inferred absent")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// The outcome of one instant.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Reaction {
    /// Signals emitted this instant, in emission order (no duplicates).
    pub emitted: Vec<Signal>,
    /// True when the program terminated (or was already dead).
    pub terminated: bool,
}

impl Reaction {
    /// Whether `s` was emitted this instant.
    pub fn has(&self, s: Signal) -> bool {
        self.emitted.contains(&s)
    }
}

/// Journal entries carried across passes within one instant.
#[derive(Debug, Clone, PartialEq)]
enum Journal {
    ActionDone,
    Pred(bool),
    EmitDone,
}

/// The interpreter: program + current selection.
#[derive(Debug)]
pub struct Machine<'p> {
    prog: &'p Program,
    sel: BitSet,
    started: bool,
    dead: bool,
    /// Count of constructive fixpoint passes over the lifetime (metric).
    pub passes: u64,
    /// Unknown-signal count after the previous pass (progress check).
    last_unknowns: usize,
}

/// Per-pass semantics implementation for the interpreter.
struct InterpSem<'a, 'h> {
    status: &'a mut Vec<Tri>,
    order: &'a mut Vec<Signal>,
    journal: &'a mut HashMap<(StmtId, u32), Journal>,
    hooks: &'a mut (dyn DataHooks + 'h),
    violated: &'a mut Option<Signal>,
}

impl<'a, 'h> Sem for InterpSem<'a, 'h> {
    fn status(&mut self, s: Signal) -> Tri {
        self.status[s.0 as usize]
    }

    fn blocked_on(&mut self, _s: Signal) {}

    fn pred(&mut self, at: (StmtId, u32), p: PredId) -> Option<bool> {
        if let Some(Journal::Pred(v)) = self.journal.get(&at) {
            return Some(*v);
        }
        let v = self.hooks.eval_pred(p);
        self.journal.insert(at, Journal::Pred(v));
        Some(v)
    }

    fn action(&mut self, at: (StmtId, u32), a: ActionId) {
        if self.journal.contains_key(&at) {
            return;
        }
        self.hooks.run_action(a);
        self.journal.insert(at, Journal::ActionDone);
    }

    fn emit(&mut self, at: (StmtId, u32), s: Signal, value: Option<ExprId>) -> bool {
        match self.status[s.0 as usize] {
            Tri::False => {
                // Can said this could never be emitted: internal bug.
                *self.violated = Some(s);
                return false;
            }
            Tri::True | Tri::Unknown => {}
        }
        self.status[s.0 as usize] = Tri::True;
        if !self.journal.contains_key(&at) {
            if let Some(e) = value {
                self.hooks.emit_value(s, e);
            }
            if !self.order.contains(&s) {
                self.order.push(s);
            }
            self.journal.insert(at, Journal::EmitDone);
        }
        true
    }
}

impl<'p> Machine<'p> {
    /// Create a machine at the program's initial (not yet started) state.
    pub fn new(prog: &'p Program) -> Self {
        Machine {
            prog,
            sel: BitSet::new(),
            started: false,
            dead: false,
            passes: 0,
            last_unknowns: usize::MAX,
        }
    }

    /// Has the program terminated?
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// The current selection (active pause points).
    pub fn selection(&self) -> &BitSet {
        &self.sel
    }

    /// Run one instant with `inputs` present.
    ///
    /// Compatibility wrapper over [`Machine::react_set`], the
    /// bitset-native entry point.
    ///
    /// # Errors
    ///
    /// See [`Machine::react_set`].
    pub fn react(
        &mut self,
        inputs: &HashSet<Signal>,
        hooks: &mut dyn DataHooks,
    ) -> Result<Reaction, RuntimeError> {
        let present: BitSet = inputs.iter().map(|s| s.0 as usize).collect();
        self.react_set(&present, hooks)
    }

    /// Run one instant with the signals of `inputs` (a presence set
    /// over this program's signal indices) present.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::NonConstructive`] when signal statuses cannot be
    /// resolved; [`RuntimeError::InstantaneousLoop`] as a dynamic
    /// backstop for the static loop check.
    pub fn react_set(
        &mut self,
        inputs: &BitSet,
        hooks: &mut dyn DataHooks,
    ) -> Result<Reaction, RuntimeError> {
        if self.dead {
            return Ok(Reaction {
                emitted: vec![],
                terminated: true,
            });
        }
        let n = self.prog.signals().len();
        let mut status: Vec<Tri> = (0..n)
            .map(|i| {
                let info = &self.prog.signals()[i];
                if info.kind == SigKind::Input {
                    if inputs.contains(i) {
                        Tri::True
                    } else {
                        Tri::False
                    }
                } else {
                    Tri::Unknown
                }
            })
            .collect();
        let mut order: Vec<Signal> = Vec::new();
        let mut journal: HashMap<(StmtId, u32), Journal> = HashMap::new();
        let start = !self.started;
        self.last_unknowns = usize::MAX;

        loop {
            self.passes += 1;
            let mut violated = None;
            let sem = InterpSem {
                status: &mut status,
                order: &mut order,
                journal: &mut journal,
                hooks,
                violated: &mut violated,
            };
            let mut engine = Engine::new(self.prog, &self.sel, sem);
            let out = engine.exec(self.prog.root(), start);
            match out {
                ExecOut::Done { code, pauses } => {
                    self.started = true;
                    self.sel = pauses.normalized();
                    self.dead = code == 0 || self.sel.is_empty();
                    return Ok(Reaction {
                        emitted: order,
                        terminated: self.dead,
                    });
                }
                ExecOut::Failed(ExecFailure::InstantaneousLoop) => {
                    return Err(RuntimeError::InstantaneousLoop)
                }
                ExecOut::Failed(ExecFailure::InconsistentEmission(s)) => {
                    return Err(RuntimeError::CausalityViolation(violated.unwrap_or(s)))
                }
                ExecOut::Blocked => {
                    // The pass itself may have made progress (an
                    // emission resolved a signal another branch was
                    // waiting on): count unknowns across passes.
                    let unknowns = status.iter().filter(|s| **s == Tri::Unknown).count();
                    let mut progress = unknowns < self.last_unknowns;
                    self.last_unknowns = unknowns;
                    // Can-based absence inference.
                    let can = self.can_root(&status, &journal, start);
                    #[allow(clippy::needless_range_loop)]
                    for i in 0..n {
                        if status[i] == Tri::Unknown && !can.emits.contains(i) {
                            status[i] = Tri::False;
                            self.last_unknowns -= 1;
                            progress = true;
                        }
                    }
                    if !progress {
                        let unresolved = (0..n)
                            .filter(|i| status[*i] == Tri::Unknown)
                            .map(|i| Signal(i as u32))
                            .collect();
                        return Err(RuntimeError::NonConstructive { unresolved });
                    }
                }
            }
        }
    }

    // -- Can (potential) analysis ---------------------------------------

    fn can_root(
        &self,
        status: &[Tri],
        journal: &HashMap<(StmtId, u32), Journal>,
        start: bool,
    ) -> Can {
        let mut ctx = CanCtx {
            prog: self.prog,
            sel: &self.sel,
            status,
            journal,
        };
        ctx.can(self.prog.root(), start)
    }
}

/// Potential behavior: which signals may still be emitted, which
/// completion codes are possible.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Can {
    emits: BitSet,
    /// Bitmask of possible completion codes.
    codes: u64,
}

impl Can {
    fn terminated() -> Can {
        Can {
            emits: BitSet::new(),
            codes: 1,
        }
    }
}

struct CanCtx<'a> {
    prog: &'a Program,
    sel: &'a BitSet,
    status: &'a [Tri],
    // Journal is used for already-decided predicates at occurrence 0;
    // deeper occurrences conservatively fork both ways.
    journal: &'a HashMap<(StmtId, u32), Journal>,
}

impl<'a> CanCtx<'a> {
    fn eval3(&self, e: &SigExpr) -> Tri {
        e.eval3(&|s: Signal| self.status[s.0 as usize])
    }

    fn can(&mut self, id: StmtId, start: bool) -> Can {
        match self.prog.node(id).clone() {
            Node::Nothing => Can::terminated(),
            Node::Pause(p) => {
                if start {
                    Can {
                        emits: BitSet::new(),
                        codes: 1 << 1,
                    }
                } else if self.sel.contains(p as usize) {
                    Can::terminated()
                } else {
                    // Not selected: no behavior; callers avoid this.
                    Can::terminated()
                }
            }
            Node::Emit(s, _) => {
                let mut emits = BitSet::new();
                emits.insert(s.0 as usize);
                Can { emits, codes: 1 }
            }
            Node::Present(c, t, e) => {
                if start {
                    match self.eval3(&c) {
                        Tri::True => self.can(t, true),
                        Tri::False => self.can(e, true),
                        Tri::Unknown => union(self.can(t, true), self.can(e, true)),
                    }
                } else if self.prog.selected(t, self.sel) {
                    self.can(t, false)
                } else {
                    self.can(e, false)
                }
            }
            Node::IfData(_, t, e) => {
                if start {
                    // If the first occurrence was already decided this
                    // instant, use it; otherwise fork both ways.
                    if let Some(Journal::Pred(v)) = self.journal.get(&(id, 0)) {
                        return self.can(if *v { t } else { e }, true);
                    }
                    union(self.can(t, true), self.can(e, true))
                } else if self.prog.selected(t, self.sel) {
                    self.can(t, false)
                } else {
                    self.can(e, false)
                }
            }
            Node::Action(_) => Can::terminated(),
            Node::Seq(children) => {
                let mut idx = 0;
                let mut mode_start = start;
                if !start {
                    match children
                        .iter()
                        .position(|c| self.prog.selected(*c, self.sel))
                    {
                        Some(i) => idx = i,
                        None => return Can::terminated(),
                    }
                }
                let mut emits = BitSet::new();
                let mut codes = 0u64;
                let mut reachable = true;
                while idx < children.len() {
                    if !reachable {
                        break;
                    }
                    let c = self.can(children[idx], mode_start);
                    emits.union_with(&c.emits);
                    codes |= c.codes & !1;
                    reachable = c.codes & 1 != 0;
                    mode_start = true;
                    idx += 1;
                }
                if reachable {
                    codes |= 1;
                }
                Can { emits, codes }
            }
            Node::Loop(body) => {
                let first = self.can(body, start);
                if first.codes & 1 != 0 {
                    // Body may finish: a second (start-mode) iteration
                    // may also run this instant.
                    let second = self.can(body, true);
                    let mut emits = first.emits;
                    emits.union_with(&second.emits);
                    Can {
                        emits,
                        codes: (first.codes & !1) | (second.codes & !1),
                    }
                } else {
                    first
                }
            }
            Node::Par(children) => {
                let mut emits = BitSet::new();
                let mut codes = 1u64; // neutral element {0}
                for c in children {
                    let child = if start {
                        self.can(c, true)
                    } else if self.prog.selected(c, self.sel) {
                        self.can(c, false)
                    } else {
                        Can::terminated()
                    };
                    emits.union_with(&child.emits);
                    codes = max_combine(codes, child.codes);
                }
                Can { emits, codes }
            }
            Node::Trap(body) => {
                let c = self.can(body, start);
                let mut codes = c.codes & 0b11;
                if c.codes & (1 << 2) != 0 {
                    codes |= 1;
                }
                codes |= (c.codes >> 3) << 2;
                Can {
                    emits: c.emits,
                    codes,
                }
            }
            Node::Exit(d) => Can {
                emits: BitSet::new(),
                codes: 1 << (d + 2).min(62),
            },
            Node::Suspend(guard, body) => {
                if start {
                    self.can(body, true)
                } else {
                    match self.eval3(&guard) {
                        Tri::True => Can {
                            emits: BitSet::new(),
                            codes: 1 << 1,
                        },
                        Tri::False => self.can(body, false),
                        Tri::Unknown => union(
                            Can {
                                emits: BitSet::new(),
                                codes: 1 << 1,
                            },
                            self.can(body, false),
                        ),
                    }
                }
            }
        }
    }
}

fn union(a: Can, b: Can) -> Can {
    let mut emits = a.emits;
    emits.union_with(&b.emits);
    Can {
        emits,
        codes: a.codes | b.codes,
    }
}

/// Max-combination of two completion-code sets (parallel rule).
fn max_combine(a: u64, b: u64) -> u64 {
    let mut out = 0u64;
    for i in 0..63 {
        if a & (1 << i) == 0 {
            continue;
        }
        for j in 0..63 {
            if b & (1 << j) != 0 {
                out |= 1 << i.max(j);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ProgramBuilder, Stmt};
    use efsm::NoHooks;

    fn react(m: &mut Machine<'_>, present: &[Signal]) -> Reaction {
        let set: HashSet<Signal> = present.iter().copied().collect();
        m.react(&set, &mut NoHooks).expect("constructive")
    }

    #[test]
    fn await_is_delayed() {
        let mut b = ProgramBuilder::new("t");
        let a = b.input("a");
        let o = b.output("o");
        let p = b
            .finish(Stmt::seq(vec![Stmt::await_(a.into()), Stmt::emit(o)]))
            .unwrap();
        let mut m = Machine::new(&p);
        // Instant 0: a present — but await starts this instant, so it
        // must NOT fire (paper: "some later instant").
        let r0 = react(&mut m, &[a]);
        assert!(r0.emitted.is_empty());
        assert!(!r0.terminated);
        // Instant 1: a present → fires, o emitted, program terminates.
        let r1 = react(&mut m, &[a]);
        assert_eq!(r1.emitted, vec![o]);
        assert!(r1.terminated);
        // Dead afterwards.
        let r2 = react(&mut m, &[a]);
        assert!(r2.emitted.is_empty());
        assert!(r2.terminated);
    }

    #[test]
    fn await_immediate_fires_in_first_instant() {
        let mut b = ProgramBuilder::new("t");
        let a = b.input("a");
        let o = b.output("o");
        let p = b
            .finish(Stmt::seq(vec![
                Stmt::await_immediate(a.into()),
                Stmt::emit(o),
            ]))
            .unwrap();
        let mut m = Machine::new(&p);
        let r0 = react(&mut m, &[a]);
        assert_eq!(r0.emitted, vec![o]);
    }

    #[test]
    fn abro_kernel() {
        // The classic ABRO: await a || await b; emit o, reset by r.
        let mut bld = ProgramBuilder::new("abro");
        let a = bld.input("a");
        let b = bld.input("b");
        let r = bld.input("r");
        let o = bld.output("o");
        let body = Stmt::loop_(Stmt::seq(vec![
            Stmt::abort(
                Stmt::seq(vec![
                    Stmt::par(vec![Stmt::await_(a.into()), Stmt::await_(b.into())]),
                    Stmt::emit(o),
                    Stmt::halt(),
                ]),
                r.into(),
            ),
            // abort terminates when r occurs; loop needs non-instant path:
        ]));
        let p = bld.finish(body).unwrap();
        let mut m = Machine::new(&p);
        // Start.
        assert!(react(&mut m, &[]).emitted.is_empty());
        // a then b → o.
        assert!(react(&mut m, &[a]).emitted.is_empty());
        assert_eq!(react(&mut m, &[b]).emitted, vec![o]);
        // Nothing more until reset.
        assert!(react(&mut m, &[a, b]).emitted.is_empty());
        // Reset restarts the awaits (delayed: they watch from the next
        // instant), so a+b together right after the reset fire them.
        assert!(react(&mut m, &[r]).emitted.is_empty());
        assert_eq!(react(&mut m, &[a, b]).emitted, vec![o]);
        assert!(!m.is_dead());
    }

    #[test]
    fn strong_abort_blocks_final_instant() {
        // do { await a; emit o } abort (r): r and a together in a later
        // instant → body frozen, no o.
        let mut bld = ProgramBuilder::new("t");
        let a = bld.input("a");
        let r = bld.input("r");
        let o = bld.output("o");
        let p = bld
            .finish(Stmt::abort(
                Stmt::seq(vec![Stmt::await_(a.into()), Stmt::emit(o)]),
                r.into(),
            ))
            .unwrap();
        let mut m = Machine::new(&p);
        react(&mut m, &[]);
        let rx = react(&mut m, &[a, r]);
        assert!(rx.emitted.is_empty(), "strong abort must block the body");
        assert!(rx.terminated);
    }

    #[test]
    fn weak_abort_allows_final_instant() {
        let mut bld = ProgramBuilder::new("t");
        let a = bld.input("a");
        let r = bld.input("r");
        let o = bld.output("o");
        let p = bld
            .finish(Stmt::weak_abort(
                Stmt::seq(vec![Stmt::await_(a.into()), Stmt::emit(o)]),
                r.into(),
            ))
            .unwrap();
        let mut m = Machine::new(&p);
        react(&mut m, &[]);
        let rx = react(&mut m, &[a, r]);
        assert_eq!(
            rx.emitted,
            vec![o],
            "weak abort runs the body's last instant"
        );
        assert!(rx.terminated);
    }

    #[test]
    fn abort_handler_runs_only_on_abort() {
        let mut bld = ProgramBuilder::new("t");
        let a = bld.input("a");
        let r = bld.input("r");
        let o = bld.output("o");
        let h = bld.output("h");
        let body = Stmt::abort_handle(
            Stmt::seq(vec![Stmt::await_(a.into()), Stmt::emit(o)]),
            r.into(),
            Stmt::emit(h),
        );
        let p = bld.finish(body).unwrap();
        // Case 1: normal termination (a, no r): no handler.
        let mut m = Machine::new(&p);
        react(&mut m, &[]);
        let rx = react(&mut m, &[a]);
        assert_eq!(rx.emitted, vec![o]);
        // Case 2: aborted (r): handler runs.
        let mut m2 = Machine::new(&p);
        react(&mut m2, &[]);
        let rx2 = react(&mut m2, &[r]);
        assert_eq!(rx2.emitted, vec![h]);
    }

    #[test]
    fn suspend_freezes_body() {
        let mut bld = ProgramBuilder::new("t");
        let s = bld.input("s");
        let o = bld.output("o");
        // suspend { loop { emit o; pause } } when s
        let p = bld
            .finish(Stmt::suspend(s.into(), Stmt::sustain(o)))
            .unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(react(&mut m, &[]).emitted, vec![o]); // start: no test
        assert_eq!(react(&mut m, &[s]).emitted, vec![] as Vec<Signal>); // frozen
        assert_eq!(react(&mut m, &[]).emitted, vec![o]); // resumes
    }

    #[test]
    fn local_signal_broadcast_within_instant() {
        // par { present l then emit o; halt } || { emit l; halt }
        // present is IMMEDIATE: l emitted in the same instant is seen.
        let mut bld = ProgramBuilder::new("t");
        let o = bld.output("o");
        let l = bld.local("l");
        let body = Stmt::par(vec![
            Stmt::seq(vec![
                Stmt::present(l.into(), Stmt::emit(o), Stmt::nothing()),
                Stmt::halt(),
            ]),
            Stmt::seq(vec![Stmt::emit(l), Stmt::halt()]),
        ]);
        let p = bld.finish(body).unwrap();
        let mut m = Machine::new(&p);
        let r = react(&mut m, &[]);
        assert!(r.has(o), "local emission must be visible in-instant");
    }

    #[test]
    fn absence_inferred_constructively() {
        // present l then emit o1 else emit o2 — l never emitted → o2.
        let mut bld = ProgramBuilder::new("t");
        let o1 = bld.output("o1");
        let o2 = bld.output("o2");
        let l = bld.local("l");
        let p = bld
            .finish(Stmt::present(l.into(), Stmt::emit(o1), Stmt::emit(o2)))
            .unwrap();
        let mut m = Machine::new(&p);
        let r = react(&mut m, &[]);
        assert_eq!(r.emitted, vec![o2]);
    }

    #[test]
    fn non_constructive_detected() {
        // present l else emit l — paradox.
        let mut bld = ProgramBuilder::new("t");
        let l = bld.local("l");
        let p = bld
            .finish(Stmt::present(l.into(), Stmt::nothing(), Stmt::emit(l)))
            .unwrap();
        let mut m = Machine::new(&p);
        let err = m.react(&HashSet::new(), &mut NoHooks).unwrap_err();
        assert!(matches!(err, RuntimeError::NonConstructive { .. }));
    }

    #[test]
    fn self_justifying_emission_is_non_constructive() {
        // present l then emit l — logically coherent only with l
        // absent, but *constructively* rejected (textbook example).
        // The EFSM compiler's logical semantics accepts it with the
        // absence-minimal behavior; see DESIGN.md.
        let mut bld = ProgramBuilder::new("t");
        let l = bld.local("l");
        let o = bld.output("o");
        let p = bld
            .finish(Stmt::seq(vec![
                Stmt::present(l.into(), Stmt::emit(l), Stmt::nothing()),
                Stmt::emit(o),
            ]))
            .unwrap();
        let mut m = Machine::new(&p);
        let err = m.react(&HashSet::new(), &mut NoHooks).unwrap_err();
        assert!(matches!(err, RuntimeError::NonConstructive { .. }));
    }

    #[test]
    fn par_exit_kills_sibling() {
        // trap { par { halt } { exit 0 } }; emit o — exits immediately.
        let mut bld = ProgramBuilder::new("t");
        let o = bld.output("o");
        let p = bld
            .finish(Stmt::seq(vec![
                Stmt::trap(Stmt::par(vec![Stmt::halt(), Stmt::exit(0)])),
                Stmt::emit(o),
            ]))
            .unwrap();
        let mut m = Machine::new(&p);
        let r = react(&mut m, &[]);
        assert_eq!(r.emitted, vec![o]);
        assert!(r.terminated);
    }

    #[test]
    fn await_delta_splits_instants() {
        let mut bld = ProgramBuilder::new("t");
        let o = bld.output("o");
        let p = bld
            .finish(Stmt::seq(vec![Stmt::await_delta(), Stmt::emit(o)]))
            .unwrap();
        let mut m = Machine::new(&p);
        assert!(react(&mut m, &[]).emitted.is_empty());
        assert_eq!(react(&mut m, &[]).emitted, vec![o]);
    }

    #[test]
    fn data_actions_run_exactly_once_per_instant() {
        use efsm::{ActionId, DataHooks, ExprId, PredId};
        #[derive(Default)]
        struct Counter {
            runs: Vec<u32>,
        }
        impl DataHooks for Counter {
            fn eval_pred(&mut self, _p: PredId) -> bool {
                true
            }
            fn run_action(&mut self, a: ActionId) {
                self.runs.push(a.0);
            }
            fn emit_value(&mut self, _s: Signal, _e: ExprId) {}
        }
        // A program that forces a constructive retry: par branch 1
        // blocks on local l (resolved by inference), branch 2 runs an
        // action first.
        let mut bld = ProgramBuilder::new("t");
        let o = bld.output("o");
        let l = bld.local("l");
        let body = Stmt::par(vec![
            Stmt::seq(vec![
                Stmt::action(ActionId(7)),
                Stmt::present(l.into(), Stmt::nothing(), Stmt::emit(o)),
                Stmt::halt(),
            ]),
            Stmt::halt(),
        ]);
        let p = bld.finish(body).unwrap();
        let mut m = Machine::new(&p);
        let mut hooks = Counter::default();
        let set = HashSet::new();
        let r = m.react(&set, &mut hooks).unwrap();
        assert!(r.has(o));
        assert_eq!(hooks.runs, vec![7], "action must run exactly once");
    }

    #[test]
    fn sequence_of_emissions_keeps_order() {
        let mut bld = ProgramBuilder::new("t");
        let o1 = bld.output("o1");
        let o2 = bld.output("o2");
        let o3 = bld.output("o3");
        let p = bld
            .finish(Stmt::seq(vec![
                Stmt::emit(o2),
                Stmt::emit(o1),
                Stmt::emit(o3),
            ]))
            .unwrap();
        let mut m = Machine::new(&p);
        let r = react(&mut m, &[]);
        assert_eq!(r.emitted, vec![o2, o1, o3]);
    }
}
