//! Compilation of Esterel programs to EFSMs (automaton style).
//!
//! This reproduces the role of the "native Esterel compiler" in the ECL
//! flow: enumerate the reachable control states (sets of active pause
//! points) and, for each, build the reaction as a POLIS-style s-graph.
//!
//! Per state, the instant is executed symbolically: input signals start
//! unknown and are *forked* into `Test` nodes when a test needs them;
//! data predicates fork into `TestPred` nodes; local (and own-output)
//! signals are resolved by guess-and-check — both statuses are explored,
//! and a completed run is kept only if its guesses are consistent with
//! its actual emissions. Constructive programs have exactly one
//! consistent resolution per input/predicate valuation; when two exist
//! (logically nondeterministic programs) the absence-minimal one is
//! chosen and counted in [`CompileReport::ambiguous_choices`].
//!
//! Actions and emissions are recorded in path order, so the generated
//! s-graph preserves the data-flow order of the source (a predicate
//! reading a variable written earlier in the same instant sits *below*
//! the corresponding `Do` node).

use crate::engine::{Engine, ExecOut, Sem};
use crate::ir::{Program, StmtId, Tri};
use efsm::sgraph::{Node as ENode, NodeId};
use efsm::{ActionId, BitSet, Efsm, ExprId, PredId, SigKind, Signal, StateId};
use std::collections::HashMap;
use std::fmt;

/// Options controlling compilation.
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// Maximum number of control states before giving up.
    pub max_states: usize,
    /// Maximum symbolic runs per state (breadth of the decision tree).
    pub max_runs_per_state: usize,
    /// Run the EFSM optimizer on the result.
    pub optimize: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            max_states: 1 << 16,
            max_runs_per_state: 1 << 16,
            optimize: true,
        }
    }
}

/// Compilation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// State budget exhausted ("potential explosive growth of code
    /// size", as the paper warns).
    TooManyStates {
        /// The configured limit.
        limit: usize,
    },
    /// Decision-tree budget exhausted for one state.
    TooManyRuns {
        /// The configured limit.
        limit: usize,
    },
    /// No consistent resolution of internal signals for some input
    /// valuation (non-constructive / incoherent program).
    NoCoherentBehavior {
        /// Debug name of the state being expanded.
        state: String,
    },
    /// The program misbehaved during symbolic execution.
    Internal(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::TooManyStates { limit } => {
                write!(f, "state explosion: more than {limit} control states")
            }
            CompileError::TooManyRuns { limit } => {
                write!(
                    f,
                    "decision explosion: more than {limit} symbolic runs in one state"
                )
            }
            CompileError::NoCoherentBehavior { state } => {
                write!(
                    f,
                    "no coherent signal resolution in state {state} (non-constructive program)"
                )
            }
            CompileError::Internal(m) => write!(f, "internal compiler error: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Side statistics from a compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompileReport {
    /// Reachable control states (including the dead state, if any).
    pub states: u32,
    /// Total symbolic runs executed.
    pub runs: u64,
    /// Internal-signal choices where both statuses were coherent and
    /// the absence-minimal one was picked.
    pub ambiguous_choices: u64,
}

/// Compile with a report.
///
/// # Errors
///
/// See [`CompileError`].
pub fn compile_with_report(
    prog: &Program,
    opts: &CompileOptions,
) -> Result<(Efsm, CompileReport), CompileError> {
    Compiler::new(prog, opts).run()
}

/// Compile a program into an EFSM.
///
/// # Errors
///
/// See [`CompileError`].
pub fn compile(prog: &Program, opts: &CompileOptions) -> Result<Efsm, CompileError> {
    compile_with_report(prog, opts).map(|(m, _)| m)
}

/// Control state key: `None` = not started yet; `Some(sel)` = selection;
/// the empty selection is the dead state.
type StateKey = Option<BitSet>;

struct Compiler<'p> {
    prog: &'p Program,
    opts: &'p CompileOptions,
    efsm: Efsm,
    ids: HashMap<StateKey, StateId>,
    work: Vec<StateKey>,
    report: CompileReport,
}

/// One linear event along a symbolic run.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Ev {
    Do(ActionId),
    Emit(Signal, Option<ExprId>),
}

/// What a symbolic run needs next, if anything.
#[derive(Debug, Clone, PartialEq, Eq)]
enum RunOut {
    /// Blocked at a choice: events so far, plus the choice kind (and
    /// the predicate id for `Choice::Pred` keys).
    Need {
        prefix_len: usize,
        choice: Choice,
        pred: Option<PredId>,
    },
    /// Completed.
    Done {
        events_len: usize,
        code: u32,
        next_sel: BitSet,
        coherent: bool,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Choice {
    /// Fork on an environment input: becomes a `Test` node.
    Input(Signal),
    /// Guess an internal (local or own-output) signal.
    Internal(Signal),
    /// Fork on a data predicate occurrence: becomes a `TestPred` node.
    Pred(StmtId, u32),
}

/// Semantics for a symbolic run with a descriptor-keyed oracle.
///
/// The run executes fixpoint *passes* (like the interpreter): emissions
/// made by later parallel branches resolve signals earlier branches
/// blocked on, so no oracle entry is needed for them. Only choices that
/// remain unresolved after a quiescent pass become oracle entries — and
/// hence `Test`/`TestPred` nodes or internal guesses.
struct SymSem<'a> {
    prog: &'a Program,
    oracle: &'a HashMap<Choice, bool>,
    status: Vec<Tri>,
    emitted: BitSet,
    /// Journaled events: recorded once per (node, occurrence).
    events: Vec<Ev>,
    recorded: std::collections::HashSet<(StmtId, u32)>,
    /// Choices requested this pass but absent from the oracle, with the
    /// event-prefix length at first encounter.
    needs: Vec<(Choice, usize)>,
    /// Predicate ids by occurrence key (for `TestPred` nodes).
    pred_ids: HashMap<(StmtId, u32), PredId>,
    incoherent: bool,
}

impl<'a> SymSem<'a> {
    fn new(prog: &'a Program, oracle: &'a HashMap<Choice, bool>) -> Self {
        let mut status = vec![Tri::Unknown; prog.signals().len()];
        // Pre-apply oracle entries for signals.
        for (c, v) in oracle {
            match c {
                Choice::Input(s) | Choice::Internal(s) => {
                    status[s.0 as usize] = if *v { Tri::True } else { Tri::False };
                }
                Choice::Pred(_, _) => {}
            }
        }
        SymSem {
            prog,
            oracle,
            status,
            emitted: BitSet::new(),
            events: Vec::new(),
            recorded: std::collections::HashSet::new(),
            needs: Vec::new(),
            pred_ids: HashMap::new(),
            incoherent: false,
        }
    }

    fn known(&self) -> usize {
        self.status.iter().filter(|s| **s != Tri::Unknown).count()
    }

    fn note_need(&mut self, c: Choice) {
        if !self.needs.iter().any(|(n, _)| *n == c) {
            self.needs.push((c, self.events.len()));
        }
    }
}

impl<'a> Sem for &mut SymSem<'a> {
    fn status(&mut self, s: Signal) -> Tri {
        self.status[s.0 as usize]
    }

    fn blocked_on(&mut self, s: Signal) {
        let kind = self.prog.signals()[s.0 as usize].kind;
        let choice = if kind == SigKind::Input {
            Choice::Input(s)
        } else {
            Choice::Internal(s)
        };
        // Oracle entries were pre-applied; reaching here means unknown.
        self.note_need(choice);
    }

    fn pred(&mut self, at: (StmtId, u32), p: PredId) -> Option<bool> {
        let key = Choice::Pred(at.0, at.1);
        self.pred_ids.insert((at.0, at.1), p);
        if let Some(v) = self.oracle.get(&key) {
            return Some(*v);
        }
        self.note_need(key);
        None
    }

    fn action(&mut self, at: (StmtId, u32), a: ActionId) {
        if self.recorded.insert(at) {
            self.events.push(Ev::Do(a));
        }
    }

    fn emit(&mut self, at: (StmtId, u32), s: Signal, value: Option<ExprId>) -> bool {
        if self.status[s.0 as usize] == Tri::False {
            // Contradicts an assumed absence.
            self.incoherent = true;
            return false;
        }
        self.status[s.0 as usize] = Tri::True;
        self.emitted.insert(s.0 as usize);
        if self.recorded.insert(at) {
            self.events.push(Ev::Emit(s, value));
        }
        true
    }
}

impl<'p> Compiler<'p> {
    fn new(prog: &'p Program, opts: &'p CompileOptions) -> Self {
        let mut efsm = Efsm::new(prog.name());
        for s in prog.signals() {
            efsm.add_signal(&s.name, s.kind, s.valued);
        }
        Compiler {
            prog,
            opts,
            efsm,
            ids: HashMap::new(),
            work: Vec::new(),
            report: CompileReport::default(),
        }
    }

    fn state_id(&mut self, key: StateKey) -> StateId {
        if let Some(id) = self.ids.get(&key) {
            return *id;
        }
        let name = match &key {
            None => "boot".to_string(),
            Some(sel) if sel.is_empty() => "dead".to_string(),
            Some(sel) => {
                let bits: Vec<String> = sel.iter().map(|b| b.to_string()).collect();
                format!("p{}", bits.join("_"))
            }
        };
        // Placeholder root; patched when the state is expanded.
        let placeholder = self.efsm.add_node(ENode::Goto { target: StateId(0) });
        let id = self.efsm.add_state(name, placeholder);
        self.ids.insert(key.clone(), id);
        self.work.push(key);
        id
    }

    fn run(mut self) -> Result<(Efsm, CompileReport), CompileError> {
        let boot = self.state_id(None);
        self.efsm.init = boot;
        let mut done = 0usize;
        while done < self.work.len() {
            if self.ids.len() > self.opts.max_states {
                return Err(CompileError::TooManyStates {
                    limit: self.opts.max_states,
                });
            }
            let key = self.work[done].clone();
            done += 1;
            let sid = self.ids[&key];
            let root = self.expand(&key)?;
            self.efsm.states[sid.0 as usize].root = root;
        }
        self.report.states = self.efsm.states.len() as u32;
        if self.opts.optimize {
            efsm::opt::optimize(&mut self.efsm);
            self.report.states = self.efsm.states.len() as u32;
        }
        self.efsm.validate().map_err(CompileError::Internal)?;
        Ok((self.efsm, self.report))
    }

    /// Execute one symbolic run for state `key` under `oracle`,
    /// iterating fixpoint passes until quiescence.
    fn sym_run(
        &mut self,
        key: &StateKey,
        oracle: &HashMap<Choice, bool>,
    ) -> Result<(RunOut, Vec<Ev>), CompileError> {
        self.report.runs += 1;
        let (start, sel) = match key {
            None => (true, BitSet::new()),
            Some(sel) => (false, sel.clone()),
        };
        if let Some(sel) = key {
            if sel.is_empty() {
                // Dead state: stays dead, no behavior.
                return Ok((
                    RunOut::Done {
                        events_len: 0,
                        code: 0,
                        next_sel: BitSet::new(),
                        coherent: true,
                    },
                    Vec::new(),
                ));
            }
        }
        let mut sem = SymSem::new(self.prog, oracle);
        let mut last_known = usize::MAX;
        loop {
            sem.needs.clear();
            let mut engine = Engine::new(self.prog, &sel, &mut sem);
            let out = engine.exec(self.prog.root(), start);
            match out {
                ExecOut::Failed(_) => {
                    return Ok((
                        RunOut::Done {
                            events_len: sem.events.len(),
                            code: 0,
                            next_sel: BitSet::new(),
                            coherent: false,
                        },
                        sem.events,
                    ));
                }
                ExecOut::Done { code, pauses } => {
                    // Validate assumed-present internals were emitted.
                    let mut coherent = !sem.incoherent;
                    for (c, v) in oracle {
                        if let Choice::Internal(sig) = c {
                            if *v && !sem.emitted.contains(sig.0 as usize) {
                                coherent = false;
                            }
                        }
                    }
                    return Ok((
                        RunOut::Done {
                            events_len: sem.events.len(),
                            code,
                            next_sel: pauses.normalized(),
                            coherent,
                        },
                        sem.events,
                    ));
                }
                ExecOut::Blocked => {
                    let known = sem.known();
                    if known != last_known {
                        // Progress: an emission resolved something.
                        last_known = known;
                        continue;
                    }
                    // Quiescent: pick a fork. Inputs and predicates are
                    // real decision nodes and take priority; internal
                    // signals are guessed only when nothing else moves.
                    let pick = sem
                        .needs
                        .iter()
                        .find(|(c, _)| !matches!(c, Choice::Internal(_)))
                        .or_else(|| sem.needs.first())
                        .copied();
                    let Some((choice, prefix)) = pick else {
                        return Err(CompileError::Internal(
                            "blocked without a recorded choice".into(),
                        ));
                    };
                    let pred = match choice {
                        Choice::Pred(id, occ) => sem.pred_ids.get(&(id, occ)).copied(),
                        _ => None,
                    };
                    return Ok((
                        RunOut::Need {
                            prefix_len: prefix,
                            choice,
                            pred,
                        },
                        sem.events,
                    ));
                }
            }
        }
    }

    /// Build the s-graph for one control state.
    fn expand(&mut self, key: &StateKey) -> Result<NodeId, CompileError> {
        let mut runs = 0usize;
        let mut oracle: HashMap<Choice, bool> = HashMap::new();
        let out = self.build(key, &mut oracle, 0, &mut runs)?;
        match out {
            Some(node) => Ok(node),
            None => Err(CompileError::NoCoherentBehavior {
                state: match key {
                    None => "boot".into(),
                    Some(s) => format!("{s:?}"),
                },
            }),
        }
    }

    /// Recursive decision-tree construction. `skip` is the number of
    /// events already materialized by ancestors. Returns `None` when no
    /// coherent completion exists under this oracle (backtracking point
    /// for internal-signal guesses).
    fn build(
        &mut self,
        key: &StateKey,
        oracle: &mut HashMap<Choice, bool>,
        skip: usize,
        runs: &mut usize,
    ) -> Result<Option<NodeId>, CompileError> {
        *runs += 1;
        if *runs > self.opts.max_runs_per_state {
            return Err(CompileError::TooManyRuns {
                limit: self.opts.max_runs_per_state,
            });
        }
        let (out, events) = self.sym_run(key, oracle)?;
        match out {
            RunOut::Done {
                events_len,
                code,
                next_sel,
                coherent,
            } => {
                if !coherent {
                    return Ok(None);
                }
                let next_key = if code == 0 {
                    Some(BitSet::new()) // dead
                } else {
                    Some(next_sel)
                };
                let target = self.state_id(next_key);
                let mut node = self.efsm.add_node(ENode::Goto { target });
                for ev in events[skip..events_len].iter().rev() {
                    node = self.chain(ev, node);
                }
                Ok(Some(node))
            }
            RunOut::Need {
                prefix_len,
                choice,
                pred,
            } => {
                let sub = |me: &mut Self,
                           oracle: &mut HashMap<Choice, bool>,
                           v: bool,
                           runs: &mut usize|
                 -> Result<Option<NodeId>, CompileError> {
                    oracle.insert(choice, v);
                    let r = me.build(key, oracle, prefix_len, runs);
                    oracle.remove(&choice);
                    r
                };
                let inner = match choice {
                    Choice::Input(sig) => {
                        let f = sub(self, oracle, false, runs)?;
                        let t = sub(self, oracle, true, runs)?;
                        match (t, f) {
                            (Some(t), Some(f)) => Some(self.efsm.add_node(ENode::Test {
                                sig,
                                then_: t,
                                else_: f,
                            })),
                            // One input valuation has no coherent
                            // continuation *under the current guesses*:
                            // backtrack to the nearest internal guess.
                            _ => None,
                        }
                    }
                    Choice::Pred(_, _) => {
                        let p = pred.ok_or_else(|| {
                            CompileError::Internal("pred choice without id".into())
                        })?;
                        let f = sub(self, oracle, false, runs)?;
                        let t = sub(self, oracle, true, runs)?;
                        match (t, f) {
                            (Some(t), Some(f)) => Some(self.efsm.add_node(ENode::TestPred {
                                pred: p,
                                then_: t,
                                else_: f,
                            })),
                            // A data valuation with no coherent
                            // continuation is assumed unreachable (the
                            // interpreter has a dynamic backstop).
                            (Some(t), None) => Some(t),
                            (None, Some(f)) => Some(f),
                            (None, None) => None,
                        }
                    }
                    Choice::Internal(_) => {
                        // Guess: prefer the absence-minimal behavior.
                        match sub(self, oracle, false, runs)? {
                            Some(f) => Some(f),
                            None => {
                                self.report.ambiguous_choices += 1;
                                sub(self, oracle, true, runs)?
                            }
                        }
                    }
                };
                match inner {
                    Some(node) => {
                        let mut node = node;
                        for ev in events[skip..prefix_len].iter().rev() {
                            node = self.chain(ev, node);
                        }
                        Ok(Some(node))
                    }
                    None => Ok(None),
                }
            }
        }
    }

    /// Prepend one event node.
    fn chain(&mut self, ev: &Ev, next: NodeId) -> NodeId {
        match ev {
            Ev::Do(a) => self.efsm.add_node(ENode::Do { action: *a, next }),
            Ev::Emit(s, v) => self.efsm.add_node(ENode::Emit {
                sig: *s,
                value: *v,
                next,
            }),
        }
    }
}
impl From<CompileError> for ecl_syntax::EclError {
    fn from(e: CompileError) -> Self {
        ecl_syntax::EclError::msg(
            ecl_syntax::Stage::Efsm,
            e.to_string(),
            ecl_syntax::Span::dummy(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Machine;
    use crate::ir::{ProgramBuilder, Stmt};
    use efsm::NoHooks;
    use std::collections::HashSet;

    fn opts() -> CompileOptions {
        CompileOptions::default()
    }

    /// Compile and differential-test against the interpreter on random
    /// input sequences.
    fn check_equiv(prog: &Program, seeds: u64, steps: usize) {
        use rand::{Rng, SeedableRng};
        let machine = compile(prog, &opts()).expect("compiles");
        machine.validate().expect("valid");
        let inputs: Vec<Signal> = prog
            .signals()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind == SigKind::Input)
            .map(|(i, _)| Signal(i as u32))
            .collect();
        for seed in 0..seeds {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut interp = Machine::new(prog);
            let mut st = machine.init;
            for _ in 0..steps {
                let mut present = HashSet::new();
                for s in &inputs {
                    if rng.gen_bool(0.4) {
                        present.insert(*s);
                    }
                }
                let r1 = interp.react(&present, &mut NoHooks).expect("constructive");
                let r2 = machine.step(st, &present, &mut NoHooks);
                st = r2.next;
                // Compare emitted OUTPUT signal sets (order may differ
                // only for distinct signals emitted by parallel branches;
                // compare as sorted lists).
                let mut e1: Vec<u32> = r1
                    .emitted
                    .iter()
                    .filter(|s| prog.signals()[s.0 as usize].kind == SigKind::Output)
                    .map(|s| s.0)
                    .collect();
                let mut e2: Vec<u32> = r2
                    .emitted
                    .iter()
                    .filter(|s| machine.signal_info(**s).kind == SigKind::Output)
                    .map(|s| s.0)
                    .collect();
                e1.sort();
                e2.sort();
                assert_eq!(e1, e2, "divergence (seed {seed})");
            }
        }
    }

    #[test]
    fn compiles_await_emit_loop() {
        let mut b = ProgramBuilder::new("t");
        let a = b.input("a");
        let o = b.output("o");
        let p = b
            .finish(Stmt::loop_(Stmt::seq(vec![
                Stmt::await_(a.into()),
                Stmt::emit(o),
            ])))
            .unwrap();
        let m = compile(&p, &opts()).unwrap();
        // boot + waiting state (+ possibly dead).
        assert!(m.states.len() >= 2, "{:?}", m.states.len());
        check_equiv(&p, 5, 50);
    }

    #[test]
    fn compiles_abro() {
        let mut bld = ProgramBuilder::new("abro");
        let a = bld.input("a");
        let b = bld.input("b");
        let r = bld.input("r");
        let o = bld.output("o");
        let body = Stmt::loop_(Stmt::abort(
            Stmt::seq(vec![
                Stmt::par(vec![Stmt::await_(a.into()), Stmt::await_(b.into())]),
                Stmt::emit(o),
                Stmt::halt(),
            ]),
            r.into(),
        ));
        let p = bld.finish(body).unwrap();
        check_equiv(&p, 8, 60);
    }

    #[test]
    fn compiles_local_signal_communication() {
        // Two parallel halves talk through local l within the instant.
        let mut bld = ProgramBuilder::new("t");
        let a = bld.input("a");
        let o = bld.output("o");
        let l = bld.local("l");
        let body = Stmt::loop_(Stmt::seq(vec![
            Stmt::pause(),
            Stmt::par(vec![
                Stmt::present(a.into(), Stmt::emit(l), Stmt::nothing()),
                Stmt::present(l.into(), Stmt::emit(o), Stmt::nothing()),
            ]),
        ]));
        let p = bld.finish(body).unwrap();
        let m = compile(&p, &opts()).unwrap();
        // Local signal must be compiled away: no Test on `l`.
        for node in &m.nodes {
            if let efsm::sgraph::Node::Test { sig, .. } = node {
                assert_eq!(m.signal_info(*sig).kind, SigKind::Input);
            }
        }
        check_equiv(&p, 6, 40);
    }

    #[test]
    fn compiles_suspend() {
        let mut bld = ProgramBuilder::new("t");
        let s = bld.input("s");
        let o = bld.output("o");
        let p = bld
            .finish(Stmt::suspend(s.into(), Stmt::sustain(o)))
            .unwrap();
        check_equiv(&p, 6, 40);
    }

    #[test]
    fn compiles_weak_abort_with_handler() {
        let mut bld = ProgramBuilder::new("t");
        let a = bld.input("a");
        let r = bld.input("r");
        let o = bld.output("o");
        let h = bld.output("h");
        let body = Stmt::loop_(Stmt::seq(vec![
            Stmt::weak_abort_handle(
                Stmt::seq(vec![Stmt::await_(a.into()), Stmt::emit(o), Stmt::halt()]),
                r.into(),
                Stmt::emit(h),
            ),
            Stmt::pause(),
        ]));
        let p = bld.finish(body).unwrap();
        check_equiv(&p, 8, 60);
    }

    #[test]
    fn dead_state_self_loops() {
        let mut b = ProgramBuilder::new("t");
        let o = b.output("o");
        let p = b.finish(Stmt::emit(o)).unwrap();
        let m = compile(&p, &opts()).unwrap();
        let mut st = m.init;
        // First instant emits o and dies.
        let r = m.step(st, &HashSet::new(), &mut NoHooks);
        assert_eq!(r.emitted.len(), 1);
        st = r.next;
        for _ in 0..3 {
            let r = m.step(st, &HashSet::new(), &mut NoHooks);
            assert!(r.emitted.is_empty());
            st = r.next;
        }
    }

    #[test]
    fn non_constructive_program_rejected() {
        let mut bld = ProgramBuilder::new("t");
        let l = bld.local("l");
        let p = bld
            .finish(Stmt::present(l.into(), Stmt::nothing(), Stmt::emit(l)))
            .unwrap();
        let err = compile(&p, &opts()).unwrap_err();
        assert!(matches!(err, CompileError::NoCoherentBehavior { .. }));
    }

    #[test]
    fn state_cap_enforced() {
        // 8 parallel toggles on *independent* inputs → 2^8 states.
        let mut bld = ProgramBuilder::new("t");
        let mut branches = Vec::new();
        for i in 0..8 {
            let tick = bld.input(&format!("t{i}"));
            let o = bld.output(&format!("b{i}"));
            branches.push(Stmt::loop_(Stmt::seq(vec![
                Stmt::await_(tick.into()),
                Stmt::emit(o),
                Stmt::await_(tick.into()),
            ])));
        }
        let p = bld.finish(Stmt::par(branches)).unwrap();
        let tight = CompileOptions {
            max_states: 10,
            ..opts()
        };
        assert!(matches!(
            compile(&p, &tight).unwrap_err(),
            CompileError::TooManyStates { .. }
        ));
    }

    #[test]
    fn report_counts_runs() {
        let mut b = ProgramBuilder::new("t");
        let a = b.input("a");
        let o = b.output("o");
        let p = b
            .finish(Stmt::loop_(Stmt::seq(vec![
                Stmt::await_(a.into()),
                Stmt::emit(o),
            ])))
            .unwrap();
        let (_, rep) = compile_with_report(&p, &opts()).unwrap();
        assert!(rep.runs > 0);
        assert_eq!(rep.ambiguous_choices, 0);
    }

    #[test]
    fn present_else_branch_in_machine() {
        let mut b = ProgramBuilder::new("t");
        let a = b.input("a");
        let yes = b.output("yes");
        let no = b.output("no");
        let p = b
            .finish(Stmt::loop_(Stmt::seq(vec![
                Stmt::pause(),
                Stmt::present(a.into(), Stmt::emit(yes), Stmt::emit(no)),
            ])))
            .unwrap();
        check_equiv(&p, 4, 30);
        let m = compile(&p, &opts()).unwrap();
        let a_m = m.signal("a").unwrap();
        let yes_m = m.signal("yes").unwrap();
        let no_m = m.signal("no").unwrap();
        // Steady state: emit yes on a, no otherwise.
        let mut st = m.init;
        st = m.step(st, &HashSet::new(), &mut NoHooks).next;
        let mut on = HashSet::new();
        on.insert(a_m);
        let r = m.step(st, &on, &mut NoHooks);
        assert_eq!(r.emitted, vec![yes_m]);
        let r2 = m.step(r.next, &HashSet::new(), &mut NoHooks);
        assert_eq!(r2.emitted, vec![no_m]);
    }
}
