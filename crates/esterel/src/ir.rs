//! Kernel Esterel IR.
//!
//! Statements are built as an ordinary Rust tree ([`Stmt`]) with smart
//! constructors for both the kernel forms and the derived forms ECL
//! needs (`halt`, `await`, `abort`, `weak_abort`, handlers, immediate
//! variants). [`ProgramBuilder::finish`] then freezes the tree into a
//! [`Program`]: an arena with DFS-numbered pause points, per-node pause
//! ranges (needed to resume selected subtrees), and the static checks a
//! real Esterel compiler performs (trap/exit discipline, no potentially
//! instantaneous loop bodies).
//!
//! Traps use de Bruijn indices: `Exit(d)` exits the `d`-th enclosing
//! [`Stmt::Trap`] (0 = innermost). The derived-form constructors shift
//! free exits of their operands, so user code can nest them freely.

use efsm::{ActionId, ExprId, PredId, SigKind, Signal, SignalInfo};
use std::fmt;

/// Three-valued signal status (Kleene logic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tri {
    /// Known present.
    True,
    /// Known absent.
    False,
    /// Not yet determined this instant.
    Unknown,
}

impl Tri {
    /// Kleene negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Tri {
        match self {
            Tri::True => Tri::False,
            Tri::False => Tri::True,
            Tri::Unknown => Tri::Unknown,
        }
    }

    /// Kleene conjunction.
    pub fn and(self, o: Tri) -> Tri {
        match (self, o) {
            (Tri::False, _) | (_, Tri::False) => Tri::False,
            (Tri::True, Tri::True) => Tri::True,
            _ => Tri::Unknown,
        }
    }

    /// Kleene disjunction.
    pub fn or(self, o: Tri) -> Tri {
        match (self, o) {
            (Tri::True, _) | (_, Tri::True) => Tri::True,
            (Tri::False, Tri::False) => Tri::False,
            _ => Tri::Unknown,
        }
    }
}

/// A presence expression over signals (`&`, `|`, `~`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SigExpr {
    /// Constant truth value.
    Const(bool),
    /// Presence of one signal.
    Sig(Signal),
    /// Negation.
    Not(Box<SigExpr>),
    /// Conjunction.
    And(Box<SigExpr>, Box<SigExpr>),
    /// Disjunction.
    Or(Box<SigExpr>, Box<SigExpr>),
}
impl From<Signal> for SigExpr {
    fn from(s: Signal) -> Self {
        SigExpr::Sig(s)
    }
}

impl SigExpr {
    /// Three-valued evaluation under a status assignment.
    pub fn eval3(&self, status: &impl Fn(Signal) -> Tri) -> Tri {
        match self {
            SigExpr::Const(true) => Tri::True,
            SigExpr::Const(false) => Tri::False,
            SigExpr::Sig(s) => status(*s),
            SigExpr::Not(e) => e.eval3(status).not(),
            SigExpr::And(a, b) => a.eval3(status).and(b.eval3(status)),
            SigExpr::Or(a, b) => a.eval3(status).or(b.eval3(status)),
        }
    }

    /// First signal whose status is [`Tri::Unknown`] and *relevant* —
    /// i.e. resolving it could change the overall value. Used by the
    /// engines to decide what to branch on.
    pub fn first_unknown(&self, status: &impl Fn(Signal) -> Tri) -> Option<Signal> {
        if self.eval3(status) != Tri::Unknown {
            return None;
        }
        match self {
            SigExpr::Const(_) => None,
            SigExpr::Sig(s) => (status(*s) == Tri::Unknown).then_some(*s),
            SigExpr::Not(e) => e.first_unknown(status),
            SigExpr::And(a, b) | SigExpr::Or(a, b) => {
                a.first_unknown(status).or_else(|| b.first_unknown(status))
            }
        }
    }

    /// All signals mentioned.
    pub fn signals(&self) -> Vec<Signal> {
        let mut v = Vec::new();
        self.collect(&mut v);
        v
    }

    fn collect(&self, v: &mut Vec<Signal>) {
        match self {
            SigExpr::Const(_) => {}
            SigExpr::Sig(s) => v.push(*s),
            SigExpr::Not(e) => e.collect(v),
            SigExpr::And(a, b) | SigExpr::Or(a, b) => {
                a.collect(v);
                b.collect(v);
            }
        }
    }

    /// Negation helper.
    pub fn not_(self) -> SigExpr {
        SigExpr::Not(Box::new(self))
    }

    /// Conjunction helper.
    pub fn and_(self, o: SigExpr) -> SigExpr {
        SigExpr::And(Box::new(self), Box::new(o))
    }

    /// Disjunction helper.
    pub fn or_(self, o: SigExpr) -> SigExpr {
        SigExpr::Or(Box::new(self), Box::new(o))
    }
}

/// A kernel Esterel statement (construction form).
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Do nothing, terminate instantly.
    Nothing,
    /// Stop for this instant; resume after.
    Pause,
    /// Make a signal present (optionally with a value expression).
    Emit(Signal, Option<ExprId>),
    /// Branch on signal presence *this instant*.
    Present(SigExpr, Box<Stmt>, Box<Stmt>),
    /// Branch on an opaque data predicate (ECL extension).
    IfData(PredId, Box<Stmt>, Box<Stmt>),
    /// Run an opaque data action (extracted C code).
    Action(ActionId),
    /// Sequence.
    Seq(Vec<Stmt>),
    /// Infinite loop (body must not be instantaneous).
    Loop(Box<Stmt>),
    /// Parallel composition (synchronizes on termination).
    Par(Vec<Stmt>),
    /// Trap declaration; catches `Exit(0)` thrown inside.
    Trap(Box<Stmt>),
    /// Exit the `d`-th enclosing trap.
    Exit(u32),
    /// Freeze the body in instants where the guard is present.
    Suspend(SigExpr, Box<Stmt>),
}

impl Stmt {
    // -- kernel constructors ------------------------------------------------

    /// `nothing`
    pub fn nothing() -> Stmt {
        Stmt::Nothing
    }

    /// `pause`
    pub fn pause() -> Stmt {
        Stmt::Pause
    }

    /// `emit s`
    pub fn emit(s: Signal) -> Stmt {
        Stmt::Emit(s, None)
    }

    /// `emit s(value)`
    pub fn emit_v(s: Signal, e: ExprId) -> Stmt {
        Stmt::Emit(s, Some(e))
    }

    /// `present c then t else e end`
    pub fn present(c: SigExpr, t: Stmt, e: Stmt) -> Stmt {
        Stmt::Present(c, Box::new(t), Box::new(e))
    }

    /// Data-predicate branch.
    pub fn if_data(p: PredId, t: Stmt, e: Stmt) -> Stmt {
        Stmt::IfData(p, Box::new(t), Box::new(e))
    }

    /// Opaque data action.
    pub fn action(a: ActionId) -> Stmt {
        Stmt::Action(a)
    }

    /// `s1; s2; ...` (flattens nested sequences).
    pub fn seq(stmts: Vec<Stmt>) -> Stmt {
        let mut out = Vec::new();
        for s in stmts {
            match s {
                Stmt::Seq(inner) => out.extend(inner),
                Stmt::Nothing => {}
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Stmt::Nothing,
            1 => out.pop().expect("len checked"),
            _ => Stmt::Seq(out),
        }
    }

    /// `loop s end`
    pub fn loop_(s: Stmt) -> Stmt {
        Stmt::Loop(Box::new(s))
    }

    /// `s1 || s2 || ...`
    pub fn par(stmts: Vec<Stmt>) -> Stmt {
        match stmts.len() {
            0 => Stmt::Nothing,
            1 => stmts.into_iter().next().expect("len checked"),
            _ => Stmt::Par(stmts),
        }
    }

    /// `trap T in s end` (catches `Exit(0)`).
    pub fn trap(s: Stmt) -> Stmt {
        Stmt::Trap(Box::new(s))
    }

    /// `exit T` at de Bruijn depth `d`.
    pub fn exit(d: u32) -> Stmt {
        Stmt::Exit(d)
    }

    /// `suspend s when c`
    pub fn suspend(c: SigExpr, s: Stmt) -> Stmt {
        Stmt::Suspend(c, Box::new(s))
    }

    // -- derived forms (ECL statements) -----------------------------------

    /// `halt` — pause forever (until preempted).
    pub fn halt() -> Stmt {
        Stmt::loop_(Stmt::pause())
    }

    /// ECL `await (c)` — ends the instant; fires on a *later* occurrence
    /// of `c` (paper Section 4, item 2).
    pub fn await_(c: SigExpr) -> Stmt {
        Stmt::trap(Stmt::loop_(Stmt::seq(vec![
            Stmt::pause(),
            Stmt::present(c, Stmt::exit(0), Stmt::nothing()),
        ])))
    }

    /// Reproduction extension `await_immediate (c)` — also checks the
    /// current instant.
    pub fn await_immediate(c: SigExpr) -> Stmt {
        Stmt::trap(Stmt::loop_(Stmt::seq(vec![
            Stmt::present(c, Stmt::exit(0), Stmt::nothing()),
            Stmt::pause(),
        ])))
    }

    /// ECL `await ()` — the "delta cycle": end the instant
    /// unconditionally, resume in the next one.
    pub fn await_delta() -> Stmt {
        Stmt::pause()
    }

    /// ECL `do body abort (c)` — strong abortion: in the triggering
    /// instant the body does not run (tested from the instant *after*
    /// control reaches the abort, per the paper).
    pub fn abort(body: Stmt, c: SigExpr) -> Stmt {
        let body = shift_exits(body, 1);
        Stmt::trap(Stmt::par(vec![
            Stmt::seq(vec![Stmt::suspend(c.clone(), body), Stmt::exit(0)]),
            Stmt::seq(vec![Stmt::await_(c), Stmt::exit(0)]),
        ]))
    }

    /// `do body abort (c) handle h` — `h` runs only when the abort
    /// triggered (like a `catch` clause, paper Section 4 item 5).
    pub fn abort_handle(body: Stmt, c: SigExpr, h: Stmt) -> Stmt {
        let body = shift_exits(body, 2);
        let h = shift_exits(h, 1);
        Stmt::trap(Stmt::seq(vec![
            Stmt::trap(Stmt::par(vec![
                Stmt::seq(vec![Stmt::suspend(c.clone(), body), Stmt::exit(1)]),
                Stmt::seq(vec![Stmt::await_(c), Stmt::exit(0)]),
            ])),
            h,
        ]))
    }

    /// ECL `do body weak_abort (c)` — the body still runs in the
    /// triggering instant (paper Section 4 item 6).
    pub fn weak_abort(body: Stmt, c: SigExpr) -> Stmt {
        let body = shift_exits(body, 1);
        Stmt::trap(Stmt::par(vec![
            Stmt::seq(vec![body, Stmt::exit(0)]),
            Stmt::seq(vec![Stmt::await_(c), Stmt::exit(0)]),
        ]))
    }

    /// `do body weak_abort (c) handle h`.
    pub fn weak_abort_handle(body: Stmt, c: SigExpr, h: Stmt) -> Stmt {
        let body = shift_exits(body, 2);
        let h = shift_exits(h, 1);
        Stmt::trap(Stmt::seq(vec![
            Stmt::trap(Stmt::par(vec![
                Stmt::seq(vec![body, Stmt::exit(1)]),
                Stmt::seq(vec![Stmt::await_(c), Stmt::exit(0)]),
            ])),
            h,
        ]))
    }

    /// `sustain s` — emit every instant.
    pub fn sustain(s: Signal) -> Stmt {
        Stmt::loop_(Stmt::seq(vec![Stmt::emit(s), Stmt::pause()]))
    }
}

/// Add `by` to every *free* exit (those escaping the statement).
pub fn shift_exits(s: Stmt, by: u32) -> Stmt {
    fn go(s: Stmt, by: u32, depth: u32) -> Stmt {
        match s {
            Stmt::Exit(d) if d >= depth => Stmt::Exit(d + by),
            Stmt::Exit(d) => Stmt::Exit(d),
            Stmt::Present(c, t, e) => {
                Stmt::Present(c, Box::new(go(*t, by, depth)), Box::new(go(*e, by, depth)))
            }
            Stmt::IfData(p, t, e) => {
                Stmt::IfData(p, Box::new(go(*t, by, depth)), Box::new(go(*e, by, depth)))
            }
            Stmt::Seq(v) => Stmt::Seq(v.into_iter().map(|x| go(x, by, depth)).collect()),
            Stmt::Loop(b) => Stmt::Loop(Box::new(go(*b, by, depth))),
            Stmt::Par(v) => Stmt::Par(v.into_iter().map(|x| go(x, by, depth)).collect()),
            Stmt::Trap(b) => Stmt::Trap(Box::new(go(*b, by, depth + 1))),
            Stmt::Suspend(c, b) => Stmt::Suspend(c, Box::new(go(*b, by, depth))),
            leaf @ (Stmt::Nothing | Stmt::Pause | Stmt::Emit(_, _) | Stmt::Action(_)) => leaf,
        }
    }
    go(s, by, 0)
}

// ---------------------------------------------------------------------------
// Frozen program (arena + metadata)
// ---------------------------------------------------------------------------

/// Arena index of a statement node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StmtId(pub u32);

/// Arena node (children by id).
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// `nothing`
    Nothing,
    /// `pause` with its DFS-assigned pause index.
    Pause(u32),
    /// `emit`
    Emit(Signal, Option<ExprId>),
    /// `present`
    Present(SigExpr, StmtId, StmtId),
    /// Data branch.
    IfData(PredId, StmtId, StmtId),
    /// Data action.
    Action(ActionId),
    /// Sequence.
    Seq(Vec<StmtId>),
    /// Loop.
    Loop(StmtId),
    /// Parallel.
    Par(Vec<StmtId>),
    /// Trap.
    Trap(StmtId),
    /// Exit.
    Exit(u32),
    /// Suspend.
    Suspend(SigExpr, StmtId),
}

/// Per-node metadata: the half-open range of pause indices inside.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Meta {
    /// First pause index inside this subtree.
    pub pause_lo: u32,
    /// One past the last pause index inside this subtree.
    pub pause_hi: u32,
}

/// Error found while freezing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// `Exit(d)` with fewer than `d + 1` enclosing traps.
    UnboundExit {
        /// The offending depth.
        depth: u32,
    },
    /// A `loop` whose body may terminate without pausing.
    InstantaneousLoop,
    /// A signal id out of range of the declared table.
    UnknownSignal(Signal),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UnboundExit { depth } => write!(f, "exit depth {depth} has no enclosing trap"),
            IrError::InstantaneousLoop => {
                write!(
                    f,
                    "loop body may terminate instantaneously (needs a pause on every path)"
                )
            }
            IrError::UnknownSignal(s) => write!(f, "signal {s:?} is not declared"),
        }
    }
}

impl std::error::Error for IrError {}

/// A frozen, checked Esterel program.
#[derive(Debug, Clone)]
pub struct Program {
    name: String,
    signals: Vec<SignalInfo>,
    nodes: Vec<Node>,
    meta: Vec<Meta>,
    root: StmtId,
    n_pauses: u32,
}

impl Program {
    /// Program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The signal table.
    pub fn signals(&self) -> &[SignalInfo] {
        &self.signals
    }

    /// Signal handle by name.
    pub fn signal(&self, name: &str) -> Option<Signal> {
        self.signals
            .iter()
            .position(|s| s.name == name)
            .map(|i| Signal(i as u32))
    }

    /// Number of pause points.
    pub fn n_pauses(&self) -> u32 {
        self.n_pauses
    }

    /// Root node id.
    pub fn root(&self) -> StmtId {
        self.root
    }

    /// Node accessor.
    pub fn node(&self, id: StmtId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Metadata accessor.
    pub fn meta(&self, id: StmtId) -> Meta {
        self.meta[id.0 as usize]
    }

    /// Does the subtree at `id` contain any pause selected in `sel`?
    pub fn selected(&self, id: StmtId, sel: &efsm::BitSet) -> bool {
        let m = self.meta(id);
        sel.any_in_range(m.pause_lo as usize, m.pause_hi as usize)
    }

    /// Number of arena nodes (program size metric).
    pub fn size(&self) -> usize {
        self.nodes.len()
    }
}

/// Builder: declare signals, then freeze a body.
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    signals: Vec<SignalInfo>,
}

impl ProgramBuilder {
    /// Start a program.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            signals: Vec::new(),
        }
    }

    /// Declare a pure input signal.
    pub fn input(&mut self, name: &str) -> Signal {
        self.add(name, SigKind::Input, false)
    }

    /// Declare a pure output signal.
    pub fn output(&mut self, name: &str) -> Signal {
        self.add(name, SigKind::Output, false)
    }

    /// Declare a pure local signal.
    pub fn local(&mut self, name: &str) -> Signal {
        self.add(name, SigKind::Local, false)
    }

    /// Declare a signal with full control.
    pub fn add(&mut self, name: &str, kind: SigKind, valued: bool) -> Signal {
        self.signals.push(SignalInfo {
            name: name.to_string(),
            kind,
            valued,
        });
        Signal(self.signals.len() as u32 - 1)
    }

    /// Freeze `body` into a checked [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`IrError`] for unbound exits, potentially instantaneous
    /// loop bodies, or undeclared signals.
    pub fn finish(self, body: Stmt) -> Result<Program, IrError> {
        // Static checks on the tree first.
        check_exits(&body, 0)?;
        check_signals(&body, self.signals.len() as u32)?;
        check_loops(&body)?;
        // Freeze into the arena with DFS pause numbering.
        let mut nodes = Vec::new();
        let mut meta = Vec::new();
        let mut n_pauses = 0u32;
        let root = freeze(&body, &mut nodes, &mut meta, &mut n_pauses);
        Ok(Program {
            name: self.name,
            signals: self.signals,
            nodes,
            meta,
            root,
            n_pauses,
        })
    }
}

fn check_exits(s: &Stmt, depth: u32) -> Result<(), IrError> {
    match s {
        Stmt::Exit(d) => {
            if *d >= depth {
                Err(IrError::UnboundExit { depth: *d })
            } else {
                Ok(())
            }
        }
        Stmt::Present(_, t, e) | Stmt::IfData(_, t, e) => {
            check_exits(t, depth)?;
            check_exits(e, depth)
        }
        Stmt::Seq(v) | Stmt::Par(v) => {
            for x in v {
                check_exits(x, depth)?;
            }
            Ok(())
        }
        Stmt::Loop(b) | Stmt::Suspend(_, b) => check_exits(b, depth),
        Stmt::Trap(b) => check_exits(b, depth + 1),
        _ => Ok(()),
    }
}

fn check_signals(s: &Stmt, n: u32) -> Result<(), IrError> {
    let check_expr = |e: &SigExpr| -> Result<(), IrError> {
        for sig in e.signals() {
            if sig.0 >= n {
                return Err(IrError::UnknownSignal(sig));
            }
        }
        Ok(())
    };
    match s {
        Stmt::Emit(sig, _) => {
            if sig.0 >= n {
                return Err(IrError::UnknownSignal(*sig));
            }
            Ok(())
        }
        Stmt::Present(c, t, e) => {
            check_expr(c)?;
            check_signals(t, n)?;
            check_signals(e, n)
        }
        Stmt::IfData(_, t, e) => {
            check_signals(t, n)?;
            check_signals(e, n)
        }
        Stmt::Seq(v) | Stmt::Par(v) => {
            for x in v {
                check_signals(x, n)?;
            }
            Ok(())
        }
        Stmt::Loop(b) => check_signals(b, n),
        Stmt::Suspend(c, b) => {
            check_expr(c)?;
            check_signals(b, n)
        }
        Stmt::Trap(b) => check_signals(b, n),
        _ => Ok(()),
    }
}

/// Over-approximate set of completion codes at start (bitmask: bit k =
/// code k possible). Used for the instantaneous-loop check.
pub fn may_codes(s: &Stmt) -> u64 {
    match s {
        Stmt::Nothing | Stmt::Emit(_, _) | Stmt::Action(_) => 1, // {0}
        Stmt::Pause => 1 << 1,
        Stmt::Exit(d) => 1 << (d + 2).min(62),
        Stmt::Present(_, t, e) | Stmt::IfData(_, t, e) => may_codes(t) | may_codes(e),
        Stmt::Suspend(_, b) => may_codes(b),
        Stmt::Loop(b) => may_codes(b) & !1,
        Stmt::Seq(v) => {
            let mut acc = 1u64; // "terminated so far"
            let mut out = 0u64;
            for x in v {
                if acc & 1 == 0 {
                    break;
                }
                let c = may_codes(x);
                out |= c & !1;
                acc = c;
            }
            if acc & 1 != 0 {
                out |= 1;
            }
            out
        }
        Stmt::Par(v) => {
            // max-combination over children.
            let mut acc = 1u64; // neutral: {0}
            for x in v {
                let c = may_codes(x);
                let mut next = 0u64;
                for i in 0..63 {
                    if acc & (1 << i) == 0 {
                        continue;
                    }
                    for j in 0..63 {
                        if c & (1 << j) != 0 {
                            next |= 1 << i.max(j);
                        }
                    }
                }
                acc = next;
            }
            acc
        }
        Stmt::Trap(b) => {
            let c = may_codes(b);
            let mut out = c & 0b11; // 0 and 1 unchanged
            if c & (1 << 2) != 0 {
                out |= 1; // caught → terminate
            }
            // deeper exits shift down
            out | ((c >> 3) << 2)
        }
    }
}

/// Completion codes achievable along paths that avoid every `IfData`
/// node. Used by the loop-safety check: an instantaneous path that is
/// *data-guarded* is trusted (ECL compiles `for (i = 0; i < N; i++)
/// { await ...; }` to such a loop — the data guarantees at least one
/// iteration); the interpreter still has a dynamic backstop.
pub fn may_codes_unguarded(s: &Stmt) -> u64 {
    match s {
        Stmt::Nothing | Stmt::Emit(_, _) | Stmt::Action(_) => 1,
        Stmt::Pause => 1 << 1,
        Stmt::Exit(d) => 1 << (d + 2).min(62),
        Stmt::IfData(_, _, _) => 0, // no unguarded path through
        Stmt::Present(_, t, e) => may_codes_unguarded(t) | may_codes_unguarded(e),
        Stmt::Suspend(_, b) => may_codes_unguarded(b),
        Stmt::Loop(b) => may_codes_unguarded(b) & !1,
        Stmt::Seq(v) => {
            let mut acc = 1u64;
            let mut out = 0u64;
            for x in v {
                if acc & 1 == 0 {
                    break;
                }
                let c = may_codes_unguarded(x);
                out |= c & !1;
                acc = c;
            }
            if acc & 1 != 0 {
                out |= 1;
            }
            out
        }
        Stmt::Par(v) => {
            let mut acc = 1u64;
            for x in v {
                let c = may_codes_unguarded(x);
                let mut next = 0u64;
                for i in 0..63 {
                    if acc & (1 << i) == 0 {
                        continue;
                    }
                    for j in 0..63 {
                        if c & (1 << j) != 0 {
                            next |= 1 << i.max(j);
                        }
                    }
                }
                acc = next;
            }
            acc
        }
        Stmt::Trap(b) => {
            let c = may_codes_unguarded(b);
            let mut out = c & 0b11;
            if c & (1 << 2) != 0 {
                out |= 1;
            }
            out | ((c >> 3) << 2)
        }
    }
}

fn check_loops(s: &Stmt) -> Result<(), IrError> {
    match s {
        Stmt::Loop(b) => {
            if may_codes_unguarded(b) & 1 != 0 {
                return Err(IrError::InstantaneousLoop);
            }
            check_loops(b)
        }
        Stmt::Present(_, t, e) | Stmt::IfData(_, t, e) => {
            check_loops(t)?;
            check_loops(e)
        }
        Stmt::Seq(v) | Stmt::Par(v) => {
            for x in v {
                check_loops(x)?;
            }
            Ok(())
        }
        Stmt::Trap(b) | Stmt::Suspend(_, b) => check_loops(b),
        _ => Ok(()),
    }
}

fn freeze(s: &Stmt, nodes: &mut Vec<Node>, meta: &mut Vec<Meta>, n_pauses: &mut u32) -> StmtId {
    let lo = *n_pauses;
    let node = match s {
        Stmt::Nothing => Node::Nothing,
        Stmt::Pause => {
            let p = *n_pauses;
            *n_pauses += 1;
            Node::Pause(p)
        }
        Stmt::Emit(sig, e) => Node::Emit(*sig, *e),
        Stmt::Present(c, t, e) => {
            let t = freeze(t, nodes, meta, n_pauses);
            let e = freeze(e, nodes, meta, n_pauses);
            Node::Present(c.clone(), t, e)
        }
        Stmt::IfData(p, t, e) => {
            let t = freeze(t, nodes, meta, n_pauses);
            let e = freeze(e, nodes, meta, n_pauses);
            Node::IfData(*p, t, e)
        }
        Stmt::Action(a) => Node::Action(*a),
        Stmt::Seq(v) => Node::Seq(v.iter().map(|x| freeze(x, nodes, meta, n_pauses)).collect()),
        Stmt::Loop(b) => Node::Loop(freeze(b, nodes, meta, n_pauses)),
        Stmt::Par(v) => Node::Par(v.iter().map(|x| freeze(x, nodes, meta, n_pauses)).collect()),
        Stmt::Trap(b) => Node::Trap(freeze(b, nodes, meta, n_pauses)),
        Stmt::Exit(d) => Node::Exit(*d),
        Stmt::Suspend(c, b) => Node::Suspend(c.clone(), freeze(b, nodes, meta, n_pauses)),
    };
    nodes.push(node);
    meta.push(Meta {
        pause_lo: lo,
        pause_hi: *n_pauses,
    });
    StmtId(nodes.len() as u32 - 1)
}

impl From<IrError> for ecl_syntax::EclError {
    fn from(e: IrError) -> Self {
        ecl_syntax::EclError::msg(
            ecl_syntax::Stage::Ir,
            e.to_string(),
            ecl_syntax::Span::dummy(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tri_logic() {
        use Tri::*;
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(Unknown.not(), Unknown);
    }

    #[test]
    fn sigexpr_eval3_and_unknowns() {
        let a = Signal(0);
        let b = Signal(1);
        let e = SigExpr::from(a).and_(SigExpr::from(b).not_());
        let status = |s: Signal| if s == a { Tri::True } else { Tri::Unknown };
        assert_eq!(e.eval3(&status), Tri::Unknown);
        assert_eq!(e.first_unknown(&status), Some(b));
        let status2 = |s: Signal| if s == a { Tri::False } else { Tri::Unknown };
        assert_eq!(e.eval3(&status2), Tri::False);
        assert_eq!(e.first_unknown(&status2), None);
    }

    #[test]
    fn seq_flattens() {
        let s = Stmt::seq(vec![
            Stmt::nothing(),
            Stmt::seq(vec![Stmt::pause(), Stmt::pause()]),
            Stmt::nothing(),
        ]);
        let Stmt::Seq(v) = &s else { panic!("{s:?}") };
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn exit_shifting_only_free() {
        // trap { exit 0 } has no free exits; exit 0 outside shifts.
        let s = Stmt::seq(vec![Stmt::trap(Stmt::exit(0)), Stmt::exit(0)]);
        let shifted = shift_exits(s, 2);
        let Stmt::Seq(v) = &shifted else { panic!() };
        assert_eq!(v[0], Stmt::Trap(Box::new(Stmt::Exit(0))));
        assert_eq!(v[1], Stmt::Exit(2));
    }

    #[test]
    fn finish_rejects_unbound_exit() {
        let mut b = ProgramBuilder::new("t");
        let _ = b.input("a");
        assert_eq!(
            b.finish(Stmt::exit(0)).unwrap_err(),
            IrError::UnboundExit { depth: 0 }
        );
    }

    #[test]
    fn finish_rejects_instantaneous_loop() {
        let b = ProgramBuilder::new("t");
        assert_eq!(
            b.finish(Stmt::loop_(Stmt::nothing())).unwrap_err(),
            IrError::InstantaneousLoop
        );
    }

    #[test]
    fn finish_rejects_conditional_instantaneous_loop() {
        let mut b = ProgramBuilder::new("t");
        let a = b.input("a");
        // loop { present a then pause else nothing } — may be instantaneous.
        let body = Stmt::loop_(Stmt::present(a.into(), Stmt::pause(), Stmt::nothing()));
        assert_eq!(b.finish(body).unwrap_err(), IrError::InstantaneousLoop);
    }

    #[test]
    fn finish_accepts_awaiting_loop() {
        let mut b = ProgramBuilder::new("t");
        let a = b.input("a");
        let o = b.output("o");
        let body = Stmt::loop_(Stmt::seq(vec![Stmt::await_(a.into()), Stmt::emit(o)]));
        let p = b.finish(body).unwrap();
        assert_eq!(p.n_pauses(), 1);
        assert_eq!(p.signals().len(), 2);
    }

    #[test]
    fn finish_rejects_undeclared_signal() {
        let b = ProgramBuilder::new("t");
        assert!(matches!(
            b.finish(Stmt::emit(Signal(9))).unwrap_err(),
            IrError::UnknownSignal(_)
        ));
    }

    #[test]
    fn pause_ranges_cover_subtrees() {
        let mut b = ProgramBuilder::new("t");
        let a = b.input("a");
        let body = Stmt::par(vec![
            Stmt::await_(SigExpr::from(a)),
            Stmt::await_(SigExpr::from(a)),
        ]);
        let p = b.finish(body).unwrap();
        assert_eq!(p.n_pauses(), 2);
        let m = p.meta(p.root());
        assert_eq!((m.pause_lo, m.pause_hi), (0, 2));
    }

    #[test]
    fn may_codes_of_basic_forms() {
        assert_eq!(may_codes(&Stmt::nothing()), 0b1);
        assert_eq!(may_codes(&Stmt::pause()), 0b10);
        assert_eq!(may_codes(&Stmt::exit(0)), 0b100);
        // trap { exit 0 } terminates.
        assert_eq!(may_codes(&Stmt::trap(Stmt::exit(0))), 0b1);
        // pause; exit 0 — pauses first.
        assert_eq!(
            may_codes(&Stmt::seq(vec![Stmt::pause(), Stmt::exit(0)])),
            0b10
        );
        // par(pause, exit 0) — max(1, 2) = 2.
        assert_eq!(
            may_codes(&Stmt::par(vec![Stmt::pause(), Stmt::exit(0)])),
            0b100
        );
        // halt never terminates.
        assert_eq!(may_codes(&Stmt::halt()), 0b10);
    }

    #[test]
    fn abort_encodings_are_well_formed() {
        let mut b = ProgramBuilder::new("t");
        let r = b.input("r");
        let o = b.output("o");
        let body = Stmt::abort_handle(
            Stmt::seq(vec![Stmt::await_(SigExpr::from(r).not_()), Stmt::emit(o)]),
            r.into(),
            Stmt::emit(o),
        );
        assert!(b
            .finish(Stmt::loop_(Stmt::seq(vec![body, Stmt::pause()])))
            .is_ok());
    }
}
