//! Constant expression evaluation.
//!
//! Used for array lengths and enumerator values while the type table is
//! being built (so it cannot depend on the full interpreter). Supports
//! integer literals, enumerator names, the usual unary/binary integer
//! operators and the ternary operator — everything the paper's designs
//! need after `#define` expansion.

use ecl_syntax::ast::{BinOp, Expr, ExprKind, UnOp};
use std::collections::HashMap;
use std::fmt;

/// Error produced when an expression is not compile-time constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstError {
    /// Explanation of the failure.
    pub msg: String,
}

impl fmt::Display for ConstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for ConstError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ConstError> {
    Err(ConstError { msg: msg.into() })
}

/// Named constants visible to the evaluator (enumerators).
#[derive(Debug, Clone, Copy)]
pub struct ConstEnv<'a> {
    /// Name → value.
    pub consts: &'a HashMap<String, i64>,
}

impl<'a> ConstEnv<'a> {
    /// Wrap a map of named constants.
    pub fn new(consts: &'a HashMap<String, i64>) -> Self {
        ConstEnv { consts }
    }
}

// A `Default` for the borrowed map needs a static empty map.
static EMPTY: std::sync::OnceLock<HashMap<String, i64>> = std::sync::OnceLock::new();

impl Default for ConstEnv<'static> {
    fn default() -> Self {
        ConstEnv {
            consts: EMPTY.get_or_init(HashMap::new),
        }
    }
}

/// Evaluate `e` as a compile-time integer constant.
///
/// # Errors
///
/// Returns [`ConstError`] when the expression references non-constant
/// names, uses unsupported operators (floats, calls, assignment), or
/// divides by zero.
pub fn eval(e: &Expr, env: &ConstEnv<'_>) -> Result<i64, ConstError> {
    match &e.kind {
        ExprKind::IntLit(v) => Ok(*v),
        ExprKind::CharLit(c) => Ok(*c as i64),
        ExprKind::Ident(id) => match env.consts.get(&id.name) {
            Some(v) => Ok(*v),
            None => err(format!("`{}` is not a constant", id.name)),
        },
        ExprKind::Unary(op, inner) => {
            let v = eval(inner, env)?;
            Ok(match op {
                UnOp::Neg => v.wrapping_neg(),
                UnOp::Plus => v,
                UnOp::Not => (v == 0) as i64,
                UnOp::BitNot => !v,
                UnOp::Deref | UnOp::AddrOf => {
                    return err("pointers are not compile-time constants")
                }
            })
        }
        ExprKind::Binary(op, a, b) => {
            let x = eval(a, env)?;
            // Short-circuit forms first.
            match op {
                BinOp::LogAnd => {
                    return Ok(if x != 0 && eval(b, env)? != 0 { 1 } else { 0 });
                }
                BinOp::LogOr => {
                    return Ok(if x != 0 || eval(b, env)? != 0 { 1 } else { 0 });
                }
                _ => {}
            }
            let y = eval(b, env)?;
            Ok(match op {
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                BinOp::Mul => x.wrapping_mul(y),
                BinOp::Div => {
                    if y == 0 {
                        return err("division by zero in constant");
                    }
                    x.wrapping_div(y)
                }
                BinOp::Rem => {
                    if y == 0 {
                        return err("remainder by zero in constant");
                    }
                    x.wrapping_rem(y)
                }
                BinOp::Shl => x.wrapping_shl(y as u32 & 63),
                BinOp::Shr => x.wrapping_shr(y as u32 & 63),
                BinOp::Lt => (x < y) as i64,
                BinOp::Gt => (x > y) as i64,
                BinOp::Le => (x <= y) as i64,
                BinOp::Ge => (x >= y) as i64,
                BinOp::Eq => (x == y) as i64,
                BinOp::Ne => (x != y) as i64,
                BinOp::BitAnd => x & y,
                BinOp::BitXor => x ^ y,
                BinOp::BitOr => x | y,
                BinOp::LogAnd | BinOp::LogOr => unreachable!("handled above"),
            })
        }
        ExprKind::Ternary(c, t, f) => {
            if eval(c, env)? != 0 {
                eval(t, env)
            } else {
                eval(f, env)
            }
        }
        ExprKind::Cast(_, inner) => eval(inner, env),
        other => err(format!("not a constant expression: {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_syntax::parse_str;

    /// Parse `src` as `int x = <expr>;` inside a module and return the
    /// initializer expression.
    fn expr_of(src: &str) -> Expr {
        let p = parse_str(&format!("module m(input pure a) {{ int x = {src}; }}")).unwrap();
        let m = p.module("m").unwrap();
        let ecl_syntax::ast::StmtKind::Decl(d) = &m.body.stmts[0].kind else {
            panic!()
        };
        d.decls[0].init.clone().unwrap()
    }

    fn ev(src: &str) -> Result<i64, ConstError> {
        eval(&expr_of(src), &ConstEnv::default())
    }

    #[test]
    fn arithmetic() {
        assert_eq!(ev("6+56+2").unwrap(), 64);
        assert_eq!(ev("2*3+4").unwrap(), 10);
        assert_eq!(ev("1 << 4").unwrap(), 16);
        assert_eq!(ev("-5 + +2").unwrap(), -3);
        assert_eq!(ev("7 / 2").unwrap(), 3);
        assert_eq!(ev("7 % 2").unwrap(), 1);
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(ev("3 > 2").unwrap(), 1);
        assert_eq!(ev("3 == 2").unwrap(), 0);
        assert_eq!(ev("1 && 0").unwrap(), 0);
        assert_eq!(ev("1 || 0").unwrap(), 1);
        assert_eq!(ev("!0").unwrap(), 1);
        assert_eq!(ev("~0").unwrap(), -1);
        assert_eq!(ev("1 ? 10 : 20").unwrap(), 10);
    }

    #[test]
    fn named_constants() {
        let mut consts = HashMap::new();
        consts.insert("N".to_string(), 8i64);
        let env = ConstEnv::new(&consts);
        assert_eq!(eval(&expr_of("N * 2"), &env).unwrap(), 16);
    }

    #[test]
    fn division_by_zero_is_error() {
        assert!(ev("1 / 0").is_err());
        assert!(ev("1 % 0").is_err());
    }

    #[test]
    fn short_circuit_protects_rhs() {
        // RHS of `&&` is not evaluated when LHS is 0 — even if it would
        // divide by zero.
        assert_eq!(ev("0 && (1 / 0)").unwrap(), 0);
        assert_eq!(ev("1 || (1 / 0)").unwrap(), 1);
    }

    #[test]
    fn non_constants_are_rejected() {
        assert!(ev("y + 1").is_err());
    }

    #[test]
    fn char_literals_and_casts() {
        assert_eq!(ev("'A'").unwrap(), 65);
        assert_eq!(ev("(char) 300").unwrap(), 300); // cast is transparent here
    }
}
